//! Domain blocking: dependence-respecting reordering that groups
//! computations over like shapes, then fusion of adjacent like-shape
//! moves into computation blocks (paper §4.2, Figs. 9 and 10).
//!
//! "Successive loops over common, aligned domains appear in NIR as DO-
//! or MOVE-constructs with common shapes, and as such are easily
//! recognized and their actions composed sequentially — the shape
//! equivalent of loop fusion."

use f90y_nir::deps::commutes;
use f90y_nir::{Extent, Imp, NirError};

use crate::program::{classify_stmt, ProgramBody, StmtClass};

/// The grouping key of a statement: computation phases group by their
/// shape's extent vector; everything else never groups.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Key {
    Compute(Vec<Extent>),
    Other,
}

fn key_of(class: &StmtClass) -> Key {
    match class {
        StmtClass::Compute(s) => Key::Compute(s.extents()),
        _ => Key::Other,
    }
}

/// Reorder statements so computations over like shapes become adjacent,
/// moving a statement only across statements that [`commutes`] proves
/// independent of it. Returns the number of statements hoisted.
///
/// The algorithm mirrors the paper's examples as one greedy pass: each
/// computation statement is hoisted up to sit directly below the nearest
/// earlier statement of the same shape, provided it commutes with every
/// statement it crosses (Fig. 9: the `b = a` move climbs past the serial
/// `DO`; Fig. 10: the `c = n+1` move is lifted out from between the two
/// masked `b` moves — equivalently, the second `b` move climbs past it).
///
/// # Errors
///
/// Fails on static errors while classifying shapes.
pub fn reorder(body: &mut ProgramBody) -> Result<usize, NirError> {
    let mut ctx = body.ctx()?;
    reorder_stmts(&mut body.stmts, &mut ctx)
}

/// [`reorder`] over an arbitrary statement list in a context (used for
/// nested loop bodies).
///
/// # Errors
///
/// Fails on static errors while classifying shapes.
pub fn reorder_stmts(
    stmts: &mut [Imp],
    ctx: &mut f90y_nir::typecheck::Ctx,
) -> Result<usize, NirError> {
    let mut keys: Vec<Key> = stmts
        .iter()
        .map(|s| Ok(key_of(&classify_stmt(s, ctx)?)))
        .collect::<Result<_, NirError>>()?;

    let n = stmts.len();
    let mut hoists = 0usize;
    let mut i = 0usize;
    while i < n {
        if !matches!(keys[i], Key::Compute(_)) {
            i += 1;
            continue;
        }
        // The nearest earlier statement with the same key.
        let Some(j) = (0..i).rev().find(|&j| keys[j] == keys[i]) else {
            i += 1;
            continue;
        };
        if j + 1 == i {
            i += 1;
            continue; // already adjacent
        }
        // Crossable only if the statement commutes with everything in
        // between.
        let movable = (j + 1..i).all(|k| commutes(&stmts[k], &stmts[i]));
        if movable {
            // Rotate stmts[j+1..=i] right by one: stmts[i] lands at j+1.
            stmts[j + 1..=i].rotate_right(1);
            keys[j + 1..=i].rotate_right(1);
            hoists += 1;
        }
        i += 1;
    }
    Ok(hoists)
}

/// What one [`fuse`] run did and found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Statements merged into a preceding like-shape block by this run
    /// (zero means the list was already fully fused — the fixpoint
    /// convergence signal).
    pub merges: usize,
    /// Multi-clause computation blocks present after the run.
    pub blocks: usize,
    /// Total clauses inside those blocks.
    pub clauses: usize,
}

impl FuseStats {
    /// Accumulate another list's stats (used when a pass runs over
    /// every nested statement list).
    pub fn absorb(&mut self, other: FuseStats) {
        self.merges += other.merges;
        self.blocks += other.blocks;
        self.clauses += other.clauses;
    }
}

/// Fuse adjacent like-shape computation moves into multi-clause `MOVE`
/// blocks.
///
/// Fusion is sound here because computation phases are grid-local: each
/// point is independent, so executing the clauses pointwise-sequentially
/// (what one PEAC routine does) equals executing them as successive
/// whole-array moves.
///
/// # Errors
///
/// Fails on static errors while classifying shapes.
pub fn fuse(body: &mut ProgramBody) -> Result<FuseStats, NirError> {
    let mut ctx = body.ctx()?;
    fuse_stmts(&mut body.stmts, &mut ctx)
}

/// [`fuse`] over an arbitrary statement list in a context (used for
/// nested loop bodies).
///
/// # Errors
///
/// Fails on static errors while classifying shapes.
pub fn fuse_stmts(
    stmts: &mut Vec<Imp>,
    ctx: &mut f90y_nir::typecheck::Ctx,
) -> Result<FuseStats, NirError> {
    let taken = std::mem::take(stmts);
    let mut out: Vec<Imp> = Vec::with_capacity(taken.len());
    let mut out_keys: Vec<Key> = Vec::with_capacity(taken.len());
    let mut stats = FuseStats::default();

    for stmt in taken {
        let key = key_of(&classify_stmt(&stmt, ctx)?);
        if let (Some(Imp::Move(prev)), Some(prev_key)) = (out.last_mut(), out_keys.last()) {
            if matches!(key, Key::Compute(_)) && *prev_key == key {
                if let Imp::Move(cur) = stmt {
                    prev.extend(cur);
                    stats.merges += 1;
                    continue;
                }
            }
        }
        out.push(stmt);
        out_keys.push(key);
    }

    for s in &out {
        if let Imp::Move(cs) = s {
            if cs.len() > 1 {
                stats.blocks += 1;
                stats.clauses += cs.len();
            }
        }
    }
    *stmts = out;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;
    use f90y_nir::eval::Evaluator;

    fn two_shape_program() -> Imp {
        // Alternating shapes: a(8), c(4), b(8), d(4) — all independent.
        program(with_domain(
            "s8",
            interval(1, 8),
            with_domain(
                "s4",
                interval(1, 4),
                with_decl(
                    declset(vec![
                        decl("a", dfield(domain("s8"), int32())),
                        decl("b", dfield(domain("s8"), int32())),
                        decl("c", dfield(domain("s4"), int32())),
                        decl("d", dfield(domain("s4"), int32())),
                    ]),
                    seq(vec![
                        mv(avar("a", everywhere()), int(1)),
                        mv(avar("c", everywhere()), int(2)),
                        mv(avar("b", everywhere()), int(3)),
                        mv(avar("d", everywhere()), int(4)),
                    ]),
                ),
            ),
        ))
    }

    #[test]
    fn independent_alternating_shapes_group_fully() {
        let p = two_shape_program();
        let mut body = ProgramBody::decompose(&p).unwrap();
        let swaps = reorder(&mut body).unwrap();
        assert!(swaps >= 1);
        let stats = fuse(&mut body).unwrap();
        assert_eq!(stats.blocks, 2, "one 8-block and one 4-block");
        assert_eq!(stats.clauses, 4);
        assert_eq!(stats.merges, 2);
        assert_eq!(body.stmts.len(), 2);

        let out = body.recompose();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        for name in ["a", "b", "c", "d"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap()
            );
        }
    }

    #[test]
    fn dependences_block_reordering() {
        // a = n (reads n); n = 5 (writes n); b = n (reads n). The scalar
        // write conflicts with both neighbours, so nothing may cross it
        // and the two like-shape moves stay apart.
        let p = program(with_domain(
            "s8",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("a", dfield(domain("s8"), int32())),
                    decl("b", dfield(domain("s8"), int32())),
                    decl("n", int32()),
                ]),
                seq(vec![
                    mv(avar("a", everywhere()), svar("n")),
                    mv(svar_lv("n"), int(5)),
                    mv(avar("b", everywhere()), svar("n")),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        let hoists = reorder(&mut body).unwrap();
        assert_eq!(hoists, 0, "the scalar write must stay between the moves");
        let stats = fuse(&mut body).unwrap();
        assert_eq!(stats.blocks, 0);
        assert_eq!(stats.merges, 0);
    }

    #[test]
    fn fusion_preserves_inter_clause_ordering_semantics() {
        // a = 1 then b = a within one shape: fusing keeps order, and
        // evaluation must still see a's new value in clause 2.
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("a", dfield(domain("s"), int32())),
                    decl("b", dfield(domain("s"), int32())),
                ]),
                seq(vec![
                    mv(avar("a", everywhere()), int(7)),
                    mv(avar("b", everywhere()), ld("a", everywhere())),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        reorder(&mut body).unwrap();
        let stats = fuse(&mut body).unwrap();
        assert_eq!(stats.blocks, 1);
        let mut ev = Evaluator::new();
        ev.run(&body.recompose()).unwrap();
        assert!(ev.final_array_f64("b").unwrap().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn comm_phases_do_not_fuse_with_compute() {
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("t", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("t", everywhere()),
                        fcncall(
                            "cshift",
                            vec![
                                (float64(), ld("v", everywhere())),
                                (int32(), int(1)),
                                (int32(), int(1)),
                            ],
                        ),
                    ),
                    mv(
                        avar("z", everywhere()),
                        sub(ld("v", everywhere()), ld("t", everywhere())),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        reorder(&mut body).unwrap();
        fuse(&mut body).unwrap();
        // Three statements remain: compute, comm, compute.
        assert_eq!(body.stmts.len(), 3);
    }
}
