//! Communication common-subexpression elimination.
//!
//! [`crate::comm_split`] hoists every `CSHIFT`/`EOSHIFT` occurrence into
//! its own fresh temporary, even when two occurrences are textually
//! identical — the SWE kernel, for example, shifts the same pressure
//! array by the same offset in several update equations, and each shift
//! becomes its own communication phase.  This pass deduplicates them:
//! when a hoisted definition `tmpN = CSHIFT(a, s, d)` repeats an earlier
//! definition `tmpM = CSHIFT(a, s, d)` that is still *available* (no
//! intervening write to `a`, `s`, `d` or `tmpM`), the later definition
//! is deleted and every subsequent read of `tmpN` is rewired to `tmpM` —
//! one temporary, one comm phase, directly cutting router/NEWS traffic
//! in the CM/2 cost model and MIMD message counts.
//!
//! Soundness notes:
//!
//! * Only transformation-introduced temporaries ([`ProgramBody::temps`])
//!   are merged — user variables are observable output.
//! * Each such temporary is written by exactly one hoisted definition
//!   program-wide, so once a duplicate definition is deleted, the
//!   canonical temporary holds the right value at every later program
//!   point of the list (and inside nested bodies), even if the shifted
//!   array is overwritten in between: the substitution is value-based.
//! * The "source unmodified" test is the reaching-definition analysis
//!   of `f90y-analysis`: a later definition merges into an earlier one
//!   only when (a) the earlier temporary's definition is the sole
//!   definition reaching the later site, (b) every variable the
//!   defining expression reads sees the *same* definition set at both
//!   sites, and (c) none of those definitions lies between the two
//!   sites — weak (masked) updates saturate the may-def sets inside
//!   loops, so set equality alone would miss a masked rewrite between
//!   the hoists.  Candidates are still paired per statement list (a
//!   definition inside a branch may not execute), with nested bodies
//!   scanned under a fresh availability map.
//!
//! The pass runs in two phases: a read-only planning walk over a frozen
//! snapshot of the program (statement ids and dataflow facts refer to
//! that snapshot), then a rewrite phase that deletes the doomed
//! definitions and rewires every read. The dead declarations are swept
//! by `dce-temps`.

use std::collections::{HashMap, HashSet};

use f90y_analysis::{DefState, ReachingFacts, StmtIndex};
use f90y_nir::{FieldAction, Imp, LValue, NirError, Value};

use crate::program::ProgramBody;

/// Run the pass; returns the number of duplicate communication
/// definitions merged away.
///
/// # Errors
///
/// Infallible today; the `Result` matches the other passes' signatures.
pub fn run(body: &mut ProgramBody) -> Result<usize, NirError> {
    let temps: HashSet<String> = body.temps.iter().cloned().collect();
    if temps.is_empty() {
        return Ok(0);
    }

    // Phase 1: plan merges against reaching-definition facts computed
    // over a frozen snapshot of the whole program.
    let frozen = body.recompose();
    let index = StmtIndex::of(&frozen);
    let facts = ReachingFacts::compute(&frozen, &index);
    let mut plan: HashMap<String, String> = HashMap::new();
    plan_list(&top_list(&frozen), &index, &facts, &temps, &mut plan);
    if plan.is_empty() {
        return Ok(0);
    }

    // Phase 2: delete the doomed definitions and rewire every read to
    // the canonical temporary.
    let doomed: HashSet<String> = plan.keys().cloned().collect();
    remove_doomed(&mut body.stmts, &temps, &doomed);
    for s in &mut body.stmts {
        subst_imp(s, &plan);
    }
    Ok(plan.len())
}

/// Plan merges within one statement list. `avail` maps the canonical
/// text of a (rewired) defining expression to the canonical temporary
/// and its defining statement's id in the frozen snapshot.
fn plan_list(
    stmts: &[&Imp],
    index: &StmtIndex<'_>,
    facts: &ReachingFacts,
    temps: &HashSet<String>,
    plan: &mut HashMap<String, String>,
) {
    let mut avail: HashMap<String, (String, usize)> = HashMap::new();
    for stmt in stmts {
        if let Some((temp, src)) = comm_def(stmt, temps) {
            let sid = index.id(stmt);
            let mut src = src.clone();
            subst_value(&mut src, plan);
            let key = format!("{src:?}");
            if let Some((canon, canon_sid)) = avail.get(&key) {
                if *canon != temp && still_available(facts, *canon_sid, sid, canon, &src) {
                    plan.insert(temp, canon.clone());
                    continue;
                }
            }
            avail.insert(key, (temp, sid));
            continue;
        }
        // Nested bodies get their own availability scope.
        for list in nested_lists(stmt) {
            plan_list(&list, index, facts, temps, plan);
        }
    }
}

/// The reaching-definition "source unmodified" test: the canonical
/// definition at `canon_sid` still holds the value the duplicate at
/// `sid` would recompute.
fn still_available(
    facts: &ReachingFacts,
    canon_sid: usize,
    sid: usize,
    canon: &str,
    src: &Value,
) -> bool {
    let (Some(d1), Some(d2)) = (facts.at_move.get(&canon_sid), facts.at_move.get(&sid)) else {
        return false;
    };
    // The canonical temporary must be defined, here, by exactly its one
    // hoisted definition (clause 0 of that statement) on every path.
    if d2.state(canon) != DefState::single((canon_sid, 0)) {
        return false;
    }
    // Every variable the expression reads must see the same definitions
    // at both sites, and none of those definitions may sit *between*
    // the two sites in the frozen snapshot's pre-order. Set equality
    // alone is not enough under weak (masked or partial-section)
    // updates: inside a loop the may-def set saturates, so a masked
    // rewrite between the hoists leaves both sets equal even though the
    // value changed.
    src.reads().iter().all(|v| {
        let s2 = d2.state(v);
        d1.state(v) == s2 && s2.defs.iter().all(|&(d, _)| !(canon_sid < d && d < sid))
    })
}

/// The top-level statement list of a recomposed program: descend through
/// the outer `PROGRAM` / domain / declaration binders.
fn top_list(root: &Imp) -> Vec<&Imp> {
    let mut cur = root;
    loop {
        match cur {
            Imp::Program(b) | Imp::WithDecl(_, b) | Imp::WithDomain(_, _, b) => cur = b,
            other => return list_of(other),
        }
    }
}

/// The nested statement lists of one statement (loop and branch bodies),
/// mirroring [`each_nested_list`] on the frozen snapshot.
fn nested_lists(stmt: &Imp) -> Vec<Vec<&Imp>> {
    match stmt {
        Imp::Do(_, _, b) | Imp::While(_, b) | Imp::WithDecl(_, b) | Imp::WithDomain(_, _, b) => {
            vec![list_of(b)]
        }
        Imp::IfThenElse(_, t, e) => vec![list_of(t), list_of(e)],
        _ => Vec::new(),
    }
}

fn list_of(b: &Imp) -> Vec<&Imp> {
    match b {
        Imp::Sequentially(xs) => xs.iter().collect(),
        Imp::Skip => Vec::new(),
        other => vec![other],
    }
}

/// Delete every doomed hoisted definition, recursively through nested
/// bodies.
fn remove_doomed(stmts: &mut Vec<Imp>, temps: &HashSet<String>, doomed: &HashSet<String>) {
    stmts.retain(|s| !matches!(comm_def(s, temps), Some((t, _)) if doomed.contains(&t)));
    for s in stmts {
        each_nested_list(s, &mut |list| remove_doomed(list, temps, doomed));
    }
}

/// `Some((temp, src))` when the statement is a hoisted communication
/// definition `MOVE[(True, (cshift|eoshift(...), AVAR(temp, everywhere)))]`
/// into a transformation temporary.
fn comm_def<'a>(stmt: &'a Imp, temps: &HashSet<String>) -> Option<(String, &'a Value)> {
    let Imp::Move(clauses) = stmt else {
        return None;
    };
    let [clause] = clauses.as_slice() else {
        return None;
    };
    if !clause.is_unmasked() {
        return None;
    }
    let Value::FcnCall(name, _) = &clause.src else {
        return None;
    };
    if !matches!(name.as_str(), "cshift" | "eoshift") {
        return None;
    }
    let LValue::AVar(dst, FieldAction::Everywhere) = &clause.dst else {
        return None;
    };
    if !temps.contains(dst) {
        return None;
    }
    Some((dst.clone(), &clause.src))
}

/// Apply `f` to every nested statement list of one statement (loop and
/// branch bodies), without touching the statement's own values.
fn each_nested_list(stmt: &mut Imp, f: &mut impl FnMut(&mut Vec<Imp>)) {
    match stmt {
        Imp::Do(_, _, b) | Imp::While(_, b) | Imp::WithDecl(_, b) | Imp::WithDomain(_, _, b) => {
            nested_boxed(b, f);
        }
        Imp::IfThenElse(_, t, e) => {
            nested_boxed(t, f);
            nested_boxed(e, f);
        }
        _ => {}
    }
}

fn nested_boxed(b: &mut Box<Imp>, f: &mut impl FnMut(&mut Vec<Imp>)) {
    let mut stmts = match std::mem::replace(b.as_mut(), Imp::Skip) {
        Imp::Sequentially(xs) => xs,
        Imp::Skip => Vec::new(),
        other => vec![other],
    };
    f(&mut stmts);
    **b = Imp::seq(stmts);
}

/// Rewire array-variable reads through the substitution, everywhere in
/// a statement (sources, masks, subscripts, conditions, nested bodies).
fn subst_imp(stmt: &mut Imp, subst: &HashMap<String, String>) {
    match stmt {
        Imp::Program(b) => subst_imp(b, subst),
        Imp::Skip => {}
        Imp::Sequentially(xs) | Imp::Concurrently(xs) => {
            for x in xs {
                subst_imp(x, subst);
            }
        }
        Imp::Move(clauses) => {
            for c in clauses {
                subst_value(&mut c.mask, subst);
                subst_value(&mut c.src, subst);
                if let LValue::AVar(_, FieldAction::Subscript(ixs)) = &mut c.dst {
                    for ix in ixs {
                        subst_value(ix, subst);
                    }
                }
            }
        }
        Imp::IfThenElse(c, t, e) => {
            subst_value(c, subst);
            subst_imp(t, subst);
            subst_imp(e, subst);
        }
        Imp::While(c, b) => {
            subst_value(c, subst);
            subst_imp(b, subst);
        }
        Imp::Do(_, _, b) => subst_imp(b, subst),
        Imp::WithDecl(_, b) | Imp::WithDomain(_, _, b) => subst_imp(b, subst),
    }
}

fn subst_value(v: &mut Value, subst: &HashMap<String, String>) {
    match v {
        Value::AVar(id, fa) => {
            if let Some(canon) = subst.get(id) {
                *id = canon.clone();
            }
            if let FieldAction::Subscript(ixs) = fa {
                for ix in ixs {
                    subst_value(ix, subst);
                }
            }
        }
        Value::SVar(_) | Value::Scalar(_) | Value::LocalUnder(_, _) | Value::DoIndex(_, _) => {}
        Value::Unary(_, a) => subst_value(a, subst),
        Value::Binary(_, a, b) => {
            subst_value(a, subst);
            subst_value(b, subst);
        }
        Value::FcnCall(_, args) => {
            for (_, a) in args {
                subst_value(a, subst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm_split;
    use f90y_nir::build::*;
    use f90y_nir::eval::Evaluator;

    fn cshift_call(arr: &str, shift: i32, dim: i32) -> Value {
        fcncall(
            "cshift",
            vec![
                (float64(), ld(arr, everywhere())),
                (int32(), int(shift)),
                (int32(), int(dim)),
            ],
        )
    }

    /// Two statements each reading the *same* shift of `v`: after
    /// comm-split there are two identical hoisted definitions; comm-cse
    /// merges them into one.
    fn repeated_shift_program() -> Imp {
        program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("y", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("y", everywhere()),
                        add(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                    mv(
                        avar("z", everywhere()),
                        sub(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                ]),
            ),
        ))
    }

    #[test]
    fn identical_hoists_share_one_temporary() {
        let p = repeated_shift_program();
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(comm_split::run(&mut body).unwrap(), 2);
        assert_eq!(run(&mut body).unwrap(), 1);
        // One hoisted definition left; both computes read tmp0.
        let comm_defs = body
            .stmts
            .iter()
            .filter(|s| comm_def(s, &body.temps.iter().cloned().collect()).is_some())
            .count();
        assert_eq!(comm_defs, 1);

        let out = body.recompose();
        f90y_nir::typecheck::check(&out).unwrap();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        for name in ["y", "z"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap(),
                "{name} differs after comm-cse"
            );
        }
    }

    #[test]
    fn intervening_writes_block_the_merge() {
        // v is rewritten between the two shifts: the second shift reads
        // different data and must keep its own temporary.
        let p = program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("y", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("y", everywhere()),
                        add(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                    mv(avar("v", everywhere()), f64c(3.0)),
                    mv(
                        avar("z", everywhere()),
                        sub(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(comm_split::run(&mut body).unwrap(), 2);
        assert_eq!(
            run(&mut body).unwrap(),
            0,
            "the write to v kills availability"
        );

        let out = body.recompose();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        for name in ["y", "z"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap()
            );
        }
    }

    #[test]
    fn different_shifts_do_not_merge() {
        let p = program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("y", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("y", everywhere()),
                        add(cshift_call("v", -1, 1), cshift_call("v", 1, 1)),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(comm_split::run(&mut body).unwrap(), 2);
        assert_eq!(run(&mut body).unwrap(), 0);
    }

    #[test]
    fn merges_reach_inside_serial_do_bodies() {
        // The SWE shape: repeated identical shifts inside a time-step DO.
        let p = program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("y", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    do_over(
                        "t",
                        serial_interval(1, 3),
                        seq(vec![
                            mv(
                                avar("y", everywhere()),
                                add(ld("v", everywhere()), cshift_call("v", 1, 1)),
                            ),
                            mv(
                                avar("z", everywhere()),
                                sub(ld("y", everywhere()), cshift_call("v", 1, 1)),
                            ),
                            mv(
                                avar("v", everywhere()),
                                add(ld("z", everywhere()), f64c(0.5)),
                            ),
                        ]),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(comm_split::run(&mut body).unwrap(), 2);
        assert_eq!(run(&mut body).unwrap(), 1);

        let out = body.recompose();
        f90y_nir::typecheck::check(&out).unwrap();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        for name in ["v", "y", "z"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap(),
                "{name} differs after comm-cse in a DO body"
            );
        }
    }

    #[test]
    fn masked_intervening_writes_in_a_loop_block_the_merge() {
        // The red-black shape: inside a serial DO, v is rewritten only
        // under a mask between two identical shifts. Weak updates never
        // kill reaching definitions, so the may-def sets at both hoist
        // sites saturate to the same set across iterations — the pass
        // must still refuse the merge.
        let p = program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("m", dfield(domain("s"), logical32())),
                    decl("y", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("m", everywhere()),
                        bin(f90y_nir::BinOp::Gt, ld("v", everywhere()), f64c(8.0)),
                    ),
                    do_over(
                        "t",
                        serial_interval(1, 3),
                        seq(vec![
                            mv(
                                avar("y", everywhere()),
                                add(ld("v", everywhere()), cshift_call("v", 1, 1)),
                            ),
                            mv_masked(
                                ld("m", everywhere()),
                                avar("v", everywhere()),
                                add(ld("v", everywhere()), f64c(1.0)),
                            ),
                            mv(
                                avar("z", everywhere()),
                                sub(ld("v", everywhere()), cshift_call("v", 1, 1)),
                            ),
                        ]),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(comm_split::run(&mut body).unwrap(), 2);
        assert_eq!(
            run(&mut body).unwrap(),
            0,
            "the masked write to v between the shifts kills availability"
        );

        let out = body.recompose();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        for name in ["v", "y", "z"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap(),
                "{name} differs after comm-cse"
            );
        }
    }

    #[test]
    fn user_variables_are_never_merged() {
        // Two user-written identical comm statements (no comm-split):
        // nothing is in `temps`, so nothing merges.
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("a", dfield(domain("s"), float64())),
                    decl("b", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("a", everywhere()), cshift_call("v", 1, 1)),
                    mv(avar("b", everywhere()), cshift_call("v", 1, 1)),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(run(&mut body).unwrap(), 0);
    }
}
