//! Communication common-subexpression elimination.
//!
//! [`crate::comm_split`] hoists every `CSHIFT`/`EOSHIFT` occurrence into
//! its own fresh temporary, even when two occurrences are textually
//! identical — the SWE kernel, for example, shifts the same pressure
//! array by the same offset in several update equations, and each shift
//! becomes its own communication phase.  This pass deduplicates them:
//! when a hoisted definition `tmpN = CSHIFT(a, s, d)` repeats an earlier
//! definition `tmpM = CSHIFT(a, s, d)` that is still *available* (no
//! intervening write to `a`, `s`, `d` or `tmpM`), the later definition
//! is deleted and every subsequent read of `tmpN` is rewired to `tmpM` —
//! one temporary, one comm phase, directly cutting router/NEWS traffic
//! in the CM/2 cost model and MIMD message counts.
//!
//! Soundness notes:
//!
//! * Only transformation-introduced temporaries ([`ProgramBody::temps`])
//!   are merged — user variables are observable output.
//! * Each such temporary is written by exactly one hoisted definition
//!   program-wide, so once a duplicate definition is deleted, the
//!   canonical temporary holds the right value at every later program
//!   point of the list (and inside nested bodies), even if the shifted
//!   array is overwritten in between: the substitution is value-based.
//! * Availability is tracked per statement list and invalidated by any
//!   write to a variable the defining expression reads; nested bodies
//!   are scanned with a fresh availability map (a definition inside a
//!   branch may not execute).

use std::collections::{HashMap, HashSet};

use f90y_nir::deps::RwSets;
use f90y_nir::{FieldAction, Imp, LValue, NirError, Value};

use crate::program::ProgramBody;

/// Run the pass; returns the number of duplicate communication
/// definitions merged away.
///
/// # Errors
///
/// Infallible today; the `Result` matches the other passes' signatures.
pub fn run(body: &mut ProgramBody) -> Result<usize, NirError> {
    let temps: HashSet<String> = body.temps.iter().cloned().collect();
    let mut merged = 0usize;
    cse_list(&mut body.stmts, &temps, &mut merged);
    Ok(merged)
}

/// One available hoisted definition: the canonical temporary and the
/// identifiers its defining expression reads (for invalidation).
struct Available {
    temp: String,
    reads: HashSet<String>,
}

fn cse_list(stmts: &mut Vec<Imp>, temps: &HashSet<String>, merged: &mut usize) {
    // Key: canonical text of the defining expression.
    let mut avail: HashMap<String, Available> = HashMap::new();
    // Active rewirings tmpN -> tmpM, applied to everything downstream.
    let mut subst: HashMap<String, String> = HashMap::new();

    let taken = std::mem::take(stmts);
    let mut out: Vec<Imp> = Vec::with_capacity(taken.len());
    for mut stmt in taken {
        if !subst.is_empty() {
            subst_imp(&mut stmt, &subst);
        }

        let def = comm_def(&stmt, temps).map(|(temp, src)| (temp, format!("{src:?}")));
        if let Some((temp, key)) = &def {
            if let Some(a) = avail.get(key) {
                if a.temp != *temp {
                    // Duplicate: delete the definition and rewire every
                    // later read. The dead declaration is swept by
                    // `dce-temps`.
                    subst.insert(temp.clone(), a.temp.clone());
                    *merged += 1;
                    continue;
                }
            }
        }

        // Recurse into nested bodies with their own availability scope
        // (the substitution was already applied above).
        each_nested_list(&mut stmt, &mut |list| cse_list(list, temps, merged));

        // Invalidate whatever this statement may overwrite — *before*
        // recording the statement's own definition, so a hoist does not
        // kill its own availability by writing its temporary.
        let rw = RwSets::of(&stmt);
        let written: HashSet<&String> = rw.written_idents().collect();
        if !written.is_empty() {
            avail.retain(|_, a| {
                !written.contains(&a.temp) && written.is_disjoint(&a.reads.iter().collect())
            });
        }
        if let Some((temp, key)) = def {
            avail.insert(
                key,
                Available {
                    temp,
                    reads: rw.read_idents().cloned().collect(),
                },
            );
        }
        out.push(stmt);
    }
    *stmts = out;
}

/// `Some((temp, src))` when the statement is a hoisted communication
/// definition `MOVE[(True, (cshift|eoshift(...), AVAR(temp, everywhere)))]`
/// into a transformation temporary.
fn comm_def<'a>(stmt: &'a Imp, temps: &HashSet<String>) -> Option<(String, &'a Value)> {
    let Imp::Move(clauses) = stmt else {
        return None;
    };
    let [clause] = clauses.as_slice() else {
        return None;
    };
    if !clause.is_unmasked() {
        return None;
    }
    let Value::FcnCall(name, _) = &clause.src else {
        return None;
    };
    if !matches!(name.as_str(), "cshift" | "eoshift") {
        return None;
    }
    let LValue::AVar(dst, FieldAction::Everywhere) = &clause.dst else {
        return None;
    };
    if !temps.contains(dst) {
        return None;
    }
    Some((dst.clone(), &clause.src))
}

/// Apply `f` to every nested statement list of one statement (loop and
/// branch bodies), without touching the statement's own values.
fn each_nested_list(stmt: &mut Imp, f: &mut impl FnMut(&mut Vec<Imp>)) {
    match stmt {
        Imp::Do(_, _, b) | Imp::While(_, b) | Imp::WithDecl(_, b) | Imp::WithDomain(_, _, b) => {
            nested_boxed(b, f);
        }
        Imp::IfThenElse(_, t, e) => {
            nested_boxed(t, f);
            nested_boxed(e, f);
        }
        _ => {}
    }
}

fn nested_boxed(b: &mut Box<Imp>, f: &mut impl FnMut(&mut Vec<Imp>)) {
    let mut stmts = match std::mem::replace(b.as_mut(), Imp::Skip) {
        Imp::Sequentially(xs) => xs,
        Imp::Skip => Vec::new(),
        other => vec![other],
    };
    f(&mut stmts);
    **b = Imp::seq(stmts);
}

/// Rewire array-variable reads through the substitution, everywhere in
/// a statement (sources, masks, subscripts, conditions, nested bodies).
fn subst_imp(stmt: &mut Imp, subst: &HashMap<String, String>) {
    match stmt {
        Imp::Program(b) => subst_imp(b, subst),
        Imp::Skip => {}
        Imp::Sequentially(xs) | Imp::Concurrently(xs) => {
            for x in xs {
                subst_imp(x, subst);
            }
        }
        Imp::Move(clauses) => {
            for c in clauses {
                subst_value(&mut c.mask, subst);
                subst_value(&mut c.src, subst);
                if let LValue::AVar(_, FieldAction::Subscript(ixs)) = &mut c.dst {
                    for ix in ixs {
                        subst_value(ix, subst);
                    }
                }
            }
        }
        Imp::IfThenElse(c, t, e) => {
            subst_value(c, subst);
            subst_imp(t, subst);
            subst_imp(e, subst);
        }
        Imp::While(c, b) => {
            subst_value(c, subst);
            subst_imp(b, subst);
        }
        Imp::Do(_, _, b) => subst_imp(b, subst),
        Imp::WithDecl(_, b) | Imp::WithDomain(_, _, b) => subst_imp(b, subst),
    }
}

fn subst_value(v: &mut Value, subst: &HashMap<String, String>) {
    match v {
        Value::AVar(id, fa) => {
            if let Some(canon) = subst.get(id) {
                *id = canon.clone();
            }
            if let FieldAction::Subscript(ixs) = fa {
                for ix in ixs {
                    subst_value(ix, subst);
                }
            }
        }
        Value::SVar(_) | Value::Scalar(_) | Value::LocalUnder(_, _) | Value::DoIndex(_, _) => {}
        Value::Unary(_, a) => subst_value(a, subst),
        Value::Binary(_, a, b) => {
            subst_value(a, subst);
            subst_value(b, subst);
        }
        Value::FcnCall(_, args) => {
            for (_, a) in args {
                subst_value(a, subst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm_split;
    use f90y_nir::build::*;
    use f90y_nir::eval::Evaluator;

    fn cshift_call(arr: &str, shift: i32, dim: i32) -> Value {
        fcncall(
            "cshift",
            vec![
                (float64(), ld(arr, everywhere())),
                (int32(), int(shift)),
                (int32(), int(dim)),
            ],
        )
    }

    /// Two statements each reading the *same* shift of `v`: after
    /// comm-split there are two identical hoisted definitions; comm-cse
    /// merges them into one.
    fn repeated_shift_program() -> Imp {
        program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("y", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("y", everywhere()),
                        add(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                    mv(
                        avar("z", everywhere()),
                        sub(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                ]),
            ),
        ))
    }

    #[test]
    fn identical_hoists_share_one_temporary() {
        let p = repeated_shift_program();
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(comm_split::run(&mut body).unwrap(), 2);
        assert_eq!(run(&mut body).unwrap(), 1);
        // One hoisted definition left; both computes read tmp0.
        let comm_defs = body
            .stmts
            .iter()
            .filter(|s| comm_def(s, &body.temps.iter().cloned().collect()).is_some())
            .count();
        assert_eq!(comm_defs, 1);

        let out = body.recompose();
        f90y_nir::typecheck::check(&out).unwrap();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        for name in ["y", "z"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap(),
                "{name} differs after comm-cse"
            );
        }
    }

    #[test]
    fn intervening_writes_block_the_merge() {
        // v is rewritten between the two shifts: the second shift reads
        // different data and must keep its own temporary.
        let p = program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("y", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("y", everywhere()),
                        add(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                    mv(avar("v", everywhere()), f64c(3.0)),
                    mv(
                        avar("z", everywhere()),
                        sub(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(comm_split::run(&mut body).unwrap(), 2);
        assert_eq!(
            run(&mut body).unwrap(),
            0,
            "the write to v kills availability"
        );

        let out = body.recompose();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        for name in ["y", "z"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap()
            );
        }
    }

    #[test]
    fn different_shifts_do_not_merge() {
        let p = program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("y", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("y", everywhere()),
                        add(cshift_call("v", -1, 1), cshift_call("v", 1, 1)),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(comm_split::run(&mut body).unwrap(), 2);
        assert_eq!(run(&mut body).unwrap(), 0);
    }

    #[test]
    fn merges_reach_inside_serial_do_bodies() {
        // The SWE shape: repeated identical shifts inside a time-step DO.
        let p = program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("y", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    do_over(
                        "t",
                        serial_interval(1, 3),
                        seq(vec![
                            mv(
                                avar("y", everywhere()),
                                add(ld("v", everywhere()), cshift_call("v", 1, 1)),
                            ),
                            mv(
                                avar("z", everywhere()),
                                sub(ld("y", everywhere()), cshift_call("v", 1, 1)),
                            ),
                            mv(
                                avar("v", everywhere()),
                                add(ld("z", everywhere()), f64c(0.5)),
                            ),
                        ]),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(comm_split::run(&mut body).unwrap(), 2);
        assert_eq!(run(&mut body).unwrap(), 1);

        let out = body.recompose();
        f90y_nir::typecheck::check(&out).unwrap();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        for name in ["v", "y", "z"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap(),
                "{name} differs after comm-cse in a DO body"
            );
        }
    }

    #[test]
    fn user_variables_are_never_merged() {
        // Two user-written identical comm statements (no comm-split):
        // nothing is in `temps`, so nothing merges.
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("a", dfield(domain("s"), float64())),
                    decl("b", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("a", everywhere()), cshift_call("v", 1, 1)),
                    mv(avar("b", everywhere()), cshift_call("v", 1, 1)),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(run(&mut body).unwrap(), 0);
    }
}
