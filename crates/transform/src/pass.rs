//! The pass manager: named, verifiable, observable NIR passes.
//!
//! The paper's thesis is that a formally specified pipeline of
//! semantics-preserving NIR transformations can be prototyped rapidly
//! *because each stage is checkable in isolation* (§4.2, Figs. 9–11).
//! This module gives the middle end that structure: every
//! transformation is a named [`Pass`] over a [`ProgramBody`]; a
//! [`PassManager`] runs a configured sequence of them (with optional
//! fixpoint groups iterated to convergence), collects a [`PassReport`]
//! per run, captures pretty-printed IR dumps after any or every pass,
//! emits a `pass.*` telemetry namespace through `f90y-obs`, and — when
//! verification is enabled — re-runs the type and shape checkers plus
//! an evaluator-equivalence spot check *between* passes, so a
//! miscompiling pass fails loudly at its own boundary with a
//! [`NirError::Verify`] naming it.
//!
//! Verification has a cheaper static sibling, the *legality audit*
//! ([`PassManager::audit`]): each pass's output is checked against the
//! pipeline input's def-use facts (`f90y-analysis` reaching
//! definitions), and a pass that leaves a read no longer reached by any
//! definition — an illegal reordering, for example — fails by name the
//! same way, without running the evaluator.
//!
//! Named passes (see [`pass_by_name`]):
//!
//! | name               | effect                                             |
//! |--------------------|----------------------------------------------------|
//! | `comm-split`       | hoist `CSHIFT`/`EOSHIFT` into temporaries          |
//! | `comm-cse`         | deduplicate identical hoisted shifts               |
//! | `mask-pad`         | pad section assignments to masked full-array moves |
//! | `blocking-reorder` | group like-shape computations by code motion       |
//! | `blocking-fuse`    | fuse adjacent like-shape moves into blocks         |
//! | `dce-temps`        | delete temporaries left dead by the passes above   |
//!
//! The pseudo-name `blocking` names the fixpoint group
//! `fixpoint(blocking-reorder, blocking-fuse)`.

use f90y_analysis::{AuditFacts, CommFacts};
use f90y_nir::verify::{check_static, compare_snapshots, snapshot, Snapshot};
use f90y_nir::{pretty, Imp, NirError};
use f90y_obs::Telemetry;

use crate::program::ProgramBody;
use crate::{blocking, comm_cse, comm_split, dce, mask_pad};

/// What one run of one pass did: a primary rewrite count (zero means
/// the pass found nothing to do — the fixpoint convergence signal) and
/// optional named counters.
#[derive(Debug, Clone, Default)]
pub struct PassOutcome {
    /// Number of rewrites applied.
    pub rewrites: usize,
    /// Extra pass-specific statistics.
    pub counters: Vec<(&'static str, u64)>,
}

impl PassOutcome {
    /// An outcome with only a rewrite count.
    #[must_use]
    pub fn rewrites(n: usize) -> Self {
        PassOutcome {
            rewrites: n,
            counters: Vec::new(),
        }
    }
}

/// One executed pass's report, as recorded by the manager. A pass
/// inside a fixpoint group appears once per iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReport {
    /// The pass's registered name.
    pub name: String,
    /// Number of rewrites this run applied.
    pub rewrites: usize,
    /// Extra pass-specific statistics.
    pub counters: Vec<(String, u64)>,
}

impl PassReport {
    /// The value of a named counter, if the pass reported it.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// A named NIR-to-NIR transformation over a decomposed program body.
pub trait Pass {
    /// The registered name (kebab-case; used by `--passes`,
    /// `--emit-after` and the `pass.*` telemetry namespace).
    fn name(&self) -> &'static str;

    /// Apply the pass.
    ///
    /// # Errors
    ///
    /// Fails on static errors while analysing the program.
    fn run(&self, body: &mut ProgramBody) -> Result<PassOutcome, NirError>;
}

struct CommSplitPass;

impl Pass for CommSplitPass {
    fn name(&self) -> &'static str {
        "comm-split"
    }

    fn run(&self, body: &mut ProgramBody) -> Result<PassOutcome, NirError> {
        let introduced = comm_split::run(body)?;
        Ok(PassOutcome {
            rewrites: introduced,
            counters: vec![("temps_introduced", introduced as u64)],
        })
    }
}

struct CommCsePass;

impl Pass for CommCsePass {
    fn name(&self) -> &'static str {
        "comm-cse"
    }

    fn run(&self, body: &mut ProgramBody) -> Result<PassOutcome, NirError> {
        Ok(PassOutcome::rewrites(comm_cse::run(body)?))
    }
}

struct MaskPadPass;

impl Pass for MaskPadPass {
    fn name(&self) -> &'static str {
        "mask-pad"
    }

    fn run(&self, body: &mut ProgramBody) -> Result<PassOutcome, NirError> {
        let mut padded = 0usize;
        body.for_each_stmt_list(&mut |stmts, ctx| {
            padded += mask_pad::run_stmts(stmts, ctx)?;
            Ok(())
        })?;
        Ok(PassOutcome::rewrites(padded))
    }
}

struct BlockingReorderPass;

impl Pass for BlockingReorderPass {
    fn name(&self) -> &'static str {
        "blocking-reorder"
    }

    fn run(&self, body: &mut ProgramBody) -> Result<PassOutcome, NirError> {
        let mut hoists = 0usize;
        body.for_each_stmt_list(&mut |stmts, ctx| {
            hoists += blocking::reorder_stmts(stmts, ctx)?;
            Ok(())
        })?;
        Ok(PassOutcome::rewrites(hoists))
    }
}

struct BlockingFusePass;

impl Pass for BlockingFusePass {
    fn name(&self) -> &'static str {
        "blocking-fuse"
    }

    fn run(&self, body: &mut ProgramBody) -> Result<PassOutcome, NirError> {
        let mut total = blocking::FuseStats::default();
        body.for_each_stmt_list(&mut |stmts, ctx| {
            total.absorb(blocking::fuse_stmts(stmts, ctx)?);
            Ok(())
        })?;
        Ok(PassOutcome {
            rewrites: total.merges,
            counters: vec![
                ("blocks", total.blocks as u64),
                ("clauses", total.clauses as u64),
            ],
        })
    }
}

struct DceTempsPass;

impl Pass for DceTempsPass {
    fn name(&self) -> &'static str {
        "dce-temps"
    }

    fn run(&self, body: &mut ProgramBody) -> Result<PassOutcome, NirError> {
        let stats = dce::run(body)?;
        Ok(PassOutcome {
            rewrites: stats.temps_deleted,
            counters: vec![
                ("temps_deleted", stats.temps_deleted as u64),
                ("clauses_removed", stats.clauses_removed as u64),
            ],
        })
    }
}

/// Every registered pass name, in default pipeline order.
pub const PASS_NAMES: &[&str] = &[
    "comm-split",
    "comm-cse",
    "mask-pad",
    "blocking-reorder",
    "blocking-fuse",
    "dce-temps",
];

/// Look a pass up by its registered name.
#[must_use]
pub fn pass_by_name(name: &str) -> Option<Box<dyn Pass>> {
    match name {
        "comm-split" => Some(Box::new(CommSplitPass)),
        "comm-cse" => Some(Box::new(CommCsePass)),
        "mask-pad" => Some(Box::new(MaskPadPass)),
        "blocking-reorder" => Some(Box::new(BlockingReorderPass)),
        "blocking-fuse" => Some(Box::new(BlockingFusePass)),
        "dce-temps" => Some(Box::new(DceTempsPass)),
        _ => None,
    }
}

/// Which IR dumps the manager captures (pretty-printed NIR of the whole
/// recomposed program, as `--emit nir` would print it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum DumpPoint {
    /// Capture nothing (the default).
    #[default]
    None,
    /// Capture the program after every run of the named pass.
    After(String),
    /// Capture after every run of every pass.
    All,
}

/// One scheduling unit: a single pass, or a group iterated to a
/// fixpoint (re-run until an iteration applies zero rewrites, with a
/// safety cap).
enum Unit {
    Single(Box<dyn Pass>),
    Fixpoint(Vec<Box<dyn Pass>>),
}

/// What the whole pipeline did: per-run pass reports (in execution
/// order), captured dumps, and the before/after `MOVE` counts.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// `MOVE` statements before any transformation.
    pub moves_before: usize,
    /// `MOVE` statements after the full pipeline.
    pub moves_after: usize,
    /// One entry per executed pass run, in order.
    pub passes: Vec<PassReport>,
    /// Captured `(pass name, pretty-printed NIR)` dumps, in order.
    pub dumps: Vec<(String, String)>,
    /// Whether inter-pass verification ran.
    pub verified: bool,
    /// Whether the static def-use legality audit ran.
    pub audited: bool,
}

impl PipelineReport {
    /// Total rewrites across every run of the named pass.
    #[must_use]
    pub fn rewrites_of(&self, name: &str) -> usize {
        self.passes
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.rewrites)
            .sum()
    }

    /// The report of the *last* run of the named pass, if it ran.
    #[must_use]
    pub fn last_run_of(&self, name: &str) -> Option<&PassReport> {
        self.passes.iter().rev().find(|p| p.name == name)
    }

    /// The dump captured after the *last* run of the named pass.
    #[must_use]
    pub fn dump_after(&self, name: &str) -> Option<&str> {
        self.dumps
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_str())
    }
}

/// How many times a fixpoint group may iterate before the manager gives
/// up (a diverging pass pair is a bug; the cap turns it into a loud
/// stop instead of a hang).
pub const MAX_FIXPOINT_ITERS: usize = 10;

/// A configured sequence of passes. Build one with [`PassManager::new`]
/// plus [`PassManager::add`]/[`PassManager::add_fixpoint`], or from
/// names with [`PassManager::from_names`].
#[derive(Default)]
pub struct PassManager {
    units: Vec<Unit>,
    verify: bool,
    audit: bool,
    dump: DumpPoint,
}

impl PassManager {
    /// An empty manager (no passes, no verification, no dumps).
    #[must_use]
    pub fn new() -> Self {
        PassManager::default()
    }

    /// Append a single pass.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // `add` as in "add a pass", not `+`
    pub fn add(mut self, pass: Box<dyn Pass>) -> Self {
        self.units.push(Unit::Single(pass));
        self
    }

    /// Append a fixpoint group: the passes are run in order, repeatedly,
    /// until one full iteration applies zero rewrites (capped at
    /// [`MAX_FIXPOINT_ITERS`] iterations).
    #[must_use]
    pub fn add_fixpoint(mut self, passes: Vec<Box<dyn Pass>>) -> Self {
        self.units.push(Unit::Fixpoint(passes));
        self
    }

    /// Enable or disable inter-pass verification: after every pass run,
    /// re-run the type and shape checkers and compare evaluator finals
    /// with the input program's (over the variables both have).
    #[must_use]
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Enable or disable the static legality audit: after every pass
    /// run, recompute def-use facts and fail — naming the pass — when a
    /// read that the pipeline input always defined beforehand is no
    /// longer reached by any definition.
    #[must_use]
    pub fn audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Configure IR dump capture.
    #[must_use]
    pub fn dump(mut self, dump: DumpPoint) -> Self {
        self.dump = dump;
        self
    }

    /// Build a manager from pass names. Each name is a registered pass;
    /// the pseudo-name `blocking` adds the
    /// `fixpoint(blocking-reorder, blocking-fuse)` group.
    ///
    /// # Errors
    ///
    /// [`NirError::Malformed`] on an unknown name.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Result<Self, NirError> {
        let mut mgr = PassManager::new();
        for name in names {
            let name = name.as_ref();
            if name == "blocking" {
                mgr = mgr.add_fixpoint(vec![
                    pass_by_name("blocking-reorder").expect("registered"),
                    pass_by_name("blocking-fuse").expect("registered"),
                ]);
                continue;
            }
            let pass = pass_by_name(name).ok_or_else(|| {
                NirError::Malformed(format!(
                    "unknown pass '{name}' (known: {}, blocking)",
                    PASS_NAMES.join(", ")
                ))
            })?;
            mgr = mgr.add(pass);
        }
        Ok(mgr)
    }

    /// The names of the scheduled passes, in order (fixpoint groups
    /// rendered as `fixpoint(a, b)`).
    #[must_use]
    pub fn pass_names(&self) -> Vec<String> {
        self.units
            .iter()
            .map(|u| match u {
                Unit::Single(p) => p.name().to_string(),
                Unit::Fixpoint(ps) => format!(
                    "fixpoint({})",
                    ps.iter().map(|p| p.name()).collect::<Vec<_>>().join(", ")
                ),
            })
            .collect()
    }

    /// Run the pipeline.
    ///
    /// # Errors
    ///
    /// Fails when the program is not a lowered unit, on a static error
    /// inside a pass, or — with verification enabled — with
    /// [`NirError::Verify`] naming the pass whose output no longer
    /// checks or whose observable behaviour diverged.
    pub fn run(&self, imp: &Imp) -> Result<(Imp, PipelineReport), NirError> {
        self.run_with(imp, &mut Telemetry::disabled())
    }

    /// [`PassManager::run`] with telemetry: every pass run executes in a
    /// `compile.transform.pass.<name>` span and lands its rewrite count
    /// and counters under `pass.<name>.*`.
    ///
    /// # Errors
    ///
    /// As [`PassManager::run`].
    pub fn run_with(
        &self,
        imp: &Imp,
        tel: &mut Telemetry,
    ) -> Result<(Imp, PipelineReport), NirError> {
        let mut report = PipelineReport {
            moves_before: imp.count_moves(),
            verified: self.verify,
            audited: self.audit,
            ..Default::default()
        };

        // The behavioural baseline for equivalence spot checks. Programs
        // the evaluator cannot run (a dynamic error in the *input*) get
        // static checking only — there is no behaviour to preserve.
        let baseline: Option<Snapshot> = if self.verify {
            snapshot(imp).ok()
        } else {
            None
        };
        // The def-use and communication-plan baselines for the static
        // legality audit.
        let audit_baseline: Option<(AuditFacts, CommFacts)> = if self.audit {
            Some((AuditFacts::of(imp), CommFacts::of(imp)))
        } else {
            None
        };

        let mut body = ProgramBody::decompose(imp)?;
        for unit in &self.units {
            match unit {
                Unit::Single(pass) => {
                    self.run_pass(
                        pass.as_ref(),
                        &mut body,
                        baseline.as_ref(),
                        audit_baseline.as_ref(),
                        &mut report,
                        tel,
                    )?;
                }
                Unit::Fixpoint(passes) => {
                    for _ in 0..MAX_FIXPOINT_ITERS {
                        let mut rewrites = 0usize;
                        for pass in passes {
                            rewrites += self.run_pass(
                                pass.as_ref(),
                                &mut body,
                                baseline.as_ref(),
                                audit_baseline.as_ref(),
                                &mut report,
                                tel,
                            )?;
                        }
                        if rewrites == 0 {
                            break;
                        }
                    }
                }
            }
        }

        let out = body.recompose();
        report.moves_after = out.count_moves();
        Ok((out, report))
    }

    /// Run one pass, record its report, capture dumps, verify, audit.
    fn run_pass(
        &self,
        pass: &dyn Pass,
        body: &mut ProgramBody,
        baseline: Option<&Snapshot>,
        audit_baseline: Option<&(AuditFacts, CommFacts)>,
        report: &mut PipelineReport,
        tel: &mut Telemetry,
    ) -> Result<usize, NirError> {
        let name = pass.name();
        let span = tel.start(&format!("compile.transform.pass.{name}"));
        let outcome = pass.run(body)?;
        tel.finish(span);
        if tel.is_enabled() {
            tel.count(&format!("pass.{name}.rewrites"), outcome.rewrites as u64);
            for (counter, value) in &outcome.counters {
                tel.count(&format!("pass.{name}.{counter}"), *value);
            }
        }
        let rewrites = outcome.rewrites;
        report.passes.push(PassReport {
            name: name.to_string(),
            rewrites,
            counters: outcome
                .counters
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
        });

        let wants_dump = match &self.dump {
            DumpPoint::None => false,
            DumpPoint::After(n) => n == name,
            DumpPoint::All => true,
        };
        if wants_dump || self.verify || self.audit {
            let current = body.recompose();
            if wants_dump {
                report
                    .dumps
                    .push((name.to_string(), pretty::print_imp(&current)));
            }
            if let Some((defuse, comm)) = audit_baseline {
                defuse.check_pass(name, &current)?;
                comm.check_pass(name, &current).map_err(NirError::Verify)?;
            }
            if self.verify {
                check_static(&current).map_err(|e| {
                    NirError::Verify(format!("pass '{name}' broke the static checks: {e}"))
                })?;
                if let Some(before) = baseline {
                    let after = snapshot(&current).map_err(|e| {
                        NirError::Verify(format!(
                            "pass '{name}' made the program fail at run time: {e}"
                        ))
                    })?;
                    compare_snapshots(name, before, &after)?;
                }
            }
        }
        Ok(rewrites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;
    use f90y_nir::eval::Evaluator;
    use f90y_nir::{LValue, Value};

    fn cshift_call(arr: &str, shift: i32, dim: i32) -> Value {
        fcncall(
            "cshift",
            vec![
                (float64(), ld(arr, everywhere())),
                (int32(), int(shift)),
                (int32(), int(dim)),
            ],
        )
    }

    fn repeated_shift_program() -> Imp {
        program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("y", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("y", everywhere()),
                        add(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                    mv(
                        avar("z", everywhere()),
                        sub(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                ]),
            ),
        ))
    }

    fn default_manager() -> PassManager {
        PassManager::from_names(&[
            "comm-split",
            "comm-cse",
            "mask-pad",
            "blocking",
            "dce-temps",
        ])
        .unwrap()
    }

    #[test]
    fn full_pipeline_runs_and_reports_per_pass() {
        let p = repeated_shift_program();
        let (out, report) = default_manager().run(&p).unwrap();
        assert_eq!(report.moves_before, 3);
        assert_eq!(report.rewrites_of("comm-split"), 2);
        assert_eq!(report.rewrites_of("comm-cse"), 1);
        assert_eq!(report.rewrites_of("dce-temps"), 1);
        // The fixpoint group ran each blocking pass at least once.
        assert!(report.last_run_of("blocking-reorder").is_some());
        assert!(report.last_run_of("blocking-fuse").is_some());

        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        for name in ["y", "z"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap()
            );
        }
    }

    #[test]
    fn verification_passes_on_the_honest_pipeline() {
        let p = repeated_shift_program();
        let (_, report) = default_manager().verify(true).run(&p).unwrap();
        assert!(report.verified);
    }

    #[test]
    fn dumps_are_captured_after_the_named_pass() {
        let p = repeated_shift_program();
        let (_, report) = default_manager()
            .dump(DumpPoint::After("blocking-fuse".into()))
            .run(&p)
            .unwrap();
        let dump = report.dump_after("blocking-fuse").unwrap();
        assert!(dump.contains("MOVE"), "dump should be pretty NIR:\n{dump}");
        assert!(report.dump_after("comm-split").is_none());
    }

    #[test]
    fn dump_all_captures_every_run() {
        let p = repeated_shift_program();
        let (_, report) = default_manager().dump(DumpPoint::All).run(&p).unwrap();
        assert_eq!(report.dumps.len(), report.passes.len());
    }

    #[test]
    fn unknown_pass_names_are_rejected() {
        let err = PassManager::from_names(&["comm-split", "no-such-pass"])
            .err()
            .expect("unknown names must be rejected");
        assert!(err.to_string().contains("no-such-pass"));
    }

    /// A deliberately miscompiling pass: it flips a constant in the
    /// first top-level move, silently changing program behaviour while
    /// remaining statically well-typed.
    struct EvilConstantFlip;

    impl Pass for EvilConstantFlip {
        fn name(&self) -> &'static str {
            "evil-constant-flip"
        }

        fn run(&self, body: &mut ProgramBody) -> Result<PassOutcome, NirError> {
            for s in &mut body.stmts {
                if let Imp::Move(clauses) = s {
                    for c in &mut clauses.iter_mut() {
                        if matches!(c.src, Value::Scalar(_)) {
                            c.src = f64c(123456.0);
                            return Ok(PassOutcome::rewrites(1));
                        }
                    }
                }
            }
            Ok(PassOutcome::rewrites(0))
        }
    }

    /// A deliberately ill-typing pass: it retargets a move at an
    /// undeclared variable, which the static checkers must reject.
    struct EvilUnboundWrite;

    impl Pass for EvilUnboundWrite {
        fn name(&self) -> &'static str {
            "evil-unbound-write"
        }

        fn run(&self, body: &mut ProgramBody) -> Result<PassOutcome, NirError> {
            if let Some(Imp::Move(clauses)) = body.stmts.first_mut() {
                if let Some(c) = clauses.first_mut() {
                    c.dst = LValue::SVar("no_such_variable".into());
                    return Ok(PassOutcome::rewrites(1));
                }
            }
            Ok(PassOutcome::rewrites(0))
        }
    }

    fn constant_program() -> Imp {
        program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![decl("a", dfield(domain("s"), float64()))]),
                seq(vec![mv(avar("a", everywhere()), f64c(1.0))]),
            ),
        ))
    }

    #[test]
    fn a_semantically_broken_pass_is_caught_and_named() {
        let p = constant_program();
        let mgr = PassManager::new()
            .add(Box::new(EvilConstantFlip))
            .verify(true);
        let err = mgr.run(&p).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("evil-constant-flip"),
            "the error must name the offending pass, got: {msg}"
        );
        assert!(matches!(err, NirError::Verify(_)));
        // Without verification, the miscompile sails through silently —
        // which is exactly why the verification mode exists.
        let mgr = PassManager::new().add(Box::new(EvilConstantFlip));
        assert!(mgr.run(&p).is_ok());
    }

    #[test]
    fn a_statically_broken_pass_is_caught_and_named() {
        let p = constant_program();
        let mgr = PassManager::new()
            .add(Box::new(EvilUnboundWrite))
            .verify(true);
        let err = mgr.run(&p).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("evil-unbound-write"),
            "the error must name the offending pass, got: {msg}"
        );
    }

    /// A deliberately illegal reordering: it swaps the first two
    /// statements, moving a use of `x` above its only definition. The
    /// program stays well-typed and the *evaluator* baseline would also
    /// catch it — the audit catches it statically, without running
    /// anything.
    struct EvilSwap;

    impl Pass for EvilSwap {
        fn name(&self) -> &'static str {
            "evil-swap"
        }

        fn run(&self, body: &mut ProgramBody) -> Result<PassOutcome, NirError> {
            if body.stmts.len() >= 2 {
                body.stmts.swap(0, 1);
                return Ok(PassOutcome::rewrites(1));
            }
            Ok(PassOutcome::rewrites(0))
        }
    }

    fn scalar_def_then_use_program() -> Imp {
        program(with_decl(
            declset(vec![decl("x", int32()), decl("y", int32())]),
            seq(vec![mv(svar_lv("x"), int(1)), mv(svar_lv("y"), svar("x"))]),
        ))
    }

    #[test]
    fn the_audit_catches_an_illegal_reordering_statically() {
        let p = scalar_def_then_use_program();
        let mgr = PassManager::new().add(Box::new(EvilSwap)).audit(true);
        let err = mgr.run(&p).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("evil-swap"),
            "the audit must name the offending pass, got: {msg}"
        );
        assert!(msg.contains("def-use"), "got: {msg}");
        // Without the audit (and without verification), the reorder
        // sails through silently.
        let mgr = PassManager::new().add(Box::new(EvilSwap));
        assert!(mgr.run(&p).is_ok());
    }

    /// A deliberately comm-plan-breaking pass: it stretches the first
    /// shift's distance from -1 to -2. The program stays well-typed and
    /// every read stays defined — only the communication plan changes,
    /// so only the comm-facts audit can catch it.
    struct EvilShiftStretch;

    impl Pass for EvilShiftStretch {
        fn name(&self) -> &'static str {
            "evil-shift-stretch"
        }

        fn run(&self, body: &mut ProgramBody) -> Result<PassOutcome, NirError> {
            fn stretch(v: &mut Value) -> bool {
                match v {
                    Value::FcnCall(name, args) => {
                        if name == "cshift" {
                            if let Some((_, dist)) = args.get_mut(1) {
                                *dist = int(-2);
                                return true;
                            }
                        }
                        args.iter_mut().any(|(_, a)| stretch(a))
                    }
                    Value::Unary(_, a) => stretch(a),
                    Value::Binary(_, a, b) => stretch(a) || stretch(b),
                    _ => false,
                }
            }
            for s in &mut body.stmts {
                let Imp::Move(clauses) = s else { continue };
                for c in &mut clauses.iter_mut() {
                    if stretch(&mut c.src) {
                        return Ok(PassOutcome::rewrites(1));
                    }
                }
            }
            Ok(PassOutcome::rewrites(0))
        }
    }

    #[test]
    fn the_audit_catches_a_comm_plan_break_by_name() {
        let p = repeated_shift_program();
        let mgr = PassManager::new()
            .add(Box::new(EvilShiftStretch))
            .audit(true);
        let err = mgr.run(&p).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("evil-shift-stretch"),
            "the audit must name the offending pass, got: {msg}"
        );
        assert!(msg.contains("communication plan"), "got: {msg}");
        // Without the audit the retargeted shift sails through.
        let mgr = PassManager::new().add(Box::new(EvilShiftStretch));
        assert!(mgr.run(&p).is_ok());
    }

    #[test]
    fn the_audit_passes_on_the_default_pipeline() {
        let p = repeated_shift_program();
        let (_, report) = default_manager().audit(true).run(&p).unwrap();
        assert!(report.audited);
        assert!(!report.passes.is_empty());
    }

    #[test]
    fn telemetry_lands_in_the_pass_namespace() {
        let p = repeated_shift_program();
        let mut tel = Telemetry::new();
        default_manager().run_with(&p, &mut tel).unwrap();
        let rep = tel.report();
        assert_eq!(rep.counter("pass.comm-split.rewrites"), Some(2));
        assert_eq!(rep.counter("pass.comm-cse.rewrites"), Some(1));
        assert!(rep.counter("pass.blocking-fuse.blocks").is_some());
    }
}
