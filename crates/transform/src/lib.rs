//! # f90y-transform — NIR source-to-source transformations
//!
//! The paper's NIR optimization stage (§4.2): "The object is to produce
//! programs in which computations over like shapes are blocked as much
//! as possible, forming computation phases sometimes punctuated by
//! communication."
//!
//! The middle end is a [`pass::PassManager`] over named, individually
//! verifiable passes (see [`pass`] for the registry and the
//! verification contract). The default pipeline ([`optimize`],
//! [`default_passes`]) runs:
//!
//! 1. `comm-split` ([`comm_split`]) — hoist communication intrinsics
//!    (`cshift`, `eoshift`) out of computation expressions into moves
//!    to fresh temporaries, separating communication phases from
//!    computation phases (this produces the `tmp0`/`tmp1` temporaries
//!    visible in the paper's Figure 12 NIR excerpt);
//! 2. `comm-cse` ([`comm_cse`]) — deduplicate textually identical
//!    hoisted shifts so repeated shifts of the same array share one
//!    temporary and one communication phase;
//! 3. `mask-pad` ([`mask_pad`]) — pad computations over array
//!    subsections to full-array operations under generated parity
//!    masks, "increasing the pool of sibling computations which could
//!    be implemented in the same computation block" (Fig. 10);
//! 4. `fixpoint(blocking-reorder, blocking-fuse)` ([`blocking`]) —
//!    dependence-respecting code motion that groups computations over
//!    like shapes (Fig. 9), then fusion of adjacent like-shape moves
//!    into multi-clause `MOVE` blocks, iterated to convergence;
//! 5. `dce-temps` ([`dce`]) — delete temporaries the passes above left
//!    dead.
//!
//! Every pass is semantics-preserving; the pass manager can check this
//! *between* passes (type + shape checks and evaluator-equivalence spot
//! checks) when verification is enabled, and the test suite checks
//! evaluator-equivalence on the paper's programs and on random programs.

pub mod blocking;
pub mod comm_cse;
pub mod comm_split;
pub mod dce;
pub mod mask_pad;
pub mod pass;
pub mod program;

use f90y_nir::{Imp, NirError};
use f90y_obs::Telemetry;

pub use pass::{DumpPoint, PassManager, PassOutcome, PassReport, PipelineReport};
pub use program::{ProgramBody, StmtClass};

/// A report of what the pipeline did, for the Fig. 9/Fig. 11 harnesses.
///
/// Since the pass-manager refactor this is a *derived view* over the
/// per-pass [`PassReport`]s (see [`TransformReport::from_pipeline`]);
/// the harness-facing counters keep their historical names.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// `MOVE` statements before any transformation.
    pub moves_before: usize,
    /// Communication temporaries introduced.
    pub comm_temps: usize,
    /// Duplicate communication hoists merged by `comm-cse`.
    pub comm_merged: usize,
    /// Section assignments padded to masked full-array moves.
    pub masked_pads: usize,
    /// Adjacent-statement swaps performed by the blocking reorder.
    pub swaps: usize,
    /// Multi-clause computation blocks after fusion.
    pub blocks_after: usize,
    /// Total clauses inside those blocks.
    pub clauses_after: usize,
    /// Dead temporaries deleted by `dce-temps`.
    pub temps_deleted: usize,
    /// `MOVE` statements after the full pipeline.
    pub moves_after: usize,
}

impl TransformReport {
    /// Derive the harness view from a pipeline report: sums over every
    /// run of each pass, except the fusion block/clause counts, which
    /// are absolute and come from the last `blocking-fuse` run.
    #[must_use]
    pub fn from_pipeline(p: &PipelineReport) -> Self {
        let last_fuse = p.last_run_of("blocking-fuse");
        TransformReport {
            moves_before: p.moves_before,
            comm_temps: p.rewrites_of("comm-split"),
            comm_merged: p.rewrites_of("comm-cse"),
            masked_pads: p.rewrites_of("mask-pad"),
            swaps: p.rewrites_of("blocking-reorder"),
            blocks_after: last_fuse.and_then(|r| r.counter("blocks")).unwrap_or(0) as usize,
            clauses_after: last_fuse.and_then(|r| r.counter("clauses")).unwrap_or(0) as usize,
            temps_deleted: p.rewrites_of("dce-temps"),
            moves_after: p.moves_after,
        }
    }
}

/// The full Fortran-90-Y pipeline:
/// `comm-split, comm-cse, mask-pad, fixpoint(blocking-reorder,
/// blocking-fuse), dce-temps`.
#[must_use]
pub fn default_passes() -> PassManager {
    PassManager::from_names(&[
        "comm-split",
        "comm-cse",
        "mask-pad",
        "blocking",
        "dce-temps",
    ])
    .expect("default pass names are registered")
}

/// Per-statement compilation, as the CMF/\*Lisp baselines model it:
/// communication extraction and mask padding, but no deduplication and
/// no blocking — every statement stays its own phase.
#[must_use]
pub fn per_statement_passes() -> PassManager {
    PassManager::from_names(&["comm-split", "mask-pad"])
        .expect("per-statement pass names are registered")
}

/// Run the full optimization pipeline.
///
/// # Errors
///
/// Fails when the program is not a lowered unit (binders then a
/// statement sequence) or on a static error while classifying shapes.
pub fn optimize(imp: &Imp) -> Result<Imp, NirError> {
    Ok(optimize_with_report(imp)?.0)
}

/// Run the pipeline and report what it did.
///
/// # Errors
///
/// As [`optimize`].
pub fn optimize_with_report(imp: &Imp) -> Result<(Imp, TransformReport), NirError> {
    let (out, pipeline) = default_passes().run(imp)?;
    Ok((out, TransformReport::from_pipeline(&pipeline)))
}

/// [`optimize_with_report`] with telemetry: pass spans and `pass.*`
/// counters land in `tel` (see [`PassManager::run_with`]).
///
/// # Errors
///
/// As [`optimize`].
pub fn optimize_with_telemetry(
    imp: &Imp,
    tel: &mut Telemetry,
) -> Result<(Imp, TransformReport), NirError> {
    let (out, pipeline) = default_passes().run_with(imp, tel)?;
    Ok((out, TransformReport::from_pipeline(&pipeline)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;
    use f90y_nir::eval::Evaluator;

    /// The Fig. 9 program in NIR. (The figure binds `beta` as a
    /// `serial_interval` shared by the array `alpha` and the `DO`; our
    /// lowering keeps array shapes parallel and gives the `DO` its own
    /// serial domain — same program, transform-friendlier binders.)
    fn fig9_program() -> Imp {
        with_domain(
            "gamma",
            interval(1, 64),
            with_domain(
                "beta",
                interval(1, 64),
                with_domain(
                    "alpha",
                    prod(vec![domain("beta"), domain("gamma")]),
                    with_decl(
                        declset(vec![
                            decl("a", dfield(domain("alpha"), int32())),
                            decl("b", dfield(domain("alpha"), int32())),
                            decl("c", dfield(domain("beta"), int32())),
                        ]),
                        seq(vec![
                            // a = b + local_under(alpha, 2)
                            mv(
                                avar("a", everywhere()),
                                add(ld("b", everywhere()), local_under(domain("alpha"), 2)),
                            ),
                            // DO i over serial 1..64: c(i) = a(i,i)
                            do_over(
                                "i",
                                serial_interval(1, 64),
                                mv(
                                    avar("c", subscript(vec![do_index("i", 1)])),
                                    ld("a", subscript(vec![do_index("i", 1), do_index("i", 1)])),
                                ),
                            ),
                            // b = a
                            mv(avar("b", everywhere()), ld("a", everywhere())),
                        ]),
                    ),
                ),
            ),
        )
    }

    #[test]
    fn fig9_like_domain_moves_are_blocked_past_the_do() {
        // Dependences: the DO writes only 'c' and reads 'a'; the final
        // move writes 'b' and reads 'a'. Reads never conflict, so the DO
        // and the final move commute, letting the two alpha-shape moves
        // form one computation block — exactly the Fig. 9 rewrite.
        let p = fig9_program();
        let (opt, report) = optimize_with_report(&p).unwrap();
        assert!(report.swaps >= 1, "the DO should move past the b=a move");
        assert!(
            report.blocks_after >= 1,
            "the two alpha moves should form one block"
        );
        // The fused block holds both alpha clauses.
        assert_eq!(report.clauses_after, 2);

        // Semantics preserved.
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&opt).unwrap();
        for name in ["a", "b", "c"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap(),
                "{name} differs after optimization"
            );
        }
    }

    #[test]
    fn report_counts_are_consistent() {
        let p = fig9_program();
        let (_, report) = optimize_with_report(&p).unwrap();
        assert_eq!(report.moves_before, 3);
        assert!(report.moves_after <= report.moves_before);
    }
}
