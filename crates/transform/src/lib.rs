//! # f90y-transform — NIR source-to-source transformations
//!
//! The paper's NIR optimization stage (§4.2): "The object is to produce
//! programs in which computations over like shapes are blocked as much
//! as possible, forming computation phases sometimes punctuated by
//! communication."
//!
//! The pipeline ([`optimize`]) runs four passes:
//!
//! 1. [`comm_split`] — hoist communication intrinsics (`cshift`,
//!    `eoshift`) out of computation expressions into moves to fresh
//!    temporaries, separating communication phases from computation
//!    phases (this produces the `tmp0`/`tmp1` temporaries visible in
//!    the paper's Figure 12 NIR excerpt);
//! 2. [`mask_pad`] — pad computations over array subsections to
//!    full-array operations under generated parity masks, "increasing
//!    the pool of sibling computations which could be implemented in the
//!    same computation block" (Fig. 10);
//! 3. [`blocking`]`::reorder` — dependence-respecting code motion that
//!    groups computations over like shapes (Fig. 9: "we can move the
//!    like-domain MOVEs together");
//! 4. [`blocking`]`::fuse` — compose adjacent like-shape grid-local
//!    moves into single multi-clause `MOVE` blocks, each of which the
//!    back end compiles to one PEAC routine.
//!
//! Every pass is semantics-preserving; the test suite checks
//! evaluator-equivalence on the paper's programs and on random programs.

pub mod blocking;
pub mod comm_split;
pub mod mask_pad;
pub mod program;

use f90y_nir::{Imp, NirError};

pub use program::{ProgramBody, StmtClass};

/// A report of what the pipeline did, for the Fig. 9/Fig. 11 harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// `MOVE` statements before any transformation.
    pub moves_before: usize,
    /// Communication temporaries introduced.
    pub comm_temps: usize,
    /// Section assignments padded to masked full-array moves.
    pub masked_pads: usize,
    /// Adjacent-statement swaps performed by the blocking reorder.
    pub swaps: usize,
    /// Multi-clause computation blocks after fusion.
    pub blocks_after: usize,
    /// Total clauses inside those blocks.
    pub clauses_after: usize,
    /// `MOVE` statements after the full pipeline.
    pub moves_after: usize,
}

/// Which passes to run — the full prototype pipeline by default; the
/// baseline compilers disable blocking (CMF-like per-statement
/// compilation keeps communication extraction and mask padding but
/// never groups statements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeOptions {
    /// Hoist communication intrinsics into temporaries.
    pub comm_split: bool,
    /// Pad section assignments to masked full-array moves.
    pub mask_pad: bool,
    /// Reorder and fuse like-shape computations.
    pub blocking: bool,
}

impl OptimizeOptions {
    /// The full Fortran-90-Y pipeline.
    pub fn full() -> Self {
        OptimizeOptions {
            comm_split: true,
            mask_pad: true,
            blocking: true,
        }
    }

    /// Per-statement compilation: everything except blocking.
    pub fn per_statement() -> Self {
        OptimizeOptions {
            blocking: false,
            ..OptimizeOptions::full()
        }
    }
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions::full()
    }
}

/// Run the full optimization pipeline.
///
/// # Errors
///
/// Fails when the program is not a lowered unit (binders then a
/// statement sequence) or on a static error while classifying shapes.
pub fn optimize(imp: &Imp) -> Result<Imp, NirError> {
    Ok(optimize_with_report(imp)?.0)
}

/// Run the pipeline and report what it did.
///
/// # Errors
///
/// As [`optimize`].
pub fn optimize_with_report(imp: &Imp) -> Result<(Imp, TransformReport), NirError> {
    optimize_with_options(imp, OptimizeOptions::full())
}

/// Run a configured subset of the pipeline.
///
/// # Errors
///
/// As [`optimize`].
pub fn optimize_with_options(
    imp: &Imp,
    options: OptimizeOptions,
) -> Result<(Imp, TransformReport), NirError> {
    let mut report = TransformReport {
        moves_before: imp.count_moves(),
        ..Default::default()
    };

    let mut body = ProgramBody::decompose(imp)?;
    if options.comm_split {
        report.comm_temps = comm_split::run(&mut body)?;
    }

    // Mask-pad, reorder and fuse the top-level statement list, then the
    // body of every nested loop/branch (the paper's benchmarks keep
    // their computations inside a serial time-step DO, so blocking must
    // reach them there).
    let mut ctx = body.ctx()?;
    optimize_stmt_list(&mut body.stmts, &mut ctx, &mut report, options)?;

    let out = body.recompose();
    report.moves_after = out.count_moves();
    Ok((out, report))
}

fn optimize_stmt_list(
    stmts: &mut Vec<Imp>,
    ctx: &mut f90y_nir::typecheck::Ctx,
    report: &mut TransformReport,
    options: OptimizeOptions,
) -> Result<(), NirError> {
    if options.mask_pad {
        report.masked_pads += mask_pad::run_stmts(stmts, ctx)?;
    }
    if options.blocking {
        report.swaps += blocking::reorder_stmts(stmts, ctx)?;
        let (blocks, clauses) = blocking::fuse_stmts(stmts, ctx)?;
        report.blocks_after += blocks;
        report.clauses_after += clauses;
    }
    for s in stmts {
        optimize_nested(s, ctx, report, options)?;
    }
    Ok(())
}

fn optimize_nested(
    stmt: &mut Imp,
    ctx: &mut f90y_nir::typecheck::Ctx,
    report: &mut TransformReport,
    options: OptimizeOptions,
) -> Result<(), NirError> {
    match stmt {
        Imp::Do(dom, shape, b) => {
            let resolved = ctx.resolve(shape)?;
            ctx.push_do(dom.clone(), resolved);
            let r = optimize_boxed(b, ctx, report, options);
            ctx.pop_do();
            r
        }
        Imp::While(_, b) => optimize_boxed(b, ctx, report, options),
        Imp::IfThenElse(_, t, e) => {
            optimize_boxed(t, ctx, report, options)?;
            optimize_boxed(e, ctx, report, options)
        }
        Imp::WithDecl(d, b) => {
            // Bind the locals in a clone (scoping without frames).
            let mut inner = ctx.clone();
            for (id, ty, _) in d.bindings() {
                let resolved = match ty {
                    f90y_nir::Type::Scalar(s) => f90y_nir::Type::Scalar(*s),
                    f90y_nir::Type::DField { shape, elem } => f90y_nir::Type::DField {
                        shape: inner.resolve(shape)?,
                        elem: elem.clone(),
                    },
                };
                inner.bind_var(id.clone(), resolved);
            }
            optimize_boxed(b, &mut inner, report, options)
        }
        Imp::WithDomain(name, shape, b) => {
            let mut inner = ctx.clone();
            inner.bind_domain(name.clone(), shape)?;
            optimize_boxed(b, &mut inner, report, options)
        }
        _ => Ok(()),
    }
}

fn optimize_boxed(
    b: &mut Imp,
    ctx: &mut f90y_nir::typecheck::Ctx,
    report: &mut TransformReport,
    options: OptimizeOptions,
) -> Result<(), NirError> {
    let mut stmts = match std::mem::replace(b, Imp::Skip) {
        Imp::Sequentially(xs) => xs,
        Imp::Skip => Vec::new(),
        other => vec![other],
    };
    optimize_stmt_list(&mut stmts, ctx, report, options)?;
    *b = Imp::seq(stmts);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;
    use f90y_nir::eval::Evaluator;

    /// The Fig. 9 program in NIR. (The figure binds `beta` as a
    /// `serial_interval` shared by the array `alpha` and the `DO`; our
    /// lowering keeps array shapes parallel and gives the `DO` its own
    /// serial domain — same program, transform-friendlier binders.)
    fn fig9_program() -> Imp {
        with_domain(
            "gamma",
            interval(1, 64),
            with_domain(
                "beta",
                interval(1, 64),
                with_domain(
                    "alpha",
                    prod(vec![domain("beta"), domain("gamma")]),
                    with_decl(
                        declset(vec![
                            decl("a", dfield(domain("alpha"), int32())),
                            decl("b", dfield(domain("alpha"), int32())),
                            decl("c", dfield(domain("beta"), int32())),
                        ]),
                        seq(vec![
                            // a = b + local_under(alpha, 2)
                            mv(
                                avar("a", everywhere()),
                                add(ld("b", everywhere()), local_under(domain("alpha"), 2)),
                            ),
                            // DO i over serial 1..64: c(i) = a(i,i)
                            do_over(
                                "i",
                                serial_interval(1, 64),
                                mv(
                                    avar("c", subscript(vec![do_index("i", 1)])),
                                    ld("a", subscript(vec![do_index("i", 1), do_index("i", 1)])),
                                ),
                            ),
                            // b = a
                            mv(avar("b", everywhere()), ld("a", everywhere())),
                        ]),
                    ),
                ),
            ),
        )
    }

    #[test]
    fn fig9_like_domain_moves_are_blocked_past_the_do() {
        // Dependences: the DO writes only 'c' and reads 'a'; the final
        // move writes 'b' and reads 'a'. Reads never conflict, so the DO
        // and the final move commute, letting the two alpha-shape moves
        // form one computation block — exactly the Fig. 9 rewrite.
        let p = fig9_program();
        let (opt, report) = optimize_with_report(&p).unwrap();
        assert!(report.swaps >= 1, "the DO should move past the b=a move");
        assert!(
            report.blocks_after >= 1,
            "the two alpha moves should form one block"
        );
        // The fused block holds both alpha clauses.
        assert_eq!(report.clauses_after, 2);

        // Semantics preserved.
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&opt).unwrap();
        for name in ["a", "b", "c"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap(),
                "{name} differs after optimization"
            );
        }
    }

    #[test]
    fn report_counts_are_consistent() {
        let p = fig9_program();
        let (_, report) = optimize_with_report(&p).unwrap();
        assert_eq!(report.moves_before, 3);
        assert!(report.moves_after <= report.moves_before);
    }
}
