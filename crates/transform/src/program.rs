//! Decomposing lowered programs into binders plus a statement list, and
//! classifying statements for the blocking/partitioning passes.

use f90y_nir::shapecheck;
use f90y_nir::typecheck::{Ctx, Mode};
use f90y_nir::{Decl, FieldAction, Imp, LValue, NirError, Shape, Value};

/// One enclosing binder of the statement sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Binder {
    /// `WITH_DOMAIN(name, shape)`.
    Domain(String, Shape),
    /// `WITH_DECL(decls)`.
    Decls(Decl),
}

/// A lowered program split into its binders and top-level statements.
///
/// Lowered units have the form
/// `PROGRAM(WITH_DOMAIN*(WITH_DECL(SEQUENTIALLY [...])))`; transformation
/// passes operate on the statement vector and are reassembled by
/// [`ProgramBody::recompose`].
#[derive(Debug, Clone)]
pub struct ProgramBody {
    /// Enclosing binders, outermost first.
    pub binders: Vec<Binder>,
    /// The statement sequence.
    pub stmts: Vec<Imp>,
    /// Whether the original was wrapped in `PROGRAM`.
    pub programmed: bool,
    /// Names of transformation-introduced temporaries (in introduction
    /// order). Cleanup passes (`comm-cse`, `dce-temps`) restrict
    /// themselves to these: user variables are observable output and
    /// must never be merged or deleted.
    pub temps: Vec<String>,
}

/// How a statement participates in phase partitioning (paper §4.2: each
/// phase "either carries out a single computational action over data
/// with a common shape and alignment, or expresses a single
/// communication").
#[derive(Debug, Clone, PartialEq)]
pub enum StmtClass {
    /// A grid-local parallel computation over the given (resolved)
    /// shape — PE material.
    Compute(Shape),
    /// A communication move (its source is a communication intrinsic or
    /// a non-aligned section copy) over the given shape.
    Comm(Shape),
    /// Host-executed work (serial loops, scalar control, reductions to
    /// scalars, subscripted element moves).
    Host,
}

impl StmtClass {
    /// The computation shape, when this is a `Compute` phase.
    pub fn compute_shape(&self) -> Option<&Shape> {
        match self {
            StmtClass::Compute(s) => Some(s),
            _ => None,
        }
    }
}

impl ProgramBody {
    /// Split a lowered program.
    ///
    /// # Errors
    ///
    /// Fails when the term does not have the lowered-unit form.
    pub fn decompose(imp: &Imp) -> Result<ProgramBody, NirError> {
        let (programmed, mut cur) = match imp {
            Imp::Program(b) => (true, b.as_ref()),
            other => (false, other),
        };
        let mut binders = Vec::new();
        loop {
            match cur {
                Imp::WithDomain(name, shape, body) => {
                    binders.push(Binder::Domain(name.clone(), shape.clone()));
                    cur = body;
                }
                Imp::WithDecl(d, body) => {
                    binders.push(Binder::Decls(d.clone()));
                    cur = body;
                }
                _ => break,
            }
        }
        let stmts = match cur {
            Imp::Sequentially(xs) => xs.clone(),
            Imp::Skip => Vec::new(),
            other => vec![other.clone()],
        };
        Ok(ProgramBody {
            binders,
            stmts,
            programmed,
            temps: Vec::new(),
        })
    }

    /// Reassemble the program.
    pub fn recompose(&self) -> Imp {
        let mut body = Imp::seq(self.stmts.clone());
        for b in self.binders.iter().rev() {
            body = match b {
                Binder::Domain(name, shape) => {
                    Imp::WithDomain(name.clone(), shape.clone(), Box::new(body))
                }
                Binder::Decls(d) => Imp::WithDecl(d.clone(), Box::new(body)),
            };
        }
        if self.programmed {
            Imp::Program(Box::new(body))
        } else {
            body
        }
    }

    /// A static-analysis context with the binders applied.
    ///
    /// # Errors
    ///
    /// Fails when a binder references an unbound domain.
    pub fn ctx(&self) -> Result<Ctx, NirError> {
        let mut ctx = Ctx::new();
        for b in &self.binders {
            match b {
                Binder::Domain(name, shape) => ctx.bind_domain(name.clone(), shape)?,
                Binder::Decls(d) => {
                    for (id, ty, _) in d.bindings() {
                        let resolved = resolve_type(ty, &ctx)?;
                        ctx.bind_var(id.clone(), resolved);
                    }
                }
            }
        }
        Ok(ctx)
    }

    /// Add a declaration for a transformation-introduced temporary.
    /// The declared names are recorded in [`ProgramBody::temps`] so the
    /// cleanup passes know which variables they may merge or delete.
    pub fn add_temp_decl(&mut self, d: Decl) {
        for (id, _, _) in d.bindings() {
            self.temps.push(id.clone());
        }
        // Append into the innermost DECLSET binder (lowered units have
        // exactly one); create one if the program had none.
        for b in self.binders.iter_mut().rev() {
            if let Binder::Decls(Decl::DeclSet(ds)) = b {
                ds.push(d);
                return;
            }
            if let Binder::Decls(existing) = b {
                let prev = existing.clone();
                *b = Binder::Decls(Decl::DeclSet(vec![prev, d]));
                return;
            }
        }
        self.binders.push(Binder::Decls(Decl::DeclSet(vec![d])));
    }

    /// All identifiers declared anywhere in the binders.
    pub fn declared_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for b in &self.binders {
            if let Binder::Decls(d) = b {
                for (id, _, _) in d.bindings() {
                    out.push(id.clone());
                }
            }
        }
        out
    }

    /// A temporary name not colliding with any declared name.
    pub fn fresh_temp(&self, counter: &mut usize) -> String {
        let taken = self.declared_names();
        loop {
            let name = format!("tmp{counter}");
            *counter += 1;
            if !taken.contains(&name) {
                return name;
            }
        }
    }

    /// Classify one statement.
    ///
    /// # Errors
    ///
    /// Fails on static errors while computing shapes.
    pub fn classify(&self, stmt: &Imp, ctx: &mut Ctx) -> Result<StmtClass, NirError> {
        classify_stmt(stmt, ctx)
    }

    /// Remove the named declarations from the binders (used by
    /// `dce-temps` once a temporary has no remaining reads or writes).
    /// Returns how many declarations were removed.
    pub fn remove_decls(&mut self, names: &std::collections::HashSet<String>) -> usize {
        let mut removed = 0usize;
        for b in &mut self.binders {
            if let Binder::Decls(d) = b {
                let pruned = prune_decl(
                    std::mem::replace(d, Decl::DeclSet(Vec::new())),
                    names,
                    &mut removed,
                )
                .unwrap_or(Decl::DeclSet(Vec::new()));
                *b = Binder::Decls(pruned);
            }
        }
        self.temps.retain(|t| !names.contains(t));
        removed
    }

    /// Apply `f` to every statement list of the body, pre-order: the
    /// top-level list first, then the body of every nested loop, branch
    /// and binder, with the static context extended accordingly.
    ///
    /// This is the traversal every list-at-a-time pass shares (the
    /// paper's benchmarks keep their computations inside a serial
    /// time-step `DO`, so passes must reach them there).
    ///
    /// # Errors
    ///
    /// Propagates the first error `f` or a context extension raises.
    pub fn for_each_stmt_list<F>(&mut self, f: &mut F) -> Result<(), NirError>
    where
        F: FnMut(&mut Vec<Imp>, &mut Ctx) -> Result<(), NirError>,
    {
        let mut ctx = self.ctx()?;
        walk_stmt_lists(&mut self.stmts, &mut ctx, f)
    }
}

fn prune_decl(
    d: Decl,
    names: &std::collections::HashSet<String>,
    removed: &mut usize,
) -> Option<Decl> {
    match d {
        Decl::Decl(id, ty) => {
            if names.contains(&id) {
                *removed += 1;
                None
            } else {
                Some(Decl::Decl(id, ty))
            }
        }
        Decl::Initialized(id, ty, v) => {
            if names.contains(&id) {
                *removed += 1;
                None
            } else {
                Some(Decl::Initialized(id, ty, v))
            }
        }
        Decl::DeclSet(ds) => Some(Decl::DeclSet(
            ds.into_iter()
                .filter_map(|d| prune_decl(d, names, removed))
                .collect(),
        )),
    }
}

/// [`ProgramBody::for_each_stmt_list`] over an explicit list and
/// context (used for recursion and by callers that manage their own
/// context).
///
/// # Errors
///
/// Propagates the first error `f` or a context extension raises.
pub fn walk_stmt_lists<F>(stmts: &mut Vec<Imp>, ctx: &mut Ctx, f: &mut F) -> Result<(), NirError>
where
    F: FnMut(&mut Vec<Imp>, &mut Ctx) -> Result<(), NirError>,
{
    f(stmts, ctx)?;
    for s in stmts.iter_mut() {
        walk_nested(s, ctx, f)?;
    }
    Ok(())
}

fn walk_nested<F>(stmt: &mut Imp, ctx: &mut Ctx, f: &mut F) -> Result<(), NirError>
where
    F: FnMut(&mut Vec<Imp>, &mut Ctx) -> Result<(), NirError>,
{
    match stmt {
        Imp::Do(dom, shape, b) => {
            let resolved = ctx.resolve(shape)?;
            ctx.push_do(dom.clone(), resolved);
            let r = walk_boxed(b, ctx, f);
            ctx.pop_do();
            r
        }
        Imp::While(_, b) => walk_boxed(b, ctx, f),
        Imp::IfThenElse(_, t, e) => {
            walk_boxed(t, ctx, f)?;
            walk_boxed(e, ctx, f)
        }
        Imp::WithDecl(d, b) => {
            // Bind the locals in a clone (scoping without frames).
            let mut inner = ctx.clone();
            for (id, ty, _) in d.bindings() {
                let resolved = resolve_type(ty, &inner)?;
                inner.bind_var(id.clone(), resolved);
            }
            walk_boxed(b, &mut inner, f)
        }
        Imp::WithDomain(name, shape, b) => {
            let mut inner = ctx.clone();
            inner.bind_domain(name.clone(), shape)?;
            walk_boxed(b, &mut inner, f)
        }
        _ => Ok(()),
    }
}

fn walk_boxed<F>(b: &mut Box<Imp>, ctx: &mut Ctx, f: &mut F) -> Result<(), NirError>
where
    F: FnMut(&mut Vec<Imp>, &mut Ctx) -> Result<(), NirError>,
{
    let mut stmts = match std::mem::replace(b.as_mut(), Imp::Skip) {
        Imp::Sequentially(xs) => xs,
        Imp::Skip => Vec::new(),
        other => vec![other],
    };
    let r = walk_stmt_lists(&mut stmts, ctx, f);
    **b = Imp::seq(stmts);
    r
}

/// Classify a statement against a context (see [`StmtClass`]).
///
/// # Errors
///
/// Fails on static errors while computing shapes.
pub fn classify_stmt(stmt: &Imp, ctx: &mut Ctx) -> Result<StmtClass, NirError> {
    match stmt {
        Imp::Move(clauses) => {
            // A single clause whose source is a top-level communication
            // intrinsic into a whole array: a communication phase.
            if let [clause] = clauses.as_slice() {
                if let Value::FcnCall(name, _) = &clause.src {
                    if matches!(name.as_str(), "cshift" | "eoshift") && clause.is_unmasked() {
                        if let LValue::AVar(_, FieldAction::Everywhere) = &clause.dst {
                            if let Some(s) = shapecheck::clause_shape(clause, ctx)? {
                                return Ok(StmtClass::Comm(s));
                            }
                        }
                    }
                }
            }
            if shapecheck::is_gridlocal_computation(stmt, ctx)? {
                let shape = shapecheck::move_shape(clauses, ctx)?
                    .expect("gridlocal computations have a shape");
                return Ok(StmtClass::Compute(shape));
            }
            Ok(StmtClass::Host)
        }
        _ => Ok(StmtClass::Host),
    }
}

fn resolve_type(ty: &f90y_nir::Type, ctx: &Ctx) -> Result<f90y_nir::Type, NirError> {
    match ty {
        f90y_nir::Type::Scalar(s) => Ok(f90y_nir::Type::Scalar(*s)),
        f90y_nir::Type::DField { shape, elem } => Ok(f90y_nir::Type::DField {
            shape: ctx.resolve(shape)?,
            elem: Box::new(resolve_type(elem, ctx)?),
        }),
    }
}

/// Shorthand used by passes: a checker in shape mode.
pub fn shape_checker() -> f90y_nir::typecheck::Checker {
    f90y_nir::typecheck::Checker::new(Mode::Shapes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;

    fn sample() -> Imp {
        program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![decl("a", dfield(domain("s"), float64()))]),
                seq(vec![
                    mv(avar("a", everywhere()), f64c(1.0)),
                    mv(avar("a", everywhere()), f64c(2.0)),
                ]),
            ),
        ))
    }

    #[test]
    fn decompose_recompose_roundtrips() {
        let p = sample();
        let body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(body.binders.len(), 2);
        assert_eq!(body.stmts.len(), 2);
        assert!(body.programmed);
        assert_eq!(body.recompose(), p);
    }

    #[test]
    fn classification() {
        let p = sample();
        let body = ProgramBody::decompose(&p).unwrap();
        let mut ctx = body.ctx().unwrap();
        assert!(matches!(
            body.classify(&body.stmts[0], &mut ctx).unwrap(),
            StmtClass::Compute(_)
        ));
        // A cshift move is Comm.
        let comm = mv(
            avar("a", everywhere()),
            fcncall(
                "cshift",
                vec![
                    (float64(), ld("a", everywhere())),
                    (int32(), int(1)),
                    (int32(), int(1)),
                ],
            ),
        );
        assert!(matches!(
            body.classify(&comm, &mut ctx).unwrap(),
            StmtClass::Comm(_)
        ));
        // A serial DO is Host.
        let host = do_over("i", serial_interval(1, 4), Imp::Skip);
        assert!(matches!(
            body.classify(&host, &mut ctx).unwrap(),
            StmtClass::Host
        ));
    }

    #[test]
    fn temp_decls_land_in_the_declset() {
        let p = sample();
        let mut body = ProgramBody::decompose(&p).unwrap();
        let mut counter = 0;
        let name = body.fresh_temp(&mut counter);
        assert_eq!(name, "tmp0");
        body.add_temp_decl(decl(&name, dfield(domain("s"), float64())));
        let names = body.declared_names();
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"tmp0".to_string()));
        // Recomposed program still checks.
        f90y_nir::typecheck::check(&body.recompose()).unwrap();
    }

    #[test]
    fn fresh_temp_skips_collisions() {
        let p = program(with_decl(
            declset(vec![decl("tmp0", float64())]),
            mv(svar_lv("tmp0"), f64c(0.0)),
        ));
        let body = ProgramBody::decompose(&p).unwrap();
        let mut counter = 0;
        assert_eq!(body.fresh_temp(&mut counter), "tmp1");
    }
}
