//! Dead-temporary elimination.
//!
//! The earlier passes may leave transformation-introduced temporaries
//! with no remaining readers: `comm-cse` rewires every read of a merged
//! temporary to its canonical twin, and fusion can strand a hoisted
//! value that a later rewrite stopped consuming.  This pass deletes the
//! writes to (and declarations of) any temporary in
//! [`ProgramBody::temps`] that is never read anywhere in the program.
//!
//! Only transformation temporaries are candidates: user variables are
//! observable output (the evaluator captures their finals) and are
//! never touched.  Writes are removed at clause granularity, so a dead
//! definition that fusion absorbed into a multi-clause block is
//! stripped without disturbing its siblings; statements left with no
//! clauses are removed outright.
//!
//! Deadness is decided by the backward liveness analysis of
//! `f90y-analysis` ([`f90y_analysis::faint_temps`]): a temporary is
//! *faint* when no path reads it, directly or through other faint
//! temporaries — the suppression of a faint definition's operand reads
//! makes a whole chain `tmp1 = shift(v); tmp2 = f(tmp1)` die in a
//! single pass, where the older purely syntactic scan iterated to a
//! fixpoint.  That scan survives as [`dead_temps_syntactic`], the
//! oracle the property tests compare against: liveness must delete a
//! superset (or equal set) of what the syntactic scan would.

use std::collections::HashSet;

use f90y_nir::{FieldAction, Imp, LValue, NirError};

use crate::program::ProgramBody;

/// What one run removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DceStats {
    /// Temporaries whose declarations were deleted.
    pub temps_deleted: usize,
    /// Move clauses (definitions) removed.
    pub clauses_removed: usize,
}

/// Run the pass; returns what it removed.
///
/// # Errors
///
/// Infallible today; the `Result` matches the other passes' signatures.
pub fn run(body: &mut ProgramBody) -> Result<DceStats, NirError> {
    let mut stats = DceStats::default();
    if body.temps.is_empty() {
        return Ok(stats);
    }
    let ghosts: HashSet<String> = body.temps.iter().cloned().collect();
    let faint = f90y_analysis::faint_temps(&body.recompose(), &ghosts);
    if faint.is_empty() {
        return Ok(stats);
    }
    for s in &mut body.stmts {
        strip_dead_writes(s, &faint, &mut stats.clauses_removed);
    }
    body.stmts
        .retain(|s| !matches!(s, Imp::Move(cs) if cs.is_empty()));
    stats.temps_deleted += body.remove_decls(&faint);
    Ok(stats)
}

/// The pre-liveness syntactic scan, kept as a property-test oracle.
///
/// A temporary is dead when no statement reads it, where reads inside
/// an unmasked whole-array definition of an already-dead temporary do
/// not count (iterated to a fixpoint, so chains die together — this
/// mirrors the old strip-and-rescan loop).  The liveness-driven pass
/// must delete a superset (or equal set) of these.
#[must_use]
pub fn dead_temps_syntactic(body: &ProgramBody) -> HashSet<String> {
    let temps: HashSet<String> = body.temps.iter().cloned().collect();
    if temps.is_empty() {
        return HashSet::new();
    }
    let mut dead: HashSet<String> = HashSet::new();
    loop {
        let mut reads: HashSet<String> = HashSet::new();
        for s in &body.stmts {
            collect_live_reads(s, &dead, &mut reads);
        }
        let next: HashSet<String> = temps
            .iter()
            .filter(|t| !reads.contains(*t))
            .cloned()
            .collect();
        if next == dead {
            return dead;
        }
        dead = next;
    }
}

/// Collect every identifier read by `stmt`, skipping the operands of
/// clauses that are strippable definitions of already-dead temporaries.
fn collect_live_reads(stmt: &Imp, dead: &HashSet<String>, reads: &mut HashSet<String>) {
    stmt.walk(&mut |n| match n {
        Imp::Move(clauses) => {
            for c in clauses {
                let strippable_dead = matches!(
                    &c.dst,
                    LValue::AVar(id, FieldAction::Everywhere)
                        if dead.contains(id) && c.is_unmasked()
                );
                if strippable_dead {
                    continue;
                }
                reads.extend(c.mask.reads().into_iter().cloned());
                reads.extend(c.src.reads().into_iter().cloned());
                if let LValue::AVar(_, FieldAction::Subscript(ixs)) = &c.dst {
                    for ix in ixs {
                        reads.extend(ix.reads().into_iter().cloned());
                    }
                }
            }
        }
        Imp::IfThenElse(c, _, _) | Imp::While(c, _) => {
            reads.extend(c.reads().into_iter().cloned());
        }
        Imp::WithDecl(d, _) => {
            for (_, _, init) in d.bindings() {
                if let Some(v) = init {
                    reads.extend(v.reads().into_iter().cloned());
                }
            }
        }
        _ => {}
    });
}

/// Remove every unmasked whole-array write to a dead temporary, at
/// clause granularity, recursively through nested bodies.
fn strip_dead_writes(stmt: &mut Imp, dead: &HashSet<String>, removed: &mut usize) {
    match stmt {
        Imp::Move(clauses) => {
            let before = clauses.len();
            clauses.retain(|c| {
                !matches!(
                    &c.dst,
                    LValue::AVar(id, FieldAction::Everywhere)
                        if dead.contains(id) && c.is_unmasked()
                )
            });
            *removed += before - clauses.len();
        }
        Imp::Sequentially(xs) | Imp::Concurrently(xs) => {
            for x in xs.iter_mut() {
                strip_dead_writes(x, dead, removed);
            }
            xs.retain(|s| !matches!(s, Imp::Move(cs) if cs.is_empty()));
        }
        Imp::IfThenElse(_, t, e) => {
            strip_dead_writes(t, dead, removed);
            strip_dead_writes(e, dead, removed);
        }
        Imp::While(_, b) | Imp::Do(_, _, b) | Imp::WithDecl(_, b) | Imp::WithDomain(_, _, b) => {
            strip_dead_writes(b, dead, removed);
        }
        Imp::Program(b) => strip_dead_writes(b, dead, removed),
        Imp::Skip => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{comm_cse, comm_split};
    use f90y_nir::build::*;
    use f90y_nir::eval::Evaluator;

    fn cshift_call(arr: &str, shift: i32, dim: i32) -> f90y_nir::Value {
        fcncall(
            "cshift",
            vec![
                (float64(), ld(arr, everywhere())),
                (int32(), int(shift)),
                (int32(), int(dim)),
            ],
        )
    }

    #[test]
    fn cse_leftovers_are_swept() {
        // Two identical shifts: comm-split makes tmp0 and tmp1, comm-cse
        // rewires tmp1's reads to tmp0 and deletes its definition, and
        // dce-temps removes the now-unused tmp1 declaration.
        let p = program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("y", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("y", everywhere()),
                        add(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                    mv(
                        avar("z", everywhere()),
                        sub(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        comm_split::run(&mut body).unwrap();
        assert_eq!(body.temps.len(), 2);
        comm_cse::run(&mut body).unwrap();
        let stats = run(&mut body).unwrap();
        assert_eq!(stats.temps_deleted, 1);
        assert_eq!(body.temps.len(), 1);
        assert!(!body.declared_names().contains(&"tmp1".to_string()));

        let out = body.recompose();
        f90y_nir::typecheck::check(&out).unwrap();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        for name in ["y", "z"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap()
            );
        }
    }

    #[test]
    fn live_temps_survive() {
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("z", everywhere()),
                        sub(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        comm_split::run(&mut body).unwrap();
        let stats = run(&mut body).unwrap();
        assert_eq!(stats.temps_deleted, 0);
        assert_eq!(stats.clauses_removed, 0);
    }

    #[test]
    fn user_variables_are_never_deleted() {
        // An unused user variable must survive: its final value is
        // observable.
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("unused", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("unused", everywhere()), f64c(9.0)),
                    mv(avar("z", everywhere()), f64c(1.0)),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        let stats = run(&mut body).unwrap();
        assert_eq!(stats.temps_deleted, 0);
        assert!(body.declared_names().contains(&"unused".to_string()));
        assert_eq!(body.stmts.len(), 2);
    }

    #[test]
    fn chains_of_dead_temps_die_together() {
        // tmp1 = cshift(tmp0, ...) where tmp1 is unread: removing tmp1's
        // definition makes tmp0 dead on the next round.
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("z", everywhere()),
                        fcncall(
                            "cshift",
                            vec![
                                (float64(), cshift_call("v", 1, 1)),
                                (int32(), int(1)),
                                (int32(), int(1)),
                            ],
                        ),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        comm_split::run(&mut body).unwrap();
        // Sever the chain: overwrite z with a constant, stranding the
        // hoisted shift(s).
        let last = body.stmts.len() - 1;
        body.stmts[last] = mv(avar("z", everywhere()), f64c(0.0));
        let stats = run(&mut body).unwrap();
        assert!(stats.temps_deleted >= 1);
        assert!(body.temps.is_empty(), "every stranded temp should die");
        f90y_nir::typecheck::check(&body.recompose()).unwrap();
    }
}
