//! Communication extraction: hoist `cshift`/`eoshift` calls out of
//! computation expressions.
//!
//! After this pass every communication intrinsic stands alone as
//! `MOVE[(True,(cshift(...), AVAR(tmpN, everywhere)))]` and computation
//! moves read the temporaries — producing the clean alternation of
//! communication and computation phases the paper's execution partition
//! wants (§4.2), and the `tmp0`/`tmp1`/`tmp2` names visible in its
//! Figure 12 NIR excerpt.

use f90y_nir::typecheck::{Checker, Mode};
use f90y_nir::{Decl, FieldAction, Imp, LValue, MoveClause, NirError, Type, Value};

use crate::program::ProgramBody;

/// Run the pass over every statement; returns the number of temporaries
/// introduced.
///
/// # Errors
///
/// Fails on static errors while typing hoisted calls.
pub fn run(body: &mut ProgramBody) -> Result<usize, NirError> {
    let mut counter = 0usize;
    let mut introduced = 0usize;
    let mut out: Vec<Imp> = Vec::with_capacity(body.stmts.len());
    let stmts = std::mem::take(&mut body.stmts);
    for stmt in stmts {
        let mut prefix: Vec<Imp> = Vec::new();
        let rewritten = rewrite_stmt(stmt, body, &mut counter, &mut prefix, &mut introduced)?;
        out.extend(prefix);
        out.push(rewritten);
    }
    body.stmts = out;
    Ok(introduced)
}

fn rewrite_stmt(
    stmt: Imp,
    body: &mut ProgramBody,
    counter: &mut usize,
    prefix: &mut Vec<Imp>,
    introduced: &mut usize,
) -> Result<Imp, NirError> {
    match stmt {
        Imp::Move(clauses) => {
            let mut new_clauses = Vec::with_capacity(clauses.len());
            for c in clauses {
                // If the source IS a bare communication call into a
                // whole-array unmasked target, it already is a
                // communication phase; leave it.
                let bare_comm = matches!(&c.src, Value::FcnCall(n, _) if is_comm(n))
                    && c.is_unmasked()
                    && matches!(c.dst, LValue::AVar(_, FieldAction::Everywhere));
                if bare_comm {
                    // Keep the outer call in place but still hoist any
                    // communication nested in its arguments, and
                    // materialise a composite array argument.
                    let Value::FcnCall(name, args) = c.src else {
                        unreachable!("bare_comm matched FcnCall")
                    };
                    let mut args: Vec<(Type, Value)> = args
                        .into_iter()
                        .map(|(t, a)| Ok((t, hoist_value(a, body, counter, prefix, introduced)?)))
                        .collect::<Result<_, NirError>>()?;
                    if let Some((_, arg0)) = args.first() {
                        let needs_temp = !matches!(
                            arg0,
                            Value::AVar(_, FieldAction::Everywhere) | Value::Scalar(_)
                        );
                        if needs_temp {
                            let arg0 = args[0].1.clone();
                            if let Some(tmp) = materialize(arg0, body, counter, prefix, introduced)?
                            {
                                args[0].1 = tmp;
                            }
                        }
                    }
                    new_clauses.push(MoveClause {
                        mask: c.mask,
                        src: Value::FcnCall(name, args),
                        dst: c.dst,
                    });
                    continue;
                }
                let mask = hoist_value(c.mask, body, counter, prefix, introduced)?;
                let src = hoist_value(c.src, body, counter, prefix, introduced)?;
                new_clauses.push(MoveClause {
                    mask,
                    src,
                    dst: c.dst,
                });
            }
            Ok(Imp::Move(new_clauses))
        }
        Imp::IfThenElse(c, t, e) => {
            let c = hoist_value(c, body, counter, prefix, introduced)?;
            // Branch bodies get their own prefixes *inside* the branch
            // (hoisting across a branch would compute unconditionally).
            let t = rewrite_nested(*t, body, counter, introduced)?;
            let e = rewrite_nested(*e, body, counter, introduced)?;
            Ok(Imp::IfThenElse(c, Box::new(t), Box::new(e)))
        }
        Imp::While(c, b) => {
            // The condition re-evaluates each iteration: hoisting it out
            // once would be wrong. Communication inside scalar loop
            // conditions is left in place (the host evaluates it).
            let b = rewrite_nested(*b, body, counter, introduced)?;
            Ok(Imp::While(c, Box::new(b)))
        }
        Imp::Do(dom, shape, b) => {
            let b = rewrite_nested(*b, body, counter, introduced)?;
            Ok(Imp::Do(dom, shape, Box::new(b)))
        }
        Imp::Sequentially(xs) => {
            let mut out = Vec::with_capacity(xs.len());
            for x in xs {
                let mut p = Vec::new();
                let r = rewrite_stmt(x, body, counter, &mut p, introduced)?;
                out.extend(p);
                out.push(r);
            }
            Ok(Imp::seq(out))
        }
        other => Ok(other),
    }
}

fn rewrite_nested(
    stmt: Imp,
    body: &mut ProgramBody,
    counter: &mut usize,
    introduced: &mut usize,
) -> Result<Imp, NirError> {
    let mut prefix = Vec::new();
    let r = rewrite_stmt(stmt, body, counter, &mut prefix, introduced)?;
    prefix.push(r);
    Ok(Imp::seq(prefix))
}

fn is_comm(name: &str) -> bool {
    matches!(name, "cshift" | "eoshift")
}

/// Materialise an array-valued expression into a fresh temporary,
/// emitting `tmp = expr` into `prefix`. Returns `None` (leaving the
/// expression in place) when the expression cannot be typed in the
/// binder-only context or is scalar.
fn materialize(
    v: Value,
    body: &mut ProgramBody,
    counter: &mut usize,
    prefix: &mut Vec<Imp>,
    introduced: &mut usize,
) -> Result<Option<Value>, NirError> {
    let mut ctx = body.ctx()?;
    let vt = match Checker::new(Mode::Both).type_of(&v, &mut ctx) {
        Ok(vt) => vt,
        Err(_) => return Ok(None),
    };
    let Some(shape) = vt.shape else {
        return Ok(None);
    };
    let tmp = body.fresh_temp(counter);
    body.add_temp_decl(Decl::Decl(
        tmp.clone(),
        Type::dfield(shape, Type::Scalar(vt.elem)),
    ));
    prefix.push(Imp::Move(vec![MoveClause::unmasked(
        LValue::AVar(tmp.clone(), FieldAction::Everywhere),
        v,
    )]));
    *introduced += 1;
    Ok(Some(Value::AVar(tmp, FieldAction::Everywhere)))
}

/// Hoist communication calls (post-order) out of a value, emitting
/// `tmp = call` moves into `prefix`.
fn hoist_value(
    v: Value,
    body: &mut ProgramBody,
    counter: &mut usize,
    prefix: &mut Vec<Imp>,
    introduced: &mut usize,
) -> Result<Value, NirError> {
    match v {
        Value::FcnCall(name, args) if is_comm(&name) => {
            // Hoist nested communication in the array argument first.
            let mut args: Vec<(Type, Value)> = args
                .into_iter()
                .map(|(t, a)| Ok((t, hoist_value(a, body, counter, prefix, introduced)?)))
                .collect::<Result<_, NirError>>()?;
            // A composite array argument (`CSHIFT(c + a, …)`) must be
            // computed before it can be communicated: materialise it
            // into its own temporary (a computation phase).
            if let Some((_, arg0)) = args.first() {
                let needs_temp = !matches!(
                    arg0,
                    Value::AVar(_, FieldAction::Everywhere) | Value::Scalar(_)
                );
                if needs_temp {
                    let arg0 = args[0].1.clone();
                    if let Some(tmp) = materialize(arg0.clone(), body, counter, prefix, introduced)?
                    {
                        args[0].1 = tmp;
                    }
                }
            }
            let call = Value::FcnCall(name, args);
            // Type the call to size the temporary. If typing fails here
            // — e.g. the shift amount references an enclosing DO index,
            // which this binder-only context cannot see — leave the call
            // in place for the host path rather than mis-hoisting.
            let mut ctx = body.ctx()?;
            let vt = match Checker::new(Mode::Both).type_of(&call, &mut ctx) {
                Ok(vt) => vt,
                Err(_) => return Ok(call),
            };
            let shape = vt
                .shape
                .ok_or_else(|| NirError::Shape("communication intrinsic on a scalar".into()))?;
            let elem = vt.elem;
            let tmp = body.fresh_temp(counter);
            body.add_temp_decl(Decl::Decl(
                tmp.clone(),
                Type::dfield(shape, Type::Scalar(elem)),
            ));
            prefix.push(Imp::Move(vec![MoveClause::unmasked(
                LValue::AVar(tmp.clone(), FieldAction::Everywhere),
                call,
            )]));
            *introduced += 1;
            Ok(Value::AVar(tmp, FieldAction::Everywhere))
        }
        Value::FcnCall(name, args) => {
            let args = args
                .into_iter()
                .map(|(t, a)| Ok((t, hoist_value(a, body, counter, prefix, introduced)?)))
                .collect::<Result<_, NirError>>()?;
            Ok(Value::FcnCall(name, args))
        }
        Value::Unary(op, a) => Ok(Value::Unary(
            op,
            Box::new(hoist_value(*a, body, counter, prefix, introduced)?),
        )),
        Value::Binary(op, a, b) => Ok(Value::Binary(
            op,
            Box::new(hoist_value(*a, body, counter, prefix, introduced)?),
            Box::new(hoist_value(*b, body, counter, prefix, introduced)?),
        )),
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{classify_stmt, StmtClass};
    use f90y_nir::build::*;
    use f90y_nir::eval::Evaluator;

    fn cshift_call(arr: &str, shift: i32, dim: i32) -> Value {
        fcncall(
            "cshift",
            vec![
                (float64(), ld(arr, everywhere())),
                (int32(), int(shift)),
                (int32(), int(dim)),
            ],
        )
    }

    fn swe_like() -> Imp {
        // z = v - cshift(v, -1, 1): the Fig. 12 source pattern.
        program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("z", everywhere()),
                        sub(ld("v", everywhere()), cshift_call("v", -1, 1)),
                    ),
                ]),
            ),
        ))
    }

    #[test]
    fn cshift_is_hoisted_to_a_temporary() {
        let p = swe_like();
        let mut body = ProgramBody::decompose(&p).unwrap();
        let n = run(&mut body).unwrap();
        assert_eq!(n, 1);
        assert_eq!(body.stmts.len(), 3);
        let mut ctx = body.ctx().unwrap();
        // Statement 1: comm phase; statement 2: pure computation.
        assert!(matches!(
            classify_stmt(&body.stmts[1], &mut ctx).unwrap(),
            StmtClass::Comm(_)
        ));
        assert!(matches!(
            classify_stmt(&body.stmts[2], &mut ctx).unwrap(),
            StmtClass::Compute(_)
        ));
        // The recomposed program still checks and means the same.
        let out = body.recompose();
        f90y_nir::typecheck::check(&out).unwrap();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        assert_eq!(
            ev1.final_array_f64("z").unwrap(),
            ev2.final_array_f64("z").unwrap()
        );
    }

    #[test]
    fn nested_cshifts_hoist_inner_first() {
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("z", everywhere()),
                        fcncall(
                            "cshift",
                            vec![
                                (float64(), cshift_call("v", 1, 1)),
                                (int32(), int(1)),
                                (int32(), int(1)),
                            ],
                        ),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        let n = run(&mut body).unwrap();
        // Inner call becomes tmp0; the outer call is already a bare
        // comm into z once its argument is a temporary.
        assert_eq!(n, 1);
        let out = body.recompose();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        assert_eq!(
            ev1.final_array_f64("z").unwrap(),
            ev2.final_array_f64("z").unwrap()
        );
    }

    #[test]
    fn masked_moves_hoist_unconditionally_before_the_move() {
        // WHERE-style masked move with communication inside.
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv_masked(
                        bin(f90y_nir::BinOp::Gt, ld("v", everywhere()), f64c(4.0)),
                        avar("z", everywhere()),
                        cshift_call("v", 1, 1),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        let n = run(&mut body).unwrap();
        assert_eq!(
            n, 1,
            "masked comm must hoist (masks don't commute with shifts)"
        );
        let out = body.recompose();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        assert_eq!(
            ev1.final_array_f64("z").unwrap(),
            ev2.final_array_f64("z").unwrap()
        );
    }

    #[test]
    fn reductions_are_left_alone() {
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("x", float64()),
                ]),
                mv(
                    svar_lv("x"),
                    fcncall("sum", vec![(float64(), ld("v", everywhere()))]),
                ),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(run(&mut body).unwrap(), 0);
    }

    #[test]
    fn composite_comm_arguments_materialise_as_computation() {
        // z = cshift(v + w, 1, 1): the sum must become its own
        // computation phase feeding the communication.
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("w", dfield(domain("s"), float64())),
                    decl("z", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    mv(avar("w", everywhere()), f64c(10.0)),
                    mv(
                        avar("z", everywhere()),
                        fcncall(
                            "cshift",
                            vec![
                                (float64(), add(ld("v", everywhere()), ld("w", everywhere()))),
                                (int32(), int(1)),
                                (int32(), int(1)),
                            ],
                        ),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        let n = run(&mut body).unwrap();
        assert_eq!(n, 1, "the composite argument becomes one temporary");
        // Phases: init v, init w, tmp = v+w (compute), z = cshift(tmp) (comm).
        let mut ctx = body.ctx().unwrap();
        let classes: Vec<_> = body
            .stmts
            .iter()
            .map(|s| classify_stmt(s, &mut ctx).unwrap())
            .collect();
        assert!(matches!(classes[2], StmtClass::Compute(_)));
        assert!(matches!(classes[3], StmtClass::Comm(_)));

        let out = body.recompose();
        f90y_nir::typecheck::check(&out).unwrap();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        assert_eq!(
            ev1.final_array_f64("z").unwrap(),
            ev2.final_array_f64("z").unwrap()
        );
    }
}
