//! Mask padding: rewrite aligned array-section assignments into
//! full-array masked moves (paper Fig. 10).
//!
//! "By generating mask code, the compiler pads computations over array
//! subsections to full-array operations, increasing the pool of sibling
//! computations which could be implemented in the same computation
//! block."
//!
//! A section assignment is *pad-able* when every array reference on the
//! right-hand side (and mask) uses the **same** section as the target —
//! i.e. the statement is pointwise over the section. Misaligned sections
//! (`L(32:64) = L(96:128)`) are shifted copies, which are communication,
//! not computation; they are left alone for the host/router path.

use f90y_nir::typecheck::{Checker, Mode};
use f90y_nir::{
    BinOp, Const, FieldAction, Imp, LValue, MoveClause, NirError, SectionRange, Shape, Value,
};

use crate::program::ProgramBody;

/// Run the pass over the top-level statements; returns the number of
/// statements padded. (The pipeline driver applies [`run_stmts`] inside
/// nested loop and branch bodies too.)
///
/// # Errors
///
/// Fails on static errors while resolving target shapes.
pub fn run(body: &mut ProgramBody) -> Result<usize, NirError> {
    let mut ctx = body.ctx()?;
    run_stmts(&mut body.stmts, &mut ctx)
}

/// Pad every statement of a list in a given context.
///
/// # Errors
///
/// Fails on static errors while resolving target shapes.
pub fn run_stmts(
    stmts: &mut Vec<Imp>,
    ctx: &mut f90y_nir::typecheck::Ctx,
) -> Result<usize, NirError> {
    let mut padded = 0usize;
    let taken = std::mem::take(stmts);
    let mut out = Vec::with_capacity(taken.len());
    for stmt in taken {
        out.push(pad_stmt(stmt, ctx, &mut padded)?);
    }
    *stmts = out;
    Ok(padded)
}

fn pad_stmt(
    stmt: Imp,
    ctx: &mut f90y_nir::typecheck::Ctx,
    padded: &mut usize,
) -> Result<Imp, NirError> {
    let Imp::Move(clauses) = stmt else {
        return Ok(stmt);
    };
    let mut out = Vec::with_capacity(clauses.len());
    for c in clauses {
        out.push(pad_clause(c, ctx, padded)?);
    }
    Ok(Imp::Move(out))
}

fn pad_clause(
    c: MoveClause,
    ctx: &mut f90y_nir::typecheck::Ctx,
    padded: &mut usize,
) -> Result<MoveClause, NirError> {
    let LValue::AVar(dst_name, FieldAction::Section(ranges)) = &c.dst else {
        return Ok(c);
    };
    // The target's full declared shape.
    let full_shape = {
        let checker = Checker::new(Mode::Shapes);
        let full = checker.type_of_lvalue(
            &LValue::AVar(dst_name.clone(), FieldAction::Everywhere),
            ctx,
        )?;
        full.shape.expect("AVar targets have shapes")
    };
    let extents = full_shape.extents();

    // Pad-able only if every array reference is aligned with the target
    // section over a conforming base shape.
    if !aligned(&c.src, ranges, &extents.len()) || !aligned(&c.mask, ranges, &extents.len()) {
        return Ok(c);
    }

    // Build the parity/range mask over the full shape.
    let mut mask_terms: Vec<Value> = Vec::new();
    for (axis, (r, e)) in ranges.iter().zip(&extents).enumerate() {
        let coord = Value::LocalUnder(full_shape.clone(), axis + 1);
        if r.step > 1 {
            // ((coord - lo) mod step) == 0
            mask_terms.push(Value::Binary(
                BinOp::Eq,
                Box::new(Value::Binary(
                    BinOp::Mod,
                    Box::new(Value::Binary(
                        BinOp::Sub,
                        Box::new(coord.clone()),
                        Box::new(Value::Scalar(Const::I32(r.lo as i32))),
                    )),
                    Box::new(Value::Scalar(Const::I32(r.step as i32))),
                )),
                Box::new(Value::Scalar(Const::I32(0))),
            ));
        }
        if r.lo > e.lo {
            mask_terms.push(Value::Binary(
                BinOp::Ge,
                Box::new(coord.clone()),
                Box::new(Value::Scalar(Const::I32(r.lo as i32))),
            ));
        }
        if r.hi < e.hi {
            mask_terms.push(Value::Binary(
                BinOp::Le,
                Box::new(coord),
                Box::new(Value::Scalar(Const::I32(r.hi as i32))),
            ));
        }
    }
    let section_mask = mask_terms
        .into_iter()
        .reduce(|a, b| Value::Binary(BinOp::And, Box::new(a), Box::new(b)));

    // Rewrite references to everywhere.
    let src = widen(&c.src, ranges);
    let old_mask = widen(&c.mask, ranges);
    let mask = match (section_mask, c.is_unmasked()) {
        (None, _) => old_mask, // section was the whole array
        (Some(sm), true) => sm,
        (Some(sm), false) => Value::Binary(BinOp::And, Box::new(sm), Box::new(old_mask)),
    };
    *padded += 1;
    Ok(MoveClause {
        mask,
        src,
        dst: LValue::AVar(dst_name.clone(), FieldAction::Everywhere),
    })
}

/// Every `AVAR` in the value must carry exactly the target's section
/// (same rank); scalars, constants and operators are fine. `everywhere`
/// or differently-sectioned references make the clause unpaddable.
fn aligned(v: &Value, target: &[SectionRange], _rank: &usize) -> bool {
    let mut ok = true;
    v.walk(&mut |node| {
        if let Value::AVar(_, fa) = node {
            match fa {
                FieldAction::Section(rs) if rs == target => {}
                _ => ok = false,
            }
        }
        if matches!(node, Value::LocalUnder(..) | Value::DoIndex(..)) {
            ok = false;
        }
    });
    ok
}

/// Replace aligned section references by `everywhere`.
fn widen(v: &Value, target: &[SectionRange]) -> Value {
    match v {
        Value::AVar(id, FieldAction::Section(rs)) if rs == target => {
            Value::AVar(id.clone(), FieldAction::Everywhere)
        }
        Value::Unary(op, a) => Value::Unary(*op, Box::new(widen(a, target))),
        Value::Binary(op, a, b) => {
            Value::Binary(*op, Box::new(widen(a, target)), Box::new(widen(b, target)))
        }
        Value::FcnCall(name, args) => Value::FcnCall(
            name.clone(),
            args.iter()
                .map(|(t, a)| (t.clone(), widen(a, target)))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// `true` if the shape's axes could make a statement over it pad into
/// the given full shape — used by tests and the Fig. 10 harness.
pub fn covers(full: &Shape, ranges: &[SectionRange]) -> bool {
    full.extents().len() == ranges.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{classify_stmt, ProgramBody, StmtClass};
    use f90y_nir::build::*;
    use f90y_nir::eval::Evaluator;

    fn fig10_program() -> Imp {
        // A = N; B(1:31:2,:) = A(1:31:2,:); C = N+1; B(2:32:2,:) = 5*A(2:32:2,:)
        let odd = vec![SectionRange::strided(1, 31, 2), SectionRange::new(1, 32)];
        let even = vec![SectionRange::strided(2, 32, 2), SectionRange::new(1, 32)];
        program(with_domain(
            "s",
            prod(vec![interval(1, 32), interval(1, 32)]),
            with_domain(
                "t",
                interval(1, 32),
                with_decl(
                    declset(vec![
                        decl("a", dfield(domain("s"), int32())),
                        decl("b", dfield(domain("s"), int32())),
                        decl("c", dfield(domain("t"), int32())),
                        decl("n", int32()),
                    ]),
                    seq(vec![
                        mv(svar_lv("n"), int(7)),
                        mv(avar("a", everywhere()), svar("n")),
                        mv(avar("b", section(odd.clone())), ld("a", section(odd))),
                        mv(avar("c", everywhere()), add(svar("n"), int(1))),
                        mv(
                            avar("b", section(even.clone())),
                            mul(int(5), ld("a", section(even))),
                        ),
                    ]),
                ),
            ),
        ))
    }

    #[test]
    fn fig10_sections_pad_to_masked_everywhere() {
        let p = fig10_program();
        let mut body = ProgramBody::decompose(&p).unwrap();
        let n = run(&mut body).unwrap();
        assert_eq!(n, 2);
        // Both padded statements are now grid-local computations.
        let mut ctx = body.ctx().unwrap();
        let classes: Vec<StmtClass> = body
            .stmts
            .iter()
            .map(|s| classify_stmt(s, &mut ctx).unwrap())
            .collect();
        let computes = classes
            .iter()
            .filter(|c| matches!(c, StmtClass::Compute(_)))
            .count();
        // A=N, both B moves, and C=N+1 are all computations now.
        assert_eq!(computes, 4);

        // Semantics preserved.
        let out = body.recompose();
        f90y_nir::typecheck::check(&out).unwrap();
        let mut ev1 = Evaluator::new();
        ev1.run(&p).unwrap();
        let mut ev2 = Evaluator::new();
        ev2.run(&out).unwrap();
        for name in ["a", "b", "c"] {
            assert_eq!(
                ev1.final_array_f64(name).unwrap(),
                ev2.final_array_f64(name).unwrap(),
                "{name}"
            );
        }
    }

    #[test]
    fn misaligned_sections_are_left_for_communication() {
        // L(1:3) = L(5:7): a shifted copy, not pointwise.
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![decl("l", dfield(domain("s"), int32()))]),
                mv(
                    avar("l", section(vec![SectionRange::new(1, 3)])),
                    ld("l", section(vec![SectionRange::new(5, 7)])),
                ),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(run(&mut body).unwrap(), 0);
        assert_eq!(body.recompose(), p);
    }

    #[test]
    fn contiguous_subrange_pads_with_range_mask() {
        // K(2:7) = K(2:7) + 1 over K(8).
        let sec = vec![SectionRange::new(2, 7)];
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![decl("k", dfield(domain("s"), int32()))]),
                seq(vec![
                    mv(avar("k", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("k", section(sec.clone())),
                        add(ld("k", section(sec)), int(100)),
                    ),
                ]),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(run(&mut body).unwrap(), 1);
        let out = body.recompose();
        let mut ev = Evaluator::new();
        ev.run(&out).unwrap();
        assert_eq!(
            ev.final_array_f64("k").unwrap(),
            vec![1.0, 102.0, 103.0, 104.0, 105.0, 106.0, 107.0, 8.0]
        );
    }

    #[test]
    fn scalar_rhs_pads_fine() {
        // B(1:7:2) = 9 over B(8).
        let sec = vec![SectionRange::strided(1, 7, 2)];
        let p = program(with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![decl("b", dfield(domain("s"), int32()))]),
                mv(avar("b", section(sec)), int(9)),
            ),
        ));
        let mut body = ProgramBody::decompose(&p).unwrap();
        assert_eq!(run(&mut body).unwrap(), 1);
        let mut ev = Evaluator::new();
        ev.run(&body.recompose()).unwrap();
        assert_eq!(
            ev.final_array_f64("b").unwrap(),
            vec![9.0, 0.0, 9.0, 0.0, 9.0, 0.0, 9.0, 0.0]
        );
    }
}
