//! Machine configuration.

/// Configuration of a simulated CM/2.
#[derive(Debug, Clone, PartialEq)]
pub struct Cm2Config {
    /// Number of slicewise processing elements (power of two, up to
    /// 2048 — the full machine of the paper's §2.2).
    pub nodes: usize,
    /// Node clock in Hz. The CM-2's sequencer/Weitek pipeline ran at
    /// 7 MHz.
    pub clock_hz: f64,
    /// Multiplier on per-dispatch compute cycles. 1.0 for slicewise;
    /// the fieldwise (\*Lisp) execution model pays the transposer tax
    /// (see [`Cm2Config::fieldwise`]).
    pub compute_multiplier: f64,
    /// Multiplier on per-dispatch call overhead. Interpreted \*Lisp
    /// dispatch is heavier than compiled PEAC dispatch.
    pub dispatch_multiplier: f64,
    /// The §5.3.2 "other computation models" study: when set, grid
    /// communication is software-pipelined against independent
    /// computation — each communication call may hide behind compute
    /// cycles accumulated since the previous communication. This is an
    /// optimistic bound (it assumes the compiler always finds an
    /// independent block to overlap), offered as the model study the
    /// paper sketches: "A more flexible model would allow the compiler
    /// to pipeline communication and computation".
    pub pipelined_comm: bool,
}

impl Cm2Config {
    /// The full slicewise machine of the paper's evaluation: 2048 nodes
    /// at 7 MHz.
    pub fn full_slicewise() -> Self {
        Cm2Config {
            nodes: 2048,
            clock_hz: 7.0e6,
            compute_multiplier: 1.0,
            dispatch_multiplier: 1.0,
            pipelined_comm: false,
        }
    }

    /// A smaller slicewise machine (for tests).
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is a power of two between 1 and 2048.
    pub fn slicewise(nodes: usize) -> Self {
        assert!(
            nodes.is_power_of_two() && nodes <= 2048,
            "CM/2 node count must be a power of two up to 2048, got {nodes}"
        );
        Cm2Config {
            nodes,
            ..Cm2Config::full_slicewise()
        }
    }

    /// The fieldwise (\*Lisp) execution model on the same hardware.
    ///
    /// Under fieldwise mode, data lives bit-transposed across the 32
    /// bit-serial processors of each PE and must pass through the
    /// transposer to reach the Weitek FPU, and elemental operations are
    /// dispatched one at a time through the \*Lisp runtime. We model
    /// both effects as multipliers rather than simulating bit-serial
    /// memory: compute beats cost ~1.25× (the transposer occupies the
    /// memory path) and per-operation dispatch costs ~1.5× (interpreted
    /// runtime) — on top of the naive per-statement code the \*Lisp
    /// baseline compiler generates (no chaining, no multiply-add fusion,
    /// no overlap). The multipliers are calibrated so hand-coded
    /// fieldwise SWE lands near the paper's measured 1.89 GFLOPS
    /// relative to slicewise compiled code (see EXPERIMENTS.md).
    pub fn fieldwise(nodes: usize) -> Self {
        Cm2Config {
            compute_multiplier: 1.25,
            dispatch_multiplier: 1.5,
            ..Cm2Config::slicewise(nodes)
        }
    }

    /// Hypercube dimensionality for this node count (two wires per
    /// dimension on the real machine).
    pub fn hypercube_dims(&self) -> u32 {
        self.nodes.trailing_zeros()
    }

    /// Peak GFLOPS with chained multiply-adds, for reference lines in
    /// reports.
    pub fn peak_gflops(&self) -> f64 {
        // fmadd: 8 flops per 6-cycle vector instruction per node.
        self.nodes as f64 * (8.0 / f90y_peac::costs::FMADD_CYCLES as f64) * self.clock_hz / 1e9
    }
}

impl Default for Cm2Config {
    fn default() -> Self {
        Cm2Config::full_slicewise()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_machine_matches_paper() {
        let c = Cm2Config::full_slicewise();
        assert_eq!(c.nodes, 2048);
        assert_eq!(c.hypercube_dims(), 11);
        // Nominal peak in the tens of GFLOPS, same order as the CM-2's
        // advertised 28 GFLOPS DP peak.
        assert!(c.peak_gflops() > 10.0 && c.peak_gflops() < 40.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Cm2Config::slicewise(100);
    }

    #[test]
    fn fieldwise_is_slower() {
        let f = Cm2Config::fieldwise(2048);
        assert!(f.compute_multiplier > 1.0);
        assert!(f.dispatch_multiplier > 1.0);
    }
}
