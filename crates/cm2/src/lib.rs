//! # f90y-cm2 — Connection Machine CM/2 slicewise machine simulator
//!
//! The paper's target (its §2.2): "up to 2,048 Slicewise Processing
//! Elements (nodes or PEs), each consisting of 32 bit-serial processors
//! coupled with one Weitek WTL3164 64-bit floating-point ALU … connected
//! by a 12-dimensional boolean hypercube with two wires along each
//! dimension." Each PE synchronously executes PEAC instructions issued
//! from the CM sequencer.
//!
//! The real machine is gone; this crate is the documented substitution
//! (DESIGN.md §2): a deterministic machine model with
//!
//! * [`config`] — machine configuration (node count, clock, cost
//!   multipliers for the fieldwise execution model);
//! * [`layout`] — the runtime system's blockwise layout of shapes onto
//!   PEs and the virtual-subgrid geometry;
//! * [`costs`] — dispatch, grid-communication, router and reduction cost
//!   models with their justifications;
//! * [`machine`] — CM arrays in (simulated) CM memory plus the machine
//!   state and cycle/flop accounting;
//! * [`runtime`] — the CM runtime system (CMRT) surface the compiled
//!   host program calls: allocation, coordinate subgrids, `CSHIFT`/
//!   `EOSHIFT` grid communication, router copies, reductions, and PEAC
//!   dispatch over the IFIFO.
//!
//! Numerical results are exact (communication runs on the full arrays;
//! PEAC dispatch executes every lane through `f90y-peac`), while time is
//! *modelled*: every runtime call charges node cycles from [`costs`],
//! and `GFLOPS = flops / (node_cycles / clock)`.

pub mod config;
pub mod costs;
pub mod layout;
pub mod machine;
pub mod runtime;

pub use config::Cm2Config;
pub use layout::Layout;
pub use machine::{ArrayId, Cm2, CycleProfile, MachineStats, PhaseCycles, TraceEvent};
pub use runtime::ReduceOp;

use std::error::Error;
use std::fmt;

/// Errors from the machine model.
#[derive(Debug, Clone, PartialEq)]
pub enum Cm2Error {
    /// A bad runtime call (unknown array, rank mismatch, bad axis).
    Runtime(String),
    /// A PEAC-level fault surfaced through dispatch.
    Peac(String),
    /// A fault-injected run exhausted its recovery budgets (message
    /// retries or node restarts) and cannot make progress. Carried as a
    /// distinct variant so drivers can tell "the program is wrong" from
    /// "the injected faults exceeded what recovery was provisioned
    /// for".
    Unrecoverable(String),
}

impl fmt::Display for Cm2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cm2Error::Runtime(m) => write!(f, "CM runtime error: {m}"),
            Cm2Error::Peac(m) => write!(f, "PEAC fault: {m}"),
            Cm2Error::Unrecoverable(m) => write!(f, "unrecoverable fault: {m}"),
        }
    }
}

impl Error for Cm2Error {}

impl From<f90y_peac::PeacError> for Cm2Error {
    fn from(e: f90y_peac::PeacError) -> Self {
        Cm2Error::Peac(e.to_string())
    }
}
