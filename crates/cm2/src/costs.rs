//! CM/2 runtime cost model: dispatch, grid communication, router,
//! reductions.
//!
//! As with `f90y_peac::costs`, every constant is justified; the
//! experiment tables depend on the *ratios*. Communication is charged in
//! node cycles (the whole machine runs in SIMD lockstep, so elapsed time
//! is per-node busy time).
//!
//! Since the HAL refactor the numbers themselves live in the CM/2
//! capability manifest ([`f90y_hal::CM2`]) — machine facts are data,
//! not code — and this module re-exposes them under their historical
//! names with their justifications, plus the [`Layout`]-aware wrappers
//! the runtime charges through. The golden tests in `f90y-hal` pin the
//! manifest-derived table to the pre-refactor constants.

use crate::layout::Layout;
use f90y_hal::CM2_SIMD_COSTS;
use f90y_peac::isa::VLEN;

/// Cycles of sequencer + IFIFO overhead to call one PEAC routine
/// (paper §6 blames "PEAC subroutine calling time and the overhead of
/// receiving pointers and data from the front-end FIFO" for the cost the
/// blocking transformation amortises). CM documentation puts elementwise
/// operation launch overhead at one to two hundred microseconds; 1000
/// node cycles at 7 MHz is ~140 µs per dispatch.
pub const DISPATCH_BASE_CYCLES: u64 = CM2_SIMD_COSTS.dispatch_base_cycles;

/// Additional cycles per routine argument pushed over the IFIFO
/// (pointer or broadcast scalar).
pub const DISPATCH_PER_ARG_CYCLES: u64 = CM2_SIMD_COSTS.dispatch_per_arg_cycles;

/// Cycles of runtime-library entry overhead for a communication or
/// reduction call (argument marshalling, geometry/grid-mapping lookup,
/// send/receive buffer setup): ~170 µs at 7 MHz, the same order as a
/// PEAC dispatch plus the NEWS setup work.
pub const RT_CALL_CYCLES: u64 = CM2_SIMD_COSTS.rt_call_cycles;

/// Cycles to move one 64-bit element over a hypercube dimension's two
/// 1-bit wires: 64 bits / 2 wires = 32 cycles.
pub const WIRE_CYCLES_PER_ELEM: u64 = CM2_SIMD_COSTS.wire_cycles_per_elem;

/// Router multiplier over grid (NEWS) communication: a general
/// permutation traverses ~log₂(P)/2 dimensions with conflicts, where
/// grid neighbours need one. The paper (§2.2): special-purpose
/// communication "can be substantially faster than the worst-case router
/// alternative".
pub const ROUTER_FACTOR: u64 = CM2_SIMD_COSTS.router_factor;

/// Node cycles for a PEAC routine dispatch executing `iterations`
/// subgrid-loop iterations of a body costing `body_cycles` per
/// iteration.
pub fn dispatch_cycles(nargs: usize, body_cycles: u64, iterations: u64) -> u64 {
    CM2_SIMD_COSTS.dispatch_cycles(nargs, body_cycles, iterations)
}

/// Node cycles for a grid (NEWS) `CSHIFT`/`EOSHIFT` by `shift` along
/// `axis` over the given layout: every node copies its subgrid (in/out
/// through the vector unit) and serialises its boundary-crossing
/// elements onto the wires.
pub fn grid_comm_cycles(layout: &Layout, axis: usize, shift: i64) -> u64 {
    CM2_SIMD_COSTS.grid_comm_cycles(
        layout.iterations_per_node(),
        layout.crossing_per_node(axis, shift),
    )
}

/// Node cycles for a general router copy moving every element to an
/// arbitrary destination (the fallback when no grid pattern applies).
pub fn router_comm_cycles(layout: &Layout) -> u64 {
    CM2_SIMD_COSTS.router_comm_cycles(layout.subgrid())
}

/// Node cycles for a full reduction (`SUM`/`MAXVAL`/`MINVAL`): a local
/// vector reduction pass over the subgrid, then log₂(P) combine steps
/// over the hypercube.
pub fn reduction_cycles(layout: &Layout, nodes: usize) -> u64 {
    CM2_SIMD_COSTS.reduction_cycles(layout.iterations_per_node(), nodes)
}

/// Node cycles to materialise a coordinate subgrid (`local_under`): one
/// generation pass writing the subgrid through the vector unit. The real
/// runtime caches these; so does [`crate::machine::Cm2`], charging this
/// once per (shape, axis).
pub fn coordinate_gen_cycles(layout: &Layout) -> u64 {
    CM2_SIMD_COSTS.coordinate_gen_cycles(layout.iterations_per_node())
}

/// Host-side cycles for one host program operation (scalar arithmetic,
/// loop bookkeeping) — the paper's front end "uses a simple
/// memory-to-memory load/store model with little attention to effective
/// register use" (§5.2), so charge a flat, deliberately unflattering
/// cost per host op. The host SPARC runs at its own clock; see
/// [`crate::machine::MachineStats::elapsed_seconds`].
pub const HOST_OP_CYCLES: u64 = CM2_SIMD_COSTS.host_op_cycles;

/// Host clock in Hz (a Sun-4 front end, ~25 MHz SPARC).
pub const HOST_CLOCK_HZ: f64 = CM2_SIMD_COSTS.host_clock_hz;

/// Convenience: how many vector iterations an elementwise pass needs.
pub fn elementwise_iterations(layout: &Layout) -> u64 {
    layout.subgrid().div_ceil(VLEN) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbour_shift_is_cheaper_than_router() {
        let l = Layout::grid(&[1024, 2048], 2048); // subgrid 1024
        let grid = grid_comm_cycles(&l, 0, 1);
        let router = router_comm_cycles(&l);
        assert!(
            grid * 5 < router,
            "grid {grid} should be far cheaper than router {router}"
        );
    }

    #[test]
    fn long_axis_shift_costs_more_than_unit_shift() {
        let l = Layout::grid(&[1024, 2048], 2048);
        assert!(grid_comm_cycles(&l, 0, 100) > grid_comm_cycles(&l, 0, 1));
    }

    #[test]
    fn dispatch_amortisation_favours_longer_blocks() {
        // Two dispatches of half the work cost more than one of the
        // whole: the premise of the blocking transformation.
        let one = dispatch_cycles(4, 60, 32);
        let two = 2 * dispatch_cycles(4, 30, 32);
        assert!(two > one);
    }

    #[test]
    fn reduction_scales_with_subgrid_and_log_nodes() {
        let small = Layout::blockwise(2048 * 8, 2048);
        let large = Layout::blockwise(2048 * 64, 2048);
        assert!(reduction_cycles(&large, 2048) > reduction_cycles(&small, 2048));
    }

    #[test]
    fn manifest_backed_constants_keep_their_pre_hal_values() {
        // The historical names must read the same numbers the module
        // hard-coded before the HAL refactor (the full cost-table
        // golden lives in f90y-hal).
        assert_eq!(DISPATCH_BASE_CYCLES, 1000);
        assert_eq!(DISPATCH_PER_ARG_CYCLES, 40);
        assert_eq!(RT_CALL_CYCLES, 1200);
        assert_eq!(WIRE_CYCLES_PER_ELEM, 32);
        assert_eq!(ROUTER_FACTOR, 6);
        assert_eq!(HOST_OP_CYCLES, 8);
        assert_eq!(HOST_CLOCK_HZ.to_bits(), 25.0e6_f64.to_bits());
    }
}
