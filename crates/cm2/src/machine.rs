//! CM arrays, machine state and accounting.

use std::collections::{BTreeMap, HashMap};

use f90y_obs::trace::{Actor, ClockDomain, Trace, TraceEvent as FlightEvent};
use f90y_peac::profile::OpcodeProfile;

use crate::config::Cm2Config;
use crate::costs;
use crate::layout::Layout;
use crate::Cm2Error;

/// Handle to an array living in (simulated) CM memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct CmArray {
    /// Per-axis extents (row-major storage).
    pub dims: Vec<usize>,
    /// Per-axis inclusive lower bounds (Fortran bounds for coordinate
    /// generation).
    pub lower: Vec<i64>,
    /// The elements.
    pub data: Vec<f64>,
}

impl CmArray {
    pub(crate) fn len(&self) -> usize {
        self.data.len()
    }
}

/// Cycle, flop and call accounting for one simulated run.
///
/// The machine executes in SIMD lockstep, so `node_cycles` — per-node
/// busy cycles summed over operations — is the machine's elapsed time in
/// cycles. Host cycles accumulate separately at the host clock; the
/// model serialises host and CM time (a conservative choice the
/// host-fraction experiment quantifies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Per-node CM cycles spent in dispatched computation.
    pub compute_cycles: u64,
    /// Per-node CM cycles spent in communication and reductions.
    pub comm_cycles: u64,
    /// Per-node CM cycles spent in dispatch/IFIFO overhead.
    pub dispatch_overhead_cycles: u64,
    /// Host (front end) cycles.
    pub host_cycles: u64,
    /// Floating-point operations executed machine-wide.
    pub flops: u64,
    /// PEAC routine dispatches.
    pub dispatches: u64,
    /// Communication runtime calls.
    pub comm_calls: u64,
    /// Reduction runtime calls.
    pub reductions: u64,
}

impl MachineStats {
    /// Total per-node CM cycles.
    pub fn node_cycles(&self) -> u64 {
        self.compute_cycles + self.comm_cycles + self.dispatch_overhead_cycles
    }

    /// Elapsed seconds: CM time plus host time, serialised.
    pub fn elapsed_seconds(&self, clock_hz: f64) -> f64 {
        self.node_cycles() as f64 / clock_hz + self.host_cycles as f64 / costs::HOST_CLOCK_HZ
    }

    /// Sustained GFLOPS over the run.
    pub fn gflops(&self, clock_hz: f64) -> f64 {
        let secs = self.elapsed_seconds(clock_hz);
        if secs == 0.0 {
            0.0
        } else {
            self.flops as f64 / secs / 1e9
        }
    }

    /// Fraction of elapsed time spent on the host.
    pub fn host_fraction(&self, clock_hz: f64) -> f64 {
        let total = self.elapsed_seconds(clock_hz);
        if total == 0.0 {
            0.0
        } else {
            (self.host_cycles as f64 / costs::HOST_CLOCK_HZ) / total
        }
    }
}

/// Cycles one phase charged, split by the same categories as
/// [`MachineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// Per-node CM cycles of dispatched computation.
    pub compute_cycles: u64,
    /// Per-node CM cycles of communication and reductions.
    pub comm_cycles: u64,
    /// Per-node CM cycles of dispatch/IFIFO overhead.
    pub dispatch_overhead_cycles: u64,
    /// Host (front end) cycles.
    pub host_cycles: u64,
}

impl PhaseCycles {
    /// Total per-node CM cycles this phase charged.
    pub fn node_cycles(&self) -> u64 {
        self.compute_cycles + self.comm_cycles + self.dispatch_overhead_cycles
    }
}

/// Per-phase cycle attribution: every cycle a run charges to
/// [`MachineStats`] is also charged here under a phase tag (the
/// dispatched routine's name, or a runtime-call category such as
/// `news`, `router`, `reduce`, `coord`, `host`). Because all stat
/// mutation is routed through the `charge_*` helpers, the per-phase
/// cycles sum exactly to the totals — no lost or double-counted
/// cycles, which `verify_against` asserts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleProfile {
    phases: BTreeMap<String, PhaseCycles>,
}

impl CycleProfile {
    /// The named phase's cycles, if the phase charged anything.
    pub fn phase(&self, name: &str) -> Option<&PhaseCycles> {
        self.phases.get(name)
    }

    /// All phases, sorted by name.
    pub fn phases(&self) -> impl Iterator<Item = (&str, &PhaseCycles)> {
        self.phases.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Compute cycles summed over phases.
    pub fn compute_total(&self) -> u64 {
        self.phases.values().map(|p| p.compute_cycles).sum()
    }

    /// Communication cycles summed over phases.
    pub fn comm_total(&self) -> u64 {
        self.phases.values().map(|p| p.comm_cycles).sum()
    }

    /// Dispatch-overhead cycles summed over phases.
    pub fn dispatch_overhead_total(&self) -> u64 {
        self.phases
            .values()
            .map(|p| p.dispatch_overhead_cycles)
            .sum()
    }

    /// Host cycles summed over phases.
    pub fn host_total(&self) -> u64 {
        self.phases.values().map(|p| p.host_cycles).sum()
    }

    /// Check the attribution invariant: per-phase sums equal the
    /// machine totals in every category.
    ///
    /// # Errors
    ///
    /// Returns which category diverged, with both values.
    pub fn verify_against(&self, stats: &MachineStats) -> Result<(), String> {
        let checks = [
            ("compute_cycles", self.compute_total(), stats.compute_cycles),
            ("comm_cycles", self.comm_total(), stats.comm_cycles),
            (
                "dispatch_overhead_cycles",
                self.dispatch_overhead_total(),
                stats.dispatch_overhead_cycles,
            ),
            ("host_cycles", self.host_total(), stats.host_cycles),
        ];
        for (name, profiled, total) in checks {
            if profiled != total {
                return Err(format!(
                    "cycle profile diverges on {name}: phases sum to {profiled}, \
                     machine total is {total}"
                ));
            }
        }
        Ok(())
    }

    fn entry(&mut self, phase: &str) -> &mut PhaseCycles {
        // A plain `entry(phase.to_string())` would allocate on every
        // charge; profile maps are small, so probe first.
        if !self.phases.contains_key(phase) {
            self.phases
                .insert(phase.to_string(), PhaseCycles::default());
        }
        self.phases.get_mut(phase).expect("just inserted")
    }
}

/// One machine-level event, recorded when tracing is enabled. Traces
/// let retargeting studies replay a run under a different cost model
/// without re-executing ([`f90y_hal::replay()`]). The event vocabulary
/// lives in the HAL so any machine can emit replay traces; re-exported
/// here under its historical path.
pub use f90y_hal::TraceEvent;

/// A simulated CM/2: configuration, CM memory, and accounting.
#[derive(Debug)]
pub struct Cm2 {
    pub(crate) config: Cm2Config,
    pub(crate) arrays: Vec<Option<CmArray>>,
    pub(crate) coord_cache: HashMap<(Vec<usize>, Vec<i64>, usize), ArrayId>,
    pub(crate) stats: MachineStats,
    pub(crate) trace: Option<Vec<TraceEvent>>,
    pub(crate) profile: Option<CycleProfile>,
    /// The flight recorder: cycle-clocked phase events for the obs
    /// trace layer (distinct from `trace`, the estimator replay log).
    pub(crate) flight: Option<Trace>,
    /// Per-routine opcode histograms, recorded at dispatch time.
    pub(crate) opcodes: Option<BTreeMap<String, OpcodeProfile>>,
    /// Compute cycles accumulated since the last communication call,
    /// available to hide pipelined communication behind (§5.3.2 model).
    pub(crate) overlap_pool: u64,
}

impl Cm2 {
    /// A machine with the given configuration.
    pub fn new(config: Cm2Config) -> Self {
        Cm2 {
            config,
            arrays: Vec::new(),
            coord_cache: HashMap::new(),
            stats: MachineStats::default(),
            trace: None,
            profile: None,
            flight: None,
            opcodes: None,
            overlap_pool: 0,
        }
    }

    /// Start recording machine events (clears any previous trace). The
    /// first event always identifies the traced machine's node count.
    pub fn enable_trace(&mut self) {
        self.trace = Some(vec![TraceEvent::Machine {
            nodes: self.config.nodes,
        }]);
    }

    /// The recorded events, if tracing was enabled.
    pub fn trace(&self) -> Option<&[TraceEvent]> {
        self.trace.as_deref()
    }

    /// Start per-phase cycle attribution (clears any previous profile).
    pub fn enable_profile(&mut self) {
        self.profile = Some(CycleProfile::default());
    }

    /// The cycle profile, if profiling was enabled.
    pub fn profile(&self) -> Option<&CycleProfile> {
        self.profile.as_ref()
    }

    /// Start the flight recorder (clears any previous flight trace).
    /// Events are stamped with the machine's deterministic cycle clock.
    pub fn enable_flight_recorder(&mut self) {
        self.flight = Some(Trace::new(ClockDomain::Cycle));
    }

    /// The flight-recorder trace, if enabled.
    pub fn flight(&self) -> Option<&Trace> {
        self.flight.as_ref()
    }

    /// Take ownership of the flight-recorder trace, leaving it disabled.
    pub fn take_flight(&mut self) -> Option<Trace> {
        self.flight.take()
    }

    /// Start per-routine opcode profiling (clears any previous map).
    pub fn enable_opcode_profile(&mut self) {
        self.opcodes = Some(BTreeMap::new());
    }

    /// Per-routine opcode histograms, if opcode profiling was enabled.
    /// Each routine's cycle sum equals the compute cycles the machine
    /// charged for that routine's dispatches, to the cycle.
    pub fn opcode_profiles(&self) -> Option<&BTreeMap<String, OpcodeProfile>> {
        self.opcodes.as_ref()
    }

    /// The flight recorder's clock: all simulated cycles charged so far
    /// (PE-array node cycles plus host cycles).
    pub(crate) fn flight_clock(&self) -> u64 {
        self.stats.node_cycles() + self.stats.host_cycles
    }

    /// Record a phase slice on the flight recorder spanning from
    /// `start` (a clock captured before charging) to the current clock.
    pub(crate) fn flight_phase(&mut self, actor: Actor, label: &str, start: u64) {
        let end = self.flight_clock();
        if let Some(t) = &mut self.flight {
            t.record(FlightEvent::Phase {
                actor,
                label: label.to_string(),
                start,
                end,
            });
        }
    }

    pub(crate) fn record(&mut self, e: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(e);
        }
    }

    // Every cycle charged to `stats` goes through one of these four
    // helpers, which mirror the charge into the phase profile. Keeping
    // this the only mutation path is what makes the profile's
    // sums-to-total invariant structural rather than accidental.

    /// Charge dispatched-computation cycles to a phase.
    pub(crate) fn charge_compute(&mut self, phase: &str, cycles: u64) {
        self.stats.compute_cycles += cycles;
        if let Some(p) = &mut self.profile {
            p.entry(phase).compute_cycles += cycles;
        }
    }

    /// Charge communication cycles to a phase.
    pub(crate) fn charge_comm(&mut self, phase: &str, cycles: u64) {
        self.stats.comm_cycles += cycles;
        if let Some(p) = &mut self.profile {
            p.entry(phase).comm_cycles += cycles;
        }
    }

    /// Charge dispatch/IFIFO overhead cycles to a phase.
    pub(crate) fn charge_dispatch_overhead(&mut self, phase: &str, cycles: u64) {
        self.stats.dispatch_overhead_cycles += cycles;
        if let Some(p) = &mut self.profile {
            p.entry(phase).dispatch_overhead_cycles += cycles;
        }
    }

    /// Charge host cycles to a phase.
    pub(crate) fn charge_host(&mut self, phase: &str, cycles: u64) {
        self.stats.host_cycles += cycles;
        if let Some(p) = &mut self.profile {
            p.entry(phase).host_cycles += cycles;
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &Cm2Config {
        &self.config
    }

    /// Accounting so far.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Reset the accounting (arrays survive). An enabled cycle profile
    /// is cleared with the stats so the sums-to-total invariant holds;
    /// likewise the flight recorder and opcode histograms, whose clocks
    /// and totals are derived from the stats.
    pub fn reset_stats(&mut self) {
        self.stats = MachineStats::default();
        if let Some(p) = &mut self.profile {
            *p = CycleProfile::default();
        }
        if let Some(t) = &mut self.flight {
            *t = Trace::new(ClockDomain::Cycle);
        }
        if let Some(m) = &mut self.opcodes {
            m.clear();
        }
    }

    /// Allocate a zeroed CM array with the given extents and unit lower
    /// bounds.
    pub fn alloc(&mut self, dims: &[usize]) -> ArrayId {
        self.alloc_with_bounds(dims, &vec![1; dims.len()])
    }

    /// Allocate a zeroed CM array with explicit lower bounds.
    pub fn alloc_with_bounds(&mut self, dims: &[usize], lower: &[i64]) -> ArrayId {
        let total = dims.iter().product();
        let id = ArrayId(self.arrays.len());
        self.arrays.push(Some(CmArray {
            dims: dims.to_vec(),
            lower: lower.to_vec(),
            data: vec![0.0; total],
        }));
        id
    }

    /// Allocate and initialise a CM array.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not match the extents.
    pub fn alloc_from(&mut self, dims: &[usize], data: Vec<f64>) -> ArrayId {
        let total: usize = dims.iter().product();
        assert_eq!(data.len(), total, "data length must match extents");
        let id = ArrayId(self.arrays.len());
        self.arrays.push(Some(CmArray {
            dims: dims.to_vec(),
            lower: vec![1; dims.len()],
            data,
        }));
        id
    }

    /// Free an array.
    ///
    /// # Errors
    ///
    /// Fails when the handle is stale.
    pub fn free(&mut self, id: ArrayId) -> Result<(), Cm2Error> {
        let slot = self
            .arrays
            .get_mut(id.0)
            .ok_or_else(|| Cm2Error::Runtime(format!("unknown array {id:?}")))?;
        if slot.take().is_none() {
            return Err(Cm2Error::Runtime(format!("double free of {id:?}")));
        }
        Ok(())
    }

    pub(crate) fn array(&self, id: ArrayId) -> Result<&CmArray, Cm2Error> {
        self.arrays
            .get(id.0)
            .and_then(Option::as_ref)
            .ok_or_else(|| Cm2Error::Runtime(format!("unknown array {id:?}")))
    }

    pub(crate) fn array_mut(&mut self, id: ArrayId) -> Result<&mut CmArray, Cm2Error> {
        self.arrays
            .get_mut(id.0)
            .and_then(Option::as_mut)
            .ok_or_else(|| Cm2Error::Runtime(format!("unknown array {id:?}")))
    }

    /// The extents of an array.
    ///
    /// # Errors
    ///
    /// Fails when the handle is stale.
    pub fn dims(&self, id: ArrayId) -> Result<Vec<usize>, Cm2Error> {
        Ok(self.array(id)?.dims.clone())
    }

    /// A copy of an array's elements (row-major), free of charge — a
    /// harness/verification affordance, not a runtime call.
    ///
    /// # Errors
    ///
    /// Fails when the handle is stale.
    pub fn read(&self, id: ArrayId) -> Result<Vec<f64>, Cm2Error> {
        Ok(self.array(id)?.data.clone())
    }

    /// Overwrite an array's elements, free of charge (harness
    /// affordance).
    ///
    /// # Errors
    ///
    /// Fails when the handle is stale or the length mismatches.
    pub fn write(&mut self, id: ArrayId, data: &[f64]) -> Result<(), Cm2Error> {
        let arr = self.array_mut(id)?;
        if arr.data.len() != data.len() {
            return Err(Cm2Error::Runtime(format!(
                "write of {} elements into array of {}",
                data.len(),
                arr.data.len()
            )));
        }
        arr.data.copy_from_slice(data);
        Ok(())
    }

    /// The blockwise layout of an array on this machine.
    ///
    /// # Errors
    ///
    /// Fails when the handle is stale.
    pub fn layout(&self, id: ArrayId) -> Result<Layout, Cm2Error> {
        Ok(Layout::grid(&self.array(id)?.dims, self.config.nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut cm = Cm2::new(Cm2Config::slicewise(16));
        let a = cm.alloc(&[4, 4]);
        assert_eq!(cm.read(a).unwrap(), vec![0.0; 16]);
        cm.write(a, &[1.5; 16]).unwrap();
        assert_eq!(cm.read(a).unwrap(), vec![1.5; 16]);
    }

    #[test]
    fn free_invalidates_handle() {
        let mut cm = Cm2::new(Cm2Config::slicewise(16));
        let a = cm.alloc(&[8]);
        cm.free(a).unwrap();
        assert!(cm.read(a).is_err());
        assert!(cm.free(a).is_err());
    }

    #[test]
    fn stats_start_at_zero_and_reset() {
        let mut cm = Cm2::new(Cm2Config::slicewise(16));
        assert_eq!(cm.stats().node_cycles(), 0);
        cm.stats.compute_cycles = 100;
        cm.reset_stats();
        assert_eq!(cm.stats().node_cycles(), 0);
    }

    #[test]
    fn gflops_accounting() {
        let stats = MachineStats {
            compute_cycles: 7_000_000, // one second at 7 MHz
            flops: 3_000_000_000,
            ..MachineStats::default()
        };
        assert!((stats.gflops(7.0e6) - 3.0).abs() < 1e-9);
    }
}
