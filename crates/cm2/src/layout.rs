//! Blockwise layout of shapes onto processing elements.
//!
//! The paper (§3.3): "On the Connection Machine, we currently leave the
//! exact partitioning up to the runtime system, and generate host and
//! SIMD node code based on purely local computation over the user's
//! shapes, laid out blockwise to the CM processing elements. The
//! parallel computation over each block is simulated in-processor by a
//! virtual subgrid loop."
//!
//! The CM runtime lays an `n`-dimensional grid out as an `n`-dimensional
//! *block decomposition*: the node set (a power of two) is factored
//! across the axes and each node holds a rectangular subgrid tile. Grid
//! (NEWS) communication then moves only tile *faces* between
//! neighbouring nodes, which is what makes `CSHIFT` cheap along every
//! axis — the property the SWE benchmark's "good locality" relies on.

/// The block layout of one array over the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Per-axis array extents.
    pub dims: Vec<usize>,
    /// Number of processing elements.
    pub nodes: usize,
    /// Per-axis node-grid factors (powers of two, product ≤ `nodes`).
    pub splits: Vec<usize>,
    /// Per-axis tile extents (`ceil(dims/splits)`).
    pub tile: Vec<usize>,
}

impl Layout {
    /// Lay out an array of the given extents over `nodes` PEs by
    /// halving the largest tile axis until the node set is used up (or
    /// every tile axis reaches one element).
    pub fn grid(dims: &[usize], nodes: usize) -> Layout {
        let rank = dims.len().max(1);
        let dims: Vec<usize> = if dims.is_empty() {
            vec![1]
        } else {
            dims.to_vec()
        };
        let mut splits = vec![1usize; rank];
        let tile_of = |dims: &[usize], splits: &[usize], k: usize| dims[k].div_ceil(splits[k]);
        let mut budget = nodes.max(1);
        while budget > 1 {
            // Split the axis with the largest current tile extent.
            let Some(axis) = (0..rank)
                .filter(|&k| tile_of(&dims, &splits, k) > 1)
                .max_by_key(|&k| tile_of(&dims, &splits, k))
            else {
                break;
            };
            splits[axis] *= 2;
            budget /= 2;
        }
        let tile: Vec<usize> = (0..rank).map(|k| tile_of(&dims, &splits, k)).collect();
        Layout {
            dims,
            nodes,
            splits,
            tile,
        }
    }

    /// 1-D convenience used for flat allocations.
    pub fn blockwise(total: usize, nodes: usize) -> Layout {
        Layout::grid(&[total], nodes)
    }

    /// Elements per node (the virtual subgrid size), before vector
    /// padding.
    pub fn subgrid(&self) -> usize {
        self.tile.iter().product()
    }

    /// The virtual-processor ratio: subgrid elements per vector lane.
    pub fn vp_ratio(&self) -> usize {
        self.subgrid().div_ceil(f90y_peac::isa::VLEN).max(1)
    }

    /// Virtual subgrid loop iterations each node executes for an
    /// elementwise pass (one vector per iteration).
    pub fn iterations_per_node(&self) -> u64 {
        self.subgrid().div_ceil(f90y_peac::isa::VLEN) as u64
    }

    /// How many elements a `CSHIFT` by `shift` along `axis` (0-based)
    /// moves across node boundaries, **per node**: the tile's cross
    /// section times the shift distance, clamped to the whole tile.
    pub fn crossing_per_node(&self, axis: usize, shift: i64) -> u64 {
        if axis >= self.tile.len() || self.subgrid() == 0 {
            return self.subgrid() as u64;
        }
        if self.splits[axis] == 1 {
            // The axis is not split across nodes: a circular shift along
            // it stays inside each node (pure local copy).
            return 0;
        }
        let t_axis = self.tile[axis] as u64;
        let face = (self.subgrid() as u64) / t_axis.max(1);
        face * (shift.unsigned_abs()).min(t_axis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grid_splits_both_axes() {
        let l = Layout::grid(&[256, 256], 2048);
        assert_eq!(l.splits.iter().product::<usize>(), 2048);
        assert_eq!(l.subgrid(), 256 * 256 / 2048);
        // Both axes split (64 × 32 or 32 × 64).
        assert!(l.splits.iter().all(|&s| s > 1));
    }

    #[test]
    fn one_d_layout_matches_blockwise() {
        let l = Layout::blockwise(8192, 2048);
        assert_eq!(l.subgrid(), 4);
        assert_eq!(l.splits, vec![2048]);
    }

    #[test]
    fn ragged_totals_round_up() {
        let l = Layout::blockwise(10, 4);
        assert_eq!(l.subgrid(), 3);
    }

    #[test]
    fn vp_ratio_counts_vectors() {
        let l = Layout::grid(&[2048 * 64], 2048);
        assert_eq!(l.subgrid(), 64);
        assert_eq!(l.vp_ratio(), 16);
        assert_eq!(l.iterations_per_node(), 16);
    }

    #[test]
    fn unit_shifts_move_only_faces() {
        let l = Layout::grid(&[256, 256], 2048); // tiles 8×4 or 4×8
        let c0 = l.crossing_per_node(0, 1);
        let c1 = l.crossing_per_node(1, 1);
        // Each is one face of the tile: subgrid/tile_axis.
        assert_eq!(c0, (l.subgrid() / l.tile[0]) as u64);
        assert_eq!(c1, (l.subgrid() / l.tile[1]) as u64);
        // Far smaller than the whole subgrid.
        assert!(c0 < l.subgrid() as u64);
    }

    #[test]
    fn long_shift_caps_at_whole_tile() {
        let l = Layout::grid(&[64, 64], 16); // tiles 16×16
        assert_eq!(l.crossing_per_node(0, 100), l.subgrid() as u64);
    }

    #[test]
    fn unsplit_axis_shifts_are_local() {
        // 4 nodes over 64×64: only one axis is split at 64/16… actually
        // splitting prefers the largest tile, so both may split; force
        // a tall array where all nodes land on axis 0.
        let l = Layout::grid(&[1024, 4], 16);
        assert_eq!(l.splits[1], 1);
        assert_eq!(l.crossing_per_node(1, 1), 0, "axis 1 lives inside nodes");
        assert!(l.crossing_per_node(0, 1) > 0);
    }

    #[test]
    fn small_arrays_leave_nodes_idle() {
        let l = Layout::grid(&[4], 2048);
        assert_eq!(l.subgrid(), 1);
    }

    #[test]
    fn empty_layout_is_safe() {
        let l = Layout::blockwise(0, 16);
        assert_eq!(l.subgrid(), 0);
        assert_eq!(l.iterations_per_node(), 0);
        assert_eq!(l.crossing_per_node(0, 1), 0);
    }
}
