//! The CM runtime system (CMRT) surface.
//!
//! The FE/NIR compiler "replaces certain primitive function calls which
//! represent communication intrinsics by calls to their CM runtime
//! library implementations" and "inserts calling code to push PEAC
//! procedure arguments over the IFIFO to the processors" (paper §5.2).
//! These are those runtime entry points, with the cost model of
//! [`crate::costs`] attached.

use f90y_obs::trace::Actor;
use f90y_peac::costs::body_cycles;
use f90y_peac::isa::Routine;
use f90y_peac::sim::{run_routine, NodeMemory};

use crate::costs;
use crate::machine::{ArrayId, Cm2};
use crate::Cm2Error;

/// Reduction operators supported by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Global sum.
    Sum,
    /// Global maximum.
    Max,
    /// Global minimum.
    Min,
}

impl Cm2 {
    /// Dispatch a PEAC routine elementwise over the given CM arrays.
    ///
    /// All pointer arguments must have equal element counts (they share
    /// one shape and one blockwise layout). Every lane executes; results
    /// land back in CM memory. Charges dispatch overhead plus the
    /// per-node virtual-subgrid loop cost.
    ///
    /// # Errors
    ///
    /// Fails on stale handles, mismatched extents or PEAC faults.
    pub fn dispatch(
        &mut self,
        routine: &Routine,
        ptr_args: &[ArrayId],
        scalar_args: &[f64],
    ) -> Result<(), Cm2Error> {
        if ptr_args.is_empty() {
            return Err(Cm2Error::Runtime(
                "dispatch needs at least one array argument".into(),
            ));
        }
        let total = self.array(ptr_args[0])?.len();
        for &id in ptr_args {
            if self.array(id)?.len() != total {
                return Err(Cm2Error::Runtime(format!(
                    "dispatch arguments disagree on element count \
                     ({} vs {total})",
                    self.array(id)?.len()
                )));
            }
        }
        // Stage the blocks into a node memory image. Blockwise layout
        // tiles the row-major element space contiguously, and the body
        // is elementwise, so running the subgrid loop over the whole
        // space computes exactly what the P lockstep nodes compute.
        // An array passed through several pointer arguments (separate
        // load and store streams of one variable) shares one buffer,
        // just as it shares one region of real CM memory.
        let mut mem = NodeMemory::new();
        let mut base_of: std::collections::HashMap<ArrayId, usize> =
            std::collections::HashMap::new();
        let mut bases = Vec::with_capacity(ptr_args.len());
        for &id in ptr_args {
            let base = match base_of.get(&id) {
                Some(&b) => b,
                None => {
                    let data = self.array(id)?.data.clone();
                    let b = mem.alloc(&data);
                    base_of.insert(id, b);
                    b
                }
            };
            bases.push(base);
        }
        run_routine(routine, &mut mem, &bases, scalar_args, total)?;
        for (&id, &base) in base_of.iter() {
            let out = mem.read(base, total);
            self.array_mut(id)?.data.copy_from_slice(&out);
        }

        // Time: per-node subgrid iterations at the configured
        // multipliers; flops: machine-wide over valid elements.
        let layout = self.layout(ptr_args[0])?;
        let iters = layout.iterations_per_node();
        let body = body_cycles(routine.body());
        let overhead = costs::DISPATCH_BASE_CYCLES
            + costs::DISPATCH_PER_ARG_CYCLES
                * (routine.nargs_ptr() + routine.nargs_scalar()) as u64;
        let phase = format!("dispatch.{}", routine.name());
        let t0 = self.flight_clock();
        self.charge_dispatch_overhead(
            &phase,
            (overhead as f64 * self.config.dispatch_multiplier) as u64,
        );
        let compute = (body as f64 * iters as f64 * self.config.compute_multiplier) as u64;
        self.charge_compute(&phase, compute);
        self.flight_phase(Actor::Machine, &phase, t0);
        if let Some(map) = &mut self.opcodes {
            map.entry(routine.name().to_string())
                .or_default()
                .record_scaled(routine.body(), iters, compute);
        }
        self.overlap_pool = self.overlap_pool.saturating_add(compute);
        let flops_per_elem: u64 = routine
            .body()
            .iter()
            .map(f90y_peac::isa::Instr::flops_per_elem)
            .sum();
        self.stats.flops += flops_per_elem * total as u64;
        self.stats.dispatches += 1;
        if self.trace.is_some() {
            use f90y_peac::isa::Instr;
            let mut arith = 0u64;
            let mut mem = 0u64;
            let mut div = 0u64;
            let mut lib = 0u64;
            for i in routine.body() {
                match i {
                    Instr::Fdivv { .. } => div += 1,
                    Instr::Flib { .. } => lib += 1,
                    Instr::Flodv { .. }
                    | Instr::Fstrv { .. }
                    | Instr::SpillLoad { .. }
                    | Instr::SpillStore { .. } => mem += 1,
                    other if other.is_arith() => arith += 1,
                    _ => {}
                }
            }
            self.record(crate::machine::TraceEvent::Dispatch {
                iterations: iters,
                elements: total,
                arith,
                mem,
                div,
                lib,
                nargs: routine.nargs_ptr() + routine.nargs_scalar(),
                flops: flops_per_elem * total as u64,
            });
        }
        Ok(())
    }

    /// Grid (NEWS) circular shift: a new array whose element `i` along
    /// `axis` (0-based) holds the source's element `i + shift`, wrapped
    /// (Fortran `CSHIFT` semantics).
    ///
    /// # Errors
    ///
    /// Fails on stale handles or a bad axis.
    pub fn cshift(&mut self, src: ArrayId, axis: usize, shift: i64) -> Result<ArrayId, Cm2Error> {
        let (dims, lower, shifted) = {
            let arr = self.array(src)?;
            if axis >= arr.dims.len() {
                return Err(Cm2Error::Runtime(format!(
                    "cshift axis {axis} out of range for rank {}",
                    arr.dims.len()
                )));
            }
            let shifted = shift_data(&arr.data, &arr.dims, axis, shift, None);
            (arr.dims.clone(), arr.lower.clone(), shifted)
        };
        let id = self.alloc_with_bounds(&dims, &lower);
        self.array_mut(id)?.data = shifted;
        self.charge_grid_comm(src, axis, shift)?;
        Ok(id)
    }

    /// Grid end-off shift (Fortran `EOSHIFT`): vacated positions take
    /// `boundary`.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or a bad axis.
    pub fn eoshift(
        &mut self,
        src: ArrayId,
        axis: usize,
        shift: i64,
        boundary: f64,
    ) -> Result<ArrayId, Cm2Error> {
        let (dims, lower, shifted) = {
            let arr = self.array(src)?;
            if axis >= arr.dims.len() {
                return Err(Cm2Error::Runtime(format!(
                    "eoshift axis {axis} out of range for rank {}",
                    arr.dims.len()
                )));
            }
            let shifted = shift_data(&arr.data, &arr.dims, axis, shift, Some(boundary));
            (arr.dims.clone(), arr.lower.clone(), shifted)
        };
        let id = self.alloc_with_bounds(&dims, &lower);
        self.array_mut(id)?.data = shifted;
        self.charge_grid_comm(src, axis, shift)?;
        Ok(id)
    }

    fn charge_grid_comm(&mut self, src: ArrayId, axis: usize, shift: i64) -> Result<(), Cm2Error> {
        let layout = self.layout(src)?;
        let mut cost = costs::grid_comm_cycles(&layout, axis, shift);
        if self.config.pipelined_comm {
            // §5.3.2 model study: hide the transfer behind compute
            // accumulated since the last communication. The runtime-call
            // entry overhead cannot hide (the sequencer is busy issuing
            // it).
            let hideable = cost.saturating_sub(costs::RT_CALL_CYCLES);
            let hidden = hideable.min(self.overlap_pool);
            self.overlap_pool -= hidden;
            cost -= hidden;
        }
        let t0 = self.flight_clock();
        self.charge_comm("news", cost);
        self.flight_phase(Actor::Machine, "news", t0);
        self.stats.comm_calls += 1;
        self.record(crate::machine::TraceEvent::GridComm {
            iterations: layout.iterations_per_node(),
            crossing: layout.crossing_per_node(axis, shift),
        });
        Ok(())
    }

    /// General router copy: clone an array paying worst-case
    /// communication (used when no grid pattern applies).
    ///
    /// # Errors
    ///
    /// Fails on stale handles.
    pub fn router_copy(&mut self, src: ArrayId) -> Result<ArrayId, Cm2Error> {
        let (dims, lower, data) = {
            let arr = self.array(src)?;
            (arr.dims.clone(), arr.lower.clone(), arr.data.clone())
        };
        let layout = self.layout(src)?;
        let id = self.alloc_with_bounds(&dims, &lower);
        self.array_mut(id)?.data = data;
        let t0 = self.flight_clock();
        self.charge_comm("router", costs::router_comm_cycles(&layout));
        self.flight_phase(Actor::Machine, "router", t0);
        self.stats.comm_calls += 1;
        self.record(crate::machine::TraceEvent::Router {
            subgrid: layout.subgrid(),
        });
        Ok(id)
    }

    /// Charge a general-router data movement over an array's layout
    /// without moving data (the host executor moves the data itself
    /// after computing a gather/scatter it could not express as a grid
    /// pattern).
    ///
    /// # Errors
    ///
    /// Fails on stale handles.
    pub fn charge_router_move(&mut self, id: ArrayId) -> Result<(), Cm2Error> {
        let layout = self.layout(id)?;
        let t0 = self.flight_clock();
        self.charge_comm("router", costs::router_comm_cycles(&layout));
        self.flight_phase(Actor::Machine, "router", t0);
        self.stats.comm_calls += 1;
        self.record(crate::machine::TraceEvent::Router {
            subgrid: layout.subgrid(),
        });
        Ok(())
    }

    /// Global reduction to the front end.
    ///
    /// # Errors
    ///
    /// Fails on stale handles.
    pub fn reduce(&mut self, src: ArrayId, op: ReduceOp) -> Result<f64, Cm2Error> {
        let value = {
            let arr = self.array(src)?;
            match op {
                ReduceOp::Sum => arr.data.iter().sum(),
                ReduceOp::Max => arr.data.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                ReduceOp::Min => arr.data.iter().copied().fold(f64::INFINITY, f64::min),
            }
        };
        let layout = self.layout(src)?;
        let t0 = self.flight_clock();
        self.charge_comm(
            "reduce",
            costs::reduction_cycles(&layout, self.config.nodes),
        );
        self.flight_phase(Actor::Machine, "reduce", t0);
        self.stats.reductions += 1;
        self.record(crate::machine::TraceEvent::Reduce {
            iterations: layout.iterations_per_node(),
        });
        Ok(value)
    }

    /// The coordinate subgrid of `axis` (0-based) for arrays of the
    /// given extents and lower bounds: element values are the Fortran
    /// coordinate along that axis. Cached per (extents, bounds, axis);
    /// generation is charged once.
    pub fn coordinates(&mut self, dims: &[usize], lower: &[i64], axis: usize) -> ArrayId {
        let key = (dims.to_vec(), lower.to_vec(), axis);
        if let Some(&id) = self.coord_cache.get(&key) {
            return id;
        }
        let total: usize = dims.iter().product();
        let stride: usize = dims[axis + 1..].iter().product();
        let extent = dims[axis];
        let mut data = Vec::with_capacity(total);
        for flat in 0..total {
            let coord = (flat / stride) % extent;
            data.push((lower[axis] + coord as i64) as f64);
        }
        let layout = crate::layout::Layout::blockwise(total, self.config.nodes);
        let t0 = self.flight_clock();
        self.charge_comm("coord", costs::coordinate_gen_cycles(&layout));
        self.flight_phase(Actor::Machine, "coord", t0);
        let id = self.alloc_with_bounds(dims, lower);
        self.array_mut(id).expect("array just allocated").data = data;
        self.coord_cache.insert(key, id);
        id
    }

    /// Charge host-side work: `n` host program operations.
    pub fn charge_host_ops(&mut self, n: u64) {
        let t0 = self.flight_clock();
        self.charge_host("host", n * costs::HOST_OP_CYCLES);
        self.flight_phase(Actor::Host, "host", t0);
        self.record(crate::machine::TraceEvent::HostOps(n));
    }

    /// Read a single element from the front end (serial host access to
    /// CM memory — slow, used by host-executed serial loops).
    ///
    /// # Errors
    ///
    /// Fails on stale handles or out-of-range flat index.
    pub fn host_read_elem(&mut self, id: ArrayId, flat: usize) -> Result<f64, Cm2Error> {
        let arr = self.array(id)?;
        let v = *arr
            .data
            .get(flat)
            .ok_or_else(|| Cm2Error::Runtime(format!("element {flat} out of range")))?;
        let t0 = self.flight_clock();
        self.charge_host("host", costs::HOST_OP_CYCLES);
        self.charge_comm("host", costs::WIRE_CYCLES_PER_ELEM);
        self.flight_phase(Actor::Host, "host", t0);
        Ok(v)
    }

    /// Write a single element from the front end.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or out-of-range flat index.
    pub fn host_write_elem(&mut self, id: ArrayId, flat: usize, v: f64) -> Result<(), Cm2Error> {
        let t0 = self.flight_clock();
        self.charge_host("host", costs::HOST_OP_CYCLES);
        self.charge_comm("host", costs::WIRE_CYCLES_PER_ELEM);
        self.flight_phase(Actor::Host, "host", t0);
        let arr = self.array_mut(id)?;
        let slot = arr
            .data
            .get_mut(flat)
            .ok_or_else(|| Cm2Error::Runtime(format!("element {flat} out of range")))?;
        *slot = v;
        Ok(())
    }
}

/// Row-major shift along an axis; `boundary: None` wraps (CSHIFT),
/// `Some(b)` end-off fills (EOSHIFT).
///
/// Public because it is *the* reference semantics for Fortran shifts in
/// this reproduction: the MIMD runtime's halo exchange and the property
/// suites compare their distributed results against this single-image
/// function.
pub fn shift_data(
    data: &[f64],
    dims: &[usize],
    axis: usize,
    shift: i64,
    boundary: Option<f64>,
) -> Vec<f64> {
    let inner: usize = dims[axis + 1..].iter().product();
    let extent = dims[axis];
    let outer: usize = dims[..axis].iter().product();
    let n = extent as i64;
    let mut out = vec![0.0; data.len()];
    for o in 0..outer {
        for a in 0..extent {
            let src_a = a as i64 + shift;
            for i in 0..inner {
                let dst = (o * extent + a) * inner + i;
                out[dst] = match boundary {
                    None => {
                        let sa = src_a.rem_euclid(n) as usize;
                        data[(o * extent + sa) * inner + i]
                    }
                    Some(b) => {
                        if src_a < 0 || src_a >= n {
                            b
                        } else {
                            data[(o * extent + src_a as usize) * inner + i]
                        }
                    }
                };
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Cm2Config;
    use f90y_peac::isa::{Instr, Mem, Operand, VReg};

    fn machine() -> Cm2 {
        Cm2::new(Cm2Config::slicewise(16))
    }

    fn add_one_routine() -> Routine {
        Routine::new(
            "inc",
            2,
            0,
            vec![
                Instr::Fimmv {
                    value: 1.0,
                    dst: VReg(1),
                },
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                },
                Instr::Faddv {
                    a: Operand::V(VReg(0)),
                    b: Operand::V(VReg(1)),
                    dst: VReg(2),
                },
                Instr::Fstrv {
                    src: VReg(2),
                    dst: Mem::arg(1),
                    overlapped: false,
                },
            ],
        )
        .expect("valid routine")
    }

    #[test]
    fn dispatch_computes_and_charges() {
        let mut cm = machine();
        let a = cm.alloc_from(&[64], (0..64).map(|i| i as f64).collect());
        let b = cm.alloc(&[64]);
        cm.dispatch(&add_one_routine(), &[a, b], &[]).unwrap();
        let out = cm.read(b).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f64 + 1.0);
        }
        let s = cm.stats();
        assert_eq!(s.dispatches, 1);
        assert!(s.compute_cycles > 0);
        assert!(s.dispatch_overhead_cycles > 0);
        assert_eq!(s.flops, 64); // one add per element
    }

    #[test]
    fn dispatch_time_uses_per_node_subgrid() {
        // Same total work on more nodes → fewer compute cycles.
        let mut small = Cm2::new(Cm2Config::slicewise(4));
        let mut large = Cm2::new(Cm2Config::slicewise(64));
        for cm in [&mut small, &mut large] {
            let a = cm.alloc(&[1024]);
            let b = cm.alloc(&[1024]);
            cm.dispatch(&add_one_routine(), &[a, b], &[]).unwrap();
        }
        assert!(small.stats().compute_cycles > large.stats().compute_cycles);
        assert_eq!(small.stats().flops, large.stats().flops);
    }

    #[test]
    fn mismatched_extents_are_rejected() {
        let mut cm = machine();
        let a = cm.alloc(&[64]);
        let b = cm.alloc(&[32]);
        assert!(cm.dispatch(&add_one_routine(), &[a, b], &[]).is_err());
    }

    #[test]
    fn cshift_matches_fortran_convention() {
        let mut cm = machine();
        let a = cm.alloc_from(&[5], vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = cm.cshift(a, 0, 1).unwrap();
        assert_eq!(cm.read(s).unwrap(), vec![2.0, 3.0, 4.0, 5.0, 1.0]);
        let s = cm.cshift(a, 0, -1).unwrap();
        assert_eq!(cm.read(s).unwrap(), vec![5.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cm.stats().comm_calls, 2);
        assert!(cm.stats().comm_cycles > 0);
    }

    #[test]
    fn cshift_2d_axes() {
        let mut cm = machine();
        let a = cm.alloc_from(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let rows = cm.cshift(a, 0, 1).unwrap();
        assert_eq!(cm.read(rows).unwrap(), vec![4.0, 5.0, 6.0, 1.0, 2.0, 3.0]);
        let cols = cm.cshift(a, 1, -1).unwrap();
        assert_eq!(cm.read(cols).unwrap(), vec![3.0, 1.0, 2.0, 6.0, 4.0, 5.0]);
    }

    #[test]
    fn eoshift_fills_boundary() {
        let mut cm = machine();
        let a = cm.alloc_from(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let s = cm.eoshift(a, 0, 2, 0.0).unwrap();
        assert_eq!(cm.read(s).unwrap(), vec![3.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn eoshift_negative_shift_fills_from_the_front() {
        let mut cm = machine();
        let a = cm.alloc_from(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let s = cm.eoshift(a, 0, -1, -7.5).unwrap();
        assert_eq!(cm.read(s).unwrap(), vec![-7.5, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn eoshift_nonzero_boundary_on_2d_axes() {
        let mut cm = machine();
        let a = cm.alloc_from(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // Shift whole rows up: the vacated row takes the boundary.
        let rows = cm.eoshift(a, 0, 1, 9.0).unwrap();
        assert_eq!(cm.read(rows).unwrap(), vec![4.0, 5.0, 6.0, 9.0, 9.0, 9.0]);
        // Shift columns right: the vacated column takes the boundary.
        let cols = cm.eoshift(a, 1, -1, 9.0).unwrap();
        assert_eq!(cm.read(cols).unwrap(), vec![9.0, 1.0, 2.0, 9.0, 4.0, 5.0]);
    }

    #[test]
    fn eoshift_overlong_shift_is_all_boundary() {
        let mut cm = machine();
        let a = cm.alloc_from(&[3], vec![1.0, 2.0, 3.0]);
        let s = cm.eoshift(a, 0, 5, 0.25).unwrap();
        assert_eq!(cm.read(s).unwrap(), vec![0.25, 0.25, 0.25]);
    }

    #[test]
    fn shifts_along_unsplit_axes_are_cheaper() {
        // A tall array: all node splits land on axis 0, so axis-1
        // shifts stay node-local and cost only the runtime call plus
        // the local copy — no wire traffic.
        let mut cm = Cm2::new(Cm2Config::slicewise(16));
        let a = cm.alloc(&[1024, 4]);
        cm.cshift(a, 1, 1).unwrap();
        let cheap = cm.stats().comm_cycles;
        cm.reset_stats();
        cm.cshift(a, 0, 1).unwrap();
        let dear = cm.stats().comm_cycles;
        assert!(
            dear > cheap,
            "split-axis shift ({dear}) should out-cost node-local shift ({cheap})"
        );
    }

    #[test]
    fn reductions_reduce_and_charge() {
        let mut cm = machine();
        let a = cm.alloc_from(&[10], (1..=10).map(|i| i as f64).collect());
        assert_eq!(cm.reduce(a, ReduceOp::Sum).unwrap(), 55.0);
        assert_eq!(cm.reduce(a, ReduceOp::Max).unwrap(), 10.0);
        assert_eq!(cm.reduce(a, ReduceOp::Min).unwrap(), 1.0);
        assert_eq!(cm.stats().reductions, 3);
    }

    #[test]
    fn reductions_over_negative_values() {
        // MAX and MIN must not confuse magnitude with order, and SUM
        // must not drop sign.
        let mut cm = machine();
        let a = cm.alloc_from(&[4], vec![-3.0, -1.0, -4.0, -2.0]);
        assert_eq!(cm.reduce(a, ReduceOp::Sum).unwrap(), -10.0);
        assert_eq!(cm.reduce(a, ReduceOp::Max).unwrap(), -1.0);
        assert_eq!(cm.reduce(a, ReduceOp::Min).unwrap(), -4.0);
    }

    #[test]
    fn reductions_on_a_singleton() {
        let mut cm = machine();
        let a = cm.alloc_from(&[1], vec![6.5]);
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
            assert_eq!(cm.reduce(a, op).unwrap(), 6.5);
        }
    }

    #[test]
    fn coordinates_are_cached() {
        let mut cm = machine();
        let c1 = cm.coordinates(&[4, 4], &[1, 1], 0);
        let after_first = cm.stats().comm_cycles;
        let c2 = cm.coordinates(&[4, 4], &[1, 1], 0);
        assert_eq!(c1, c2);
        assert_eq!(cm.stats().comm_cycles, after_first, "second call is cached");
        let data = cm.read(c1).unwrap();
        assert_eq!(data[0], 1.0);
        assert_eq!(data[4], 2.0); // row 2
        let cc = cm.coordinates(&[4, 4], &[1, 1], 1);
        let data = cm.read(cc).unwrap();
        assert_eq!(data[0], 1.0);
        assert_eq!(data[1], 2.0); // column 2
    }

    #[test]
    fn flight_phases_tile_the_cycle_clock() {
        use f90y_obs::trace::TraceEvent as E;
        let mut cm = machine();
        cm.enable_flight_recorder();
        let a = cm.alloc_from(&[64], (0..64).map(|i| i as f64).collect());
        let b = cm.alloc(&[64]);
        cm.dispatch(&add_one_routine(), &[a, b], &[]).unwrap();
        cm.cshift(a, 0, 1).unwrap();
        cm.reduce(a, ReduceOp::Sum).unwrap();
        cm.host_read_elem(a, 0).unwrap();
        let phases: Vec<(String, u64, u64)> = cm
            .flight()
            .unwrap()
            .events()
            .iter()
            .filter_map(|e| match e {
                E::Phase {
                    label, start, end, ..
                } => Some((label.clone(), *start, *end)),
                _ => None,
            })
            .collect();
        let labels: Vec<&str> = phases.iter().map(|p| p.0.as_str()).collect();
        assert_eq!(labels, ["dispatch.inc", "news", "reduce", "host"]);
        // The clock only moves through charge_* calls, so consecutive
        // phases tile the cycle axis with no gaps or overlaps.
        assert_eq!(phases[0].1, 0);
        for w in phases.windows(2) {
            assert_eq!(w[1].1, w[0].2, "phase {} starts off-clock", w[1].0);
        }
        let s = cm.stats();
        assert_eq!(
            phases.last().unwrap().2,
            s.node_cycles() + s.host_cycles,
            "last phase ends at the final clock"
        );
    }

    #[test]
    fn opcode_profile_reconciles_with_cycle_profile_to_the_cycle() {
        let mut cm = machine();
        cm.enable_profile();
        cm.enable_opcode_profile();
        let a = cm.alloc_from(&[100], (0..100).map(|i| i as f64).collect());
        let b = cm.alloc(&[100]);
        let routine = add_one_routine();
        cm.dispatch(&routine, &[a, b], &[]).unwrap();
        cm.dispatch(&routine, &[b, a], &[]).unwrap();
        let ops = cm.opcode_profiles().unwrap();
        let hist = ops.get("inc").expect("routine profiled");
        let charged = cm
            .profile()
            .unwrap()
            .phase("dispatch.inc")
            .unwrap()
            .compute_cycles;
        assert!(charged > 0);
        assert_eq!(hist.total_cycles(), charged);
    }

    #[test]
    fn reset_stats_clears_flight_and_opcode_state() {
        let mut cm = machine();
        cm.enable_flight_recorder();
        cm.enable_opcode_profile();
        let a = cm.alloc(&[64]);
        let b = cm.alloc(&[64]);
        cm.dispatch(&add_one_routine(), &[a, b], &[]).unwrap();
        assert!(!cm.flight().unwrap().events().is_empty());
        assert!(!cm.opcode_profiles().unwrap().is_empty());
        cm.reset_stats();
        assert!(cm.flight().unwrap().events().is_empty());
        assert!(cm.opcode_profiles().unwrap().is_empty());
    }

    #[test]
    fn host_element_access_charges_host_and_wire() {
        let mut cm = machine();
        let a = cm.alloc_from(&[4], vec![9.0, 8.0, 7.0, 6.0]);
        assert_eq!(cm.host_read_elem(a, 2).unwrap(), 7.0);
        cm.host_write_elem(a, 0, 1.0).unwrap();
        assert_eq!(cm.read(a).unwrap()[0], 1.0);
        assert!(cm.stats().host_cycles > 0);
        assert!(cm.stats().comm_cycles > 0);
    }
}
