//! Tests of the machine trace facility and of machine behaviours the
//! unit tests don't reach: coordinate bounds, pipelined-communication
//! accounting, and stats decomposition.

use f90y_cm2::{Cm2, Cm2Config, TraceEvent};
use f90y_peac::isa::{Instr, Mem, Operand, Routine, VReg};

fn incr_routine() -> Routine {
    Routine::new(
        "inc",
        2,
        0,
        vec![
            Instr::Fimmv {
                value: 1.0,
                dst: VReg(1),
            },
            Instr::Flodv {
                src: Mem::arg(0),
                dst: VReg(0),
                overlapped: false,
            },
            Instr::Faddv {
                a: Operand::V(VReg(0)),
                b: Operand::V(VReg(1)),
                dst: VReg(2),
            },
            Instr::Fstrv {
                src: VReg(2),
                dst: Mem::arg(1),
                overlapped: false,
            },
        ],
    )
    .expect("valid")
}

#[test]
fn trace_records_dispatches_and_comm_in_order() {
    let mut cm = Cm2::new(Cm2Config::slicewise(16));
    cm.enable_trace();
    let a = cm.alloc_from(&[64], (0..64).map(|i| i as f64).collect());
    let b = cm.alloc(&[64]);
    cm.dispatch(&incr_routine(), &[a, b], &[]).unwrap();
    let s = cm.cshift(a, 0, 1).unwrap();
    cm.reduce(s, f90y_cm2::runtime::ReduceOp::Sum).unwrap();

    let trace = cm.trace().expect("tracing enabled");
    // The machine identifies itself first, so replay consumers can
    // check the trace matches their geometry.
    assert!(matches!(trace[0], TraceEvent::Machine { nodes: 16 }));
    assert!(matches!(
        trace[1],
        TraceEvent::Dispatch {
            elements: 64,
            nargs: 2,
            ..
        }
    ));
    assert!(matches!(trace[2], TraceEvent::GridComm { .. }));
    assert!(matches!(trace[3], TraceEvent::Reduce { .. }));
    // Dispatch flops recorded machine-wide (one add per element).
    let TraceEvent::Dispatch {
        flops, arith, mem, ..
    } = trace[1]
    else {
        panic!("second event is a dispatch")
    };
    assert_eq!(flops, 64);
    assert_eq!(arith, 1, "only the add is arithmetic (fimmv is a move)");
    assert_eq!(mem, 2);
}

#[test]
fn tracing_off_records_nothing() {
    let mut cm = Cm2::new(Cm2Config::slicewise(16));
    let a = cm.alloc(&[32]);
    cm.cshift(a, 0, 1).unwrap();
    assert!(cm.trace().is_none());
}

#[test]
fn coordinates_respect_lower_bounds() {
    let mut cm = Cm2::new(Cm2Config::slicewise(4));
    let c = cm.coordinates(&[3, 2], &[0, -1], 0);
    assert_eq!(cm.read(c).unwrap(), vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    let c = cm.coordinates(&[3, 2], &[0, -1], 1);
    assert_eq!(cm.read(c).unwrap(), vec![-1.0, 0.0, -1.0, 0.0, -1.0, 0.0]);
}

#[test]
fn pipelined_comm_hides_behind_compute() {
    let plain_cfg = Cm2Config::slicewise(16);
    let piped_cfg = Cm2Config {
        pipelined_comm: true,
        ..Cm2Config::slicewise(16)
    };
    let run = |cfg: Cm2Config| {
        let mut cm = Cm2::new(cfg);
        let a = cm.alloc(&[1 << 14]);
        let b = cm.alloc(&[1 << 14]);
        // Plenty of compute, then one communication.
        for _ in 0..4 {
            cm.dispatch(&incr_routine(), &[a, b], &[]).unwrap();
        }
        cm.cshift(a, 0, 1).unwrap();
        cm.stats()
    };
    let plain = run(plain_cfg);
    let piped = run(piped_cfg);
    assert_eq!(plain.compute_cycles, piped.compute_cycles);
    assert!(
        piped.comm_cycles < plain.comm_cycles,
        "transfer should hide: {} vs {}",
        piped.comm_cycles,
        plain.comm_cycles
    );
    // The runtime-call entry overhead never hides.
    assert!(piped.comm_cycles >= f90y_cm2::costs::RT_CALL_CYCLES);
}

#[test]
fn pipelined_pool_drains() {
    // Two back-to-back communications: the second finds no compute to
    // hide behind and pays full price.
    let mut cm = Cm2::new(Cm2Config {
        pipelined_comm: true,
        ..Cm2Config::slicewise(16)
    });
    let a = cm.alloc(&[1 << 12]);
    let b = cm.alloc(&[1 << 12]);
    cm.dispatch(&incr_routine(), &[a, b], &[]).unwrap();
    cm.cshift(a, 0, 1).unwrap();
    let after_first = cm.stats().comm_cycles;
    cm.cshift(a, 0, 1).unwrap();
    let second = cm.stats().comm_cycles - after_first;
    assert!(
        second >= after_first,
        "a drained pool cannot keep hiding: first {} vs second {}",
        after_first,
        second
    );
}

#[test]
fn profile_attributes_every_cycle_to_a_phase() {
    // Exercise every charge path: dispatch (compute + overhead), NEWS,
    // router, reduce, coordinate generation, bulk host ops, and host
    // element access (host + wire comm).
    let mut cm = Cm2::new(Cm2Config::slicewise(16));
    cm.enable_profile();
    let a = cm.alloc_from(&[64], (0..64).map(|i| i as f64).collect());
    let b = cm.alloc(&[64]);
    cm.dispatch(&incr_routine(), &[a, b], &[]).unwrap();
    cm.dispatch(&incr_routine(), &[b, a], &[]).unwrap();
    let s = cm.cshift(a, 0, 1).unwrap();
    cm.router_copy(s).unwrap();
    cm.reduce(s, f90y_cm2::runtime::ReduceOp::Sum).unwrap();
    cm.coordinates(&[64], &[1], 0);
    cm.charge_host_ops(10);
    cm.host_read_elem(a, 3).unwrap();
    cm.host_write_elem(a, 3, 0.5).unwrap();

    let stats = cm.stats();
    let profile = cm.profile().expect("profiling enabled").clone();

    // The invariant the telemetry layer leans on: per-phase cycles sum
    // exactly to the machine totals — no lost or double-counted cycles.
    profile.verify_against(&stats).unwrap();
    assert_eq!(
        profile.compute_total() + profile.comm_total() + profile.dispatch_overhead_total(),
        stats.node_cycles()
    );

    // Each runtime-call category shows up under its own tag.
    let dispatch = profile.phase("dispatch.inc").expect("dispatch phase");
    assert!(dispatch.compute_cycles > 0);
    assert!(dispatch.dispatch_overhead_cycles > 0);
    assert!(profile.phase("news").unwrap().comm_cycles > 0);
    assert!(profile.phase("router").unwrap().comm_cycles > 0);
    assert!(profile.phase("reduce").unwrap().comm_cycles > 0);
    assert!(profile.phase("coord").unwrap().comm_cycles > 0);
    let host = profile.phase("host").expect("host phase");
    assert!(host.host_cycles > 0);
    assert!(host.comm_cycles > 0, "host element access pays wire cycles");
}

#[test]
fn profile_off_by_default_and_reset_clears_it() {
    let mut cm = Cm2::new(Cm2Config::slicewise(16));
    let a = cm.alloc(&[32]);
    cm.cshift(a, 0, 1).unwrap();
    assert!(cm.profile().is_none());

    cm.enable_profile();
    cm.cshift(a, 0, 1).unwrap();
    assert!(cm.profile().unwrap().comm_total() > 0);
    cm.reset_stats();
    let profile = cm.profile().expect("still enabled");
    assert_eq!(profile.comm_total(), 0, "reset keeps the sum invariant");
    profile.verify_against(&cm.stats()).unwrap();
}

#[test]
fn stats_decompose_into_the_three_cm_categories() {
    let mut cm = Cm2::new(Cm2Config::slicewise(16));
    let a = cm.alloc(&[256]);
    let b = cm.alloc(&[256]);
    cm.dispatch(&incr_routine(), &[a, b], &[]).unwrap();
    cm.cshift(a, 0, 1).unwrap();
    cm.charge_host_ops(10);
    let s = cm.stats();
    assert_eq!(
        s.node_cycles(),
        s.compute_cycles + s.comm_cycles + s.dispatch_overhead_cycles
    );
    assert!(s.host_cycles > 0);
    assert!(s.elapsed_seconds(7.0e6) > 0.0);
    assert!(s.host_fraction(7.0e6) > 0.0 && s.host_fraction(7.0e6) < 1.0);
}
