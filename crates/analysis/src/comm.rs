//! Static communication-plan analysis over NIR.
//!
//! The paper's premise is that communication dominates on massively
//! parallel machines; this module recovers the communication structure
//! of a program from its text alone. [`comm_plan`] abstractly
//! interprets one NIR tree and classifies every communication
//! operation — grid shifts become [`CommKind::Halo`] with an axis and a
//! width, `SPREAD` a [`CommKind::Broadcast`], the reduction intrinsics
//! [`CommKind::Reduce`], `TRANSPOSE` a [`CommKind::AllToAll`] — each
//! with the geometry of the array it moves and the static execution
//! multiplicity of its enclosing loops.
//!
//! Three clients ride on the plan:
//!
//! * [`price`] folds it against a [`TargetManifest`] cost block for a
//!   static per-target *model estimate* (the bit-exact count
//!   prediction, reconciled against the flight recorder, is the
//!   backend's static profile; this is the cheap NIR-level cousin any
//!   pipeline-search loop can afford to call thousands of times);
//! * [`comm_lints`] — `W-WIDE-HALO`, `W-REDUNDANT-COMM`,
//!   `W-ALLTOALL`, the communication diagnostics of `f90yc --lint`;
//! * [`CommFacts`] — the pass-audit side: a signature multiset of the
//!   plan, checked after every middle-end pass so a pass that invents
//!   or retargets communication fails by name.

use std::collections::BTreeMap;
use std::fmt;

use f90y_hal::{TargetKind, TargetManifest, Topology};
use f90y_nir::imp::{LValue, MoveClause};
use f90y_nir::shape::DomainEnv;
use f90y_nir::value::FieldAction;
use f90y_nir::{Const, Ident, Imp, Shape, Type, Value};

use crate::index::StmtIndex;
use crate::lint::{Diagnostic, WarnCode};
use crate::reaching::ReachingFacts;

/// What one communication operation is, structurally.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CommKind {
    /// A grid shift: nearest-neighbour halo traffic along one axis.
    /// `width` is the halo depth (`|shift|`); `None` when the distance
    /// is not a compile-time constant.
    Halo {
        /// Zero-based shift axis.
        axis: usize,
        /// Halo width, when statically known.
        width: Option<u64>,
    },
    /// `SPREAD`: one value replicated along a new axis.
    Broadcast,
    /// A reduction intrinsic combining over the machine.
    Reduce {
        /// The combining operation (`sum`, `maxval`, `minval`).
        op: String,
    },
    /// Transpose-shaped traffic: every element changes owner.
    AllToAll,
}

impl fmt::Display for CommKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommKind::Halo {
                axis,
                width: Some(w),
            } => {
                write!(f, "halo(axis {}, width {w})", axis + 1)
            }
            CommKind::Halo { axis, width: None } => {
                write!(f, "halo(axis {}, dynamic width)", axis + 1)
            }
            CommKind::Broadcast => write!(f, "broadcast"),
            CommKind::Reduce { op } => write!(f, "reduce({op})"),
            CommKind::AllToAll => write!(f, "all-to-all"),
        }
    }
}

/// One communication operation of the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommOp {
    /// Classification.
    pub kind: CommKind,
    /// The communicated array, when the operand is a plain variable.
    pub array: Option<Ident>,
    /// Signed shift distance (halo ops with a constant distance).
    pub shift: Option<i64>,
    /// `true` for `EOSHIFT` (end-off; no wraparound traffic).
    pub eoshift: bool,
    /// Extents of the moved array, when statically resolvable.
    pub dims: Option<Vec<usize>>,
    /// Pre-order id of the statement the op occurs in.
    pub stmt: usize,
    /// Static execution count: the product of the sizes of all
    /// enclosing `DO` shapes (1 outside any loop).
    pub multiplicity: u64,
    /// `true` when the op sits under a `WHILE`, whose trip count the
    /// plan cannot bound.
    pub in_while: bool,
}

/// The static communication plan of one program.
#[derive(Debug, Clone, Default)]
pub struct CommPlan {
    /// Every communication op, in pre-order.
    pub ops: Vec<CommOp>,
    /// Maximum constant halo width per `(array, axis)`.
    pub halo_widths: BTreeMap<(Ident, usize), u64>,
    /// `false` when some op's execution count or width is not statically
    /// known (`WHILE` bodies, dynamic shift distances).
    pub exact: bool,
    /// Statements scanned.
    pub stmts_analyzed: usize,
}

impl CommPlan {
    /// Total op executions (multiplicity-weighted).
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|o| o.multiplicity).sum()
    }

    /// Multiplicity-weighted count of ops matching a predicate.
    fn weighted(&self, p: impl Fn(&CommOp) -> bool) -> u64 {
        self.ops
            .iter()
            .filter(|o| p(o))
            .map(|o| o.multiplicity)
            .sum()
    }

    /// Halo (shift) executions.
    #[must_use]
    pub fn halo_ops(&self) -> u64 {
        self.weighted(|o| matches!(o.kind, CommKind::Halo { .. }))
    }

    /// Reduction executions.
    #[must_use]
    pub fn reduce_ops(&self) -> u64 {
        self.weighted(|o| matches!(o.kind, CommKind::Reduce { .. }))
    }

    /// Broadcast + all-to-all executions (router-class traffic).
    #[must_use]
    pub fn router_ops(&self) -> u64 {
        self.weighted(|o| matches!(o.kind, CommKind::Broadcast | CommKind::AllToAll))
    }
}

/// Compute the static communication plan of a lowered or optimized NIR
/// program.
#[must_use]
pub fn comm_plan(root: &Imp) -> CommPlan {
    let index = StmtIndex::of(root);
    let mut scan = PlanScan {
        index: &index,
        domains: Vec::new(),
        shapes: Vec::new(),
        mult: 1,
        while_depth: 0,
        plan: CommPlan {
            exact: true,
            ..CommPlan::default()
        },
    };
    scan.scan(root);
    scan.plan.stmts_analyzed = index.len();
    scan.plan
}

struct PlanScan<'a, 'i> {
    index: &'i StmtIndex<'a>,
    domains: Vec<(Ident, Shape)>,
    /// Declared array shapes in scope, innermost last.
    shapes: Vec<(Ident, Vec<usize>)>,
    mult: u64,
    while_depth: usize,
    plan: CommPlan,
}

impl PlanScan<'_, '_> {
    fn domain_env(&self) -> DomainEnv {
        self.domains.iter().cloned().collect()
    }

    fn dims_of(&self, id: &str) -> Option<Vec<usize>> {
        self.shapes
            .iter()
            .rev()
            .find(|(n, _)| n == id)
            .map(|(_, d)| d.clone())
    }

    fn scan(&mut self, imp: &Imp) {
        match imp {
            Imp::Skip => {}
            Imp::Program(b) => self.scan(b),
            Imp::Sequentially(xs) | Imp::Concurrently(xs) => {
                for x in xs {
                    self.scan(x);
                }
            }
            Imp::Move(clauses) => {
                let id = self.index.id(imp);
                for c in clauses {
                    self.scan_value(id, &c.mask);
                    self.scan_value(id, &c.src);
                    if let LValue::AVar(_, FieldAction::Subscript(ixs)) = &c.dst {
                        for ix in ixs {
                            self.scan_value(id, ix);
                        }
                    }
                }
            }
            Imp::IfThenElse(c, t, e) => {
                let id = self.index.id(imp);
                self.scan_value(id, c);
                self.scan(t);
                self.scan(e);
            }
            Imp::While(c, b) => {
                let id = self.index.id(imp);
                self.scan_value(id, c);
                self.while_depth += 1;
                self.plan.exact = false;
                self.scan(b);
                self.while_depth -= 1;
            }
            Imp::Do(_, shape, b) => {
                let size = shape
                    .resolve(&self.domain_env())
                    .map(|s| s.size() as u64)
                    .unwrap_or(1);
                let saved = self.mult;
                self.mult = saved.saturating_mul(size);
                self.scan(b);
                self.mult = saved;
            }
            Imp::WithDecl(d, b) => {
                let before = self.shapes.len();
                for (name, ty, init) in d.bindings() {
                    if let Some(v) = init {
                        let id = self.index.id(imp);
                        self.scan_value(id, v);
                    }
                    if let Type::DField { shape, .. } = ty {
                        if let Ok(resolved) = shape.resolve(&self.domain_env()) {
                            let dims = resolved.extents().iter().map(|e| e.len()).collect();
                            self.shapes.push((name.clone(), dims));
                        }
                    }
                }
                self.scan(b);
                self.shapes.truncate(before);
            }
            Imp::WithDomain(name, shape, b) => {
                let resolved = shape
                    .resolve(&self.domain_env())
                    .unwrap_or_else(|_| shape.clone());
                self.domains.push((name.clone(), resolved));
                self.scan(b);
                self.domains.pop();
            }
        }
    }

    fn scan_value(&mut self, stmt: usize, v: &Value) {
        if let Value::FcnCall(name, args) = v {
            self.classify_call(stmt, name, args);
        }
        // Nested communication materialises separately on every target;
        // each call is its own op.
        match v {
            Value::Unary(_, a) => self.scan_value(stmt, a),
            Value::Binary(_, a, b) => {
                self.scan_value(stmt, a);
                self.scan_value(stmt, b);
            }
            Value::FcnCall(_, args) => {
                for (_, a) in args {
                    self.scan_value(stmt, a);
                }
            }
            Value::AVar(_, FieldAction::Subscript(ixs)) => {
                for ix in ixs {
                    self.scan_value(stmt, ix);
                }
            }
            _ => {}
        }
    }

    fn classify_call(&mut self, stmt: usize, name: &str, args: &[(Type, Value)]) {
        let operand = args.first().map(|(_, v)| v);
        let array = match operand {
            Some(Value::AVar(id, _)) => Some(id.clone()),
            _ => None,
        };
        let dims = array.as_deref().and_then(|id| self.dims_of(id));
        let kind = match name {
            "cshift" | "eoshift" => {
                let shift = args.get(1).map_or(Some(1), |(_, v)| literal_i64(v));
                let axis = args
                    .get(2)
                    .map_or(Some(1), |(_, v)| literal_i64(v))
                    .filter(|d| *d >= 1)
                    .map(|d| d as usize - 1)
                    .unwrap_or(0);
                if shift.is_none() {
                    self.plan.exact = false;
                }
                let width = shift.map(i64::unsigned_abs);
                if let (Some(a), Some(w)) = (&array, width) {
                    let e = self.plan.halo_widths.entry((a.clone(), axis)).or_insert(0);
                    *e = (*e).max(w);
                }
                self.plan.ops.push(CommOp {
                    kind: CommKind::Halo { axis, width },
                    array,
                    shift,
                    eoshift: name == "eoshift",
                    dims,
                    stmt,
                    multiplicity: self.mult,
                    in_while: self.while_depth > 0,
                });
                return;
            }
            "spread" => CommKind::Broadcast,
            "sum" | "maxval" | "minval" => CommKind::Reduce {
                op: name.to_string(),
            },
            "transpose" => CommKind::AllToAll,
            _ => return,
        };
        self.plan.ops.push(CommOp {
            kind,
            array,
            shift: None,
            eoshift: false,
            dims,
            stmt,
            multiplicity: self.mult,
            in_while: self.while_depth > 0,
        });
    }
}

fn literal_i64(v: &Value) -> Option<i64> {
    match v {
        Value::Scalar(Const::I32(i)) => Some(i64::from(*i)),
        Value::Unary(f90y_nir::UnOp::Neg, inner) => literal_i64(inner).map(|i| -i),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Pricing against a target manifest.
// ---------------------------------------------------------------------

/// One op's model cost.
#[derive(Debug, Clone)]
pub struct PricedOp {
    /// The op priced.
    pub op: CommOp,
    /// Modelled seconds for all executions of this op.
    pub seconds: f64,
}

/// The plan priced against one target manifest.
#[derive(Debug, Clone)]
pub struct PricedPlan {
    /// Manifest name (`cm2`, `cm5`, `accel`).
    pub target: &'static str,
    /// Modelled communication seconds, summed.
    pub total_seconds: f64,
    /// Per-op breakdown, plan order.
    pub ops: Vec<PricedOp>,
}

/// Price a communication plan against a manifest's cost block for a
/// machine of `nodes` nodes.
///
/// This is a *model estimate* from NIR geometry alone — deliberately
/// cheap, for search loops and tables. The bit-exact per-target call
/// counts come from the backend's static profile of the compiled
/// program.
#[must_use]
pub fn price(plan: &CommPlan, manifest: &TargetManifest, nodes: usize) -> PricedPlan {
    let nodes = nodes.max(1);
    let ops = plan
        .ops
        .iter()
        .map(|op| {
            let elems = op.dims.as_ref().map_or(0, |d| d.iter().product::<usize>());
            let per_node = (elems / nodes).max(1) as u64;
            // Elements crossing an ownership cut for a halo op: the
            // boundary face times the halo width.
            let crossing = match (&op.kind, op.dims.as_ref()) {
                (
                    CommKind::Halo {
                        axis,
                        width: Some(w),
                    },
                    Some(d),
                ) if *axis < d.len() => {
                    let face = elems as u64 / (d[*axis].max(1) as u64);
                    face * w
                }
                _ => per_node,
            };
            let once = match manifest.kind {
                TargetKind::Simd => {
                    let c = manifest.simd.expect("SIMD manifest has simd costs");
                    let cycles = match &op.kind {
                        CommKind::Halo { .. } => {
                            c.grid_comm_cycles(per_node, crossing / nodes as u64)
                        }
                        CommKind::Broadcast | CommKind::AllToAll => {
                            c.router_comm_cycles(per_node as usize)
                        }
                        CommKind::Reduce { .. } => c.reduction_cycles(per_node, nodes),
                    };
                    cycles as f64 / manifest.clock_hz
                }
                TargetKind::Mimd => {
                    let c = manifest.mimd.expect("MIMD manifest has mimd costs");
                    let bytes = match &op.kind {
                        CommKind::Halo { .. } => crossing as f64 * c.element_bytes,
                        CommKind::Broadcast | CommKind::AllToAll => elems as f64 * c.element_bytes,
                        CommKind::Reduce { .. } => nodes as f64 * c.element_bytes,
                    };
                    c.net_call_seconds + bytes / c.network_bytes_per_sec
                }
                TargetKind::Accel => {
                    let c = manifest.accel.expect("accel manifest has accel costs");
                    let cycles = match &op.kind {
                        CommKind::Halo { .. } => c.comm_call_cycles,
                        CommKind::Broadcast | CommKind::AllToAll => {
                            c.comm_call_cycles + elems as u64 * c.gather_factor
                        }
                        CommKind::Reduce { .. } => {
                            c.comm_call_cycles
                                + c.transfer_setup_cycles
                                + c.transfer_cycles_per_elem
                        }
                    };
                    cycles as f64 / manifest.clock_hz
                }
            };
            PricedOp {
                op: op.clone(),
                seconds: once * op.multiplicity as f64,
            }
        })
        .collect::<Vec<_>>();
    PricedPlan {
        target: manifest.name,
        total_seconds: ops.iter().map(|p| p.seconds).sum(),
        ops,
    }
}

// ---------------------------------------------------------------------
// Communication lints.
// ---------------------------------------------------------------------

/// Run the communication lints over one program (by convention the
/// *optimized* stage: `W-REDUNDANT-COMM` flags exactly the duplicates
/// the middle end had its chance to merge and did not).
///
/// `topology` decides whether transpose-shaped traffic is worth a
/// warning: on a mesh/hypercube every all-to-all rides the slow general
/// router, on a fat tree or a host bus it is no worse than any other
/// move.
#[must_use]
pub fn comm_lints(root: &Imp, topology: Topology) -> Vec<Diagnostic> {
    let plan = comm_plan(root);
    let index = StmtIndex::of(root);
    let mut out: Vec<(usize, Diagnostic)> = Vec::new();

    // W-WIDE-HALO: a wide shift of an array/axis that also moves with
    // width 1 — the wide plan could be a repeated 1-wide exchange and
    // usually means a missed stencil restructuring.
    for op in &plan.ops {
        let CommKind::Halo {
            axis,
            width: Some(w),
        } = &op.kind
        else {
            continue;
        };
        let Some(array) = &op.array else { continue };
        if *w <= 1 {
            continue;
        }
        let has_unit = plan.ops.iter().any(|o| {
            o.array.as_ref() == Some(array)
                && matches!(&o.kind, CommKind::Halo { axis: a, width: Some(1) } if a == axis)
        });
        if has_unit {
            out.push((
                op.stmt,
                Diagnostic {
                    code: WarnCode::WideHalo,
                    var: array.clone(),
                    message: format!(
                        "'{array}' is shifted by {w} along axis {} although a 1-wide halo \
                         plan exists for the same array and axis",
                        axis + 1
                    ),
                    stmt: Some(pretty(index.node(op.stmt))),
                },
            ));
        }
    }

    // W-ALLTOALL: transpose-shaped comm where the topology makes every
    // element cross the machine.
    if topology == Topology::Hypercube {
        for op in &plan.ops {
            if op.kind != CommKind::AllToAll {
                continue;
            }
            let var = op.array.clone().unwrap_or_else(|| "<expr>".to_string());
            out.push((
                op.stmt,
                Diagnostic {
                    code: WarnCode::AllToAll,
                    var: var.clone(),
                    message: format!(
                        "transpose of '{var}' is all-to-all communication: on a mesh \
                         topology every element crosses the general router"
                    ),
                    stmt: Some(pretty(index.node(op.stmt))),
                },
            ));
        }
    }

    redundant_comm(root, &index, &mut out);

    out.sort_by_key(|(stmt, d)| (*stmt, d.code, d.var.clone()));
    out.into_iter().map(|(_, d)| d).collect()
}

/// A canonical comm definition: `MOVE[t ← CSHIFT(v, s, d)]`, single
/// unmasked clause, whole-array source and destination, constant shift.
struct CommDef {
    stmt: usize,
    /// Path of enclosing-statement pre-order ids (the statement-list
    /// spine); a def whose path is a prefix of another's encloses it.
    path: Vec<usize>,
    /// (source array, axis, shift, eoshift) signature.
    sig: (Ident, usize, i64, bool),
    dst: Ident,
}

/// W-REDUNDANT-COMM: two identical shifts of one array where the
/// second provably re-communicates what the first already moved — same
/// signature, the first's block encloses (or is) the second's, the
/// source's reaching definitions are identical at both sites and
/// nothing redefines it in between. `comm-cse` merges exactly this
/// shape *within* one statement list; across lists (the loop-invariant
/// re-shift inside a `DO` body) it structurally cannot, so what
/// survives the pipeline is worth a diagnostic.
fn redundant_comm(root: &Imp, index: &StmtIndex<'_>, out: &mut Vec<(usize, Diagnostic)>) {
    let reaching = ReachingFacts::compute(root, index);

    let mut defs: Vec<CommDef> = Vec::new();
    let mut def_sites: BTreeMap<Ident, Vec<usize>> = BTreeMap::new();
    collect_comm_defs(root, index, &mut Vec::new(), &mut defs, &mut def_sites);

    for j in 0..defs.len() {
        for i in 0..j {
            let (a, b) = (&defs[i], &defs[j]);
            if a.sig != b.sig {
                continue;
            }
            // The earlier site must dominate the later one: same list or
            // an enclosing one.
            if !b.path.starts_with(&a.path) {
                continue;
            }
            let v = &a.sig.0;
            let (sa, sb) = (
                reaching.at_move.get(&a.stmt).map(|d| d.state(v)),
                reaching.at_move.get(&b.stmt).map(|d| d.state(v)),
            );
            if sa.is_none() || sa != sb {
                continue;
            }
            let killed = def_sites
                .get(v)
                .is_some_and(|sites| sites.iter().any(|s| a.stmt < *s && *s < b.stmt));
            if killed {
                continue;
            }
            let (_, axis, shift, eo) = &a.sig;
            let what = if *eo { "EOSHIFT" } else { "CSHIFT" };
            out.push((
                b.stmt,
                Diagnostic {
                    code: WarnCode::RedundantComm,
                    var: v.clone(),
                    message: format!(
                        "{what}('{v}', {shift}, {}) re-communicates data an identical \
                         shift already moved (also defined as '{}'); hoist it out of \
                         the enclosing block",
                        axis + 1,
                        a.dst
                    ),
                    stmt: Some(pretty(index.node(b.stmt))),
                },
            ));
            break; // one report per redundant site
        }
    }
}

fn collect_comm_defs(
    imp: &Imp,
    index: &StmtIndex<'_>,
    path: &mut Vec<usize>,
    defs: &mut Vec<CommDef>,
    def_sites: &mut BTreeMap<Ident, Vec<usize>>,
) {
    match imp {
        Imp::Skip => {}
        Imp::Program(b) => collect_comm_defs(b, index, path, defs, def_sites),
        Imp::Sequentially(xs) | Imp::Concurrently(xs) => {
            for x in xs {
                collect_comm_defs(x, index, path, defs, def_sites);
            }
        }
        Imp::Move(clauses) => {
            let id = index.id(imp);
            for c in clauses {
                def_sites.entry(c.dst.ident().clone()).or_default().push(id);
            }
            if let [c] = clauses.as_slice() {
                if let Some(def) = comm_def(id, path, c) {
                    defs.push(def);
                }
            }
        }
        Imp::IfThenElse(_, t, e) => {
            let id = index.id(imp);
            path.push(id);
            collect_comm_defs(t, index, path, defs, def_sites);
            collect_comm_defs(e, index, path, defs, def_sites);
            path.pop();
        }
        Imp::While(_, b) | Imp::Do(_, _, b) => {
            let id = index.id(imp);
            path.push(id);
            collect_comm_defs(b, index, path, defs, def_sites);
            path.pop();
        }
        Imp::WithDecl(d, b) => {
            let id = index.id(imp);
            for (name, _, init) in d.bindings() {
                if init.is_some() {
                    def_sites.entry(name.clone()).or_default().push(id);
                }
            }
            path.push(id);
            collect_comm_defs(b, index, path, defs, def_sites);
            path.pop();
        }
        Imp::WithDomain(_, _, b) => {
            let id = index.id(imp);
            path.push(id);
            collect_comm_defs(b, index, path, defs, def_sites);
            path.pop();
        }
    }
}

fn comm_def(stmt: usize, path: &[usize], c: &MoveClause) -> Option<CommDef> {
    if !c.is_unmasked() {
        return None;
    }
    let LValue::AVar(dst, FieldAction::Everywhere) = &c.dst else {
        return None;
    };
    let Value::FcnCall(name, args) = &c.src else {
        return None;
    };
    let eo = match name.as_str() {
        "cshift" => false,
        "eoshift" => true,
        _ => return None,
    };
    let Some(Value::AVar(src, FieldAction::Everywhere)) = args.first().map(|(_, v)| v) else {
        return None;
    };
    if src == dst {
        return None; // self-shift: W-RACE territory, not redundancy
    }
    let shift = args.get(1).map_or(Some(1), |(_, v)| literal_i64(v))?;
    let axis = args.get(2).map_or(Some(1), |(_, v)| literal_i64(v))?;
    if axis < 1 {
        return None;
    }
    // EOSHIFT boundaries must be constant for two shifts to be equal.
    if eo {
        if let Some((_, b)) = args.get(3) {
            if literal_i64(b).is_none() && !matches!(b, Value::Scalar(_)) {
                return None;
            }
        }
    }
    Some(CommDef {
        stmt,
        path: path.to_vec(),
        sig: (src.clone(), axis as usize - 1, shift, eo),
        dst: dst.clone(),
    })
}

fn pretty(stmt: &Imp) -> String {
    let text = stmt.to_string();
    let first = text.lines().next().unwrap_or("").trim_end();
    if first.chars().count() > 96 {
        let head: String = first.chars().take(93).collect();
        format!("{head}...")
    } else {
        first.to_string()
    }
}

// ---------------------------------------------------------------------
// Pass-audit facts.
// ---------------------------------------------------------------------

/// A signature multiset of the communication plan, for the pass
/// auditor. The signature deliberately ignores variable names (passes
/// rename temps freely) and keeps what no legal pass may change: the
/// kind, the axis, the distance, the end-off flag and the loop
/// multiplicity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommFacts {
    sigs: BTreeMap<(String, u64), u64>,
    /// `true` when the plan had a `WHILE`-nested or dynamic-width op;
    /// the facts are then advisory and `check_pass` stays permissive.
    pub exact: bool,
}

impl CommFacts {
    /// Capture the comm facts of one program.
    #[must_use]
    pub fn of(root: &Imp) -> CommFacts {
        let plan = comm_plan(root);
        let mut sigs: BTreeMap<(String, u64), u64> = BTreeMap::new();
        for op in &plan.ops {
            let key = (op.kind.to_string(), op.multiplicity);
            *sigs.entry(key).or_insert(0) += 1;
        }
        CommFacts {
            sigs,
            exact: plan.exact,
        }
    }

    /// Check a pass's output against this baseline: a pass may merge or
    /// eliminate communication, never invent it. Any signature whose
    /// count grew names the pass in the error.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invented signature.
    pub fn check_pass(&self, pass: &str, after: &Imp) -> Result<(), String> {
        if !self.exact {
            return Ok(());
        }
        let now = CommFacts::of(after);
        if !now.exact {
            return Err(format!(
                "pass '{pass}' broke the communication plan: it made a statically \
                 exact plan data-dependent"
            ));
        }
        for ((kind, mult), count) in &now.sigs {
            let before = self.sigs.get(&(kind.clone(), *mult)).copied().unwrap_or(0);
            if *count > before {
                return Err(format!(
                    "pass '{pass}' broke the communication plan: {kind} ×{mult} \
                     appears {count} time(s), was {before}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;

    fn decl_arr(name: &str, n: i64) -> f90y_nir::Decl {
        decl(name, dfield(interval(1, n), int32()))
    }

    fn cshift_of(arr: &str, shift: i64, dim: i64) -> Value {
        fcncall(
            "cshift",
            vec![
                (int32(), ld(arr, everywhere())),
                (int32(), int(shift as i32)),
                (int32(), int(dim as i32)),
            ],
        )
    }

    #[test]
    fn plan_classifies_shift_reduce_and_transpose() {
        let p = with_decl(
            declset(vec![
                decl_arr("a", 16),
                decl_arr("b", 16),
                decl("s", int32()),
            ]),
            seq(vec![
                mv(avar("b", everywhere()), cshift_of("a", 2, 1)),
                mv(
                    svar_lv("s"),
                    fcncall("sum", vec![(int32(), ld("a", everywhere()))]),
                ),
                mv(
                    avar("b", everywhere()),
                    fcncall("transpose", vec![(int32(), ld("a", everywhere()))]),
                ),
            ]),
        );
        let plan = comm_plan(&p);
        assert_eq!(plan.ops.len(), 3);
        assert!(plan.exact);
        assert_eq!(
            plan.ops[0].kind,
            CommKind::Halo {
                axis: 0,
                width: Some(2)
            }
        );
        assert_eq!(plan.ops[1].kind, CommKind::Reduce { op: "sum".into() });
        assert_eq!(plan.ops[2].kind, CommKind::AllToAll);
        assert_eq!(plan.halo_widths.get(&("a".into(), 0)), Some(&2));
        assert_eq!(plan.ops[0].dims, Some(vec![16]));
    }

    #[test]
    fn do_loops_multiply_while_marks_inexact() {
        let p = with_decl(
            declset(vec![decl_arr("a", 8), decl_arr("b", 8)]),
            do_over(
                "i",
                serial_interval(1, 5),
                mv(avar("b", everywhere()), cshift_of("a", 1, 1)),
            ),
        );
        let plan = comm_plan(&p);
        assert_eq!(plan.ops[0].multiplicity, 5);
        assert_eq!(plan.halo_ops(), 5);
        assert!(plan.exact);

        let q = with_decl(
            declset(vec![
                decl_arr("a", 8),
                decl_arr("b", 8),
                decl("p", logical32()),
            ]),
            while_loop(svar("p"), mv(avar("b", everywhere()), cshift_of("a", 1, 1))),
        );
        let plan = comm_plan(&q);
        assert!(!plan.exact);
        assert!(plan.ops[0].in_while);
    }

    #[test]
    fn pricing_scales_with_multiplicity_on_every_builtin() {
        let once = with_decl(
            declset(vec![decl_arr("a", 64), decl_arr("b", 64)]),
            mv(avar("b", everywhere()), cshift_of("a", 1, 1)),
        );
        let thrice = with_decl(
            declset(vec![decl_arr("a", 64), decl_arr("b", 64)]),
            do_over(
                "i",
                serial_interval(1, 3),
                mv(avar("b", everywhere()), cshift_of("a", 1, 1)),
            ),
        );
        for m in f90y_hal::manifest::BUILTIN_MANIFESTS {
            let p1 = price(&comm_plan(&once), m, 16).total_seconds;
            let p3 = price(&comm_plan(&thrice), m, 16).total_seconds;
            assert!(p1 > 0.0, "{}", m.name);
            assert!((p3 - 3.0 * p1).abs() < 1e-12, "{}: {p3} vs 3×{p1}", m.name);
        }
    }

    #[test]
    fn wide_halo_fires_only_next_to_a_unit_plan() {
        let wide_and_unit = with_decl(
            declset(vec![decl_arr("a", 16), decl_arr("b", 16)]),
            seq(vec![
                mv(avar("b", everywhere()), cshift_of("a", 1, 1)),
                mv(avar("b", everywhere()), cshift_of("a", 2, 1)),
            ]),
        );
        let d = comm_lints(&wide_and_unit, Topology::Hypercube);
        assert_eq!(d.iter().filter(|d| d.code == WarnCode::WideHalo).count(), 1);

        let wide_only = with_decl(
            declset(vec![decl_arr("a", 16), decl_arr("b", 16)]),
            mv(avar("b", everywhere()), cshift_of("a", 2, 1)),
        );
        assert!(comm_lints(&wide_only, Topology::Hypercube)
            .iter()
            .all(|d| d.code != WarnCode::WideHalo));
    }

    #[test]
    fn alltoall_is_topology_conditional() {
        let p = with_decl(
            declset(vec![decl_arr("a", 16), decl_arr("b", 16)]),
            mv(
                avar("b", everywhere()),
                fcncall("transpose", vec![(int32(), ld("a", everywhere()))]),
            ),
        );
        let mesh = comm_lints(&p, Topology::Hypercube);
        assert_eq!(
            mesh.iter().filter(|d| d.code == WarnCode::AllToAll).count(),
            1
        );
        let tree = comm_lints(&p, Topology::FatTree);
        assert!(tree.iter().all(|d| d.code != WarnCode::AllToAll));
    }

    #[test]
    fn loop_invariant_reshift_is_redundant() {
        // t = cshift(a); DO { u = cshift(a); ... } — a never changes, so
        // the inner shift re-communicates every iteration.
        let p = with_decl(
            declset(vec![
                decl_arr("a", 8),
                decl_arr("t", 8),
                decl_arr("u", 8),
                decl_arr("b", 8),
            ]),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                mv(avar("t", everywhere()), cshift_of("a", 1, 1)),
                do_over(
                    "i",
                    serial_interval(1, 4),
                    seq(vec![
                        mv(avar("u", everywhere()), cshift_of("a", 1, 1)),
                        mv(avar("b", everywhere()), ld("u", everywhere())),
                    ]),
                ),
            ]),
        );
        let d = comm_lints(&p, Topology::Hypercube);
        let red: Vec<_> = d
            .iter()
            .filter(|d| d.code == WarnCode::RedundantComm)
            .collect();
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].var, "a");
    }

    #[test]
    fn killed_source_is_not_redundant() {
        // a is redefined between the two identical shifts.
        let p = with_decl(
            declset(vec![decl_arr("a", 8), decl_arr("t", 8), decl_arr("u", 8)]),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                mv(avar("t", everywhere()), cshift_of("a", 1, 1)),
                mv(avar("a", everywhere()), int(2)),
                mv(avar("u", everywhere()), cshift_of("a", 1, 1)),
            ]),
        );
        assert!(comm_lints(&p, Topology::Hypercube)
            .iter()
            .all(|d| d.code != WarnCode::RedundantComm));
    }

    #[test]
    fn different_distances_are_not_redundant() {
        let p = with_decl(
            declset(vec![decl_arr("a", 8), decl_arr("t", 8), decl_arr("u", 8)]),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                mv(avar("t", everywhere()), cshift_of("a", 1, 1)),
                mv(avar("u", everywhere()), cshift_of("a", -1, 1)),
            ]),
        );
        assert!(comm_lints(&p, Topology::Hypercube)
            .iter()
            .all(|d| d.code != WarnCode::RedundantComm));
    }

    #[test]
    fn comm_facts_accept_merges_and_reject_inventions() {
        let two = with_decl(
            declset(vec![decl_arr("a", 8), decl_arr("t", 8), decl_arr("u", 8)]),
            seq(vec![
                mv(avar("t", everywhere()), cshift_of("a", 1, 1)),
                mv(avar("u", everywhere()), cshift_of("a", 1, 1)),
            ]),
        );
        let one = with_decl(
            declset(vec![decl_arr("a", 8), decl_arr("t", 8)]),
            mv(avar("t", everywhere()), cshift_of("a", 1, 1)),
        );
        let facts = CommFacts::of(&two);
        // Merging down to one shift is legal...
        assert!(facts.check_pass("comm-cse", &one).is_ok());
        // ...but the reverse invents communication.
        let err = CommFacts::of(&one).check_pass("evil", &two).unwrap_err();
        assert!(err.contains("evil"), "{err}");
        assert!(err.contains("halo"), "{err}");
    }

    #[test]
    fn retargeted_shift_distance_is_an_invention() {
        let before = with_decl(
            declset(vec![decl_arr("a", 8), decl_arr("t", 8)]),
            mv(avar("t", everywhere()), cshift_of("a", 1, 1)),
        );
        let after = with_decl(
            declset(vec![decl_arr("a", 8), decl_arr("t", 8)]),
            mv(avar("t", everywhere()), cshift_of("a", 2, 1)),
        );
        let err = CommFacts::of(&before)
            .check_pass("evil-stretch", &after)
            .unwrap_err();
        assert!(err.contains("evil-stretch"), "{err}");
    }
}
