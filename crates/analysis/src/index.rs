//! Stable statement identities for one analysed NIR tree.
//!
//! Dataflow facts need to name statements, but NIR nodes carry no ids.
//! A [`StmtIndex`] assigns every [`Imp`] node of one *unmoved* tree its
//! pre-order position, using node addresses as identity. The indexed tree
//! must outlive the index and must not be mutated while facts keyed by
//! the index are in use; every analysis in this crate walks the same
//! borrowed root the index was built from.

use std::collections::HashMap;

use f90y_nir::Imp;

/// Pre-order statement numbering over one borrowed NIR tree.
pub struct StmtIndex<'a> {
    ids: HashMap<*const Imp, usize>,
    nodes: Vec<&'a Imp>,
}

impl<'a> StmtIndex<'a> {
    /// Number every node of `root` (including `root` itself) pre-order.
    #[must_use]
    pub fn of(root: &'a Imp) -> Self {
        let mut nodes = Vec::new();
        root.walk(&mut |n| nodes.push(n));
        let ids = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (std::ptr::from_ref::<Imp>(n), i))
            .collect();
        StmtIndex { ids, nodes }
    }

    /// The id of a node of the indexed tree.
    ///
    /// # Panics
    ///
    /// Panics when `node` does not belong to the indexed tree.
    #[must_use]
    pub fn id(&self, node: &Imp) -> usize {
        self.ids[&std::ptr::from_ref::<Imp>(node)]
    }

    /// The node with the given id.
    #[must_use]
    pub fn node(&self, id: usize) -> &'a Imp {
        self.nodes[id]
    }

    /// Number of indexed statements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree has no statements (impossible: the root
    /// itself is always indexed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;

    #[test]
    fn preorder_ids_are_stable_and_dense() {
        let p = program(seq(vec![
            mv(svar_lv("a"), int(1)),
            ifte(
                boolc(true),
                mv(svar_lv("b"), int(2)),
                mv(svar_lv("c"), int(3)),
            ),
        ]));
        let index = StmtIndex::of(&p);
        // Program, Sequentially, Move a, IfThenElse, Move b, Move c.
        assert_eq!(index.len(), 6);
        assert!(!index.is_empty());
        assert_eq!(index.id(&p), 0);
        let mut seen = Vec::new();
        p.walk(&mut |n| {
            seen.push(index.id(n));
            assert!(std::ptr::eq(index.node(index.id(n)), n));
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn equal_but_distinct_nodes_get_distinct_ids() {
        let p = seq(vec![mv(svar_lv("a"), int(1)), mv(svar_lv("a"), int(1))]);
        let index = StmtIndex::of(&p);
        if let Imp::Sequentially(xs) = &p {
            assert_eq!(xs[0], xs[1]);
            assert_ne!(index.id(&xs[0]), index.id(&xs[1]));
        } else {
            panic!("expected Sequentially");
        }
    }
}
