//! Forward dataflow: reaching definitions and def-use facts.
//!
//! The lattice element per variable is a [`DefState`]: the set of
//! definition sites (statement id, clause index) that may reach a program
//! point, plus a `maybe_uninit` bit recording whether some path reaches
//! the point with *no* definition at all. Joins are set union; a variable
//! absent from one side of a join is uninitialised on that side.
//!
//! A definition is *strong* (kills every earlier definition) when it is an
//! unmasked move to a scalar or to a whole array (`everywhere`); masked,
//! sectioned and subscripted writes are weak and accumulate. Loops are
//! solved by fixpoint iteration with facts recorded only from the
//! converged state, so a use inside a `WHILE` body sees the definitions
//! flowing around the back edge.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use f90y_nir::imp::LValue;
use f90y_nir::shape::DomainEnv;
use f90y_nir::value::FieldAction;
use f90y_nir::{Ident, Imp, Shape, Type, Value};

use crate::index::StmtIndex;

/// A definition site: `(statement id, clause-or-binding index)`.
pub type DefId = (usize, usize);

/// The definitions of one variable that may reach a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefState {
    /// Definition sites that may reach here.
    pub defs: BTreeSet<DefId>,
    /// `true` when some path reaches here without defining the variable.
    pub maybe_uninit: bool,
}

impl DefState {
    /// The state of a variable never defined: no sites, maybe uninit.
    #[must_use]
    pub fn uninit() -> Self {
        DefState {
            defs: BTreeSet::new(),
            maybe_uninit: true,
        }
    }

    /// The state after one dominating strong definition.
    #[must_use]
    pub fn single(d: DefId) -> Self {
        DefState {
            defs: BTreeSet::from([d]),
            maybe_uninit: false,
        }
    }

    fn join(&self, other: &DefState) -> DefState {
        DefState {
            defs: self.defs.union(&other.defs).copied().collect(),
            maybe_uninit: self.maybe_uninit || other.maybe_uninit,
        }
    }
}

/// Per-variable reaching-definition states at one program point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Defs {
    map: BTreeMap<Ident, DefState>,
}

impl Defs {
    /// The state of one variable; an unknown variable is uninitialised.
    #[must_use]
    pub fn state(&self, id: &str) -> DefState {
        self.map.get(id).cloned().unwrap_or_else(DefState::uninit)
    }

    /// Pointwise join; a variable absent on one side is uninitialised
    /// there.
    #[must_use]
    pub fn join(&self, other: &Defs) -> Defs {
        let mut map = BTreeMap::new();
        for (id, a) in &self.map {
            let joined = match other.map.get(id) {
                Some(b) => a.join(b),
                None => a.join(&DefState::uninit()),
            };
            map.insert(id.clone(), joined);
        }
        for (id, b) in &other.map {
            if !self.map.contains_key(id) {
                map.insert(id.clone(), b.join(&DefState::uninit()));
            }
        }
        Defs { map }
    }
}

/// The result of the reaching-definitions analysis over one tree.
pub struct ReachingFacts {
    /// Entry state (before any clause executes) of every `MOVE`, by
    /// statement id.
    pub at_move: HashMap<usize, Defs>,
    /// `(statement id, variable)` pairs where a read may see no
    /// definition along some path.
    pub uninit_uses: BTreeSet<(usize, Ident)>,
    /// Variables declared with a scalar type anywhere in the tree.
    pub scalars: HashSet<Ident>,
    /// Number of dataflow facts recorded (reads resolved + definitions
    /// applied), for telemetry.
    pub fact_count: usize,
}

impl ReachingFacts {
    /// Run the analysis over `root`, keyed by `index` (which must have
    /// been built from the same `root`).
    #[must_use]
    pub fn compute(root: &Imp, index: &StmtIndex<'_>) -> ReachingFacts {
        let mut a = Analyzer {
            index,
            domains: Vec::new(),
            record: true,
            facts: ReachingFacts {
                at_move: HashMap::new(),
                uninit_uses: BTreeSet::new(),
                scalars: HashSet::new(),
                fact_count: 0,
            },
        };
        a.flow(root, Defs::default());
        a.facts
    }
}

struct Analyzer<'a, 'i> {
    index: &'i StmtIndex<'a>,
    /// Innermost-last stack of `WITH_DOMAIN` bindings, pre-resolved.
    domains: Vec<(Ident, Shape)>,
    record: bool,
    facts: ReachingFacts,
}

impl Analyzer<'_, '_> {
    fn domain_env(&self) -> DomainEnv {
        self.domains.iter().cloned().collect()
    }

    /// Record every variable read in `v` against `state`, flagging reads
    /// that may see no definition.
    fn record_reads(&mut self, stmt: usize, v: &Value, state: &Defs) {
        let mut reads = Vec::new();
        v.walk(&mut |node| match node {
            Value::SVar(id) | Value::AVar(id, _) => reads.push(id.clone()),
            _ => {}
        });
        for id in reads {
            if self.record {
                self.facts.fact_count += 1;
                if state.state(&id).maybe_uninit {
                    self.facts.uninit_uses.insert((stmt, id));
                }
            }
        }
    }

    /// Forward transfer: the state after executing `imp` from `state`.
    fn flow(&mut self, imp: &Imp, state: Defs) -> Defs {
        match imp {
            Imp::Skip => state,
            Imp::Program(b) => self.flow(b, state),
            Imp::Sequentially(xs) => xs.iter().fold(state, |s, x| self.flow(x, s)),
            Imp::Concurrently(xs) => {
                // The statements are independent by construction; reads
                // must not observe sibling writes, so flow each from the
                // common entry and join the exits.
                let mut out = state.clone();
                for x in xs {
                    out = out.join(&self.flow(x, state.clone()));
                }
                out
            }
            Imp::Move(clauses) => {
                let id = self.index.id(imp);
                if self.record {
                    self.facts.at_move.insert(id, state.clone());
                }
                // Clauses execute in order — the evaluator applies each
                // clause's write before the next clause's reads, and
                // blocking-fuse relies on exactly that when it merges
                // `tnew = …; t = tnew` into one MOVE — so each clause
                // reads the state left by the ones before it.
                let mut out = state;
                for (ci, c) in clauses.iter().enumerate() {
                    self.record_reads(id, &c.mask, &out);
                    self.record_reads(id, &c.src, &out);
                    if let LValue::AVar(_, FieldAction::Subscript(ixs)) = &c.dst {
                        for ix in ixs {
                            self.record_reads(id, ix, &out);
                        }
                    }
                    let var = c.dst.ident().clone();
                    let strong = c.is_unmasked()
                        && matches!(
                            &c.dst,
                            LValue::SVar(_) | LValue::AVar(_, FieldAction::Everywhere)
                        );
                    if self.record {
                        self.facts.fact_count += 1;
                    }
                    if strong {
                        out.map.insert(var, DefState::single((id, ci)));
                    } else {
                        let entry = out.map.entry(var).or_insert_with(DefState::uninit);
                        entry.defs.insert((id, ci));
                    }
                }
                out
            }
            Imp::IfThenElse(c, t, e) => {
                let id = self.index.id(imp);
                self.record_reads(id, c, &state);
                let st = self.flow(t, state.clone());
                let se = self.flow(e, state);
                st.join(&se)
            }
            Imp::While(c, b) => {
                let id = self.index.id(imp);
                let entry = self.converge(b, state);
                // The condition is evaluated at the loop head on every
                // trip; the converged entry covers all of them.
                self.record_reads(id, c, &entry);
                if self.record {
                    let _ = self.flow(b, entry.clone());
                }
                // Zero iterations are always possible.
                entry
            }
            Imp::Do(_, shape, b) => {
                let entry = self.converge(b, state);
                let nonempty = shape
                    .resolve(&self.domain_env())
                    .map(|s| s.size() > 0)
                    .unwrap_or(false);
                if self.record || nonempty {
                    let out = self.flow(b, entry.clone());
                    if nonempty {
                        // The body ran at least once: definitions made on
                        // every trip have landed by the exit.
                        return out;
                    }
                }
                entry
            }
            Imp::WithDecl(d, b) => {
                let id = self.index.id(imp);
                let mut inner = state.clone();
                let bindings = d.bindings();
                for (bi, (name, ty, init)) in bindings.iter().enumerate() {
                    if matches!(ty, Type::Scalar(_)) {
                        self.facts.scalars.insert((*name).clone());
                    }
                    if let Some(v) = init {
                        self.record_reads(id, v, &state);
                        if self.record {
                            self.facts.fact_count += 1;
                        }
                        inner
                            .map
                            .insert((*name).clone(), DefState::single((id, bi)));
                    } else {
                        inner.map.insert((*name).clone(), DefState::uninit());
                    }
                }
                let out = self.flow(b, inner);
                // Restore the outer view of shadowed names; the locals
                // go out of scope.
                let mut restored = out;
                for (name, _, _) in &bindings {
                    match state.map.get(*name) {
                        Some(prev) => {
                            restored.map.insert((*name).clone(), prev.clone());
                        }
                        None => {
                            restored.map.remove(*name);
                        }
                    }
                }
                restored
            }
            Imp::WithDomain(name, shape, b) => {
                let resolved = shape
                    .resolve(&self.domain_env())
                    .unwrap_or_else(|_| shape.clone());
                self.domains.push((name.clone(), resolved));
                let out = self.flow(b, state);
                self.domains.pop();
                out
            }
        }
    }

    /// Iterate `entry = entry ⊔ flow(body, entry)` to a fixpoint with
    /// recording off, returning the converged loop-head state.
    fn converge(&mut self, body: &Imp, state: Defs) -> Defs {
        let saved = self.record;
        self.record = false;
        let mut entry = state;
        loop {
            let out = self.flow(body, entry.clone());
            let joined = entry.join(&out);
            if joined == entry {
                break;
            }
            entry = joined;
        }
        self.record = saved;
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;

    fn facts(p: &Imp) -> (ReachingFacts, Vec<Ident>) {
        let index = StmtIndex::of(p);
        let f = ReachingFacts::compute(p, &index);
        let uninit_vars: Vec<Ident> = f.uninit_uses.iter().map(|(_, v)| v.clone()).collect();
        (f, uninit_vars)
    }

    #[test]
    fn straight_line_def_then_use_is_clean() {
        let p = with_decl(
            decl("x", int32()),
            seq(vec![mv(svar_lv("x"), int(1)), mv(svar_lv("y"), svar("x"))]),
        );
        let (_, uninit) = facts(&p);
        assert!(uninit.is_empty(), "got {uninit:?}");
    }

    #[test]
    fn use_before_def_is_flagged() {
        let p = with_decl(
            decl("x", int32()),
            seq(vec![mv(svar_lv("y"), svar("x")), mv(svar_lv("x"), int(1))]),
        );
        let (f, uninit) = facts(&p);
        assert_eq!(uninit, vec!["x".to_string()]);
        assert!(f.scalars.contains("x"));
    }

    #[test]
    fn one_sided_branch_definition_is_maybe_uninit() {
        let p = with_decl(
            decl("x", int32()),
            seq(vec![
                ifte(svar("p"), mv(svar_lv("x"), int(1)), Imp::Skip),
                mv(svar_lv("y"), svar("x")),
            ]),
        );
        let (_, uninit) = facts(&p);
        assert!(uninit.contains(&"x".to_string()));
        // Both-sided definitions are clean.
        let q = with_decl(
            decl("x", int32()),
            seq(vec![
                ifte(
                    svar("p"),
                    mv(svar_lv("x"), int(1)),
                    mv(svar_lv("x"), int(2)),
                ),
                mv(svar_lv("y"), svar("x")),
            ]),
        );
        let (_, uninit) = facts(&q);
        assert!(!uninit.contains(&"x".to_string()));
    }

    #[test]
    fn initializers_define_their_variable() {
        let p = with_decl(
            initialized("x", int32(), int(7)),
            mv(svar_lv("y"), svar("x")),
        );
        let (_, uninit) = facts(&p);
        assert!(!uninit.contains(&"x".to_string()));
    }

    #[test]
    fn while_body_definition_does_not_reach_after_the_loop() {
        // WHILE p { x = 1 }; y = x — zero iterations leave x undefined.
        let p = with_decl(
            decl("x", int32()),
            seq(vec![
                while_loop(svar("p"), mv(svar_lv("x"), int(1))),
                mv(svar_lv("y"), svar("x")),
            ]),
        );
        let (_, uninit) = facts(&p);
        assert!(uninit.contains(&"x".to_string()));
    }

    #[test]
    fn nonempty_serial_do_definitely_defines() {
        // DO i over 1..4 { x = i }; y = x — the loop provably runs.
        let p = with_decl(
            decl("x", int32()),
            seq(vec![
                do_over("i", serial_interval(1, 4), mv(svar_lv("x"), int(1))),
                mv(svar_lv("y"), svar("x")),
            ]),
        );
        let (_, uninit) = facts(&p);
        assert!(!uninit.contains(&"x".to_string()));
        // An empty loop cannot define.
        let q = with_decl(
            decl("x", int32()),
            seq(vec![
                do_over("i", serial_interval(5, 4), mv(svar_lv("x"), int(1))),
                mv(svar_lv("y"), svar("x")),
            ]),
        );
        let (_, uninit) = facts(&q);
        assert!(uninit.contains(&"x".to_string()));
    }

    #[test]
    fn loop_carried_use_sees_the_back_edge_definition() {
        // DO { y = x; x = 1 } — the read of x on trip 2 sees trip 1's
        // write, but trip 1's read is still uninitialised.
        let p = with_decl(
            decl("x", int32()),
            do_over(
                "i",
                serial_interval(1, 4),
                seq(vec![mv(svar_lv("y"), svar("x")), mv(svar_lv("x"), int(1))]),
            ),
        );
        let (f, uninit) = facts(&p);
        assert!(uninit.contains(&"x".to_string()));
        // The converged entry state at the read still carries the
        // back-edge definition site.
        let read_id = f
            .uninit_uses
            .iter()
            .find(|(_, v)| v == "x")
            .map(|(s, _)| *s)
            .unwrap();
        let entry = f.at_move.get(&read_id).unwrap();
        assert!(!entry.state("x").defs.is_empty());
        assert!(entry.state("x").maybe_uninit);
    }

    #[test]
    fn masked_writes_are_weak_definitions() {
        let p = with_domain(
            "alpha",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("a", dfield(domain("alpha"), int32())),
                    decl("m", dfield(domain("alpha"), logical32())),
                ]),
                seq(vec![
                    mv_masked(ld("m", everywhere()), avar("a", everywhere()), int(1)),
                    mv(avar("b", everywhere()), ld("a", everywhere())),
                ]),
            ),
        );
        let (f, uninit) = facts(&p);
        // The masked write does not strongly define a.
        assert!(uninit.contains(&"a".to_string()));
        // But it is not a *scalar*, so the lint layer will not warn.
        assert!(!f.scalars.contains("a"));
        // An unmasked everywhere write strongly defines.
        let q = with_domain(
            "alpha",
            interval(1, 8),
            with_decl(
                decl("a", dfield(domain("alpha"), int32())),
                seq(vec![
                    mv(avar("a", everywhere()), int(1)),
                    mv(avar("b", everywhere()), ld("a", everywhere())),
                ]),
            ),
        );
        let (_, uninit) = facts(&q);
        assert!(!uninit.contains(&"a".to_string()));
    }

    #[test]
    fn concurrent_siblings_do_not_define_each_other() {
        let p = with_decl(
            declset(vec![decl("x", int32()), decl("y", int32())]),
            conc(vec![mv(svar_lv("x"), int(1)), mv(svar_lv("z"), svar("x"))]),
        );
        let (_, uninit) = facts(&p);
        assert!(uninit.contains(&"x".to_string()));
    }

    #[test]
    fn fused_move_clauses_execute_in_order() {
        // MOVE[(tnew ← t), (t ← tnew)]: blocking-fuse emits this shape,
        // and the evaluator applies clause writes in order, so the
        // second clause's read of tnew sees the first clause's
        // definition — not an uninitialised variable.
        let p = with_decl(
            declset(vec![
                decl("t", dfield(interval(1, 8), int32())),
                decl("tnew", dfield(interval(1, 8), int32())),
            ]),
            seq(vec![
                mv(avar("t", everywhere()), int(0)),
                mv_multi(vec![
                    f90y_nir::imp::MoveClause::unmasked(
                        avar("tnew", everywhere()),
                        ld("t", everywhere()),
                    ),
                    f90y_nir::imp::MoveClause::unmasked(
                        avar("t", everywhere()),
                        ld("tnew", everywhere()),
                    ),
                ]),
            ]),
        );
        let (_, uninit) = facts(&p);
        assert!(uninit.is_empty(), "got {uninit:?}");
    }

    #[test]
    fn move_entry_states_distinguish_redefinition() {
        // t = shift(a); a = 0; u = shift(a) — the two shift sources read
        // different reaching definitions of a.
        let p = with_decl(
            decl("a", dfield(interval(1, 8), int32())),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                mv(
                    avar("t", everywhere()),
                    fcncall("cshift", vec![(int32(), ld("a", everywhere()))]),
                ),
                mv(avar("a", everywhere()), int(0)),
                mv(
                    avar("u", everywhere()),
                    fcncall("cshift", vec![(int32(), ld("a", everywhere()))]),
                ),
            ]),
        );
        let index = StmtIndex::of(&p);
        let f = ReachingFacts::compute(&p, &index);
        let mut move_ids: Vec<usize> = f.at_move.keys().copied().collect();
        move_ids.sort_unstable();
        assert_eq!(move_ids.len(), 4);
        let t_def = f.at_move[&move_ids[1]].state("a");
        let u_def = f.at_move[&move_ids[3]].state("a");
        assert_ne!(t_def, u_def);
        assert!(!t_def.maybe_uninit);
        assert!(!u_def.maybe_uninit);
    }
}
