//! Backward dataflow: per-variable liveness at section granularity.
//!
//! The lattice element per variable is a [`LiveInfo`]: a `whole` bit plus
//! a set of live [`f90y_nir::SectionRange`] rectangles, reusing [`Access`] (and its
//! `overlaps` test) from `f90y_nir::deps` as the granularity of facts. A
//! store is *dead* when nothing it writes overlaps anything live after
//! it; an unmasked whole-variable store additionally *kills* liveness
//! above it.
//!
//! The analysis serves two clients with one walk:
//!
//! * **Diagnostics** — every dead store to a user variable becomes a
//!   `W-DEADSTORE` candidate (see [`crate::lint()`]).
//! * **`dce-temps`** — compiler temporaries (*ghosts*) whose stores are
//!   all dead are *faint*: their defining stores generate no liveness, so
//!   a chain `t1 = …; t2 = t1; (t2 never read)` dies together in one
//!   pass, exactly like the transitive syntactic scan it replaces.
//!
//! Scope exits keep every non-ghost variable observable (the reference
//! evaluator snapshots finals at scope exit), so only ghosts can be
//! faint.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use f90y_nir::deps::Access;
use f90y_nir::imp::LValue;
use f90y_nir::value::FieldAction;
use f90y_nir::{Ident, Imp, Value};

use crate::index::StmtIndex;

/// What is live of one variable at a program point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveInfo {
    whole: bool,
    sections: BTreeSet<Vec<f90y_nir::SectionRange>>,
}

impl LiveInfo {
    fn add(&mut self, a: &Access) {
        match a {
            Access::Whole => self.whole = true,
            Access::Section(s) => {
                self.sections.insert(s.clone());
            }
        }
    }

    /// `true` when a write of `w` may be read afterwards.
    fn is_live(&self, w: &Access) -> bool {
        if self.whole {
            return true;
        }
        self.sections
            .iter()
            .any(|s| Access::Section(s.clone()).overlaps(w))
    }

    fn join(&mut self, other: &LiveInfo) {
        self.whole |= other.whole;
        for s in &other.sections {
            self.sections.insert(s.clone());
        }
    }
}

/// Per-variable liveness at one program point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Live {
    map: BTreeMap<Ident, LiveInfo>,
}

impl Live {
    fn join(&mut self, other: &Live) {
        for (id, info) in &other.map {
            self.map.entry(id.clone()).or_default().join(info);
        }
    }

    fn add(&mut self, id: &Ident, a: &Access) {
        self.map.entry(id.clone()).or_default().add(a);
    }

    fn is_live(&self, id: &str, w: &Access) -> bool {
        self.map.get(id).is_some_and(|info| info.is_live(w))
    }
}

/// One store whose value is provably never read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadStore {
    /// Statement id of the `MOVE` (per the analysed [`StmtIndex`]).
    pub stmt: usize,
    /// Clause index within the `MOVE`.
    pub clause: usize,
    /// The variable written.
    pub var: Ident,
}

/// The result of the liveness analysis over one tree.
pub struct Liveness {
    /// Dead stores to non-ghost variables, in program order.
    pub dead_stores: Vec<DeadStore>,
    /// Variables with at least one live (non-suppressed) read.
    pub used: HashSet<Ident>,
    /// Ghosts with a store that `dce` cannot strip (masked, sectioned or
    /// scalar destinations); they must survive even if never read.
    pub pinned: HashSet<Ident>,
    /// Number of dataflow facts recorded, for telemetry.
    pub fact_count: usize,
}

impl Liveness {
    /// Run the analysis with no ghosts: every variable is observable.
    #[must_use]
    pub fn of(root: &Imp, index: &StmtIndex<'_>) -> Liveness {
        Liveness::with_ghosts(root, index, &HashSet::new())
    }

    /// Run the analysis treating `ghosts` (compiler temporaries) as
    /// unobservable at scope exit and faint-eligible.
    #[must_use]
    pub fn with_ghosts(root: &Imp, index: &StmtIndex<'_>, ghosts: &HashSet<Ident>) -> Liveness {
        let mut a = Analyzer {
            index,
            ghosts,
            record: true,
            out: Liveness {
                dead_stores: Vec::new(),
                used: HashSet::new(),
                pinned: HashSet::new(),
                fact_count: 0,
            },
        };
        a.flow_back(root, Live::default());
        a.out.dead_stores.sort_by_key(|d| (d.stmt, d.clause));
        a.out
    }
}

/// The subset of `temps` that liveness proves *faint*: never read along
/// any path (directly or through other faint temps) and strippable.
#[must_use]
pub fn faint_temps(root: &Imp, temps: &HashSet<Ident>) -> HashSet<Ident> {
    let index = StmtIndex::of(root);
    let live = Liveness::with_ghosts(root, &index, temps);
    temps
        .iter()
        .filter(|t| !live.used.contains(*t) && !live.pinned.contains(*t))
        .cloned()
        .collect()
}

struct Analyzer<'a, 'i, 'g> {
    index: &'i StmtIndex<'a>,
    ghosts: &'g HashSet<Ident>,
    record: bool,
    out: Liveness,
}

impl Analyzer<'_, '_, '_> {
    /// Add every read of `v` to `live` at access granularity.
    fn gen_value(&mut self, v: &Value, live: &mut Live) {
        v.walk(&mut |node| match node {
            Value::SVar(id) => {
                live.add(id, &Access::Whole);
                if self.record {
                    self.out.fact_count += 1;
                    self.out.used.insert(id.clone());
                }
            }
            Value::AVar(id, fa) => {
                live.add(id, &Access::of_field_action(fa));
                if self.record {
                    self.out.fact_count += 1;
                    self.out.used.insert(id.clone());
                }
            }
            _ => {}
        });
    }

    /// Backward transfer: liveness before `imp`, given liveness after.
    fn flow_back(&mut self, imp: &Imp, out: Live) -> Live {
        match imp {
            Imp::Skip => out,
            Imp::Program(b) => self.flow_back(b, out),
            Imp::Sequentially(xs) => xs.iter().rev().fold(out, |l, x| self.flow_back(x, l)),
            Imp::Concurrently(xs) => {
                // Sibling statements are unordered: no kill may cross
                // them, so keep the common live-out and add every
                // sibling's gens.
                let mut res = out.clone();
                for x in xs {
                    let li = self.flow_back(x, out.clone());
                    res.join(&li);
                }
                res
            }
            Imp::Move(clauses) => {
                let id = self.index.id(imp);
                let mut live = out;
                for (ci, c) in clauses.iter().enumerate().rev() {
                    let var = c.dst.ident();
                    let (waccess, strippable) = match &c.dst {
                        LValue::SVar(_) => (Access::Whole, false),
                        LValue::AVar(_, fa) => (
                            Access::of_field_action(fa),
                            fa.is_everywhere() && c.is_unmasked(),
                        ),
                    };
                    let strong = c.is_unmasked()
                        && matches!(
                            &c.dst,
                            LValue::SVar(_) | LValue::AVar(_, FieldAction::Everywhere)
                        );
                    let ghost = self.ghosts.contains(var);
                    let dead = !live.is_live(var, &waccess);
                    if self.record {
                        self.out.fact_count += 1;
                        if dead && !ghost {
                            self.out.dead_stores.push(DeadStore {
                                stmt: id,
                                clause: ci,
                                var: var.clone(),
                            });
                        }
                        if ghost && !strippable {
                            self.out.pinned.insert(var.clone());
                        }
                    }
                    if strong {
                        live.map.remove(var);
                    }
                    // A dead strippable ghost store generates nothing:
                    // its operand reads die with it (faint chains).
                    let suppress = dead && strong && ghost && strippable;
                    if !suppress {
                        self.gen_value(&c.mask, &mut live);
                        self.gen_value(&c.src, &mut live);
                        if let LValue::AVar(_, FieldAction::Subscript(ixs)) = &c.dst {
                            for ix in ixs {
                                self.gen_value(ix, &mut live);
                            }
                        }
                    }
                }
                live
            }
            Imp::IfThenElse(c, t, e) => {
                let mut lt = self.flow_back(t, out.clone());
                let le = self.flow_back(e, out);
                lt.join(&le);
                self.gen_value(c, &mut lt);
                lt
            }
            Imp::While(c, b) => {
                let head = self.converge(b, Some(c), &out);
                if self.record {
                    let _ = self.flow_back(b, head.clone());
                    // Re-gen the condition with recording on (no change
                    // to the converged state, but `used` must see it).
                    let mut h = head.clone();
                    self.gen_value(c, &mut h);
                    return h;
                }
                head
            }
            Imp::Do(_, _, b) => {
                let head = self.converge(b, None, &out);
                if self.record {
                    let _ = self.flow_back(b, head.clone());
                }
                head
            }
            Imp::WithDecl(d, b) => {
                let bindings = d.bindings();
                let mut inner_out = out.clone();
                let mut saved = Vec::new();
                for (name, _, _) in &bindings {
                    saved.push(((*name).clone(), inner_out.map.remove(*name)));
                    if !self.ghosts.contains(*name) {
                        // Finals are captured at scope exit: the whole
                        // variable is observable there.
                        inner_out.add(name, &Access::Whole);
                    }
                }
                let mut live = self.flow_back(b, inner_out);
                for (name, _, init) in bindings.iter().rev() {
                    let ghost = self.ghosts.contains(*name);
                    let dead = !live.is_live(name, &Access::Whole);
                    // The declaration bounds the variable's lifetime.
                    live.map.remove(*name);
                    if let Some(v) = init {
                        // Initializers are definitions, not stores the
                        // linter should flag; only faint ghosts suppress
                        // their reads.
                        if !(dead && ghost) {
                            self.gen_value(v, &mut live);
                        }
                        if self.record {
                            self.out.fact_count += 1;
                        }
                    }
                }
                for (name, prev) in saved.into_iter().rev() {
                    if let Some(info) = prev {
                        live.map.entry(name).or_default().join(&info);
                    }
                }
                live
            }
            Imp::WithDomain(_, _, b) => self.flow_back(b, out),
        }
    }

    /// Converge the loop-head liveness `H = out ∪ gens(cond) ∪
    /// flow_back(body, H)` with recording off.
    fn converge(&mut self, body: &Imp, cond: Option<&Value>, out: &Live) -> Live {
        let saved = self.record;
        self.record = false;
        let mut head = out.clone();
        if let Some(c) = cond {
            self.gen_value(c, &mut head);
        }
        loop {
            let mut next = out.clone();
            if let Some(c) = cond {
                self.gen_value(c, &mut next);
            }
            let body_in = self.flow_back(body, head.clone());
            next.join(&body_in);
            if next == head {
                break;
            }
            head = next;
        }
        self.record = saved;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;
    use f90y_nir::SectionRange;

    fn dead_vars(p: &Imp) -> Vec<(Ident, usize)> {
        let index = StmtIndex::of(p);
        let l = Liveness::of(p, &index);
        l.dead_stores
            .iter()
            .map(|d| (d.var.clone(), d.stmt))
            .collect()
    }

    #[test]
    fn overwritten_store_is_dead() {
        let p = with_decl(
            decl("x", int32()),
            seq(vec![mv(svar_lv("x"), int(1)), mv(svar_lv("x"), int(2))]),
        );
        let dead = dead_vars(&p);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].0, "x");
    }

    #[test]
    fn store_read_before_kill_is_live() {
        let p = with_decl(
            declset(vec![decl("x", int32()), decl("y", int32())]),
            seq(vec![
                mv(svar_lv("x"), int(1)),
                mv(svar_lv("y"), svar("x")),
                mv(svar_lv("x"), int(2)),
            ]),
        );
        assert!(dead_vars(&p).is_empty());
    }

    #[test]
    fn scope_exit_keeps_user_variables_live() {
        // The final store is the observable result: not dead.
        let p = with_decl(decl("x", int32()), mv(svar_lv("x"), int(1)));
        assert!(dead_vars(&p).is_empty());
    }

    #[test]
    fn undeclared_tail_store_is_dead_at_program_end() {
        // No enclosing declaration: nothing is observable at the end.
        let p = seq(vec![mv(svar_lv("x"), int(1))]);
        let dead = dead_vars(&p);
        assert_eq!(dead.len(), 1);
    }

    #[test]
    fn masked_store_does_not_kill() {
        let p = with_decl(
            decl("a", dfield(interval(1, 8), int32())),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                mv_masked(ld("m", everywhere()), avar("a", everywhere()), int(2)),
            ]),
        );
        // The unmasked store is still observable where the mask is
        // false: not dead.
        assert!(dead_vars(&p).is_empty());
    }

    #[test]
    fn disjoint_section_read_leaves_store_dead() {
        let odd = section(vec![SectionRange::strided(1, 31, 2)]);
        let even = section(vec![SectionRange::strided(2, 32, 2)]);
        // a(odd) = 1; b = a(even); a = 0 — the odd store is never read
        // before the whole-array kill.
        let p = with_decl(
            declset(vec![
                decl("a", dfield(interval(1, 32), int32())),
                decl("b", dfield(interval(1, 32), int32())),
            ]),
            seq(vec![
                mv(avar("a", odd.clone()), int(1)),
                mv(avar("b", everywhere()), ld("a", even)),
                mv(avar("a", everywhere()), int(0)),
            ]),
        );
        let dead = dead_vars(&p);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].0, "a");
        // An overlapping read keeps it live.
        let q = with_decl(
            declset(vec![
                decl("a", dfield(interval(1, 32), int32())),
                decl("b", dfield(interval(1, 32), int32())),
            ]),
            seq(vec![
                mv(avar("a", odd.clone()), int(1)),
                mv(avar("b", everywhere()), ld("a", odd)),
                mv(avar("a", everywhere()), int(0)),
            ]),
        );
        assert!(dead_vars(&q).is_empty());
    }

    #[test]
    fn loop_carried_read_keeps_store_live() {
        // DO { y = x; x = y + 1 } under a decl of x: the store to x is
        // read on the next trip.
        let p = with_decl(
            declset(vec![decl("x", int32()), decl("y", int32())]),
            do_over(
                "i",
                serial_interval(1, 4),
                seq(vec![
                    mv(svar_lv("y"), svar("x")),
                    mv(svar_lv("x"), add(svar("y"), int(1))),
                ]),
            ),
        );
        assert!(dead_vars(&p).is_empty());
    }

    #[test]
    fn faint_chains_die_together() {
        // t1 = a; t2 = t1; nothing reads t2.
        let temps: HashSet<Ident> = ["t1".to_string(), "t2".to_string()].into();
        let p = with_decl(
            declset(vec![
                decl("a", dfield(interval(1, 8), int32())),
                decl("t1", dfield(interval(1, 8), int32())),
                decl("t2", dfield(interval(1, 8), int32())),
            ]),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                mv(avar("t1", everywhere()), ld("a", everywhere())),
                mv(avar("t2", everywhere()), ld("t1", everywhere())),
            ]),
        );
        let faint = faint_temps(&p, &temps);
        assert_eq!(faint, temps);
    }

    #[test]
    fn live_temp_anchors_its_chain() {
        let temps: HashSet<Ident> = ["t1".to_string(), "t2".to_string()].into();
        let p = with_decl(
            declset(vec![
                decl("a", dfield(interval(1, 8), int32())),
                decl("b", dfield(interval(1, 8), int32())),
                decl("t1", dfield(interval(1, 8), int32())),
                decl("t2", dfield(interval(1, 8), int32())),
            ]),
            seq(vec![
                mv(avar("t1", everywhere()), int(1)),
                mv(avar("t2", everywhere()), ld("t1", everywhere())),
                mv(avar("b", everywhere()), ld("t2", everywhere())),
            ]),
        );
        let faint = faint_temps(&p, &temps);
        assert!(faint.is_empty(), "got {faint:?}");
    }

    #[test]
    fn pinned_ghosts_are_not_faint() {
        // A temp written through a mask cannot be stripped even when
        // never read.
        let temps: HashSet<Ident> = ["t1".to_string()].into();
        let p = with_decl(
            decl("t1", dfield(interval(1, 8), int32())),
            mv_masked(ld("m", everywhere()), avar("t1", everywhere()), int(1)),
        );
        let faint = faint_temps(&p, &temps);
        assert!(faint.is_empty());
    }
}
