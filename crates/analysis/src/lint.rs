//! The NIR diagnostics engine: stable warning codes over dataflow facts.
//!
//! Three warnings, in the spirit of CM-Fortran front-end diagnostics:
//!
//! * **`W-RACE`** — a parallel assignment whose read set overlaps its own
//!   write set through a shift or section; two masked writes of one
//!   `MOVE` with provably overlapping masks touching the same section;
//!   read/write overlap across the iterations of a parallel `DO`; or two
//!   `CONCURRENTLY` arms that do not commute.
//! * **`W-UNINIT`** — a *scalar* read along some path with no reaching
//!   definition. Array reads are exempt: the evaluator zero-initialises
//!   fields and partial (masked/sectioned) writes would otherwise flag
//!   every stencil prologue.
//! * **`W-DEADSTORE`** — a store never read before the next kill or the
//!   end of the program (scope exits keep declared variables observable).
//!
//! The linter runs on the *lowered, untransformed* program (the
//! `Executable::nir` stage), so its rules may assume lowering's canonical
//! forms and need not anticipate transformation output.

use std::collections::BTreeSet;
use std::fmt;

use f90y_nir::deps::{Access, RwSets};
use f90y_nir::imp::{LValue, MoveClause};
use f90y_nir::shape::DomainEnv;
use f90y_nir::value::FieldAction;
use f90y_nir::{Ident, Imp, Shape, UnOp, Value};
use f90y_obs::Telemetry;

use crate::index::StmtIndex;
use crate::liveness::Liveness;
use crate::reaching::ReachingFacts;

/// Stable warning codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WarnCode {
    /// Overlapping reads and writes in a parallel construct.
    Race,
    /// Possible read with no reaching definition.
    Uninit,
    /// Store whose value is never read.
    DeadStore,
    /// Halo wider than 1 on an array/axis that also has a 1-wide plan.
    WideHalo,
    /// A duplicate shift the middle end could not merge.
    RedundantComm,
    /// Transpose-shaped (all-to-all) communication on a mesh topology.
    AllToAll,
}

impl WarnCode {
    /// The stable code string (`W-RACE`, `W-UNINIT`, `W-DEADSTORE`,
    /// `W-WIDE-HALO`, `W-REDUNDANT-COMM`, `W-ALLTOALL`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            WarnCode::Race => "W-RACE",
            WarnCode::Uninit => "W-UNINIT",
            WarnCode::DeadStore => "W-DEADSTORE",
            WarnCode::WideHalo => "W-WIDE-HALO",
            WarnCode::RedundantComm => "W-REDUNDANT-COMM",
            WarnCode::AllToAll => "W-ALLTOALL",
        }
    }
}

impl fmt::Display for WarnCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic produced by the linter.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable warning code.
    pub code: WarnCode,
    /// The variable the warning is about.
    pub var: Ident,
    /// Human-readable explanation.
    pub message: String,
    /// Pretty-printed offending statement (first line), when available.
    pub stmt: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warning[{}]: {}", self.code, self.message)?;
        if let Some(stmt) = &self.stmt {
            write!(f, "\n  --> {stmt}")?;
        }
        Ok(())
    }
}

/// The result of linting one program.
pub struct LintReport {
    /// Diagnostics in program order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of NIR statements analysed.
    pub stmts_analyzed: usize,
    /// Number of dataflow facts computed.
    pub facts: usize,
}

impl LintReport {
    /// `true` when no diagnostic was produced.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// How many diagnostics carry the given code.
    #[must_use]
    pub fn count_of(&self, code: WarnCode) -> usize {
        self.diagnostics.iter().filter(|d| d.code == code).count()
    }
}

/// Lint a lowered NIR program.
#[must_use]
pub fn lint(root: &Imp) -> LintReport {
    let mut tel = Telemetry::disabled();
    lint_with(root, &mut tel)
}

/// Lint with telemetry: an `analysis.lint` span and `analysis.*`
/// counters (statements, facts, warnings by code).
#[must_use]
pub fn lint_with(root: &Imp, tel: &mut Telemetry) -> LintReport {
    tel.scope("analysis.lint", |tel| {
        let index = StmtIndex::of(root);
        let reaching = ReachingFacts::compute(root, &index);
        let liveness = Liveness::of(root, &index);
        let mut found: Vec<(usize, Diagnostic)> = Vec::new();

        for (stmt, var) in &reaching.uninit_uses {
            if !reaching.scalars.contains(var) {
                // Arrays are zero-initialised by the language model, so
                // a plain never-written array read stays exempt. The
                // weak-update case is different: when *every* reaching
                // write is masked, the elements the masks never covered
                // are read as silent zeros — flag whole-array reads in
                // that state.
                if masked_only_whole_array_read(&reaching, &index, *stmt, var) {
                    found.push((
                        *stmt,
                        Diagnostic {
                            code: WarnCode::Uninit,
                            var: var.clone(),
                            message: format!(
                                "whole array '{var}' is read although every write that can \
                                 reach it is masked; elements no mask covered are silently zero"
                            ),
                            stmt: Some(pretty_stmt(index.node(*stmt))),
                        },
                    ));
                }
                continue;
            }
            found.push((
                *stmt,
                Diagnostic {
                    code: WarnCode::Uninit,
                    var: var.clone(),
                    message: format!("scalar '{var}' may be read before it is ever assigned"),
                    stmt: Some(pretty_stmt(index.node(*stmt))),
                },
            ));
        }

        for d in &liveness.dead_stores {
            found.push((
                d.stmt,
                Diagnostic {
                    code: WarnCode::DeadStore,
                    var: d.var.clone(),
                    message: format!(
                        "value stored to '{}' is never read before it is overwritten or goes out of scope",
                        d.var
                    ),
                    stmt: Some(pretty_stmt(index.node(d.stmt))),
                },
            ));
        }

        let mut races = RaceScan {
            index: &index,
            domains: Vec::new(),
            found: &mut found,
        };
        races.scan(root);

        found.sort_by_key(|(stmt, d)| (*stmt, d.code, d.var.clone()));
        let diagnostics: Vec<Diagnostic> = found.into_iter().map(|(_, d)| d).collect();

        let facts = reaching.fact_count + liveness.fact_count;
        tel.count("analysis.stmts", index.len() as u64);
        tel.count("analysis.facts", facts as u64);
        for code in [
            WarnCode::Race,
            WarnCode::Uninit,
            WarnCode::DeadStore,
            WarnCode::WideHalo,
            WarnCode::RedundantComm,
            WarnCode::AllToAll,
        ] {
            let n = diagnostics.iter().filter(|d| d.code == code).count();
            if n > 0 {
                tel.count(&format!("analysis.warnings.{code}"), n as u64);
            }
        }

        LintReport {
            diagnostics,
            stmts_analyzed: index.len(),
            facts,
        }
    })
}

/// The weak-update test behind the array `W-UNINIT` rule: at `stmt`,
/// `var` is read whole (`everywhere`) while its reaching definitions
/// are non-empty, still maybe-uninitialised, and *all masked* — no
/// unmasked write (not even a sectioned or subscripted one) and no
/// initializer can reach the read.
fn masked_only_whole_array_read(
    reaching: &ReachingFacts,
    index: &StmtIndex<'_>,
    stmt: usize,
    var: &str,
) -> bool {
    let Some(entry) = reaching.at_move.get(&stmt) else {
        return false;
    };
    let state = entry.state(var);
    if state.defs.is_empty() || !state.maybe_uninit {
        return false;
    }
    let all_masked = state.defs.iter().all(|(sid, ci)| match index.node(*sid) {
        Imp::Move(clauses) => clauses.get(*ci).is_some_and(|c| !c.is_unmasked()),
        // A WITH_DECL initializer is a strong definition.
        _ => false,
    });
    if !all_masked {
        return false;
    }
    let Imp::Move(clauses) = index.node(stmt) else {
        return false;
    };
    let mut whole_read = false;
    let mut check = |v: &Value| {
        v.walk(&mut |x| {
            if matches!(x, Value::AVar(id, FieldAction::Everywhere) if id == var) {
                whole_read = true;
            }
        });
    };
    for c in clauses {
        check(&c.mask);
        check(&c.src);
    }
    whole_read
}

/// First line of the statement's pretty form, truncated for display.
fn pretty_stmt(stmt: &Imp) -> String {
    let text = stmt.to_string();
    let first = text.lines().next().unwrap_or("").trim_end();
    if first.chars().count() > 96 {
        let head: String = first.chars().take(93).collect();
        format!("{head}...")
    } else {
        first.to_string()
    }
}

/// The write access of one clause's destination.
fn write_access(c: &MoveClause) -> Access {
    match &c.dst {
        LValue::SVar(_) => Access::Whole,
        LValue::AVar(_, fa) => Access::of_field_action(fa),
    }
}

/// Collect `(ident, access, shift_depth)` for every variable read in `v`,
/// where `shift_depth` counts enclosing `cshift`/`eoshift` calls.
fn shift_reads<'v>(v: &'v Value, depth: usize, out: &mut Vec<(&'v Ident, Access, usize)>) {
    match v {
        Value::SVar(id) => out.push((id, Access::Whole, depth)),
        Value::AVar(id, fa) => {
            out.push((id, Access::of_field_action(fa), depth));
            if let FieldAction::Subscript(ixs) = fa {
                for ix in ixs {
                    shift_reads(ix, depth, out);
                }
            }
        }
        Value::Unary(_, a) => shift_reads(a, depth, out),
        Value::Binary(_, a, b) => {
            shift_reads(a, depth, out);
            shift_reads(b, depth, out);
        }
        Value::FcnCall(name, args) => {
            let d = if name == "cshift" || name == "eoshift" {
                depth + 1
            } else {
                depth
            };
            for (_, a) in args {
                shift_reads(a, d, out);
            }
        }
        _ => {}
    }
}

/// `true` when one mask is the syntactic logical negation of the other
/// (the canonical `WHERE`/`ELSEWHERE` lowering).
fn complementary_masks(a: &Value, b: &Value) -> bool {
    matches!(a, Value::Unary(UnOp::Not, inner) if **inner == *b)
        || matches!(b, Value::Unary(UnOp::Not, inner) if **inner == *a)
}

struct RaceScan<'a, 'f> {
    index: &'a StmtIndex<'a>,
    domains: Vec<(Ident, Shape)>,
    found: &'f mut Vec<(usize, Diagnostic)>,
}

impl RaceScan<'_, '_> {
    fn domain_env(&self) -> DomainEnv {
        self.domains.iter().cloned().collect()
    }

    fn report(&mut self, stmt: usize, var: &str, message: String) {
        self.found.push((
            stmt,
            Diagnostic {
                code: WarnCode::Race,
                var: var.to_string(),
                message,
                stmt: Some(pretty_stmt(self.index.node(stmt))),
            },
        ));
    }

    fn scan(&mut self, imp: &Imp) {
        match imp {
            Imp::Skip => {}
            Imp::Program(b) => self.scan(b),
            Imp::Sequentially(xs) => {
                for x in xs {
                    self.scan(x);
                }
            }
            Imp::Concurrently(xs) => {
                let id = self.index.id(imp);
                for i in 0..xs.len() {
                    for j in i + 1..xs.len() {
                        if !f90y_nir::deps::commutes(&xs[i], &xs[j]) {
                            if let Some(var) = conflict_var(&xs[i], &xs[j]) {
                                self.report(
                                    id,
                                    &var,
                                    format!(
                                        "CONCURRENTLY arms conflict on '{var}': they do not commute"
                                    ),
                                );
                            }
                        }
                    }
                }
                for x in xs {
                    self.scan(x);
                }
            }
            Imp::Move(clauses) => {
                let id = self.index.id(imp);
                self.scan_move(id, clauses);
            }
            Imp::IfThenElse(_, t, e) => {
                self.scan(t);
                self.scan(e);
            }
            Imp::While(_, b) => self.scan(b),
            Imp::Do(_, shape, b) => {
                let parallel = shape
                    .resolve(&self.domain_env())
                    .map(|s| s.is_parallel() && s.size() > 1)
                    .unwrap_or(false);
                if parallel {
                    self.scan_parallel_do(imp, b);
                }
                self.scan(b);
            }
            Imp::WithDecl(_, b) => self.scan(b),
            Imp::WithDomain(name, shape, b) => {
                let resolved = shape
                    .resolve(&self.domain_env())
                    .unwrap_or_else(|_| shape.clone());
                self.domains.push((name.clone(), resolved));
                self.scan(b);
                self.domains.pop();
            }
        }
    }

    /// Rules over one `MOVE`: self-overlap of a single clause (through a
    /// shift or a section) and overlapping masked writes across clauses.
    fn scan_move(&mut self, id: usize, clauses: &[MoveClause]) {
        for c in clauses {
            let LValue::AVar(x, _) = &c.dst else { continue };
            let w = write_access(c);
            let mut reads = Vec::new();
            shift_reads(&c.src, 0, &mut reads);
            shift_reads(&c.mask, 0, &mut reads);
            let mut shifted = false;
            let mut sectioned = false;
            for (rid, racc, depth) in &reads {
                if *rid != x || !racc.overlaps(&w) {
                    continue;
                }
                if *depth > 0 {
                    shifted = true;
                } else if let (Access::Section(r), Access::Section(ws)) = (racc, &w) {
                    // An identical aligned section (a(odd) = a(odd) + 1)
                    // is elementwise and safe; a shifted one races.
                    if *r != *ws {
                        sectioned = true;
                    }
                }
            }
            if shifted {
                self.report(
                    id,
                    x,
                    format!(
                        "parallel assignment to '{x}' reads '{x}' through a communication \
                         shift that overlaps its own write"
                    ),
                );
            }
            if sectioned {
                self.report(
                    id,
                    x,
                    format!(
                        "parallel assignment to a section of '{x}' reads an overlapping, \
                         misaligned section of '{x}'"
                    ),
                );
            }
        }
        // Overlapping masked writes across clauses of one MOVE.
        for i in 0..clauses.len() {
            for j in i + 1..clauses.len() {
                let (a, b) = (&clauses[i], &clauses[j]);
                if a.dst.ident() != b.dst.ident() {
                    continue;
                }
                let x = a.dst.ident();
                if !write_access(a).overlaps(&write_access(b)) {
                    continue;
                }
                if complementary_masks(&a.mask, &b.mask) {
                    continue;
                }
                let provably_same = a.mask == b.mask; // covers both-unmasked
                if provably_same {
                    self.report(
                        id,
                        x,
                        format!(
                            "two masked writes to '{x}' in one MOVE have provably \
                             overlapping masks and overlapping sections"
                        ),
                    );
                }
            }
        }
    }

    /// Rule over a parallel `DO`: a variable both read and written across
    /// iterations races unless every access uses one identical subscript.
    fn scan_parallel_do(&mut self, do_node: &Imp, body: &Imp) {
        let id = self.index.id(do_node);
        let mut written: Vec<(Ident, Option<FieldAction>)> = Vec::new();
        body.walk(&mut |n| {
            if let Imp::Move(clauses) = n {
                for c in clauses {
                    match &c.dst {
                        LValue::SVar(s) => written.push((s.clone(), None)),
                        LValue::AVar(a, fa) => written.push((a.clone(), Some(fa.clone()))),
                    }
                }
            }
        });
        let rw = RwSets::of(body);
        let mut seen = BTreeSet::new();
        for (x, wfa) in &written {
            if !seen.insert(x.clone()) {
                continue;
            }
            if wfa.is_none() {
                self.report(
                    id,
                    x,
                    format!("scalar '{x}' is assigned by every iteration of a parallel DO"),
                );
                continue;
            }
            let Some(reads) = rw.reads_of(x) else {
                continue;
            };
            // Exemption: every access of x in the body uses one
            // identical subscript — a(i) = f(a(i)) is elementwise.
            if self.all_accesses_identical_subscripts(body, x) {
                continue;
            }
            let writes = rw.writes_of(x).unwrap_or(&[]);
            let conflict = writes.iter().any(|w| reads.iter().any(|r| r.overlaps(w)));
            if conflict {
                self.report(
                    id,
                    x,
                    format!(
                        "'{x}' is read and written with overlapping accesses across \
                         the iterations of a parallel DO"
                    ),
                );
            }
        }
    }

    fn all_accesses_identical_subscripts(&self, body: &Imp, x: &str) -> bool {
        let mut actions: Vec<FieldAction> = Vec::new();
        let mut record = |id: &Ident, fa: &FieldAction| {
            if id == x {
                actions.push(fa.clone());
            }
        };
        body.walk(&mut |n| {
            if let Imp::Move(clauses) = n {
                for c in clauses {
                    c.mask.walk(&mut |v| {
                        if let Value::AVar(id, fa) = v {
                            record(id, fa);
                        }
                    });
                    c.src.walk(&mut |v| {
                        if let Value::AVar(id, fa) = v {
                            record(id, fa);
                        }
                    });
                    if let LValue::AVar(id, fa) = &c.dst {
                        record(id, fa);
                    }
                }
            }
        });
        let Some(first) = actions.first() else {
            return true;
        };
        matches!(first, FieldAction::Subscript(_)) && actions.iter().all(|a| a == first)
    }
}

/// A deterministic conflicting variable between two non-commuting arms.
fn conflict_var(a: &Imp, b: &Imp) -> Option<Ident> {
    let ra = RwSets::of(a);
    let rb = RwSets::of(b);
    let mut candidates: BTreeSet<Ident> = BTreeSet::new();
    for (id, ws) in ra.writes() {
        let hits = |accs: Option<&[Access]>| {
            accs.is_some_and(|os| ws.iter().any(|w| os.iter().any(|o| w.overlaps(o))))
        };
        if hits(rb.reads_of(id)) || hits(rb.writes_of(id)) {
            candidates.insert(id.clone());
        }
    }
    for (id, ws) in rb.writes() {
        if ra
            .reads_of(id)
            .is_some_and(|os| ws.iter().any(|w| os.iter().any(|o| w.overlaps(o))))
        {
            candidates.insert(id.clone());
        }
    }
    candidates.into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;
    use f90y_nir::SectionRange;

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    fn decl_arr(name: &str, n: i64) -> f90y_nir::Decl {
        decl(name, dfield(interval(1, n), int32()))
    }

    #[test]
    fn self_shift_races() {
        // A = CSHIFT(A, 1)
        let p = with_decl(
            decl_arr("a", 32),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                mv(
                    avar("a", everywhere()),
                    fcncall("cshift", vec![(int32(), ld("a", everywhere()))]),
                ),
            ]),
        );
        let r = lint(&p);
        assert_eq!(codes(&r), vec!["W-RACE"]);
        assert_eq!(r.diagnostics[0].var, "a");
    }

    #[test]
    fn shift_of_other_variable_is_clean() {
        let p = with_decl(
            declset(vec![decl_arr("a", 32), decl_arr("b", 32)]),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                mv(
                    avar("b", everywhere()),
                    fcncall("cshift", vec![(int32(), ld("a", everywhere()))]),
                ),
            ]),
        );
        assert!(lint(&p).is_clean());
    }

    #[test]
    fn misaligned_section_copy_races() {
        // a(1:31) = a(2:32)
        let p = with_decl(
            decl_arr("a", 32),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                mv(
                    avar("a", section(vec![SectionRange::new(1, 31)])),
                    ld("a", section(vec![SectionRange::new(2, 32)])),
                ),
            ]),
        );
        let r = lint(&p);
        assert_eq!(codes(&r), vec!["W-RACE"]);
    }

    #[test]
    fn aligned_section_update_is_clean() {
        // a(1:31:2) = a(1:31:2) + 1 — elementwise.
        let odd = section(vec![SectionRange::strided(1, 31, 2)]);
        let p = with_decl(
            decl_arr("a", 32),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                mv(avar("a", odd.clone()), add(ld("a", odd), int(1))),
            ]),
        );
        assert!(lint(&p).is_clean());
    }

    #[test]
    fn disjoint_section_copy_is_clean() {
        // a(1:31:2) = a(2:32:2) — the read does not overlap the write.
        let p = with_decl(
            decl_arr("a", 32),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                mv(
                    avar("a", section(vec![SectionRange::strided(1, 31, 2)])),
                    ld("a", section(vec![SectionRange::strided(2, 32, 2)])),
                ),
            ]),
        );
        assert!(lint(&p).is_clean());
    }

    #[test]
    fn overlapping_where_masks_race() {
        // One MOVE, two clauses, same mask, overlapping sections of b.
        let m = ld("m", everywhere());
        let p = with_decl(
            declset(vec![decl_arr("b", 32), decl_arr("m", 32)]),
            seq(vec![
                mv(avar("b", everywhere()), int(0)),
                mv(avar("m", everywhere()), int(1)),
                mv_multi(vec![
                    f90y_nir::MoveClause {
                        mask: m.clone(),
                        src: int(1),
                        dst: avar("b", section(vec![SectionRange::new(1, 16)])),
                    },
                    f90y_nir::MoveClause {
                        mask: m,
                        src: int(2),
                        dst: avar("b", section(vec![SectionRange::new(16, 32)])),
                    },
                ]),
            ]),
        );
        let r = lint(&p);
        assert_eq!(codes(&r), vec!["W-RACE"]);
        assert_eq!(r.diagnostics[0].var, "b");
    }

    #[test]
    fn complementary_where_masks_are_clean() {
        // The canonical WHERE/ELSEWHERE lowering: m then .not. m.
        let m = ld("m", everywhere());
        let p = with_decl(
            declset(vec![decl_arr("b", 32), decl_arr("m", 32)]),
            seq(vec![
                mv(avar("b", everywhere()), int(0)),
                mv(avar("m", everywhere()), int(1)),
                mv_multi(vec![
                    f90y_nir::MoveClause {
                        mask: m.clone(),
                        src: int(1),
                        dst: avar("b", everywhere()),
                    },
                    f90y_nir::MoveClause {
                        mask: un(UnOp::Not, m),
                        src: int(2),
                        dst: avar("b", everywhere()),
                    },
                ]),
            ]),
        );
        assert!(lint(&p).is_clean());
    }

    #[test]
    fn disjoint_masked_sections_are_clean() {
        let m = ld("m", everywhere());
        let p = with_decl(
            declset(vec![decl_arr("b", 32), decl_arr("m", 32)]),
            seq(vec![
                mv(avar("b", everywhere()), int(0)),
                mv(avar("m", everywhere()), int(1)),
                mv_multi(vec![
                    f90y_nir::MoveClause {
                        mask: m.clone(),
                        src: int(1),
                        dst: avar("b", section(vec![SectionRange::strided(1, 31, 2)])),
                    },
                    f90y_nir::MoveClause {
                        mask: m,
                        src: int(2),
                        dst: avar("b", section(vec![SectionRange::strided(2, 32, 2)])),
                    },
                ]),
            ]),
        );
        assert!(lint(&p).is_clean());
    }

    #[test]
    fn parallel_do_cross_iteration_access_races() {
        // DO i over parallel 1..8: a(i) = a(i+1) — dynamic subscripts
        // with different index expressions.
        let p = with_decl(
            decl_arr("a", 8),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                do_over(
                    "i",
                    interval(1, 8),
                    mv(
                        avar("a", subscript(vec![do_index("i", 1)])),
                        ld("a", subscript(vec![add(do_index("i", 1), int(1))])),
                    ),
                ),
            ]),
        );
        let r = lint(&p);
        assert_eq!(codes(&r), vec!["W-RACE"]);
    }

    #[test]
    fn parallel_do_elementwise_update_is_clean() {
        // DO i: a(i) = a(i) + 1 — one identical subscript everywhere.
        let p = with_decl(
            decl_arr("a", 8),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                do_over(
                    "i",
                    interval(1, 8),
                    mv(
                        avar("a", subscript(vec![do_index("i", 1)])),
                        add(ld("a", subscript(vec![do_index("i", 1)])), int(1)),
                    ),
                ),
            ]),
        );
        assert!(lint(&p).is_clean());
    }

    #[test]
    fn serial_do_is_exempt_from_the_parallel_rule() {
        let p = with_decl(
            decl_arr("a", 8),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                do_over(
                    "i",
                    serial_interval(1, 8),
                    mv(
                        avar("a", subscript(vec![do_index("i", 1)])),
                        ld("a", subscript(vec![add(do_index("i", 1), int(1))])),
                    ),
                ),
            ]),
        );
        assert!(lint(&p).is_clean());
    }

    #[test]
    fn conflicting_concurrent_arms_race() {
        let p = with_decl(
            declset(vec![decl_arr("a", 8), decl_arr("b", 8)]),
            seq(vec![
                mv(avar("a", everywhere()), int(1)),
                conc(vec![
                    mv(avar("a", everywhere()), int(2)),
                    mv(avar("b", everywhere()), ld("a", everywhere())),
                ]),
            ]),
        );
        let r = lint(&p);
        assert!(codes(&r).contains(&"W-RACE"));
        assert_eq!(
            r.diagnostics
                .iter()
                .find(|d| d.code == WarnCode::Race)
                .unwrap()
                .var,
            "a"
        );
    }

    #[test]
    fn uninit_scalar_read_is_flagged_with_statement() {
        let p = with_decl(
            declset(vec![decl("x", int32()), decl("y", int32())]),
            seq(vec![
                mv(svar_lv("y"), add(svar("x"), int(1))),
                mv(svar_lv("x"), int(1)),
            ]),
        );
        let r = lint(&p);
        assert_eq!(codes(&r), vec!["W-UNINIT"]);
        assert_eq!(r.diagnostics[0].var, "x");
        assert!(r.diagnostics[0].stmt.as_deref().unwrap().contains("MOVE"));
    }

    #[test]
    fn uninit_array_read_is_exempt() {
        // Arrays are zero-initialised by the evaluator; stencil
        // prologues read them before any full definition.
        let p = with_decl(
            decl_arr("a", 8),
            mv(avar("b", everywhere()), ld("a", everywhere())),
        );
        let r = lint(&p);
        assert_eq!(r.count_of(WarnCode::Uninit), 0);
    }

    #[test]
    fn masked_only_writes_flag_a_whole_array_read() {
        // WHERE (m) a = 1; b = a — every element the mask skipped is a
        // silent zero on the read. The weak-update case PR 5 left open.
        let p = with_decl(
            declset(vec![
                decl_arr("a", 8),
                decl_arr("b", 8),
                decl("m", dfield(interval(1, 8), logical32())),
            ]),
            seq(vec![
                mv(avar("m", everywhere()), int(1)),
                mv_masked(ld("m", everywhere()), avar("a", everywhere()), int(1)),
                mv(avar("b", everywhere()), ld("a", everywhere())),
            ]),
        );
        let r = lint(&p);
        assert_eq!(r.count_of(WarnCode::Uninit), 1);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == WarnCode::Uninit)
            .unwrap();
        assert_eq!(d.var, "a");
        assert!(d.message.contains("masked"));
    }

    #[test]
    fn subscripted_init_loop_is_exempt_from_the_array_rule() {
        // An unmasked (if weak) subscripted init is a deliberate fill,
        // not a masked write: the zero-init model stays in force.
        let p = with_decl(
            declset(vec![decl_arr("a", 8), decl_arr("b", 8)]),
            seq(vec![
                do_over(
                    "i",
                    serial_interval(1, 8),
                    mv(avar("a", subscript(vec![do_index("i", 1)])), int(1)),
                ),
                mv(avar("b", everywhere()), ld("a", everywhere())),
            ]),
        );
        let r = lint(&p);
        assert_eq!(r.count_of(WarnCode::Uninit), 0);
    }

    #[test]
    fn strong_def_after_masked_write_is_exempt() {
        let m = ld("m", everywhere());
        let p = with_decl(
            declset(vec![
                decl_arr("a", 8),
                decl_arr("b", 8),
                decl("m", dfield(interval(1, 8), logical32())),
            ]),
            seq(vec![
                mv(avar("m", everywhere()), int(1)),
                mv_masked(m, avar("a", everywhere()), int(1)),
                mv(avar("a", everywhere()), int(2)),
                mv(avar("b", everywhere()), ld("a", everywhere())),
            ]),
        );
        let r = lint(&p);
        assert_eq!(r.count_of(WarnCode::Uninit), 0);
    }

    #[test]
    fn dead_store_is_flagged() {
        let p = with_decl(
            decl("x", int32()),
            seq(vec![mv(svar_lv("x"), int(1)), mv(svar_lv("x"), int(2))]),
        );
        let r = lint(&p);
        assert_eq!(codes(&r), vec!["W-DEADSTORE"]);
        assert_eq!(r.diagnostics[0].var, "x");
    }

    #[test]
    fn telemetry_counters_are_emitted() {
        let p = with_decl(
            decl("x", int32()),
            seq(vec![mv(svar_lv("x"), int(1)), mv(svar_lv("x"), int(2))]),
        );
        let mut tel = Telemetry::new();
        let r = lint_with(&p, &mut tel);
        assert_eq!(r.count_of(WarnCode::DeadStore), 1);
        let report = tel.report();
        assert!(report.counter("analysis.stmts").unwrap() >= 4);
        assert!(report.counter("analysis.facts").unwrap() > 0);
        assert_eq!(report.counter("analysis.warnings.W-DEADSTORE"), Some(1));
        assert!(report.span_nanos("analysis.lint").is_some());
    }
}
