//! Static legality audit for middle-end passes.
//!
//! `--verify-passes` checks behaviour with the reference evaluator; the
//! audit checks *def-use legality* statically: a pass must not reorder or
//! rewrite code so that a read which used to be reached by a definition
//! no longer is. The check is a baseline comparison — lowered programs
//! legitimately read zero-initialised arrays, so only *newly* undefined
//! reads (relative to the pass pipeline's input) are violations.

use std::collections::BTreeSet;

use f90y_nir::{Ident, Imp, NirError};

use crate::index::StmtIndex;
use crate::reaching::ReachingFacts;

/// Def-use facts of one program snapshot, for before/after comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFacts {
    /// Variables with at least one read that may see no definition.
    undef_reads: BTreeSet<Ident>,
}

impl AuditFacts {
    /// Compute the audit facts of a program.
    #[must_use]
    pub fn of(root: &Imp) -> AuditFacts {
        let index = StmtIndex::of(root);
        let facts = ReachingFacts::compute(root, &index);
        AuditFacts {
            undef_reads: facts.uninit_uses.iter().map(|(_, v)| v.clone()).collect(),
        }
    }

    /// Check a pass's output against the pipeline-input baseline.
    ///
    /// # Errors
    ///
    /// Fails with [`NirError::Verify`] naming the pass when `after`
    /// contains a possibly-undefined read of a variable that the
    /// baseline program always defined before reading.
    pub fn check_pass(&self, pass: &str, after: &Imp) -> Result<(), NirError> {
        let now = AuditFacts::of(after);
        if let Some(var) = now.undef_reads.difference(&self.undef_reads).next() {
            return Err(NirError::Verify(format!(
                "pass '{pass}' broke def-use legality: a read of '{var}' is no \
                 longer reached by any definition"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;

    fn def_then_use() -> Imp {
        with_decl(
            declset(vec![decl("x", int32()), decl("y", int32())]),
            seq(vec![mv(svar_lv("x"), int(1)), mv(svar_lv("y"), svar("x"))]),
        )
    }

    fn use_then_def() -> Imp {
        with_decl(
            declset(vec![decl("x", int32()), decl("y", int32())]),
            seq(vec![mv(svar_lv("y"), svar("x")), mv(svar_lv("x"), int(1))]),
        )
    }

    #[test]
    fn identity_passes_the_audit() {
        let p = def_then_use();
        let base = AuditFacts::of(&p);
        assert!(base.check_pass("noop", &p).is_ok());
    }

    #[test]
    fn illegal_swap_fails_naming_the_pass() {
        let base = AuditFacts::of(&def_then_use());
        let err = base
            .check_pass("evil-swap", &use_then_def())
            .expect_err("the swap must be caught");
        let msg = err.to_string();
        assert!(msg.contains("evil-swap"), "got: {msg}");
        assert!(msg.contains("'x'"), "got: {msg}");
    }

    #[test]
    fn preexisting_undefined_reads_are_not_blamed_on_the_pass() {
        // The baseline itself reads x before defining it; a pass that
        // keeps doing so is not a regression.
        let p = use_then_def();
        let base = AuditFacts::of(&p);
        assert!(base.check_pass("noop", &p).is_ok());
        // But it still cannot introduce a *new* one.
        let q = with_decl(
            declset(vec![
                decl("x", int32()),
                decl("y", int32()),
                decl("z", int32()),
            ]),
            seq(vec![
                mv(svar_lv("y"), svar("x")),
                mv(svar_lv("x"), int(1)),
                mv(svar_lv("w"), svar("z")),
            ]),
        );
        assert!(base.check_pass("evil", &q).is_err());
    }
}
