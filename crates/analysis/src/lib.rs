//! # f90y-analysis — dataflow analyses and diagnostics over NIR
//!
//! The paper's §4.2 transformations are legal only "where dependencies
//! allow the code movement". This crate turns the one-off syntactic
//! checks scattered through the middle end into reusable dataflow facts
//! over NIR programs, and builds three clients on top of them:
//!
//! * **[`reaching`]** — forward reaching definitions with an
//!   uninitialised-use bit per variable (def-use chains);
//! * **[`liveness`]** — backward per-variable liveness at section
//!   granularity, reusing [`f90y_nir::deps::Access`] as the lattice
//!   element; its *faint-variable* mode drives `dce-temps`;
//! * **[`mod@lint`]** — a diagnostics engine with stable warning codes
//!   (`W-RACE`, `W-UNINIT`, `W-DEADSTORE`), surfaced as `f90yc --lint`;
//! * **[`audit`]** — a static def-use legality check for middle-end
//!   passes, complementing the evaluator oracle of `--verify-passes`;
//! * **[`comm`]** — the static communication plan: every shift,
//!   broadcast, reduction and all-to-all a program will perform,
//!   classified and priced per target before any machine runs, with
//!   its own lint codes and pass-audit facts.
//!
//! Statements are identified by their pre-order position in one analysed
//! tree (see [`index::StmtIndex`]); all analyses and their facts refer to
//! the same borrowed root.

pub mod audit;
pub mod comm;
pub mod index;
pub mod lint;
pub mod liveness;
pub mod reaching;

pub use audit::AuditFacts;
pub use comm::{comm_lints, comm_plan, price, CommFacts, CommKind, CommOp, CommPlan, PricedPlan};
pub use index::StmtIndex;
pub use lint::{lint, lint_with, Diagnostic, LintReport, WarnCode};
pub use liveness::{faint_temps, DeadStore, Liveness};
pub use reaching::{DefId, DefState, Defs, ReachingFacts};
