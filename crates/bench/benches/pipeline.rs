//! Criterion benchmarks: compiler throughput and simulated-machine
//! throughput for the paper's workloads. (The *tables* are regenerated
//! by the `src/bin/*` harnesses; these benches time our own pipeline —
//! the "rapid prototyping" half of the paper's pitch.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use f90y_core::{workloads, Compiler, Pipeline, Target, Telemetry};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    for (name, src) in [
        ("fig8", workloads::fig_section21_f90().to_string()),
        ("fig10", workloads::fig10_source().to_string()),
        ("swe64", workloads::swe_source(64, 3)),
    ] {
        g.bench_with_input(BenchmarkId::new("f90y", name), &src, |b, src| {
            b.iter(|| {
                Compiler::new(Pipeline::F90y)
                    .compile(black_box(src))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_swe_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("swe_simulate");
    g.sample_size(10);
    for n in [64usize, 128] {
        let src = workloads::swe_source(n, 2);
        let exe = Compiler::new(Pipeline::F90y).compile(&src).unwrap();
        g.bench_with_input(BenchmarkId::new("cm2", n), &exe, |b, exe| {
            b.iter(|| {
                exe.session(Target::Cm2 {
                    nodes: black_box(256),
                })
                .run()
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_pipelines_on_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_compile");
    let src = workloads::fig12_source(64);
    for p in [Pipeline::F90y, Pipeline::Cmf, Pipeline::StarLisp] {
        g.bench_function(p.name(), |b| {
            b.iter(|| Compiler::new(p).compile(black_box(&src)).unwrap())
        });
    }
    g.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // The off-by-default claim: a disabled collector must cost nothing
    // measurable against the plain path (every instrumented call is one
    // branch on a bool). Compare the two and eyeball that the means sit
    // within run-to-run noise of each other.
    let mut g = c.benchmark_group("telemetry_overhead");
    let src = workloads::swe_source(64, 3);
    g.bench_function("compile_plain", |b| {
        b.iter(|| {
            Compiler::new(Pipeline::F90y)
                .compile(black_box(&src))
                .unwrap()
        })
    });
    g.bench_function("compile_disabled_telemetry", |b| {
        b.iter(|| {
            let mut tel = Telemetry::disabled();
            Compiler::new(Pipeline::F90y)
                .compile_with(black_box(&src), &mut tel)
                .unwrap()
        })
    });
    g.bench_function("compile_enabled_telemetry", |b| {
        b.iter(|| {
            let mut tel = Telemetry::new();
            Compiler::new(Pipeline::F90y)
                .compile_with(black_box(&src), &mut tel)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_transform(c: &mut Criterion) {
    let src = workloads::swe_source(64, 3);
    let unit = f90y_frontend::parse(&src).unwrap();
    let nir = f90y_lowering::lower(&unit).unwrap();
    c.bench_function("transform/swe64", |b| {
        b.iter(|| f90y_transform::optimize(black_box(&nir)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_compile,
    bench_swe_simulation,
    bench_pipelines_on_fig12,
    bench_telemetry_overhead,
    bench_transform
);
criterion_main!(benches);
