//! Serving-layer benchmark: replay a mixed multi-tenant workload
//! through the deterministic [`f90y_serve::engine::Engine`] and report
//! latency percentiles, cache effectiveness and fairness — all in
//! simulated machine-time units, never wall clock, so the emitted
//! `BENCH_serve.json` regenerates byte-identically and `git diff`
//! doubles as the CI gate (DESIGN.md §13).
//!
//! The workload mixes the paper's programs — the §6 shallow-water
//! kernel, the Figure 9 blocking example, the heat stencil — with
//! Game-of-Life, red-black relaxation, compile-only warmups and
//! lint-only requests, spread across three tenants with heavy source
//! repetition (that repetition is what the compile cache exists for;
//! the committed artefact proves a ≥50 % hit rate).

use std::sync::mpsc::channel;

use f90y_core::{workloads, Pipeline, Target};
use f90y_obs::json::Json;
use f90y_serve::engine::{Engine, ServeConfig};
use f90y_serve::protocol::{Request, RequestKind, Response};

use crate::BENCH_SCHEMA;

/// Tenants of the benchmark workload, charged round-robin.
pub const SERVE_TENANTS: [&str; 3] = ["ames", "ncar", "yale"];

/// Compile-cache residency bound used by the benchmark engine.
pub const SERVE_CACHE_CAPACITY: usize = 32;

/// A lint-only request body: the self-shift race from the lint corpus,
/// guaranteed to produce a `W-RACE` diagnostic.
const LINT_SOURCE: &str = "REAL A(8,8)\nA = CSHIFT(A, DIM=1, SHIFT=1)\n";

/// Build the 50-request mixed workload. Deterministic: same requests,
/// same ids, same tenants every time. Sources repeat heavily across
/// tenants so the compile cache gets real traffic; the mix covers both
/// targets, compile-only warmups and lint-only requests.
pub fn serve_workload() -> Vec<Request> {
    use RequestKind::{Compile, Lint, Run};
    let cm2 = Target::Cm2 { nodes: 16 };
    let cm5 = Target::Cm5Mimd { nodes: 16 };
    let cm5_wide = Target::Cm5Mimd { nodes: 32 };

    let swe = workloads::swe_source(16, 1);
    let fig9 = workloads::fig9_source().to_string();
    let heat = workloads::heat_source(24, 2);
    let life = workloads::life_source(12, 1);
    let redblack = workloads::redblack_source(16, 2);

    // One group per (kind, program, target); the repeat count is the
    // group's length. 7 distinct cache keys serve 46 cacheable
    // requests — the hit rate the committed artefact asserts.
    let groups: Vec<Vec<(RequestKind, String, Target)>> = vec![
        vec![(Run, swe.clone(), cm2); 12],
        vec![(Compile, swe.clone(), cm2); 2],
        vec![(Run, swe, cm5_wide); 4],
        vec![(Run, fig9, cm2); 9],
        vec![(Run, heat.clone(), cm2); 6],
        vec![(Run, heat, cm5); 4],
        vec![(Run, life, cm2); 5],
        vec![(Run, redblack, cm2); 4],
        vec![(Lint, LINT_SOURCE.to_string(), cm2); 4],
    ];

    // Interleave round-robin across groups so the stream is genuinely
    // mixed — a cold compile, a repeat, a lint, a retarget — rather
    // than sorted by program.
    let mut groups: Vec<_> = groups.into_iter().map(Vec::into_iter).collect();
    let mut jobs = Vec::new();
    loop {
        let before = jobs.len();
        for g in &mut groups {
            if let Some(job) = g.next() {
                jobs.push(job);
            }
        }
        if jobs.len() == before {
            break;
        }
    }

    jobs.into_iter()
        .enumerate()
        .map(|(i, (kind, source, target))| Request {
            id: (i + 1) as u64,
            tenant: SERVE_TENANTS[i % SERVE_TENANTS.len()].to_string(),
            kind,
            source,
            pipeline: Pipeline::F90y,
            passes: None,
            target,
            host_threads: 1,
            faults: None,
        })
        .collect()
}

/// Nearest-rank percentile of a sorted slice (0 when empty).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Shorthand for a JSON number field from a count.
fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

/// A `{count, p50, p99, max}` block over a sample of simulated units.
fn latency_block(mut sample: Vec<u64>) -> Json {
    sample.sort_unstable();
    Json::Obj(vec![
        ("count".into(), num(sample.len() as u64)),
        ("p50".into(), num(percentile(&sample, 50.0))),
        ("p99".into(), num(percentile(&sample, 99.0))),
        ("max".into(), num(sample.last().copied().unwrap_or(0))),
    ])
}

/// The two artefacts of one benchmark replay.
pub struct ServeBenchArtifacts {
    /// The `BENCH_serve.json` body (committed, diffed in CI).
    pub report: String,
    /// One response line per request — the per-request log with cache
    /// outcome, charge and flight-recorder digest (CI upload).
    pub request_log: String,
}

/// Replay the mixed workload through a deterministic drain-mode engine
/// and build both artefacts. Every number derives from the virtual
/// charge clock and the simulated machines — regeneration is
/// byte-identical.
///
/// # Panics
///
/// Panics if any request is refused or fails: a committed artefact must
/// never encode a broken replay.
pub fn serve_bench() -> ServeBenchArtifacts {
    let engine = Engine::new(ServeConfig {
        cache_capacity: SERVE_CACHE_CAPACITY,
        ..ServeConfig::deterministic()
    });
    let requests = serve_workload();
    let total = requests.len() as u64;

    let (tx, rx) = channel();
    for req in requests {
        engine
            .submit(req, tx.clone())
            .expect("the bench workload fits the queue");
    }
    drop(tx);
    engine.drain();
    let responses: Vec<Response> = rx.iter().collect();
    assert_eq!(responses.len() as u64, total, "every request answers");

    let mut runs = 0u64;
    let mut compiles = 0u64;
    let mut lints = 0u64;
    let mut compile_units = Vec::new();
    let mut run_units = Vec::new();
    let mut queue_wait_units = Vec::new();
    let mut latency_units = Vec::new();
    for resp in &responses {
        let done = match resp {
            Response::Done(d) => d,
            Response::Error(e) => panic!("bench request {} failed: {e:?}", e.id),
        };
        match done.kind {
            RequestKind::Run => runs += 1,
            RequestKind::Compile => compiles += 1,
            RequestKind::Lint => lints += 1,
        }
        if done.cache == "miss" {
            compile_units.push(done.compile_units);
        }
        if done.kind == RequestKind::Run {
            run_units.push(done.run_units);
        }
        queue_wait_units.push(done.queue_wait_units);
        latency_units.push(done.latency_units);
    }

    let stats = engine.stats();
    let tel = engine.telemetry_report();
    let tenants: Vec<(String, Json)> = stats
        .tenants
        .iter()
        .map(|(name, charge)| (name.clone(), num(*charge)))
        .collect();

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(BENCH_SCHEMA.into())),
        ("workload".into(), Json::Str("serve".into())),
        (
            "config".into(),
            Json::Obj(vec![
                ("mode".into(), Json::Str("deterministic-drain".into())),
                ("cache_capacity".into(), num(SERVE_CACHE_CAPACITY as u64)),
                (
                    "tenants".into(),
                    Json::Arr(
                        SERVE_TENANTS
                            .iter()
                            .map(|t| Json::Str((*t).into()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "requests".into(),
            Json::Obj(vec![
                ("total".into(), num(total)),
                ("run".into(), num(runs)),
                ("compile".into(), num(compiles)),
                ("lint".into(), num(lints)),
                ("errors".into(), num(0)),
            ]),
        ),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), num(stats.cache.hits)),
                ("misses".into(), num(stats.cache.misses)),
                ("evictions".into(), num(stats.cache.evictions)),
                ("hit_rate".into(), Json::Num(stats.cache.hit_rate())),
            ]),
        ),
        (
            "latency".into(),
            Json::Obj(vec![
                ("compile_units".into(), latency_block(compile_units)),
                ("run_units".into(), latency_block(run_units)),
                ("queue_wait_units".into(), latency_block(queue_wait_units)),
                ("latency_units".into(), latency_block(latency_units)),
            ]),
        ),
        (
            "fairness".into(),
            Json::Obj(vec![
                ("tenants".into(), Json::Obj(tenants)),
                ("spread".into(), num(stats.fairness_spread())),
                ("clock".into(), num(stats.clock)),
            ]),
        ),
        (
            "telemetry".into(),
            Json::Obj(vec![
                (
                    "requests".into(),
                    num(tel.counter("serve.requests").unwrap_or(0)),
                ),
                (
                    "cache_hits".into(),
                    num(tel.counter("serve.cache.hit").unwrap_or(0)),
                ),
                (
                    "cache_misses".into(),
                    num(tel.counter("serve.cache.miss").unwrap_or(0)),
                ),
            ]),
        ),
    ]);

    let mut request_log = String::new();
    for resp in &responses {
        request_log.push_str(&resp.to_json());
        request_log.push('\n');
    }
    ServeBenchArtifacts {
        report: format!("{doc}\n"),
        request_log,
    }
}

/// The `BENCH_serve.json` body alone — the regeneration gate used by
/// `validate_artifacts --serve`.
pub fn serve_bench_json() -> String {
    serve_bench().report
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_obs::json::parse;

    fn field<'a>(doc: &'a Json, name: &str) -> &'a Json {
        match doc {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("field '{name}' missing")),
            other => panic!("expected an object, got {other}"),
        }
    }

    fn num_of(doc: &Json, name: &str) -> f64 {
        match field(doc, name) {
            Json::Num(n) => *n,
            other => panic!("field '{name}' is not a number: {other}"),
        }
    }

    #[test]
    fn workload_is_fifty_mixed_requests() {
        let reqs = serve_workload();
        assert_eq!(reqs.len(), 50);
        // Ids are 1..=50, each exactly once.
        let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        assert_eq!(ids, (1..=50).collect::<Vec<u64>>());
        // Every kind and both targets appear.
        assert!(reqs.iter().any(|r| r.kind == RequestKind::Run));
        assert!(reqs.iter().any(|r| r.kind == RequestKind::Compile));
        assert!(reqs.iter().any(|r| r.kind == RequestKind::Lint));
        assert!(reqs
            .iter()
            .any(|r| matches!(r.target, Target::Cm5Mimd { .. })));
        // Every request line round-trips through the wire protocol.
        for req in &reqs {
            let back = Request::parse(&req.to_json()).expect("round trip");
            assert_eq!(back.id, req.id);
            assert_eq!(back.source, req.source);
        }
    }

    #[test]
    fn serve_bench_regenerates_byte_identically() {
        let first = serve_bench();
        let second = serve_bench();
        assert_eq!(
            first.report, second.report,
            "BENCH_serve.json must regenerate exactly"
        );
        assert_eq!(first.request_log, second.request_log, "request log too");
    }

    #[test]
    fn serve_bench_meets_the_acceptance_floor() {
        let art = serve_bench();
        let doc = parse(&art.report).expect("valid JSON");
        let cache = field(&doc, "cache");
        assert!(
            num_of(cache, "hit_rate") >= 0.5,
            "the ISSUE's acceptance floor: hit rate >= 50%"
        );
        assert!(num_of(cache, "hits") >= 1.0);
        let latency = field(&doc, "latency");
        for block in ["compile_units", "run_units", "latency_units"] {
            let b = field(latency, block);
            assert!(num_of(b, "p50") > 0.0, "{block} p50 is populated");
            assert!(
                num_of(b, "p99") >= num_of(b, "p50"),
                "{block} percentiles are ordered"
            );
        }
        let requests = field(&doc, "requests");
        assert_eq!(num_of(requests, "total"), 50.0);
        assert_eq!(num_of(requests, "errors"), 0.0);
        // One log line per request, each with a parseable response.
        assert_eq!(art.request_log.lines().count(), 50);
        for line in art.request_log.lines() {
            Response::parse(line).expect("log lines are response lines");
        }
    }
}
