//! # f90y-bench — harnesses that regenerate the paper's tables and figures
//!
//! Each binary in `src/bin/` reproduces one table, figure or quantified
//! claim of the paper (the index lives in DESIGN.md §4; measured-vs-paper
//! numbers are recorded in EXPERIMENTS.md). Run any of them with
//! `cargo run -p f90y-bench --release --bin <name>`:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table_swe` | §6 SWE GFLOPS table (\*Lisp / CMF / F90-Y) |
//! | `fig4_loop_rules` | Fig. 4 inductive LOOP expansion derivation |
//! | `fig7_forall` | Fig. 7 FORALL → parallel array notation |
//! | `fig8_lowering` | Fig. 8 shape-parameterised NIR |
//! | `fig9_blocking` | Fig. 9 domain blocking transformation |
//! | `fig10_masking` | Fig. 10 masked-assignment blocking + PEAC |
//! | `fig11_partition` | Fig. 11 naive/blocked/partitioned program |
//! | `fig12_peac` | Fig. 12 naive vs optimized PEAC encodings |
//! | `series_host_fraction` | §5.2 claim: host time becomes negligible |
//! | `ablation_spill` | §5.2 claim: 18-cycle spills, overlap placement |
//! | `ablation_blocking` | §6 claim: blocking amortises dispatch |
//! | `table_cm5` | §5.3.1 CM/5 retarget |
//!
//! The shared helpers here keep the binaries small and consistent.

use std::path::PathBuf;

use f90y_core::{Compiler, Executable, Pipeline, RunReport, Target};
use f90y_obs::{JsonSink, Telemetry};

/// Compile a source text under a pipeline, panicking with context on
/// failure (harness-level ergonomics).
pub fn compile(src: &str, pipeline: Pipeline) -> Executable {
    match Compiler::new(pipeline).compile(src) {
        Ok(exe) => exe,
        Err(e) => panic!("compilation failed under {}: {e}", pipeline.name()),
    }
}

/// Compile and run on `nodes` CM/2 nodes.
pub fn run(src: &str, pipeline: Pipeline, nodes: usize) -> (Executable, RunReport) {
    let exe = compile(src, pipeline);
    let report = match exe.session(Target::Cm2 { nodes }).run() {
        Ok(r) => r.into_cm2(),
        Err(e) => panic!("execution failed under {}: {e}", pipeline.name()),
    };
    (exe, report)
}

/// [`run`] with telemetry recording: phase timings, compiler counters
/// and per-phase simulator cycle attribution.
pub fn run_instrumented(
    src: &str,
    pipeline: Pipeline,
    nodes: usize,
) -> (Executable, RunReport, Telemetry) {
    let mut tel = Telemetry::new();
    let exe = match Compiler::new(pipeline).compile_with(src, &mut tel) {
        Ok(exe) => exe,
        Err(e) => panic!("compilation failed under {}: {e}", pipeline.name()),
    };
    let report = match exe.session(Target::Cm2 { nodes }).telemetry(&mut tel).run() {
        Ok(r) => r.into_cm2(),
        Err(e) => panic!("execution failed under {}: {e}", pipeline.name()),
    };
    (exe, report, tel)
}

/// Write a telemetry report as JSON under `target/telemetry/<name>.json`
/// (next to the printed results) and say where it went. Harnesses stay
/// quiet about I/O failures — a read-only checkout still prints its
/// table.
pub fn emit_telemetry(tel: &Telemetry, name: &str) {
    let dir = PathBuf::from("target/telemetry");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if JsonSink::create(&path)
        .and_then(|mut sink| tel.emit(&mut sink))
        .is_ok()
    {
        println!("telemetry: {}", path.display());
    }
}

/// Print a horizontal rule sized to a table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format a breakdown of machine cycles as percentages.
pub fn breakdown(report: &RunReport) -> String {
    let total = report.stats.node_cycles().max(1) as f64;
    format!(
        "compute {:4.1}%  comm {:4.1}%  dispatch {:4.1}%  host {:4.2}%",
        report.stats.compute_cycles as f64 / total * 100.0,
        report.stats.comm_cycles as f64 / total * 100.0,
        report.stats.dispatch_overhead_cycles as f64 / total * 100.0,
        report.host_fraction * 100.0,
    )
}

/// The headline experiment configuration: the §6 table is regenerated
/// at this grid size and node count (see EXPERIMENTS.md for the sweep).
pub const HEADLINE_GRID: usize = 1024;
/// Headline time steps.
pub const HEADLINE_STEPS: usize = 3;
/// Headline machine size (the full CM-2 of the paper).
pub const HEADLINE_NODES: usize = 2048;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_compile_and_run() {
        let (exe, report) = run("REAL a(64)\na = 1.0\n", Pipeline::F90y, 16);
        assert_eq!(exe.compiled.blocks.len(), 1);
        assert!(report.stats.node_cycles() > 0);
        assert!(!breakdown(&report).is_empty());
    }
}
