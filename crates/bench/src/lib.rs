//! # f90y-bench — harnesses that regenerate the paper's tables and figures
//!
//! Each binary in `src/bin/` reproduces one table, figure or quantified
//! claim of the paper (the index lives in DESIGN.md §4; measured-vs-paper
//! numbers are recorded in EXPERIMENTS.md). Run any of them with
//! `cargo run -p f90y-bench --release --bin <name>`:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table_swe` | §6 SWE GFLOPS table (\*Lisp / CMF / F90-Y) |
//! | `fig4_loop_rules` | Fig. 4 inductive LOOP expansion derivation |
//! | `fig7_forall` | Fig. 7 FORALL → parallel array notation |
//! | `fig8_lowering` | Fig. 8 shape-parameterised NIR |
//! | `fig9_blocking` | Fig. 9 domain blocking transformation |
//! | `fig10_masking` | Fig. 10 masked-assignment blocking + PEAC |
//! | `fig11_partition` | Fig. 11 naive/blocked/partitioned program |
//! | `fig12_peac` | Fig. 12 naive vs optimized PEAC encodings |
//! | `series_host_fraction` | §5.2 claim: host time becomes negligible |
//! | `ablation_spill` | §5.2 claim: 18-cycle spills, overlap placement |
//! | `ablation_blocking` | §6 claim: blocking amortises dispatch |
//! | `table_cm5` | §5.3.1 CM/5 retarget |
//! | `bench_serve` | §7 service replay: cache, fairness, latency |
//! | `bench_accel` | §5.3 retarget claim pushed to a third (accelerator) target |
//!
//! The shared helpers here keep the binaries small and consistent.

use std::path::PathBuf;

use f90y_core::{
    workloads, Compiler, Executable, Pipeline, RunReport, Target, TargetPrediction, TraceBuffer,
};
use f90y_obs::json::Json;
use f90y_obs::{JsonSink, Telemetry};

pub mod serve_bench;
pub use serve_bench::{serve_bench, serve_bench_json, serve_workload, ServeBenchArtifacts};

/// Compile a source text under a pipeline, panicking with context on
/// failure (harness-level ergonomics).
pub fn compile(src: &str, pipeline: Pipeline) -> Executable {
    match Compiler::new(pipeline).compile(src) {
        Ok(exe) => exe,
        Err(e) => panic!("compilation failed under {}: {e}", pipeline.name()),
    }
}

/// Compile and run on `nodes` CM/2 nodes.
pub fn run(src: &str, pipeline: Pipeline, nodes: usize) -> (Executable, RunReport) {
    let exe = compile(src, pipeline);
    let report = match exe.session(Target::Cm2 { nodes }).run() {
        Ok(r) => r.into_cm2(),
        Err(e) => panic!("execution failed under {}: {e}", pipeline.name()),
    };
    (exe, report)
}

/// [`run`] with telemetry recording: phase timings, compiler counters
/// and per-phase simulator cycle attribution.
pub fn run_instrumented(
    src: &str,
    pipeline: Pipeline,
    nodes: usize,
) -> (Executable, RunReport, Telemetry) {
    let mut tel = Telemetry::new();
    let exe = match Compiler::new(pipeline).compile_with(src, &mut tel) {
        Ok(exe) => exe,
        Err(e) => panic!("compilation failed under {}: {e}", pipeline.name()),
    };
    let report = match exe.session(Target::Cm2 { nodes }).telemetry(&mut tel).run() {
        Ok(r) => r.into_cm2(),
        Err(e) => panic!("execution failed under {}: {e}", pipeline.name()),
    };
    (exe, report, tel)
}

/// Write a telemetry report as JSON under `target/telemetry/<name>.json`
/// (next to the printed results) and say where it went. Harnesses stay
/// quiet about I/O failures — a read-only checkout still prints its
/// table.
pub fn emit_telemetry(tel: &Telemetry, name: &str) {
    let dir = PathBuf::from("target/telemetry");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if JsonSink::create(&path)
        .and_then(|mut sink| tel.emit(&mut sink))
        .is_ok()
    {
        println!("telemetry: {}", path.display());
    }
}

/// Print a horizontal rule sized to a table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format a breakdown of machine cycles as percentages.
pub fn breakdown(report: &RunReport) -> String {
    let total = report.stats.node_cycles().max(1) as f64;
    format!(
        "compute {:4.1}%  comm {:4.1}%  dispatch {:4.1}%  host {:4.2}%",
        report.stats.compute_cycles as f64 / total * 100.0,
        report.stats.comm_cycles as f64 / total * 100.0,
        report.stats.dispatch_overhead_cycles as f64 / total * 100.0,
        report.host_fraction * 100.0,
    )
}

/// The headline experiment configuration: the §6 table is regenerated
/// at this grid size and node count (see EXPERIMENTS.md for the sweep).
pub const HEADLINE_GRID: usize = 1024;
/// Headline time steps.
pub const HEADLINE_STEPS: usize = 3;
/// Headline machine size (the full CM-2 of the paper).
pub const HEADLINE_NODES: usize = 2048;

/// Schema tag stamped into every machine-readable benchmark artefact;
/// bump it when the field set changes shape.
pub const BENCH_SCHEMA: &str = "f90y-bench-v1";
/// Grid size of the committed `BENCH_swe.json` trajectory point.
pub const BENCH_GRID: usize = 64;
/// Time steps of the committed trajectory point.
pub const BENCH_STEPS: usize = 2;
/// Node count of the committed trajectory point.
pub const BENCH_NODES: usize = 16;

/// Host-thread counts of the committed `BENCH_scaling.json` sweep.
pub const BENCH_HOST_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Shorthand for a JSON number field from a count.
fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

/// Build the machine-readable SWE benchmark report: the shallow-water
/// workload at [`BENCH_GRID`]²×[`BENCH_STEPS`] compiled once and run on
/// [`BENCH_NODES`] nodes of both engines, with the middle-end pass
/// summary, the flight-recorder digest of the MIMD run, and the
/// `static_comm` block: the communication-plan analysis' predicted
/// counters next to the observed ones, asserted bit-equal in-process
/// before anything is emitted (the `validate_artifacts --comm` gate
/// re-checks the committed copy). Every value
/// derives from the simulated machine model — no wall-clock time — so
/// regenerating the report is byte-identical and `git diff` doubles as
/// a perf-trajectory check.
///
/// # Panics
///
/// Panics if the workload fails to compile or run, or if the recorded
/// trace fails flow pairing — a committed artefact must never encode a
/// broken run.
pub fn swe_bench_json() -> String {
    let src = workloads::swe_source(BENCH_GRID, BENCH_STEPS);
    let exe = compile(&src, Pipeline::F90y);

    let cm2 = exe
        .session(Target::Cm2 { nodes: BENCH_NODES })
        .run()
        .expect("CM/2 SWE run")
        .into_cm2();

    let mut tel = Telemetry::new();
    let mut buf = TraceBuffer::new();
    let cm5 = exe
        .session(Target::Cm5Mimd { nodes: BENCH_NODES })
        .telemetry(&mut tel)
        .trace(&mut buf)
        .run()
        .expect("CM/5 SWE run")
        .into_mimd();
    let trace = buf.trace.expect("trace captured");
    let paired = trace.verify_flow_pairing().expect("flows pair") as u64;
    assert_eq!(paired, cm5.stats.messages, "trace vs counter divergence");

    // The static admission oracle (DESIGN.md §16), reconciled before
    // anything is emitted: the communication-plan prediction must equal
    // the observed machine counters bit-exactly on both engines.
    let TargetPrediction::Cm2 {
        dispatches: p2_dispatches,
        comm_calls: p2_comm_calls,
        reductions: p2_reductions,
    } = exe
        .predict(Target::Cm2 { nodes: BENCH_NODES })
        .expect("SWE has an exact static plan")
    else {
        unreachable!("CM/2 target folds to a CM/2 prediction")
    };
    assert_eq!(
        (p2_dispatches, p2_comm_calls, p2_reductions),
        (
            cm2.stats.dispatches,
            cm2.stats.comm_calls,
            cm2.stats.reductions,
        ),
        "CM/2 static plan diverged from the run"
    );
    let TargetPrediction::Cm5 {
        dispatches: p5_dispatches,
        comm_calls: p5_comm_calls,
        halo_exchanges: p5_halo_exchanges,
        router_batches: p5_router_batches,
        reductions: p5_reductions,
        supersteps: p5_supersteps,
        messages: p5_messages,
    } = exe
        .predict(Target::Cm5Mimd { nodes: BENCH_NODES })
        .expect("SWE has an exact static plan")
    else {
        unreachable!("CM/5 target folds to a CM/5 prediction")
    };
    assert_eq!(
        (
            p5_supersteps,
            p5_messages,
            p5_halo_exchanges,
            p5_router_batches
        ),
        (
            cm5.stats.supersteps,
            cm5.stats.messages,
            cm5.stats.halo_exchanges,
            cm5.stats.router_batches,
        ),
        "CM/5 static plan diverged from the run"
    );
    assert_eq!(
        (p5_dispatches, p5_comm_calls, p5_reductions),
        (
            cm5.stats.dispatches,
            cm5.stats.comm_calls,
            cm5.stats.reductions,
        ),
        "CM/5 static plan diverged from the run"
    );

    let passes: Vec<Json> = exe
        .pass_reports
        .passes
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("name".into(), Json::Str(p.name.clone())),
                ("rewrites".into(), num(p.rewrites as u64)),
            ])
        })
        .collect();
    let total_rewrites: u64 = exe
        .pass_reports
        .passes
        .iter()
        .map(|p| p.rewrites as u64)
        .sum();

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(BENCH_SCHEMA.into())),
        ("workload".into(), Json::Str("swe".into())),
        ("pipeline".into(), Json::Str("f90y".into())),
        ("grid".into(), num(BENCH_GRID as u64)),
        ("steps".into(), num(BENCH_STEPS as u64)),
        ("nodes".into(), num(BENCH_NODES as u64)),
        (
            "cm2".into(),
            Json::Obj(vec![
                ("gflops".into(), Json::Num(cm2.gflops)),
                ("modelled_seconds".into(), Json::Num(cm2.elapsed_seconds)),
                ("host_fraction".into(), Json::Num(cm2.host_fraction)),
                ("node_cycles".into(), num(cm2.stats.node_cycles())),
                ("compute_cycles".into(), num(cm2.stats.compute_cycles)),
                ("comm_cycles".into(), num(cm2.stats.comm_cycles)),
                (
                    "dispatch_overhead_cycles".into(),
                    num(cm2.stats.dispatch_overhead_cycles),
                ),
                ("host_cycles".into(), num(cm2.stats.host_cycles)),
                ("flops".into(), num(cm2.stats.flops)),
                ("dispatches".into(), num(cm2.stats.dispatches)),
                ("comm_calls".into(), num(cm2.stats.comm_calls)),
                ("reductions".into(), num(cm2.stats.reductions)),
            ]),
        ),
        (
            "cm5".into(),
            Json::Obj(vec![
                ("gflops".into(), Json::Num(cm5.gflops)),
                ("modelled_seconds".into(), Json::Num(cm5.elapsed_seconds)),
                ("supersteps".into(), num(cm5.stats.supersteps)),
                ("flops".into(), num(cm5.stats.flops)),
                ("dispatches".into(), num(cm5.stats.dispatches)),
                ("comm_calls".into(), num(cm5.stats.comm_calls)),
                ("halo_exchanges".into(), num(cm5.stats.halo_exchanges)),
                ("router_batches".into(), num(cm5.stats.router_batches)),
                ("reductions".into(), num(cm5.stats.reductions)),
                ("messages".into(), num(cm5.stats.messages)),
                ("bytes".into(), num(cm5.stats.bytes)),
            ]),
        ),
        (
            "static_comm".into(),
            Json::Obj(vec![
                ("reconciled".into(), Json::Bool(true)),
                (
                    "cm2".into(),
                    Json::Obj(vec![
                        ("predicted_dispatches".into(), num(p2_dispatches)),
                        ("observed_dispatches".into(), num(cm2.stats.dispatches)),
                        ("predicted_comm_calls".into(), num(p2_comm_calls)),
                        ("observed_comm_calls".into(), num(cm2.stats.comm_calls)),
                        ("predicted_reductions".into(), num(p2_reductions)),
                        ("observed_reductions".into(), num(cm2.stats.reductions)),
                    ]),
                ),
                (
                    "cm5".into(),
                    Json::Obj(vec![
                        ("predicted_supersteps".into(), num(p5_supersteps)),
                        ("observed_supersteps".into(), num(cm5.stats.supersteps)),
                        ("predicted_messages".into(), num(p5_messages)),
                        ("observed_messages".into(), num(cm5.stats.messages)),
                        ("predicted_halo_exchanges".into(), num(p5_halo_exchanges)),
                        (
                            "observed_halo_exchanges".into(),
                            num(cm5.stats.halo_exchanges),
                        ),
                        ("predicted_router_batches".into(), num(p5_router_batches)),
                        (
                            "observed_router_batches".into(),
                            num(cm5.stats.router_batches),
                        ),
                        ("predicted_comm_calls".into(), num(p5_comm_calls)),
                        ("observed_comm_calls".into(), num(cm5.stats.comm_calls)),
                    ]),
                ),
            ]),
        ),
        (
            "passes".into(),
            Json::Obj(vec![
                ("count".into(), num(passes.len() as u64)),
                ("total_rewrites".into(), num(total_rewrites)),
                ("pipeline".into(), Json::Arr(passes)),
            ]),
        ),
        (
            "trace".into(),
            Json::Obj(vec![
                ("clock".into(), Json::Str(trace.clock().as_str().into())),
                ("events".into(), num(trace.len() as u64)),
                ("sends".into(), num(trace.sends() as u64)),
                ("recvs".into(), num(trace.recvs() as u64)),
                ("paired_flows".into(), num(paired)),
                ("digest".into(), Json::Str(trace.digest())),
            ]),
        ),
    ]);
    format!("{doc}\n")
}

/// Build the machine-readable host-core scaling report: the SWE
/// workload at [`BENCH_GRID`]²×[`BENCH_STEPS`] on [`BENCH_NODES`] MIMD
/// nodes, swept over [`BENCH_HOST_THREADS`] host worker threads. The
/// committed artefact records only *determinism evidence* — finals
/// fingerprint, flight-recorder digest, message count and superstep
/// count per thread count, all required identical — never wall-clock
/// time, so regeneration is byte-identical on any host and `git diff`
/// doubles as a determinism gate. (Wall-clock speedups are measured,
/// printed and asserted by the `cm5_scaling` harness instead.)
///
/// # Panics
///
/// Panics if the workload fails to compile or run, or if any thread
/// count changes any recorded value — a committed artefact must never
/// encode a nondeterministic engine.
pub fn scaling_bench_json() -> String {
    let src = workloads::swe_source(BENCH_GRID, BENCH_STEPS);
    let exe = compile(&src, Pipeline::F90y);

    let mut entries: Vec<Json> = Vec::new();
    let mut baseline: Option<(String, String, u64, u64)> = None;
    for &threads in &BENCH_HOST_THREADS {
        let mut buf = TraceBuffer::new();
        let run = exe
            .session(Target::Cm5Mimd { nodes: BENCH_NODES })
            .host_threads(threads)
            .trace(&mut buf)
            .run()
            .expect("CM/5 scaling run")
            .into_mimd();
        let digest = buf.trace.expect("trace captured").digest();
        let fingerprint = f90y_serve::engine::finals_fingerprint(&run.finals);
        let observed = (
            fingerprint.clone(),
            digest.clone(),
            run.stats.messages,
            run.stats.supersteps,
        );
        match &baseline {
            None => baseline = Some(observed),
            Some(base) => assert_eq!(
                &observed, base,
                "host_threads={threads} perturbed an observable \
                 (fingerprint, digest, messages, supersteps)"
            ),
        }
        entries.push(Json::Obj(vec![
            ("host_threads".into(), num(threads as u64)),
            ("fingerprint".into(), Json::Str(fingerprint)),
            ("trace_digest".into(), Json::Str(digest)),
            ("messages".into(), num(run.stats.messages)),
            ("supersteps".into(), num(run.stats.supersteps)),
        ]));
    }

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(BENCH_SCHEMA.into())),
        ("workload".into(), Json::Str("scaling".into())),
        ("pipeline".into(), Json::Str("f90y".into())),
        ("grid".into(), num(BENCH_GRID as u64)),
        ("steps".into(), num(BENCH_STEPS as u64)),
        ("nodes".into(), num(BENCH_NODES as u64)),
        ("sweep".into(), Json::Arr(entries)),
    ]);
    format!("{doc}\n")
}

/// Build the machine-readable accelerator benchmark report: the SWE
/// workload at [`BENCH_GRID`]²×[`BENCH_STEPS`] on [`BENCH_NODES`]
/// device compute units of the `Target::Accel` model. The committed
/// artefact records the accelerator's *structure* — kernel-launch and
/// host↔device transfer counts, byte traffic, device-cycle breakdown —
/// plus the finals fingerprint, which is asserted bit-identical to the
/// CM/2's before anything is emitted. Every value derives from the
/// manifest-driven simulated clock — no wall-clock time — so
/// regeneration is byte-identical and `git diff` doubles as the CI
/// gate (`validate_artifacts --accel`).
///
/// # Panics
///
/// Panics if the workload fails to compile or run, if the accelerator's
/// finals diverge from the CM/2's, or if the transfer ledger breaks its
/// invariants — a committed artefact must never encode a broken run.
pub fn accel_bench_json() -> String {
    let src = workloads::swe_source(BENCH_GRID, BENCH_STEPS);
    let exe = compile(&src, Pipeline::F90y);

    let cm2 = exe
        .session(Target::Cm2 { nodes: BENCH_NODES })
        .run()
        .expect("CM/2 SWE run")
        .into_cm2();
    let accel = exe
        .session(Target::Accel { nodes: BENCH_NODES })
        .run()
        .expect("Accel SWE run")
        .into_accel();
    accel.stats.verify().expect("transfer-ledger invariants");

    let fingerprint = f90y_serve::engine::finals_fingerprint(&accel.finals);
    let cm2_fingerprint = f90y_serve::engine::finals_fingerprint(&cm2.finals);
    assert_eq!(
        fingerprint, cm2_fingerprint,
        "accel finals must be bit-identical to the CM/2's"
    );

    let s = &accel.stats;
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(BENCH_SCHEMA.into())),
        ("workload".into(), Json::Str("accel".into())),
        ("pipeline".into(), Json::Str("f90y".into())),
        ("grid".into(), num(BENCH_GRID as u64)),
        ("steps".into(), num(BENCH_STEPS as u64)),
        ("units".into(), num(BENCH_NODES as u64)),
        (
            "accel".into(),
            Json::Obj(vec![
                ("gflops".into(), Json::Num(accel.gflops)),
                ("modelled_seconds".into(), Json::Num(accel.elapsed_seconds)),
                ("device_cycles".into(), num(s.device_cycles())),
                ("kernel_cycles".into(), num(s.kernel_cycles)),
                ("launch_cycles".into(), num(s.launch_cycles)),
                ("comm_cycles".into(), num(s.comm_cycles)),
                ("transfer_cycles".into(), num(s.transfer_cycles)),
                ("host_cycles".into(), num(s.host_cycles)),
                ("flops".into(), num(s.flops)),
                ("kernel_launches".into(), num(s.kernel_launches)),
                ("h2d_transfers".into(), num(s.h2d_transfers)),
                ("h2d_bytes".into(), num(s.h2d_bytes)),
                ("d2h_transfers".into(), num(s.d2h_transfers)),
                ("d2h_bytes".into(), num(s.d2h_bytes)),
                ("comm_calls".into(), num(s.comm_calls)),
                ("reductions".into(), num(s.reductions)),
            ]),
        ),
        (
            "finals".into(),
            Json::Obj(vec![
                ("fingerprint".into(), Json::Str(fingerprint)),
                ("matches_cm2".into(), Json::Bool(true)),
            ]),
        ),
    ]);
    format!("{doc}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_compile_and_run() {
        let (exe, report) = run("REAL a(64)\na = 1.0\n", Pipeline::F90y, 16);
        assert_eq!(exe.compiled.blocks.len(), 1);
        assert!(report.stats.node_cycles() > 0);
        assert!(!breakdown(&report).is_empty());
    }

    #[test]
    fn swe_bench_json_is_byte_identical_across_generations() {
        let first = swe_bench_json();
        let second = swe_bench_json();
        assert_eq!(first, second, "BENCH_swe.json must regenerate exactly");
        let doc = f90y_obs::json::parse(&first).expect("valid JSON");
        match &doc {
            Json::Obj(fields) => {
                let schema = fields.iter().find(|(k, _)| k == "schema");
                assert!(
                    matches!(schema, Some((_, Json::Str(s))) if s == BENCH_SCHEMA),
                    "schema tag present"
                );
            }
            other => panic!("expected an object, got {other:?}"),
        }
    }

    #[test]
    fn accel_bench_json_is_byte_identical_across_generations() {
        let first = accel_bench_json();
        let second = accel_bench_json();
        assert_eq!(first, second, "BENCH_accel.json must regenerate exactly");
        let doc = f90y_obs::json::parse(&first).expect("valid JSON");
        let Json::Obj(fields) = &doc else {
            panic!("expected an object");
        };
        let workload = fields.iter().find(|(k, _)| k == "workload");
        assert!(matches!(workload, Some((_, Json::Str(s))) if s == "accel"));
    }

    #[test]
    fn scaling_bench_json_is_byte_identical_across_generations() {
        let first = scaling_bench_json();
        let second = scaling_bench_json();
        assert_eq!(first, second, "BENCH_scaling.json must regenerate exactly");
        let doc = f90y_obs::json::parse(&first).expect("valid JSON");
        let Json::Obj(fields) = &doc else {
            panic!("expected an object");
        };
        let sweep = fields.iter().find(|(k, _)| k == "sweep");
        let Some((_, Json::Arr(entries))) = sweep else {
            panic!("sweep array present");
        };
        assert_eq!(entries.len(), BENCH_HOST_THREADS.len());
    }
}
