//! `bench_swe` — emit the machine-readable SWE benchmark artefact.
//!
//! Writes [`f90y_bench::swe_bench_json`] to the given path (default
//! `BENCH_swe.json`). Every value is modelled — derived from the
//! simulated cycle/superstep clocks, never wall time — so the file is
//! byte-identical across regenerations and CI can `git diff` it as a
//! perf-trajectory gate.
//!
//! ```text
//! cargo run -p f90y-bench --release --bin bench_swe [path]
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_swe.json".to_string());
    let json = f90y_bench::swe_bench_json();
    match std::fs::write(&path, &json) {
        Ok(()) => {
            println!(
                "wrote {path} ({} bytes): swe {}x{} on {} nodes, schema {}",
                json.len(),
                f90y_bench::BENCH_GRID,
                f90y_bench::BENCH_GRID,
                f90y_bench::BENCH_NODES,
                f90y_bench::BENCH_SCHEMA,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_swe: cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
