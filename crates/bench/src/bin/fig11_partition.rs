//! Regenerates the paper's Figure 11: the naive, blocked and
//! partitioned forms of a program whose iterations alternate between
//! two shapes ("A" nodes and "B" nodes), with communications on the
//! edges.
//!
//! The harness builds such a program, shows how many computation phases
//! exist naively and after blocking, and how the CM2/NIR compiler then
//! cuts the blocked program into node procedures and host code.

use f90y_backend::HostStmt;
use f90y_bench::compile;
use f90y_core::{Pipeline, Target};

fn source(n_a: usize, n_b: usize) -> String {
    // Alternating independent computations over shape A (1D) and shape
    // B (2D), joined by one communication.
    format!(
        "
REAL a1({n_a}), a2({n_a}), a3({n_a}), t({n_a})
REAL b1({n_b},{n_b}), b2({n_b},{n_b})
FORALL (i=1:{n_a}) a1(i) = i
FORALL (i=1:{n_b}, j=1:{n_b}) b1(i,j) = i + j
a2 = a1 * 2.0
b2 = b1 + 1.0
a3 = a1 + a2
t = CSHIFT(a3, 1, 1)
b2 = b2 * 2.0
a2 = a2 + t
"
    )
}

fn count_host(stmts: &[HostStmt]) -> (usize, usize, usize) {
    let mut dispatch = 0;
    let mut comm = 0;
    let mut host = 0;
    for s in stmts {
        match s {
            HostStmt::Dispatch(_) => dispatch += 1,
            HostStmt::Comm { .. } => comm += 1,
            HostStmt::Do { body, .. } | HostStmt::While { body, .. } => {
                let (d, c, h) = count_host(body);
                dispatch += d;
                comm += c;
                host += h + 1;
            }
            HostStmt::If {
                then_body,
                else_body,
                ..
            } => {
                for b in [then_body, else_body] {
                    let (d, c, h) = count_host(b);
                    dispatch += d;
                    comm += c;
                    host += h;
                }
                host += 1;
            }
            HostStmt::WithDecl { body, .. } | HostStmt::WithDomain { body, .. } => {
                let (d, c, h) = count_host(body);
                dispatch += d;
                comm += c;
                host += h;
            }
            HostStmt::HostMove(_) => host += 1,
        }
    }
    (dispatch, comm, host)
}

fn main() {
    let src = source(4096, 64);
    println!("FIGURE 11 — naive, blocked, and partitioned program\n");

    let naive = compile(&src, Pipeline::Cmf); // per-statement = the naive graph
    let blocked = compile(&src, Pipeline::F90y);

    println!(
        "naive:   {} computation phases (one per statement)",
        naive.compiled.blocks.len()
    );
    println!(
        "blocked: {} computation phases after shape blocking ({} fused clauses)",
        blocked.compiled.blocks.len(),
        blocked.report.clauses_after,
    );

    let (d, c, h) = count_host(&blocked.compiled.host);
    println!("\npartitioned (CM2/NIR split of the blocked program):");
    println!(
        "  node side: {} PEAC procedures",
        blocked.compiled.blocks.len()
    );
    println!(
        "  host side: {d} dispatch calls, {c} runtime communication calls, {h} host statements"
    );
    for b in &blocked.compiled.blocks {
        println!(
            "    block {}: shape {:?} extents, {} clauses, {} instructions",
            b.index,
            b.shape
                .extents()
                .iter()
                .map(|e| e.len())
                .collect::<Vec<_>>(),
            b.clauses.len(),
            b.routine.len(),
        );
    }

    assert!(blocked.compiled.blocks.len() < naive.compiled.blocks.len());

    // Dispatch overhead series: the figure's point is that fusing
    // like-shape iterations shrinks the cut.
    let run_naive = naive
        .session(Target::Cm2 { nodes: 64 })
        .run()
        .expect("runs")
        .into_cm2();
    let run_blocked = blocked
        .session(Target::Cm2 { nodes: 64 })
        .run()
        .expect("runs")
        .into_cm2();
    println!(
        "\ndispatch overhead: naive {} cycles vs blocked {} cycles ({:.2}x)",
        run_naive.stats.dispatch_overhead_cycles,
        run_blocked.stats.dispatch_overhead_cycles,
        run_naive.stats.dispatch_overhead_cycles as f64
            / run_blocked.stats.dispatch_overhead_cycles.max(1) as f64,
    );
}
