//! `validate_artifacts` — CI gate for the flight-recorder artefacts.
//!
//! ```text
//! validate_artifacts --bench BENCH_swe.json [--trace run.trace.json]
//!                    [--serve BENCH_serve.json]
//!                    [--scaling BENCH_scaling.json]
//!                    [--accel BENCH_accel.json]
//!                    [--comm BENCH_swe.json]
//! ```
//!
//! Checks, exiting 1 on the first violation:
//!
//! * `--bench`: the file parses, carries the `f90y-bench-v1` schema
//!   tag and every required section, its trace block is internally
//!   consistent (`sends == recvs == paired_flows == cm5.messages`,
//!   `fnv1a64:` digest), and regenerating the report in-process
//!   reproduces the committed bytes exactly — the determinism gate.
//! * `--trace`: the Chrome trace-event JSON parses, and its flow
//!   events form a bijection — every flow id occurs exactly once as a
//!   send (`"ph":"s"`) and exactly once as a receive (`"ph":"f"`).
//!   With `--bench` also given, the flow count must equal the bench
//!   report's `cm5.messages`.
//! * `--serve`: the serving benchmark parses, carries the schema tag
//!   and every section, records zero failed requests, a cache hit
//!   rate at or above the 50 % acceptance floor with at least one hit
//!   (the workload repeats sources — a hitless replay means the cache
//!   key over-discriminates), ordered latency percentiles, and
//!   regenerating the replay in-process reproduces the committed
//!   bytes exactly.
//! * `--scaling`: the host-core scaling report parses, carries the
//!   schema tag, sweeps every `f90y_bench::BENCH_HOST_THREADS` count,
//!   records identical fingerprints, trace digests, message and
//!   superstep counts at every width (the determinism claim the
//!   artefact exists to witness), and regenerating the sweep
//!   in-process reproduces the committed bytes exactly.
//! * `--accel`: the accelerator report parses, carries the schema tag,
//!   records at least one kernel launch and one host↔device transfer,
//!   a device-cycle breakdown that sums exactly, a well-formed finals
//!   fingerprint asserted equal to the CM/2's, and regenerating the
//!   run in-process reproduces the committed bytes exactly. Counts and
//!   cycles only — never wall-clock time.
//! * `--comm`: the bench report's `static_comm` block is present and
//!   reconciled — every `predicted_*` counter equals its `observed_*`
//!   twin — and recompiling the workload in-process reproduces the
//!   committed predictions from the communication-plan analysis alone
//!   (no run): the plan↔trace reconciliation gate (DESIGN.md §16).

use std::collections::BTreeMap;
use std::process::ExitCode;

use f90y_obs::json::{parse, Json};

/// Look up a field of a JSON object.
fn field<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    match doc {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

/// A field that must be a number (all bench counts are).
fn num_field(doc: &Json, name: &str) -> Result<f64, String> {
    match field(doc, name) {
        Some(Json::Num(n)) => Ok(*n),
        Some(other) => Err(format!("field '{name}' is not a number: {other}")),
        None => Err(format!("field '{name}' is missing")),
    }
}

/// Validate the bench report and return its `cm5.messages` count.
fn check_bench(path: &str) -> Result<u64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;

    match field(&doc, "schema") {
        Some(Json::Str(s)) if s == f90y_bench::BENCH_SCHEMA => {}
        Some(other) => return Err(format!("unexpected schema tag {other}")),
        None => return Err("schema tag missing".into()),
    }
    for section in [
        "workload",
        "grid",
        "steps",
        "nodes",
        "cm2",
        "cm5",
        "static_comm",
        "passes",
        "trace",
    ] {
        if field(&doc, section).is_none() {
            return Err(format!("section '{section}' missing"));
        }
    }

    let cm5 = field(&doc, "cm5").expect("checked above");
    let messages = num_field(cm5, "messages")? as u64;
    let trace = field(&doc, "trace").expect("checked above");
    let sends = num_field(trace, "sends")? as u64;
    let recvs = num_field(trace, "recvs")? as u64;
    let paired = num_field(trace, "paired_flows")? as u64;
    if sends != paired || recvs != paired {
        return Err(format!(
            "trace block inconsistent: sends {sends}, recvs {recvs}, paired {paired}"
        ));
    }
    if messages != paired {
        return Err(format!(
            "cm5.messages {messages} != trace.paired_flows {paired}"
        ));
    }
    match field(trace, "digest") {
        Some(Json::Str(d)) if d.starts_with("fnv1a64:") => {}
        Some(other) => return Err(format!("trace digest malformed: {other}")),
        None => return Err("trace digest missing".into()),
    }

    // Determinism gate: regenerating must reproduce the bytes exactly.
    let regenerated = f90y_bench::swe_bench_json();
    if regenerated != text {
        return Err(format!(
            "{path} is stale: regeneration differs ({} vs {} bytes) — \
             run `cargo run -p f90y-bench --release --bin bench_swe`",
            text.len(),
            regenerated.len()
        ));
    }
    Ok(messages)
}

/// Validate the Chrome trace's flow-event bijection; return the flow
/// count.
fn check_trace(path: &str) -> Result<u64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = match field(&doc, "traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("traceEvents array missing".into()),
    };

    let mut starts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut finishes: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in events {
        let ph = match field(ev, "ph") {
            Some(Json::Str(ph)) => ph.as_str(),
            _ => continue,
        };
        if ph != "s" && ph != "f" {
            continue;
        }
        let id = num_field(ev, "id")? as u64;
        *if ph == "s" {
            starts.entry(id).or_insert(0)
        } else {
            finishes.entry(id).or_insert(0)
        } += 1;
    }
    for (id, n) in &starts {
        if *n != 1 {
            return Err(format!("flow id {id} sent {n} times"));
        }
        match finishes.get(id) {
            Some(1) => {}
            Some(n) => return Err(format!("flow id {id} received {n} times")),
            None => return Err(format!("flow id {id} sent but never received")),
        }
    }
    for id in finishes.keys() {
        if !starts.contains_key(id) {
            return Err(format!("flow id {id} received but never sent"));
        }
    }
    if starts.is_empty() {
        return Err("trace has no flow events — nothing was messaged".into());
    }
    Ok(starts.len() as u64)
}

/// Validate the serving benchmark (DESIGN.md §13).
fn check_serve(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;

    match field(&doc, "schema") {
        Some(Json::Str(s)) if s == f90y_bench::BENCH_SCHEMA => {}
        Some(other) => return Err(format!("unexpected schema tag {other}")),
        None => return Err("schema tag missing".into()),
    }
    match field(&doc, "workload") {
        Some(Json::Str(s)) if s == "serve" => {}
        other => return Err(format!("workload tag is not 'serve': {other:?}")),
    }
    for section in ["config", "requests", "cache", "latency", "fairness"] {
        if field(&doc, section).is_none() {
            return Err(format!("section '{section}' missing"));
        }
    }

    let requests = field(&doc, "requests").expect("checked above");
    let total = num_field(requests, "total")? as u64;
    let answered = num_field(requests, "run")? as u64
        + num_field(requests, "compile")? as u64
        + num_field(requests, "lint")? as u64;
    if answered != total {
        return Err(format!(
            "request kinds sum to {answered} but total is {total}"
        ));
    }
    if num_field(requests, "errors")? as u64 != 0 {
        return Err("a committed replay must have zero failed requests".into());
    }

    let cache = field(&doc, "cache").expect("checked above");
    if num_field(cache, "hits")? as u64 == 0 {
        return Err("the workload repeats sources: at least one hit required".into());
    }
    let hit_rate = num_field(cache, "hit_rate")?;
    if hit_rate < 0.5 {
        return Err(format!(
            "cache hit rate {hit_rate} is below the 50% acceptance floor"
        ));
    }

    let latency = field(&doc, "latency").expect("checked above");
    for block in [
        "compile_units",
        "run_units",
        "queue_wait_units",
        "latency_units",
    ] {
        let b = field(latency, block).ok_or_else(|| format!("latency block '{block}' missing"))?;
        let p50 = num_field(b, "p50")?;
        let p99 = num_field(b, "p99")?;
        let max = num_field(b, "max")?;
        if p50 > p99 || p99 > max {
            return Err(format!(
                "latency block '{block}' is unordered: p50 {p50}, p99 {p99}, max {max}"
            ));
        }
    }

    // Determinism gate: replaying the workload must reproduce the
    // committed bytes exactly.
    let regenerated = f90y_bench::serve_bench_json();
    if regenerated != text {
        return Err(format!(
            "{path} is stale: regeneration differs ({} vs {} bytes) — \
             run `cargo run -p f90y-bench --release --bin bench_serve`",
            text.len(),
            regenerated.len()
        ));
    }
    Ok(())
}

/// Validate the host-core scaling report (the determinism artefact).
fn check_scaling(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;

    match field(&doc, "schema") {
        Some(Json::Str(s)) if s == f90y_bench::BENCH_SCHEMA => {}
        Some(other) => return Err(format!("unexpected schema tag {other}")),
        None => return Err("schema tag missing".into()),
    }
    match field(&doc, "workload") {
        Some(Json::Str(s)) if s == "scaling" => {}
        other => return Err(format!("workload tag is not 'scaling': {other:?}")),
    }
    for section in ["grid", "steps", "nodes", "sweep"] {
        if field(&doc, section).is_none() {
            return Err(format!("section '{section}' missing"));
        }
    }

    let entries = match field(&doc, "sweep") {
        Some(Json::Arr(entries)) => entries,
        _ => return Err("'sweep' is not an array".into()),
    };
    let expected: Vec<u64> = f90y_bench::BENCH_HOST_THREADS
        .iter()
        .map(|&t| t as u64)
        .collect();
    let swept: Result<Vec<u64>, String> = entries
        .iter()
        .map(|e| num_field(e, "host_threads").map(|n| n as u64))
        .collect();
    if swept? != expected {
        return Err(format!("sweep must cover host_threads {expected:?}"));
    }

    // The determinism claim: every width records identical evidence.
    let mut baseline: Option<(String, String, u64, u64)> = None;
    for entry in entries {
        let threads = num_field(entry, "host_threads")? as u64;
        let fingerprint = match field(entry, "fingerprint") {
            Some(Json::Str(s)) if s.starts_with("fnv1a64:") => s.clone(),
            other => {
                return Err(format!(
                    "fingerprint malformed at {threads} threads: {other:?}"
                ))
            }
        };
        let digest = match field(entry, "trace_digest") {
            Some(Json::Str(s)) if s.starts_with("fnv1a64:") => s.clone(),
            other => {
                return Err(format!(
                    "trace digest malformed at {threads} threads: {other:?}"
                ))
            }
        };
        let observed = (
            fingerprint,
            digest,
            num_field(entry, "messages")? as u64,
            num_field(entry, "supersteps")? as u64,
        );
        match &baseline {
            None => baseline = Some(observed),
            Some(base) if base != &observed => {
                return Err(format!(
                    "sweep entries diverge at {threads} threads: {observed:?} vs {base:?}"
                ))
            }
            Some(_) => {}
        }
    }

    // Determinism gate: regenerating must reproduce the bytes exactly.
    let regenerated = f90y_bench::scaling_bench_json();
    if regenerated != text {
        return Err(format!(
            "{path} is stale: regeneration differs ({} vs {} bytes) — \
             run `cargo run -p f90y-bench --release --bin bench_scaling`",
            text.len(),
            regenerated.len()
        ));
    }
    Ok(())
}

/// Validate the accelerator artefact (the third-target gate).
fn check_accel(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;

    match field(&doc, "schema") {
        Some(Json::Str(s)) if s == f90y_bench::BENCH_SCHEMA => {}
        Some(other) => return Err(format!("unexpected schema tag {other}")),
        None => return Err("schema tag missing".into()),
    }
    match field(&doc, "workload") {
        Some(Json::Str(s)) if s == "accel" => {}
        other => return Err(format!("workload tag is not 'accel': {other:?}")),
    }
    for section in ["grid", "steps", "units", "accel", "finals"] {
        if field(&doc, section).is_none() {
            return Err(format!("section '{section}' missing"));
        }
    }

    let accel = field(&doc, "accel").expect("checked above");
    if num_field(accel, "kernel_launches")? as u64 == 0 {
        return Err("an array program must launch at least one kernel".into());
    }
    let h2d = num_field(accel, "h2d_transfers")? as u64;
    let d2h = num_field(accel, "d2h_transfers")? as u64;
    if h2d + d2h == 0 {
        return Err("reading finals back must cross the host\u{2194}device bus".into());
    }
    if d2h > 0 && num_field(accel, "d2h_bytes")? as u64 == 0 {
        return Err("transfers counted but no bytes moved".into());
    }
    let breakdown = num_field(accel, "kernel_cycles")? as u64
        + num_field(accel, "launch_cycles")? as u64
        + num_field(accel, "comm_cycles")? as u64
        + num_field(accel, "transfer_cycles")? as u64;
    let device = num_field(accel, "device_cycles")? as u64;
    if breakdown != device {
        return Err(format!(
            "device-cycle breakdown sums to {breakdown}, device_cycles says {device}"
        ));
    }

    let finals = field(&doc, "finals").expect("checked above");
    match field(finals, "fingerprint") {
        Some(Json::Str(fp)) if fp.starts_with("fnv1a64:") => {}
        other => return Err(format!("finals fingerprint malformed: {other:?}")),
    }
    match field(finals, "matches_cm2") {
        Some(Json::Bool(true)) => {}
        other => {
            return Err(format!(
                "the artefact must witness CM/2-identical finals: {other:?}"
            ))
        }
    }

    // Determinism gate: regenerating must reproduce the bytes exactly
    // (and re-asserts the finals differential in-process).
    let regenerated = f90y_bench::accel_bench_json();
    if regenerated != text {
        return Err(format!(
            "{path} is stale: regeneration differs ({} vs {} bytes) — \
             run `cargo run -p f90y-bench --release --bin bench_accel`",
            text.len(),
            regenerated.len()
        ));
    }
    Ok(())
}

/// Validate the static communication-plan reconciliation (`--comm`).
fn check_comm(path: &str) -> Result<(), String> {
    use f90y_core::{Target, TargetPrediction};

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;

    let sc = field(&doc, "static_comm").ok_or(
        "section 'static_comm' missing — regenerate with \
         `cargo run -p f90y-bench --release --bin bench_swe`",
    )?;
    match field(sc, "reconciled") {
        Some(Json::Bool(true)) => {}
        other => return Err(format!("'static_comm.reconciled' must be true: {other:?}")),
    }

    // Every predicted counter must equal its observed twin.
    for (engine, counters) in [
        ("cm2", &["dispatches", "comm_calls", "reductions"][..]),
        (
            "cm5",
            &[
                "supersteps",
                "messages",
                "halo_exchanges",
                "router_batches",
                "comm_calls",
            ][..],
        ),
    ] {
        let block = field(sc, engine).ok_or_else(|| format!("'static_comm.{engine}' missing"))?;
        for counter in counters {
            let predicted = num_field(block, &format!("predicted_{counter}"))? as u64;
            let observed = num_field(block, &format!("observed_{counter}"))? as u64;
            if predicted != observed {
                return Err(format!(
                    "static_comm.{engine}.{counter}: predicted {predicted} != \
                     observed {observed} — the static plan diverged from the machine"
                ));
            }
        }
    }

    // Recompute the prediction in-process from the analysis alone — no
    // run — and hold it to the committed numbers.
    let src = f90y_core::workloads::swe_source(f90y_bench::BENCH_GRID, f90y_bench::BENCH_STEPS);
    let exe = f90y_bench::compile(&src, f90y_core::Pipeline::F90y);
    let nodes = f90y_bench::BENCH_NODES;
    let p5 = exe
        .predict(Target::Cm5Mimd { nodes })
        .map_err(|e| format!("no exact static plan for the committed workload: {e}"))?;
    let TargetPrediction::Cm5 {
        supersteps,
        messages,
        ..
    } = p5
    else {
        return Err("CM/5 target folded to a non-CM/5 prediction".into());
    };
    let cm5 = field(sc, "cm5").expect("checked above");
    let committed_supersteps = num_field(cm5, "predicted_supersteps")? as u64;
    let committed_messages = num_field(cm5, "predicted_messages")? as u64;
    if (supersteps, messages) != (committed_supersteps, committed_messages) {
        return Err(format!(
            "{path} is stale: in-process prediction ({supersteps} supersteps, \
             {messages} messages) differs from the committed block \
             ({committed_supersteps}, {committed_messages}) — \
             run `cargo run -p f90y-bench --release --bin bench_swe`"
        ));
    }
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: validate_artifacts --bench <BENCH_swe.json> [--trace <trace.json>] \
         [--serve <BENCH_serve.json>] [--scaling <BENCH_scaling.json>] \
         [--accel <BENCH_accel.json>] [--comm <BENCH_swe.json>]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut bench: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut serve: Option<String> = None;
    let mut scaling: Option<String> = None;
    let mut accel: Option<String> = None;
    let mut comm: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bench" => match args.next() {
                Some(p) => bench = Some(p),
                None => usage(),
            },
            "--trace" => match args.next() {
                Some(p) => trace = Some(p),
                None => usage(),
            },
            "--serve" => match args.next() {
                Some(p) => serve = Some(p),
                None => usage(),
            },
            "--scaling" => match args.next() {
                Some(p) => scaling = Some(p),
                None => usage(),
            },
            "--accel" => match args.next() {
                Some(p) => accel = Some(p),
                None => usage(),
            },
            "--comm" => match args.next() {
                Some(p) => comm = Some(p),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if bench.is_none()
        && trace.is_none()
        && serve.is_none()
        && scaling.is_none()
        && accel.is_none()
        && comm.is_none()
    {
        usage();
    }

    let mut bench_messages = None;
    if let Some(path) = &bench {
        match check_bench(path) {
            Ok(messages) => {
                println!("OK {path}: schema, consistency and regeneration checks pass");
                bench_messages = Some(messages);
            }
            Err(e) => {
                eprintln!("validate_artifacts: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &trace {
        match check_trace(path) {
            Ok(flows) => {
                println!("OK {path}: {flows} flow edges, every send pairs with one receive");
                if let Some(messages) = bench_messages {
                    if flows != messages {
                        eprintln!(
                            "validate_artifacts: {path} has {flows} flows but the bench \
                             report counts {messages} messages"
                        );
                        return ExitCode::FAILURE;
                    }
                    println!("OK cross-check: trace flows == bench cm5.messages ({flows})");
                }
            }
            Err(e) => {
                eprintln!("validate_artifacts: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &serve {
        match check_serve(path) {
            Ok(()) => {
                println!("OK {path}: schema, hit-rate, latency and regeneration checks pass");
            }
            Err(e) => {
                eprintln!("validate_artifacts: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &scaling {
        match check_scaling(path) {
            Ok(()) => {
                println!(
                    "OK {path}: every host-thread count records identical determinism \
                     evidence and regeneration reproduces the bytes"
                );
            }
            Err(e) => {
                eprintln!("validate_artifacts: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &accel {
        match check_accel(path) {
            Ok(()) => {
                println!(
                    "OK {path}: launches, transfers, cycle breakdown, CM/2-identical \
                     finals and regeneration checks pass"
                );
            }
            Err(e) => {
                eprintln!("validate_artifacts: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &comm {
        match check_comm(path) {
            Ok(()) => {
                println!(
                    "OK {path}: static communication plan reconciles with the observed \
                     counters, and the in-process prediction matches the committed block"
                );
            }
            Err(e) => {
                eprintln!("validate_artifacts: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
