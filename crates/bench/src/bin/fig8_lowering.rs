//! Regenerates the paper's Figure 8: the `K(128,64)`/`L(128)` program
//! as shape-parameterised NIR — `WITH_DOMAIN` bindings for the two
//! array shapes, a `DECLSET` of `dfield` declarations, and `MOVE`s over
//! `everywhere` with the literal `SCALAR(integer_32,'6')` and
//! `BINARY(Add, BINARY(Mul, 2, k), 5)` terms the figure shows.

use f90y_bench::compile;
use f90y_core::{workloads, Pipeline, Target};
use f90y_nir::pretty::print_imp;

fn main() {
    let src = workloads::fig_section21_f90();
    println!("FIGURE 8 — shape-parameterised parallel computation\n");
    println!("Fortran 90 source:\n{src}\n");
    let exe = compile(src, Pipeline::F90y);
    let text = print_imp(&exe.nir);
    println!("NIR:\n\n{text}\n");

    for needle in [
        "WITH_DOMAIN(('alpha'",
        "WITH_DOMAIN(('beta'",
        "DECLSET[",
        "dfield{",
        "MOVE[(True,(SCALAR(integer_32,'6'),AVAR('l',everywhere)))]",
        "BINARY(Add,BINARY(Mul,SCALAR(integer_32,'2'),AVAR('k',everywhere)),SCALAR(integer_32,'5'))",
    ] {
        assert!(text.contains(needle), "missing: {needle}");
        println!("contains figure element: {needle}");
    }

    let run = exe
        .session(Target::Cm2 { nodes: 16 })
        .run()
        .expect("runs")
        .into_cm2();
    assert!(run
        .finals
        .final_array("l")
        .unwrap()
        .iter()
        .all(|&x| x == 6.0));
    assert!(run
        .finals
        .final_array("k")
        .unwrap()
        .iter()
        .all(|&x| x == 5.0));
    println!("\nverified: L = 6 everywhere, K = 5 everywhere (from zero-initialised K)");
}
