//! The paper's §5.3.2 "Other Computation Models" study:
//!
//! > "There are, in practice, no reason why the compiler should adhere
//! > to a single, restrictive programming model at the expense of
//! > flexibility. … A more flexible model would allow the compiler to
//! > pipeline communication and computation …"
//!
//! The harness runs SWE under the standard runtime model and under the
//! pipelined-communication model (grid transfers hidden behind
//! independent compute accumulated since the previous transfer — an
//! optimistic bound), quantifying how much of the §6 communication share
//! a more flexible model could recover.

use f90y_backend::fe::HostExecutor;
use f90y_bench::{compile, rule};
use f90y_cm2::{Cm2, Cm2Config};
use f90y_core::{workloads, Pipeline};

fn main() {
    println!("§5.3.2 — pipelined communication/computation model study");
    println!("SWE, 3 steps, 2048 nodes, Fortran-90-Y pipeline");
    rule(86);
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>16} {:>16}",
        "grid", "standard GF", "pipelined GF", "gain", "comm std", "comm pipelined"
    );
    rule(86);
    for n in [256usize, 512, 1024] {
        let exe = compile(&workloads::swe_source(n, 3), Pipeline::F90y);

        let mut standard = Cm2::new(Cm2Config::slicewise(2048));
        let run_std = HostExecutor::new(&mut standard)
            .run(&exe.compiled)
            .expect("runs");
        let mut pipelined = Cm2::new(Cm2Config {
            pipelined_comm: true,
            ..Cm2Config::slicewise(2048)
        });
        let run_pipe = HostExecutor::new(&mut pipelined)
            .run(&exe.compiled)
            .expect("runs");

        // Results must be identical — the model changes time, not data.
        assert_eq!(
            run_std.final_array("p").unwrap(),
            run_pipe.final_array("p").unwrap()
        );

        let clock = standard.config().clock_hz;
        let g_std = standard.stats().gflops(clock);
        let g_pipe = pipelined.stats().gflops(clock);
        println!(
            "{:>6}^2 {:>14.3} {:>14.3} {:>9.2}x {:>16} {:>16}",
            n,
            g_std,
            g_pipe,
            g_pipe / g_std,
            standard.stats().comm_cycles,
            pipelined.stats().comm_cycles,
        );
        assert!(g_pipe >= g_std, "pipelining can only help this model");
        assert!(
            pipelined.stats().comm_cycles < standard.stats().comm_cycles,
            "some transfer time must hide"
        );
    }
    rule(86);
    println!(
        "an upper bound: the model assumes the compiler always finds independent compute\n\
         to overlap — implementing it for real \"would only require the specification of\n\
         new FE and PE compilers\" (the paper's flexibility argument)"
    );
}
