//! `bench_scaling` — emit the machine-readable host-core scaling
//! artefact.
//!
//! Writes [`f90y_bench::scaling_bench_json`] to the given path (default
//! `BENCH_scaling.json`). The file records determinism evidence only —
//! finals fingerprints, flight-recorder digests, message and superstep
//! counts across host-thread counts — never wall time, so it is
//! byte-identical across regenerations and CI can `git diff` it as a
//! determinism gate. Wall-clock speedup lives in the `cm5_scaling`
//! harness, which measures rather than commits it.
//!
//! ```text
//! cargo run -p f90y-bench --release --bin bench_scaling [path]
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());
    let json = f90y_bench::scaling_bench_json();
    match std::fs::write(&path, &json) {
        Ok(()) => {
            println!(
                "wrote {path} ({} bytes): swe {}x{} on {} nodes, host threads {:?}, schema {}",
                json.len(),
                f90y_bench::BENCH_GRID,
                f90y_bench::BENCH_GRID,
                f90y_bench::BENCH_NODES,
                f90y_bench::BENCH_HOST_THREADS,
                f90y_bench::BENCH_SCHEMA,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_scaling: cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
