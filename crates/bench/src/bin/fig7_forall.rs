//! Regenerates the paper's Figure 7: the FORALL statement
//!
//! ```fortran
//! INTEGER, ARRAY(32,32) :: A
//! FORALL (i=1:32, j=1:32) A(i,j) = i+j
//! ```
//!
//! expressed in NIR "using a single move written using the parallel
//! array notation" — a `MOVE` of `local_under` coordinate sums into
//! `AVAR('a', everywhere)` under a `WITH_DOMAIN` binding.

use f90y_bench::compile;
use f90y_core::{workloads, Pipeline, Target};
use f90y_nir::pretty::print_imp;

fn main() {
    let src = workloads::fig7_source();
    println!("FIGURE 7 — parallel array notation\n");
    println!("Fortran 90 source:\n{src}");
    let exe = compile(src, Pipeline::F90y);
    println!("NIR:\n\n{}", print_imp(&exe.nir));

    let text = print_imp(&exe.nir);
    assert!(text.contains("WITH_DOMAIN"));
    assert!(text.contains("local_under"));
    assert!(text.contains("AVAR('a',everywhere)"));
    assert_eq!(exe.nir.count_moves(), 1, "a single MOVE, as in the figure");

    println!("\nnode code (one PEAC routine over the 32x32 shape):\n");
    println!("{}", exe.compiled.listings());
    let run = exe
        .session(Target::Cm2 { nodes: 16 })
        .run()
        .expect("runs")
        .into_cm2();
    let a = run.finals.final_array("a").expect("a");
    assert_eq!(a[0], 2.0);
    assert_eq!(a[32 * 32 - 1], 64.0);
    println!("verified: A(1,1) = 2, A(32,32) = 64");
}
