//! `swe_source` — print the benchmark SWE workload as Fortran-90 text.
//!
//! Emits [`f90y_core::workloads::swe_source`] at the committed
//! benchmark configuration ([`f90y_bench::BENCH_GRID`]²,
//! [`f90y_bench::BENCH_STEPS`] steps) so shell pipelines and CI can
//! drive `f90yc` over exactly the workload `BENCH_swe.json` records:
//!
//! ```text
//! cargo run -p f90y-bench --release --bin swe_source > swe.f90
//! f90yc --target cm5 --nodes 16 --emit-trace=swe.trace.json swe.f90
//! ```

fn main() {
    print!(
        "{}",
        f90y_core::workloads::swe_source(f90y_bench::BENCH_GRID, f90y_bench::BENCH_STEPS)
    );
}
