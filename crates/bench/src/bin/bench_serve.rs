//! `bench_serve` — the serving-layer load generator (DESIGN.md §13).
//!
//! Three modes:
//!
//! ```text
//! bench_serve [--out BENCH_serve.json] [--log serve.requests.jsonl]
//! bench_serve --smoke --emit-requests
//! bench_serve --smoke --check <responses.ndjson>
//! ```
//!
//! The default mode replays the 50-request mixed workload (SWE, Fig. 9,
//! heat, Life, red-black, compile-only, lint-only across three tenants)
//! through an in-process deterministic engine and writes two artefacts:
//! the committed `BENCH_serve.json` (p50/p99 latency in simulated
//! units, cache hit rate, fairness spread — byte-identical across
//! regenerations, so CI gates it with `git diff`) and a per-request
//! response log carrying each request's cache outcome, charge and
//! flight-recorder digest.
//!
//! The smoke modes drive the *real* `f90y-served` binary end-to-end in
//! CI: `--emit-requests` prints the workload as NDJSON request lines to
//! pipe into the service, and `--check` verifies the service's NDJSON
//! responses — every id answered exactly once, no failures, the
//! repeated sources actually hit the cache, and the lint request warns.

use std::collections::BTreeMap;
use std::process::ExitCode;

use f90y_serve::protocol::Response;

fn usage() -> ! {
    eprintln!(
        "usage: bench_serve [--out <BENCH_serve.json>] [--log <serve.requests.jsonl>]\n\
         \x20      bench_serve --smoke --emit-requests\n\
         \x20      bench_serve --smoke --check <responses.ndjson>"
    );
    std::process::exit(2);
}

/// Verify the responses `f90y-served` produced for the smoke workload.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let expected = f90y_bench::serve_workload();

    let mut seen: BTreeMap<u64, u64> = BTreeMap::new();
    let mut hits = 0u64;
    let mut lint_warned = 0u64;
    for line in text.lines() {
        match Response::parse(line).map_err(|e| format!("bad response line: {e}: {line}"))? {
            Response::Done(d) => {
                *seen.entry(d.id).or_insert(0) += 1;
                if d.cache == "hit" {
                    hits += 1;
                }
                if !d.warnings.is_empty() {
                    lint_warned += 1;
                }
            }
            Response::Error(e) => {
                return Err(format!(
                    "request {} failed: {:?}: {}",
                    e.id, e.kind, e.message
                ))
            }
        }
    }

    for req in &expected {
        match seen.get(&req.id) {
            Some(1) => {}
            Some(n) => return Err(format!("request {} answered {n} times", req.id)),
            None => return Err(format!("request {} never answered", req.id)),
        }
    }
    if seen.len() != expected.len() {
        return Err(format!(
            "{} responses for {} requests",
            seen.len(),
            expected.len()
        ));
    }
    if hits == 0 {
        return Err("the workload repeats sources but nothing hit the cache".into());
    }
    if lint_warned == 0 {
        return Err("the lint requests produced no warnings".into());
    }
    println!(
        "OK {path}: {} responses, {hits} cache hits, {lint_warned} lint warnings",
        expected.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--smoke") {
        return match args.get(1).map(String::as_str) {
            Some("--emit-requests") if args.len() == 2 => {
                for req in f90y_bench::serve_workload() {
                    println!("{}", req.to_json());
                }
                ExitCode::SUCCESS
            }
            Some("--check") => match args.get(2) {
                Some(path) if args.len() == 3 => match check(path) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("bench_serve: {e}");
                        ExitCode::FAILURE
                    }
                },
                _ => usage(),
            },
            _ => usage(),
        };
    }

    let mut out = "BENCH_serve.json".to_string();
    let mut log = "serve.requests.jsonl".to_string();
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--out" => match iter.next() {
                Some(p) => out = p,
                None => usage(),
            },
            "--log" => match iter.next() {
                Some(p) => log = p,
                None => usage(),
            },
            _ => usage(),
        }
    }

    let artefacts = f90y_bench::serve_bench();
    if let Err(e) = std::fs::write(&out, &artefacts.report) {
        eprintln!("bench_serve: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&log, &artefacts.request_log) {
        eprintln!("bench_serve: cannot write {log}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out} ({} bytes) and {log} ({} request lines), schema {}",
        artefacts.report.len(),
        artefacts.request_log.lines().count(),
        f90y_bench::BENCH_SCHEMA,
    );
    ExitCode::SUCCESS
}
