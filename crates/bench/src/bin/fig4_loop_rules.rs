//! Regenerates the paper's Figure 4: the inductive modelling of serial
//! loops defined over shapes, showing a step-by-step derivation with
//! the four rewrite rules and checking the fully expanded visiting
//! order on product shapes.

use f90y_nir::loop_rules::{expand, step, LoopForm};
use f90y_nir::Shape;

fn render(f: &LoopForm) -> String {
    match f {
        LoopForm::Loop(a, s) => format!("LOOP({}, {s})", render(a)),
        LoopForm::At(cs) => format!("action{cs:?}"),
        LoopForm::Seq(xs) => {
            let inner: Vec<String> = xs.iter().map(render).collect();
            format!("SEQUENTIALLY[{}]", inner.join("; "))
        }
    }
}

fn main() {
    println!("FIGURE 4 — inductive LOOP expansion rules\n");

    // Rule-by-rule derivation for LOOP(action, interval(1..3)).
    let mut form = LoopForm::Loop(Box::new(LoopForm::At(vec![])), Shape::SerialInterval(1, 3));
    println!("derivation for LOOP(action, serial_interval(point 1, point 3)):");
    println!("    {}", render(&form));
    let mut steps = 0;
    while let Some(next) = step(&form) {
        form = next;
        steps += 1;
        println!(" => {}", render(&form));
        if steps > 20 {
            break;
        }
    }
    println!("({steps} rewrite steps to normal form)\n");

    // Rule 4 on a product space.
    let shape = Shape::Product(vec![
        Shape::SerialInterval(1, 2),
        Shape::SerialInterval(1, 3),
    ]);
    println!("LOOP(action, prod_dom[serial 1..2, serial 1..3]) visits, in order:");
    for p in expand(&shape) {
        println!("  action{p:?}");
    }
    let expanded = expand(&shape);
    assert_eq!(expanded.len(), 6);
    assert_eq!(expanded[0], vec![1, 1]);
    assert_eq!(expanded[5], vec![2, 3]);
    println!("\nouter dimension varies slowest — rule 4's nesting order holds");
}
