//! Quantifies the paper's §6 attribution:
//!
//! > "the use of shape analysis and program transformation to recognize
//! > and group computations over elemental blocks into computation
//! > groups of maximal length means that the PEAC subroutine calling
//! > time and the overhead of receiving pointers and data from the
//! > front-end FIFO is amortized over more floating point computations,
//! > in longer virtual subgrid loops."
//!
//! The harness sweeps the number of fusable statements in a kernel and
//! compares the blocked pipeline against per-statement compilation:
//! dispatch counts, overhead cycles, and sustained GFLOPS.

use f90y_bench::{rule, run};
use f90y_core::Pipeline;

/// `k` chained whole-array statements over one shape — all fusable.
fn source(statements: usize, n: usize) -> String {
    let mut body = String::new();
    body.push_str(&format!("REAL a({n},{n}), b({n},{n})\n"));
    body.push_str(&format!(
        "FORALL (i=1:{n}, j=1:{n}) a(i,j) = MOD(i+j, 13)\n"
    ));
    body.push_str("b = a\n");
    for k in 0..statements {
        // Alternate so each statement depends on the previous (no
        // dead-code shortcuts) while staying fusable.
        if k % 2 == 0 {
            body.push_str("a = 0.5*a + 0.25*b + 1.0\n");
        } else {
            body.push_str("b = 0.5*b + 0.25*a + 1.0\n");
        }
    }
    body
}

fn main() {
    println!("§6 — blocking amortises PEAC dispatch overhead");
    println!("kernel: k dependent whole-array statements over a 256x256 shape, 2048 nodes");
    rule(100);
    println!(
        "{:>6} {:>22} {:>22} {:>14} {:>14} {:>8}",
        "k", "blocked dispatches", "per-stmt dispatches", "blocked GF", "per-stmt GF", "speedup"
    );
    rule(100);
    for k in [2usize, 4, 8, 16, 24] {
        let src = source(k, 256);
        let (_, blocked) = run(&src, Pipeline::F90y, 2048);
        let (_, per_stmt) = run(&src, Pipeline::Cmf, 2048);
        println!(
            "{:>6} {:>22} {:>22} {:>14.3} {:>14.3} {:>7.2}x",
            k,
            blocked.stats.dispatches,
            per_stmt.stats.dispatches,
            blocked.gflops,
            per_stmt.gflops,
            blocked.gflops / per_stmt.gflops,
        );
        assert!(blocked.stats.dispatches < per_stmt.stats.dispatches);
        assert!(blocked.gflops >= per_stmt.gflops);
    }
    rule(100);
    println!("the blocked pipeline's advantage grows with the number of fusable statements");
}
