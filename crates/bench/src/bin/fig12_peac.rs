//! Regenerates the paper's Figure 12: the SWE excerpt
//!
//! ```fortran
//! z = (fsdx*(v - CSHIFT(v,DIM=1,SHIFT=-1)) - fsdy*(u - CSHIFT(u,DIM=2,SHIFT=-1)))
//!     / (p + CSHIFT(p,DIM=1,SHIFT=-1))
//! ```
//!
//! compiled to PEAC in a *naive* encoding (every operand loaded to a
//! register, nothing overlapped — 15 instructions in the paper) and the
//! *optimized* encoding (load chaining and overlap — 10 instruction
//! lines in the paper). The harness prints both listings and the cycle
//! cost per virtual-subgrid iteration.

use f90y_bench::compile;
use f90y_core::{workloads, Pipeline};
use f90y_peac::costs::body_cycles;

fn main() {
    let src = workloads::fig12_source(64);

    // The optimized encoding is what the F90-Y pipeline produces; the
    // naive encoding is the *Lisp code generator (no chaining, no
    // overlap, no multiply-add fusion) on the same statement.
    let optimized = compile(&src, Pipeline::F90y);
    let naive = compile(&src, Pipeline::StarLisp);

    // The z-statement block is the one whose clauses write 'z'.
    let find_z = |exe: &f90y_core::Executable| {
        exe.compiled
            .blocks
            .iter()
            .find(|b| b.clauses.iter().any(|c| c.dst.ident() == "z"))
            .expect("a block computes z")
            .clone()
    };
    let b_naive = find_z(&naive);
    let b_opt = find_z(&optimized);

    println!("FIGURE 12 — SWE excerpt, naive vs optimized PEAC encoding\n");
    println!(
        "NAIVE PEAC ENCODING ({} instructions):\n",
        b_naive.routine.len()
    );
    println!("{}", b_naive.routine.listing());
    println!(
        "OPTIMIZED PEAC ENCODING ({} instructions):\n",
        b_opt.routine.len()
    );
    println!("{}", b_opt.routine.listing());

    let cyc_naive = body_cycles(b_naive.routine.body());
    let cyc_opt = body_cycles(b_opt.routine.body());
    println!("paper:    15 instructions naive, 10 lines optimized (1.5x)");
    println!(
        "measured: {} instructions naive ({} cycles/iteration), {} optimized ({} cycles/iteration)",
        b_naive.routine.len(),
        cyc_naive,
        b_opt.routine.len(),
        cyc_opt,
    );
    println!(
        "          instruction ratio {:.2}x, cycle ratio {:.2}x",
        b_naive.routine.len() as f64 / b_opt.routine.len() as f64,
        cyc_naive as f64 / cyc_opt as f64,
    );
    assert!(cyc_opt < cyc_naive, "optimization must pay");
}
