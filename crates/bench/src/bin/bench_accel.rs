//! `bench_accel` — emit the machine-readable accelerator artefact.
//!
//! Writes [`f90y_bench::accel_bench_json`] to the given path (default
//! `BENCH_accel.json`). Every value is modelled — kernel-launch and
//! transfer counts, device cycles from the manifest cost table, never
//! wall time — so the file is byte-identical across regenerations and
//! CI can `git diff` it as a gate (`validate_artifacts --accel`).
//!
//! ```text
//! cargo run -p f90y-bench --release --bin bench_accel [path]
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_accel.json".to_string());
    let json = f90y_bench::accel_bench_json();
    match std::fs::write(&path, &json) {
        Ok(()) => {
            println!(
                "wrote {path} ({} bytes): swe {}x{} on {} accel units, schema {}",
                json.len(),
                f90y_bench::BENCH_GRID,
                f90y_bench::BENCH_GRID,
                f90y_bench::BENCH_NODES,
                f90y_bench::BENCH_SCHEMA,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_accel: cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
