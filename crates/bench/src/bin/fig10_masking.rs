//! Regenerates the paper's Figure 10: blocking with parallel masked
//! assignment.
//!
//! The strided section assignments `B(1:31:2,:)` / `B(2:32:2,:)` are
//! padded to full-array moves under parity masks, the odd-domain
//! `C = N+1` move is lifted out from between them, and the masked moves
//! block together — compiling to the figure's two PEAC routines, the
//! second using a masked move (`fselv`) exactly like the figure's
//! pseudo-code "Move (mask?A:5*A) into B".

use f90y_bench::compile;
use f90y_core::{workloads, Pipeline};
use f90y_nir::pretty::print_imp;

fn main() {
    let src = workloads::fig10_source();
    println!("FIGURE 10 — blocking with parallel masked assignment\n");
    println!("Fortran 90 source:\n{src}");

    let exe = compile(src, Pipeline::F90y);
    println!("BLOCKED NIR:\n\n{}\n", print_imp(&exe.optimized));
    println!(
        "transformation report: {} sections padded to masks, {} hoists, {} blocks",
        exe.report.masked_pads, exe.report.swaps, exe.report.blocks_after,
    );

    println!("\nPEAC routines ({}):\n", exe.compiled.blocks.len());
    println!("{}", exe.compiled.listings());

    let masked = exe
        .compiled
        .blocks
        .iter()
        .flat_map(|b| b.routine.body())
        .filter(|i| matches!(i, f90y_peac::Instr::Fselv { .. }))
        .count();
    println!("masked vector moves (fselv) in node code: {masked}");
    assert!(
        exe.report.masked_pads >= 2,
        "both strided sections must pad"
    );
    assert!(masked >= 1, "masked assignment must reach the node code");

    // The paper expects the A/B computations in one block ("This
    // fragment could be compiled into two PEAC routines").
    println!(
        "paper: 2 PEAC routines; measured: {}",
        exe.compiled.blocks.len()
    );
}
