//! Regenerates the paper's §6 performance comparison on the SWE
//! benchmark:
//!
//! > "A hand-coded \*Lisp version of SWE running under fieldwise mode
//! > peaked at 1.89 gigaflops. The slicewise CM Fortran compiler (v1.1)
//! > reached an extrapolated 2.79 gigaflops. The prototype Fortran-90-Y
//! > compiler … attained a competitive untuned peak rate of 2.99
//! > gigaflops."

use f90y_bench::{
    breakdown, emit_telemetry, rule, run_instrumented, HEADLINE_GRID, HEADLINE_NODES,
    HEADLINE_STEPS,
};
use f90y_core::{workloads, Pipeline};

fn main() {
    let paper: &[(Pipeline, f64)] = &[
        (Pipeline::StarLisp, 1.89),
        (Pipeline::Cmf, 2.79),
        (Pipeline::F90y, 2.99),
    ];

    println!(
        "SWE (shallow-water equations), {g}x{g} grid, {s} steps, {n}-node CM/2 @ 7 MHz",
        g = HEADLINE_GRID,
        s = HEADLINE_STEPS,
        n = HEADLINE_NODES
    );
    rule(104);
    println!(
        "{:<24} {:>12} {:>12} {:>8}   cycle breakdown",
        "compiler", "paper GF", "measured GF", "ratio"
    );
    rule(104);
    let src = workloads::swe_source(HEADLINE_GRID, HEADLINE_STEPS);
    let mut measured = Vec::new();
    for &(pipeline, paper_gf) in paper {
        let (_, report, tel) = run_instrumented(&src, pipeline, HEADLINE_NODES);
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>8.3}   {}",
            pipeline.name(),
            paper_gf,
            report.gflops,
            report.gflops / paper_gf,
            breakdown(&report),
        );
        measured.push((pipeline, report.gflops));
        let tag = match pipeline {
            Pipeline::F90y => "table_swe_f90y",
            Pipeline::Cmf => "table_swe_cmf",
            Pipeline::StarLisp => "table_swe_starlisp",
        };
        emit_telemetry(&tel, tag);
    }
    rule(104);

    let gf = |p: Pipeline| {
        measured
            .iter()
            .find(|(q, _)| *q == p)
            .expect("measured above")
            .1
    };
    println!(
        "speedups   F90-Y/CMF: paper {:.3}, measured {:.3}   F90-Y/*Lisp: paper {:.3}, measured {:.3}",
        2.99 / 2.79,
        gf(Pipeline::F90y) / gf(Pipeline::Cmf),
        2.99 / 1.89,
        gf(Pipeline::F90y) / gf(Pipeline::StarLisp),
    );
    assert!(
        gf(Pipeline::F90y) > gf(Pipeline::Cmf) && gf(Pipeline::Cmf) > gf(Pipeline::StarLisp),
        "the paper's ordering F90-Y > CMF > *Lisp must hold"
    );
}
