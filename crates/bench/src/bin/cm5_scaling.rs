//! CM/5 MIMD scaling sweep: really execute the paper's workloads on the
//! sharded multi-node engine at increasing node counts and report how
//! sustained GFLOPS, message counts and time-per-phase scale.
//!
//! Unlike `table_cm5` (which *estimates* CM/5 time from a CM/2 trace),
//! this harness runs the `f90y-mimd` engine: arrays are sharded across
//! nodes, halo exchanges and reduction trees send counted messages, and
//! the final arrays are checked bit-identical to the CM/2 simulator's.
//!
//! A second sweep injects deterministic message-drop fault plans and
//! reports the recovery overhead (retries and added network time) while
//! re-checking that finals stay bit-identical — the numbers behind the
//! EXPERIMENTS.md fault-overhead table.
//!
//! A final host-core sweep runs the large SWE workload at increasing
//! `host_threads`, re-checks that finals and flight-recorder digests
//! are bit-identical at every width, asserts the wall-clock speedup on
//! multi-core hosts, and rewrites `BENCH_scaling.json` (determinism
//! evidence only — the committed file never carries wall time).
//!
//! Telemetry for each node count lands under
//! `target/telemetry/cm5_scaling_<workload>_n<N>.json`.

use f90y_bench::{compile, emit_telemetry, rule};
use f90y_core::{workloads, Compiler, Executable, FaultPlan, Pipeline, Target, TraceBuffer};
use f90y_obs::Telemetry;

const NODE_COUNTS: [usize; 3] = [4, 16, 64];

/// Message-drop rates for the fault-overhead sweep, in per-mille
/// (0 = fault-free baseline, then 1% and 5%).
const DROP_RATES: [u16; 3] = [0, 10, 50];

fn sweep(title: &str, slug: &str, exe: &Executable, check: &[&str]) {
    // The CM/2 reference run: the MIMD finals must match it exactly.
    let simd = exe
        .session(Target::Cm2 { nodes: 64 })
        .run()
        .expect("CM/2 reference run")
        .into_cm2();

    println!("\n{title}:");
    rule(92);
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "nodes", "GFLOPS", "elapsed", "compute", "halos", "reduces", "messages", "bytes"
    );
    rule(92);
    for nodes in NODE_COUNTS {
        let mut tel = Telemetry::new();
        let run = exe
            .session(Target::Cm5Mimd { nodes })
            .telemetry(&mut tel)
            .run()
            .expect("MIMD run")
            .into_mimd();
        for &name in check {
            assert_eq!(
                run.finals.final_array(name).expect("final array"),
                simd.finals.final_array(name).expect("final array"),
                "array '{name}' diverged from the CM/2 simulator at {nodes} nodes"
            );
        }
        run.stats.verify().expect("stats invariants");
        println!(
            "{:>6} {:>10.4} {:>11.4}s {:>11.4}s {:>10} {:>10} {:>12} {:>10}",
            nodes,
            run.gflops,
            run.elapsed_seconds,
            run.stats.compute_seconds,
            run.stats.halo_exchanges,
            run.stats.reductions,
            run.stats.messages,
            run.stats.bytes,
        );
        emit_telemetry(&tel, &format!("cm5_scaling_{slug}_n{nodes}"));
    }
    rule(92);
    println!("finals bit-identical to the CM/2 simulator at every node count");
}

/// Inject message drops at increasing rates and report the overhead of
/// reliable delivery: every drop costs one retransmission plus an
/// acknowledgement timeout on the modelled clock.
fn fault_sweep(title: &str, exe: &Executable, nodes: usize, check: &[&str]) {
    let clean = exe
        .session(Target::Cm5Mimd { nodes })
        .run()
        .expect("fault-free run")
        .into_mimd();

    println!("\n{title} — fault-injection overhead at {nodes} nodes:");
    rule(76);
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "drop", "messages", "retries", "elapsed", "overhead", "finals"
    );
    rule(76);
    for rate in DROP_RATES {
        let mut session = exe.session(Target::Cm5Mimd { nodes });
        if rate > 0 {
            session = session.faults(FaultPlan::seeded(0xC0F_FEE).drop_per_mille(rate));
        }
        let run = session.run().expect("fault run").into_mimd();
        let mut identical = true;
        for &name in check {
            identical &= run.finals.final_array(name).expect("final array")
                == clean.finals.final_array(name).expect("final array");
        }
        assert!(identical, "faults changed final values at {rate} per-mille");
        run.stats.verify().expect("stats invariants");
        println!(
            "{:>5}%o {:>12} {:>10} {:>11.4}s {:>11.2}% {:>12}",
            rate,
            run.stats.messages,
            run.stats.retries,
            run.elapsed_seconds,
            (run.elapsed_seconds / clean.elapsed_seconds - 1.0) * 100.0,
            "identical",
        );
    }
    rule(76);
}

/// Node count of the host-core sweep: big enough that the per-superstep
/// compute phase dominates thread-pool overhead.
const HOST_SWEEP_NODES: usize = 1024;

/// Minimum wall-clock speedup the sweep must show at its widest thread
/// count on a host with at least [`SPEEDUP_MIN_CORES`] cores.
const SPEEDUP_MIN: f64 = 2.0;
const SPEEDUP_MIN_CORES: usize = 4;

/// Host-core sweep: the same MIMD run at increasing `host_threads`.
/// Results must be bit-identical — finals and flight-recorder digests
/// are re-checked at every width — while wall-clock time drops on
/// multi-core hosts (asserted ≥[`SPEEDUP_MIN`]x at the widest count on
/// [`SPEEDUP_MIN_CORES`]+ cores). Wall-clock numbers are printed, never
/// committed: the committed `BENCH_scaling.json` carries determinism
/// evidence only.
fn host_sweep(title: &str, exe: &Executable, nodes: usize, check: &[&str]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= cores)
        .collect();

    println!("\n{title} — host-core sweep at {nodes} nodes ({cores} cores available):");
    rule(70);
    println!(
        "{:>8} {:>12} {:>9} {:>12} {:>24}",
        "threads", "wall-clock", "speedup", "finals", "trace digest"
    );
    rule(70);

    let mut base: Option<(f64, Vec<Vec<f64>>, String)> = None;
    let mut last_speedup = 1.0;
    for &threads in &counts {
        // Timed run, untraced: the flight recorder must not bill the
        // thread pool for its own bookkeeping.
        let start = std::time::Instant::now();
        let run = exe
            .session(Target::Cm5Mimd { nodes })
            .host_threads(threads)
            .run()
            .expect("MIMD run")
            .into_mimd();
        let wall = start.elapsed().as_secs_f64();

        // Separate traced run for the digest, excluded from the timing.
        let mut buf = TraceBuffer::new();
        exe.session(Target::Cm5Mimd { nodes })
            .host_threads(threads)
            .trace(&mut buf)
            .run()
            .expect("traced MIMD run");
        let digest = buf.trace.expect("trace captured").digest();

        let finals: Vec<Vec<f64>> = check
            .iter()
            .map(|&name| run.finals.final_array(name).expect("final array"))
            .collect();
        let speedup = match &base {
            None => {
                base = Some((wall, finals, digest.clone()));
                1.0
            }
            Some((base_wall, base_finals, base_digest)) => {
                assert_eq!(
                    &finals, base_finals,
                    "host_threads={threads} changed final values at {nodes} nodes"
                );
                assert_eq!(
                    &digest, base_digest,
                    "host_threads={threads} changed the trace digest at {nodes} nodes"
                );
                base_wall / wall
            }
        };
        last_speedup = speedup;
        println!(
            "{threads:>8} {wall:>11.3}s {speedup:>8.2}x {:>12} {digest:>24}",
            "identical"
        );
    }
    rule(70);
    println!("finals and trace digests bit-identical at every host-thread count");

    if cores >= SPEEDUP_MIN_CORES {
        assert!(
            last_speedup >= SPEEDUP_MIN,
            "expected >= {SPEEDUP_MIN}x wall-clock speedup at {} host threads \
             on a {cores}-core host, measured {last_speedup:.2}x",
            counts.last().expect("at least one thread count"),
        );
        println!(
            "speedup {last_speedup:.2}x at {} threads (>= {SPEEDUP_MIN}x required on {cores} cores)",
            counts.last().expect("at least one thread count"),
        );
    } else {
        println!("speedup assertion skipped: only {cores} core(s) available");
    }
}

/// Count the runtime communication calls in a compiled host program.
fn count_comm(stmts: &[f90y_backend::HostStmt]) -> usize {
    use f90y_backend::HostStmt;
    stmts
        .iter()
        .map(|s| match s {
            HostStmt::Comm { .. } => 1,
            HostStmt::Do { body, .. } | HostStmt::While { body, .. } => count_comm(body),
            HostStmt::If {
                then_body,
                else_body,
                ..
            } => count_comm(then_body) + count_comm(else_body),
            HostStmt::WithDecl { body, .. } | HostStmt::WithDomain { body, .. } => count_comm(body),
            _ => 0,
        })
        .sum()
}

/// The comm-cse ablation: the same workload with and without the
/// hoist-deduplication pass, comparing communication calls (static,
/// per host program) and messages/halo exchanges (dynamic, on the
/// MIMD engine) at each node count. Finals must stay bit-identical.
fn cse_ablation(title: &str, src: &str, check: &[&str]) {
    let with_cse = compile(src, Pipeline::F90y);
    let without_cse = Compiler::new(Pipeline::F90y)
        .passes(["comm-split", "mask-pad", "blocking", "dce-temps"])
        .compile(src)
        .expect("compiles without comm-cse");

    println!("\n{title} — comm-cse ablation:");
    println!(
        "  comm calls in the host program: {} without comm-cse, {} with \
         ({} hoists merged, {} temps deleted)",
        count_comm(&without_cse.compiled.host),
        count_comm(&with_cse.compiled.host),
        with_cse.report.comm_merged,
        with_cse.report.temps_deleted,
    );
    rule(72);
    println!(
        "{:>6} {:>16} {:>16} {:>14} {:>14}",
        "nodes", "halos (off)", "halos (on)", "msgs (off)", "msgs (on)"
    );
    rule(72);
    for nodes in NODE_COUNTS {
        let off = without_cse
            .session(Target::Cm5Mimd { nodes })
            .run()
            .expect("MIMD run without comm-cse")
            .into_mimd();
        let on = with_cse
            .session(Target::Cm5Mimd { nodes })
            .run()
            .expect("MIMD run with comm-cse")
            .into_mimd();
        for &name in check {
            assert_eq!(
                on.finals.final_array(name).expect("final array"),
                off.finals.final_array(name).expect("final array"),
                "comm-cse changed array '{name}' at {nodes} nodes"
            );
        }
        assert!(
            on.stats.messages <= off.stats.messages,
            "comm-cse must not add messages at {nodes} nodes"
        );
        println!(
            "{:>6} {:>16} {:>16} {:>14} {:>14}",
            nodes,
            off.stats.halo_exchanges,
            on.stats.halo_exchanges,
            off.stats.messages,
            on.stats.messages,
        );
    }
    rule(72);
    println!("finals bit-identical with and without comm-cse at every node count");
}

fn main() {
    println!("CM/5 MIMD scaling — sharded execution with counted messages");

    let swe = compile(&workloads::swe_source(64, 3), Pipeline::F90y);
    sweep("SWE 64x64, 3 steps", "swe", &swe, &["u", "v", "p"]);

    let fig9 = compile(workloads::fig9_source(), Pipeline::F90y);
    sweep("Fig. 9 blocked stencil", "fig9", &fig9, &["a", "b", "c"]);

    fault_sweep("SWE 64x64, 3 steps", &swe, 16, &["u", "v", "p"]);
    fault_sweep("Fig. 9 blocked stencil", &fig9, 16, &["a", "b", "c"]);

    cse_ablation(
        "SWE 64x64, 3 steps",
        &workloads::swe_source(64, 3),
        &["u", "v", "p"],
    );

    let big = compile(&workloads::swe_source(HOST_SWEEP_NODES, 1), Pipeline::F90y);
    host_sweep(
        &format!("SWE {HOST_SWEEP_NODES}x{HOST_SWEEP_NODES}, 1 step"),
        &big,
        HOST_SWEEP_NODES,
        &["u", "v", "p"],
    );

    let json = f90y_bench::scaling_bench_json();
    match std::fs::write("BENCH_scaling.json", &json) {
        Ok(()) => println!("\nwrote BENCH_scaling.json ({} bytes)", json.len()),
        Err(e) => println!("\nBENCH_scaling.json not written ({e}) — read-only checkout?"),
    }
}
