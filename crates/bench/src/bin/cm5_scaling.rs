//! CM/5 MIMD scaling sweep: really execute the paper's workloads on the
//! sharded multi-node engine at increasing node counts and report how
//! sustained GFLOPS, message counts and time-per-phase scale.
//!
//! Unlike `table_cm5` (which *estimates* CM/5 time from a CM/2 trace),
//! this harness runs the `f90y-mimd` engine: arrays are sharded across
//! nodes, halo exchanges and reduction trees send counted messages, and
//! the final arrays are checked bit-identical to the CM/2 simulator's.
//!
//! Telemetry for each node count lands under
//! `target/telemetry/cm5_scaling_<workload>_n<N>.json`.

use f90y_bench::{compile, emit_telemetry, rule};
use f90y_core::{workloads, Executable, Pipeline};
use f90y_obs::Telemetry;

const NODE_COUNTS: [usize; 3] = [4, 16, 64];

fn sweep(title: &str, slug: &str, exe: &Executable, check: &[&str]) {
    // The CM/2 reference run: the MIMD finals must match it exactly.
    let simd = exe.run(64).expect("CM/2 reference run");

    println!("\n{title}:");
    rule(92);
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "nodes", "GFLOPS", "elapsed", "compute", "halos", "reduces", "messages", "bytes"
    );
    rule(92);
    for nodes in NODE_COUNTS {
        let mut tel = Telemetry::new();
        let run = exe.run_mimd_with(nodes, &mut tel).expect("MIMD run");
        for &name in check {
            assert_eq!(
                run.finals.final_array(name).expect("final array"),
                simd.finals.final_array(name).expect("final array"),
                "array '{name}' diverged from the CM/2 simulator at {nodes} nodes"
            );
        }
        run.stats.verify().expect("stats invariants");
        println!(
            "{:>6} {:>10.4} {:>11.4}s {:>11.4}s {:>10} {:>10} {:>12} {:>10}",
            nodes,
            run.gflops,
            run.elapsed_seconds,
            run.stats.compute_seconds,
            run.stats.halo_exchanges,
            run.stats.reductions,
            run.stats.messages,
            run.stats.bytes,
        );
        emit_telemetry(&tel, &format!("cm5_scaling_{slug}_n{nodes}"));
    }
    rule(92);
    println!("finals bit-identical to the CM/2 simulator at every node count");
}

fn main() {
    println!("CM/5 MIMD scaling — sharded execution with counted messages");

    let swe = compile(&workloads::swe_source(64, 3), Pipeline::F90y);
    sweep("SWE 64x64, 3 steps", "swe", &swe, &["u", "v", "p"]);

    let fig9 = compile(workloads::fig9_source(), Pipeline::F90y);
    sweep("Fig. 9 blocked stencil", "fig9", &fig9, &["a", "b", "c"]);
}
