//! Regenerates the paper's §5.3.1 CM/5 retargeting exercise: the same
//! compiled program — same front end, same blocking transformations,
//! same PEAC-style node bodies — re-timed under the CM/5 three-way
//! model (control processor / node SPARC / four vector units).
//!
//! "Porting effort is thus concentrated on taking advantage of the
//! additional powers of the processing node. Most importantly, the new
//! compiler can still take advantage of the machine-independent
//! blocking and vectorizing NIR transformations defined in the front
//! end."

use f90y_bench::{compile, rule};
use f90y_core::{workloads, Pipeline, Target};
use f90y_mimd::{run_and_estimate, split_block, MimdConfig};

fn main() {
    println!("§5.3.1 — CM/5 retarget: same compiled program, new cost model");
    let src = workloads::swe_source(512, 3);
    let exe = compile(&src, Pipeline::F90y);

    println!("\nthree-way split of each computation block:");
    rule(76);
    println!(
        "{:>6} {:>18} {:>24} {:>14}",
        "block", "vector-unit instrs", "SPARC ops / iteration", "CP args"
    );
    rule(76);
    for b in &exe.compiled.blocks {
        let s = split_block(b);
        println!(
            "{:>6} {:>18} {:>24} {:>14}",
            b.index, s.vector_instructions, s.sparc_ops_per_iteration, s.control_args
        );
    }
    rule(76);

    println!("\nSWE 512x512, 3 steps:");
    rule(86);
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "nodes", "GFLOPS", "VU time", "SPARC time", "CP time", "net time", "of peak"
    );
    rule(86);
    // CM/2 reference line.
    let cm2_run = exe
        .session(Target::Cm2 { nodes: 2048 })
        .run()
        .expect("runs")
        .into_cm2();
    println!(
        "{:>8} {:>12.3} {:>12} {:>12} {:>12} {:>12} {:>9.1}%   (CM/2, 2048 nodes)",
        "CM/2",
        cm2_run.gflops,
        "-",
        "-",
        "-",
        "-",
        cm2_run.gflops / f90y_cm2::Cm2Config::full_slicewise().peak_gflops() * 100.0,
    );
    for nodes in [64usize, 256, 1024] {
        let config = MimdConfig::new(nodes);
        let (_, stats) = run_and_estimate(&exe.compiled, nodes).expect("estimates");
        println!(
            "{:>8} {:>12.3} {:>11.4}s {:>11.4}s {:>11.4}s {:>11.4}s {:>9.1}%",
            nodes,
            stats.gflops(),
            stats.vu_seconds,
            stats.sparc_exposed_seconds,
            stats.control_seconds,
            stats.network_seconds,
            stats.gflops() / config.peak_gflops() * 100.0,
        );
    }
    rule(86);
    let full = run_and_estimate(&exe.compiled, 1024).expect("estimates").1;
    assert!(
        full.gflops() > cm2_run.gflops,
        "a full CM/5 ({:.2} GF) should outrun the full CM/2 ({:.2} GF) on the same program",
        full.gflops(),
        cm2_run.gflops,
    );
    println!(
        "the 1024-node CM/5 sustains {:.2} GF on the unchanged program — the port is a cost\n\
         model and a node-compiler split, not a new compiler (the paper's point)",
        full.gflops()
    );
}
