//! Quantifies the paper's §5.2 claim:
//!
//! > "During execution, the node processor and runtime libraries' speeds
//! > are the limiting factor for performance; the SPARC front end just
//! > has to keep up … As problem size increases, therefore, front end
//! > time comprises a negligible fraction of the overall execution
//! > profile."
//!
//! The harness sweeps the SWE grid size on a fixed 2048-node machine and
//! prints the front-end share of elapsed time.

use f90y_bench::{rule, run};
use f90y_core::{workloads, Pipeline};

fn main() {
    println!("§5.2 — front-end (host) time fraction vs problem size");
    println!("SWE, 3 steps, 2048-node CM/2, Fortran-90-Y pipeline");
    rule(72);
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>14}",
        "grid", "subgrid/PE", "GFLOPS", "host cycles", "host fraction"
    );
    rule(72);
    let mut fractions = Vec::new();
    for n in [64usize, 128, 256, 512, 1024] {
        let src = workloads::swe_source(n, 3);
        let (_, report) = run(&src, Pipeline::F90y, 2048);
        println!(
            "{:>7}^2 {:>12} {:>14.3} {:>14} {:>13.2}%",
            n,
            (n * n).div_ceil(2048),
            report.gflops,
            report.stats.host_cycles,
            report.host_fraction * 100.0,
        );
        fractions.push(report.host_fraction);
    }
    rule(72);
    assert!(
        fractions.windows(2).all(|w| w[1] <= w[0] * 1.05),
        "host fraction must (weakly) fall with problem size: {fractions:?}"
    );
    assert!(
        *fractions.last().expect("nonempty") < 0.01,
        "at scale the host share must be negligible (<1%)"
    );
    println!("host share falls monotonically and is below 1% at scale — §5.2 claim holds");
}
