//! Quantifies the paper's §5.2/§6 register-spill claims:
//!
//! > "Vector registers tend to be the limiting resource, so spill code
//! > is generated where necessary … a single vector spill-restore pair
//! > costs 18 cycles — roughly equivalent to three single-precision
//! > floating point vector operations. … spill/restore code may move
//! > up- or downstream from the actual spill site, as overlapping
//! > permits."
//!
//! The harness sweeps synthetic kernels of rising register pressure
//! (sums of running products keep many values live), reporting spill
//! counts and the cycle cost with and without overlap scheduling.

use f90y_backend::pe::{compile_block_with, PeOptions};
use f90y_bench::rule;
use f90y_nir::build::*;
use f90y_nir::typecheck::Ctx;
use f90y_nir::{MoveClause, Shape, Value};
use f90y_peac::costs::{body_cycles, SPILL_HALF_CYCLES, VOP_CYCLES};
use f90y_peac::Instr;

/// A right-nested difference `t0 - (t1 - (t2 - …))` of *distinct*
/// products: every term is evaluated before the spine folds, so all
/// `terms` values are live simultaneously. Subtraction resists the
/// chained multiply-add fusion and each term is unique, so neither
/// peephole pass can relieve the pressure — exactly the situation the
/// paper's spill machinery exists for.
fn pressure_kernel(terms: usize) -> (Vec<MoveClause>, Ctx, Shape) {
    let mut ctx = Ctx::new();
    for i in 0..3 {
        ctx.bind_var(format!("x{i}"), dfield(grid(&[64]), float64()));
    }
    ctx.bind_var("out".into(), dfield(grid(&[64]), float64()));
    let term: Vec<Value> = (0..terms)
        .map(|k| {
            mul(
                ld(&format!("x{}", k % 3), everywhere()),
                f64c(k as f64 + 1.5),
            )
        })
        .collect();
    let mut sum_v = term.last().expect("terms >= 1").clone();
    for t in term[..terms - 1].iter().rev() {
        sum_v = sub(t.clone(), sum_v);
    }
    let clause = MoveClause::unmasked(avar("out", everywhere()), sum_v);
    (vec![clause], ctx, Shape::grid(&[64]))
}

fn spill_count(body: &[Instr]) -> (usize, usize) {
    let stores = body
        .iter()
        .filter(|i| matches!(i, Instr::SpillStore { .. }))
        .count();
    let loads = body
        .iter()
        .filter(|i| matches!(i, Instr::SpillLoad { .. }))
        .count();
    (stores, loads)
}

fn main() {
    println!("§5.2 — register pressure, spill traffic, and overlap placement");
    println!(
        "(cost model: spill store {SPILL_HALF_CYCLES} + restore {SPILL_HALF_CYCLES} = 18 \
         cycles = 3 x {VOP_CYCLES}-cycle vector ops, as the paper states)"
    );
    rule(94);
    println!(
        "{:>6} {:>9} {:>9} {:>16} {:>16} {:>12}",
        "terms", "spills", "restores", "cycles/iter", "overlapped c/i", "saved"
    );
    rule(94);
    let mut any_spills = false;
    for terms in [4usize, 6, 8, 10, 12, 14] {
        let (clauses, mut ctx, shape) = pressure_kernel(terms);
        let plain = compile_block_with(
            "p",
            &shape,
            &clauses,
            &mut ctx,
            PeOptions {
                overlap: false,
                ..PeOptions::full()
            },
        )
        .expect("compiles");
        let over = compile_block_with("o", &shape, &clauses, &mut ctx, PeOptions::full())
            .expect("compiles");
        let body_p = plain[0].routine.body();
        let body_o = over[0].routine.body();
        let (st, ld_) = spill_count(body_p);
        let cyc_p = body_cycles(body_p);
        let cyc_o = body_cycles(body_o);
        println!(
            "{terms:>6} {st:>9} {ld_:>9} {cyc_p:>16} {cyc_o:>16} {:>11.1}%",
            (1.0 - cyc_o as f64 / cyc_p as f64) * 100.0
        );
        if st > 0 {
            any_spills = true;
            assert_eq!(st, ld_.min(st), "every spill pairs with restores");
        }
        assert!(cyc_o <= cyc_p, "overlap never hurts");
    }
    rule(94);
    assert!(
        any_spills,
        "high-pressure kernels must exceed the 8-register vector file"
    );
    println!("high-pressure kernels spill; overlap placement recovers part of the cost");
}
