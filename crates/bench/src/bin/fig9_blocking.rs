//! Regenerates the paper's Figure 9: the domain blocking transformation.
//!
//! The naive lowering of the figure's source holds three MOVEs —
//! two over domain `alpha`, separated by a serial `DO` over `beta` —
//! and the transformation "can move the like-domain MOVEs together, and
//! compose them within the scope of the common domain, so that they
//! will become one computation block on the CM". The harness prints the
//! NIR before and after, the transformation report, and the dispatch
//! cost either way.

use f90y_bench::{compile, emit_telemetry, run_instrumented};
use f90y_core::{workloads, Pipeline, Target};
use f90y_nir::pretty::print_imp;

fn main() {
    let src = workloads::fig9_source();
    println!("FIGURE 9 — domain blocking transformation\n");
    println!("Fortran 90 source:\n{src}");

    let (exe, _, tel) = run_instrumented(src, Pipeline::F90y, 64);
    emit_telemetry(&tel, "fig9_blocking");
    println!("NAIVE NIR (lowered, before transformation):\n");
    println!("{}\n", print_imp(&exe.nir));
    println!("BLOCKED NIR (after transformation):\n");
    println!("{}\n", print_imp(&exe.optimized));
    println!(
        "transformation report: {} moves -> {} moves, {} hoists, {} blocks ({} clauses)",
        exe.report.moves_before,
        exe.report.moves_after,
        exe.report.swaps,
        exe.report.blocks_after,
        exe.report.clauses_after,
    );

    // Effect on the machine: dispatches and overhead with and without
    // blocking (per-statement = the CMF pipeline on the same source).
    let per_stmt = compile(src, Pipeline::Cmf);
    let run_blocked = exe
        .session(Target::Cm2 { nodes: 64 })
        .run()
        .expect("runs")
        .into_cm2();
    let run_naive = per_stmt
        .session(Target::Cm2 { nodes: 64 })
        .run()
        .expect("runs")
        .into_cm2();
    println!(
        "\nblocked:      {} PEAC routines, {} dispatches, {} overhead cycles",
        exe.compiled.blocks.len(),
        run_blocked.stats.dispatches,
        run_blocked.stats.dispatch_overhead_cycles,
    );
    println!(
        "per-statement: {} PEAC routines, {} dispatches, {} overhead cycles",
        per_stmt.compiled.blocks.len(),
        run_naive.stats.dispatches,
        run_naive.stats.dispatch_overhead_cycles,
    );
    assert!(run_blocked.stats.dispatches < run_naive.stats.dispatches);
}
