//! Supplementary scaling series (no direct paper figure, but the
//! motivation throughout): SWE throughput versus machine size for a
//! fixed problem. With the problem fixed, the subgrid per node shrinks
//! as nodes grow, so per-call overheads bite — the same VP-ratio effect
//! the §5.2 and §6 discussions turn on.

use f90y_bench::{compile, rule};
use f90y_core::{workloads, Pipeline, Target};

fn main() {
    let grid = 512;
    println!("SWE {grid}x{grid}, 3 steps — throughput vs machine size (F90-Y pipeline)");
    rule(76);
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "nodes", "subgrid/PE", "GFLOPS", "speedup", "efficiency"
    );
    rule(76);
    let exe = compile(&workloads::swe_source(grid, 3), Pipeline::F90y);
    let mut base: Option<(usize, f64)> = None;
    let mut last_gf = 0.0;
    for nodes in [32usize, 128, 512, 2048] {
        let report = exe
            .session(Target::Cm2 { nodes })
            .run()
            .expect("runs")
            .into_cm2();
        let (n0, t0) = *base.get_or_insert((nodes, report.elapsed_seconds));
        let speedup = t0 / report.elapsed_seconds;
        let efficiency = speedup / (nodes as f64 / n0 as f64);
        println!(
            "{:>8} {:>12} {:>12.3} {:>13.2}x {:>13.1}%",
            nodes,
            (grid * grid).div_ceil(nodes),
            report.gflops,
            speedup,
            efficiency * 100.0,
        );
        assert!(
            report.gflops >= last_gf,
            "more nodes must not lower throughput"
        );
        last_gf = report.gflops;
    }
    rule(76);
    println!(
        "scaling is sublinear at fixed problem size (shrinking VP ratio exposes \
         dispatch and\nruntime-call overheads) — the flip side of the §5.2 grid-size series"
    );
}
