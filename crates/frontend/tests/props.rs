//! Property tests for the front end: totality on arbitrary input, and
//! invariance of the parse under comments, continuations and case
//! changes.

use proptest::prelude::*;

use f90y_frontend::parse;

/// Compare ASTs modulo source positions (the properties here move text
/// around, so spans legitimately differ).
fn fingerprint(unit: &f90y_frontend::ProgramUnit) -> String {
    let debug = format!("{unit:?}");
    // Spans print as `Span { line: N, col: M }`; erase the payload.
    let mut out = String::with_capacity(debug.len());
    let mut rest = debug.as_str();
    while let Some(ix) = rest.find("Span {") {
        out.push_str(&rest[..ix]);
        out.push_str("Span");
        match rest[ix..].find('}') {
            Some(end) => rest = &rest[ix + end + 1..],
            None => {
                rest = "";
                break;
            }
        }
    }
    out.push_str(rest);
    out
}

const BASE: &str = "PROGRAM p
REAL a(16), b(16)
INTEGER n
n = 3
FORALL (i=1:16) a(i) = i
WHERE (a > 4.0) b = 2.0*a
DO k = 1, 4
  b = b + a*1.5 - MIN(a, b)
END DO
END PROGRAM p
";

proptest! {
    /// The lexer and parser never panic on arbitrary bytes.
    #[test]
    fn parser_is_total(src in "\\PC{0,200}") {
        let _ = parse(&src);
    }

    /// Appending a comment to any line leaves the AST unchanged.
    #[test]
    fn comments_are_invisible(line in 0usize..10, text in "[ a-zA-Z0-9+*()=,]{0,20}") {
        let reference = parse(BASE).expect("base parses");
        let mut lines: Vec<String> = BASE.lines().map(str::to_string).collect();
        if line < lines.len() {
            lines[line].push_str(" ! ");
            lines[line].push_str(&text);
        }
        let commented = lines.join("\n");
        let got = parse(&commented).expect("commented program parses");
        prop_assert_eq!(fingerprint(&got), fingerprint(&reference));
    }

    /// Changing keyword/identifier case leaves the AST unchanged
    /// (Fortran is case-insensitive).
    #[test]
    fn case_is_insignificant(upper in proptest::collection::vec(any::<bool>(), 32)) {
        let reference = parse(BASE).expect("base parses");
        let mut flip = upper.into_iter().cycle();
        let mangled: String = BASE
            .chars()
            .map(|c| {
                if c.is_ascii_alphabetic() && flip.next().unwrap_or(false) {
                    if c.is_ascii_lowercase() {
                        c.to_ascii_uppercase()
                    } else {
                        c.to_ascii_lowercase()
                    }
                } else {
                    c
                }
            })
            .collect();
        let got = parse(&mangled).expect("case-mangled program parses");
        prop_assert_eq!(fingerprint(&got), fingerprint(&reference));
    }

    /// Splitting an expression line at a space with `&` continuation
    /// leaves the AST unchanged.
    #[test]
    fn continuations_are_invisible(split_at in 1usize..20) {
        let reference = parse(BASE).expect("base parses");
        // Split the long DO-body line at the `split_at`-th space.
        let target = "  b = b + a*1.5 - MIN(a, b)";
        let spaces: Vec<usize> = target
            .char_indices()
            .filter(|(i, c)| *c == ' ' && *i > 6)
            .map(|(i, _)| i)
            .collect();
        let pos = spaces[split_at % spaces.len()];
        let continued = format!("{} &\n    {}", &target[..pos], &target[pos..]);
        let src = BASE.replace(target, &continued);
        let got = parse(&src).expect("continued program parses");
        prop_assert_eq!(fingerprint(&got), fingerprint(&reference));
    }

    /// Extra blank lines and trailing whitespace never change the parse.
    #[test]
    fn whitespace_is_insignificant(extra_blanks in 0usize..4, line in 0usize..10) {
        let reference = parse(BASE).expect("base parses");
        let mut lines: Vec<String> = BASE.lines().map(str::to_string).collect();
        if line < lines.len() {
            for _ in 0..extra_blanks {
                lines.insert(line, String::new());
            }
        }
        let got = parse(&lines.join("\n")).expect("padded program parses");
        prop_assert_eq!(fingerprint(&got), fingerprint(&reference));
    }
}
