//! # f90y-frontend — Fortran 90 front end
//!
//! Lexer, parser and AST for the data-parallel Fortran 90 subset the
//! Fortran-90-Y prototype accepts (Chen & Cowie, PLDI 1992, §2.1):
//!
//! * whole-array expressions and assignment (`K = 2*K + 5`);
//! * array sections with strides (`B(1:32:2, :) = A(1:32:2, :)`);
//! * `FORALL` assignments, `WHERE`/`ELSEWHERE` masked assignment;
//! * serial `DO` loops in both modern (`do` … `end do`) and dusty-deck
//!   labelled form (`DO 10 I=1,128` … `10 CONTINUE`);
//! * the array intrinsics the paper's benchmarks exercise (`CSHIFT`,
//!   `EOSHIFT`, `SUM`, `MAXVAL`, `MINVAL`) plus elemental intrinsics;
//! * free-form source with `!` comments, `&` continuation, `;`
//!   statement separators, and case-insensitive keywords.
//!
//! The front end performs *syntactic* analysis only; static semantics
//! (types and shapes) are filtered out by the semantic lowering stage in
//! `f90y-lowering`, matching the paper's phase structure (its Fig. 2).
//!
//! ## Example
//!
//! ```
//! let source = "
//!     PROGRAM demo
//!       INTEGER K(128,64), L(128)
//!       L = 6
//!       K = 2*K + 5
//!     END PROGRAM demo
//! ";
//! let unit = f90y_frontend::parse(source)?;
//! assert_eq!(unit.name.as_deref(), Some("demo"));
//! assert_eq!(unit.stmts.len(), 2);
//! # Ok::<(), f90y_frontend::ParseError>(())
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    BaseType, DataRef, DimSpec, Entity, Expr, ProgramUnit, SourceFile, Stmt, Subroutine, Subscript,
    TypeDecl,
};
pub use lexer::LexError;
pub use parser::{parse, parse_file, ParseError};
pub use token::{Span, Token, TokenKind};
