//! Recursive-descent parser for the Fortran 90 subset.

use std::error::Error;
use std::fmt;

use crate::ast::{
    BaseType, BinOpAst, DataRef, DimSpec, Entity, Expr, ProgramUnit, SourceFile, Stmt, Subroutine,
    Subscript, TypeDecl, UnOpAst,
};
use crate::lexer::{lex, LexError};
use crate::token::{Span, Token, TokenKind};

/// A syntax error with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where the offending token sits.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parse a Fortran 90 program unit (no subroutines).
///
/// # Errors
///
/// Fails with a positioned [`ParseError`] on the first lexical or
/// syntactic error.
pub fn parse(source: &str) -> Result<ProgramUnit, ParseError> {
    let file = parse_file(source)?;
    if let Some(sub) = file.subroutines.first() {
        return Err(ParseError {
            message: format!(
                "subroutine '{}' present; use parse_file for multi-unit sources",
                sub.name
            ),
            span: sub.span,
        });
    }
    Ok(file.program)
}

/// Parse a full source file: one main program plus any subroutines, in
/// any order.
///
/// # Errors
///
/// Fails with a positioned [`ParseError`] on the first lexical or
/// syntactic error.
pub fn parse_file(source: &str) -> Result<SourceFile, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        last_closed_label: None,
    };
    p.parse_source_file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Set when a labelled statement just closed an inner labelled DO;
    /// outer loops sharing the terminator close on it too.
    last_closed_label: Option<u32>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        self.tokens
            .get(self.pos + n)
            .map(|t| &t.kind)
            .unwrap_or(&TokenKind::Eof)
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            span: self.span(),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
    }

    fn end_statement(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            TokenKind::Newline => {
                self.bump();
                Ok(())
            }
            TokenKind::Eof => Ok(()),
            other => Err(self.error(format!("expected end of statement, found {other}"))),
        }
    }

    // -----------------------------------------------------------------
    // Program structure
    // -----------------------------------------------------------------

    fn parse_source_file(&mut self) -> Result<SourceFile, ParseError> {
        let mut program: Option<ProgramUnit> = None;
        let mut subroutines = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::KwSubroutine => subroutines.push(self.parse_subroutine()?),
                _ => {
                    if program.is_some() {
                        return Err(self.error("only one main program per source file".into()));
                    }
                    program = Some(self.parse_unit()?);
                }
            }
        }
        let program = program.ok_or_else(|| ParseError {
            message: "source file has no main program".into(),
            span: Span::default(),
        })?;
        Ok(SourceFile {
            program,
            subroutines,
        })
    }

    fn parse_subroutine(&mut self) -> Result<Subroutine, ParseError> {
        let span = self.span();
        self.expect(&TokenKind::KwSubroutine)?;
        let name = match self.bump() {
            TokenKind::Ident(n) => n,
            other => return Err(self.error(format!("expected subroutine name, found {other}"))),
        };
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                match self.bump() {
                    TokenKind::Ident(p) => params.push(p),
                    other => {
                        return Err(
                            self.error(format!("expected dummy-argument name, found {other}"))
                        )
                    }
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.end_statement()?;
        self.skip_newlines();

        let mut decls = Vec::new();
        while self.at_decl_start() {
            decls.push(self.parse_type_decl()?);
            self.skip_newlines();
        }
        let stmts = self.parse_stmt_list(&mut |p| p.at_unit_end())?;

        // END [SUBROUTINE [name]]
        self.expect(&TokenKind::KwEnd)?;
        self.eat(&TokenKind::KwSubroutine);
        if let TokenKind::Ident(_) = self.peek() {
            self.bump();
        }
        self.end_statement()?;
        Ok(Subroutine {
            name,
            params,
            decls,
            stmts,
            span,
        })
    }

    fn parse_unit(&mut self) -> Result<ProgramUnit, ParseError> {
        self.skip_newlines();
        let mut name = None;
        if self.eat(&TokenKind::KwProgram) {
            match self.bump() {
                TokenKind::Ident(n) => name = Some(n),
                other => return Err(self.error(format!("expected program name, found {other}"))),
            }
            self.end_statement()?;
        }
        self.skip_newlines();

        let mut decls = Vec::new();
        while self.at_decl_start() {
            decls.push(self.parse_type_decl()?);
            self.skip_newlines();
        }

        let stmts = self.parse_stmt_list(&mut |p| p.at_unit_end())?;

        // END [PROGRAM [name]]
        if self.eat(&TokenKind::KwEnd) {
            self.eat(&TokenKind::KwProgram);
            if let TokenKind::Ident(_) = self.peek() {
                self.bump();
            }
            self.end_statement()?;
        }
        Ok(ProgramUnit { name, decls, stmts })
    }

    fn at_unit_end(&self) -> bool {
        matches!(self.peek(), TokenKind::KwEnd | TokenKind::Eof)
            && !matches!(
                self.peek_at(1),
                TokenKind::KwDo | TokenKind::KwIf | TokenKind::KwWhere
            )
    }

    fn at_decl_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInteger | TokenKind::KwReal | TokenKind::KwDouble | TokenKind::KwLogical
        )
    }

    // -----------------------------------------------------------------
    // Declarations
    // -----------------------------------------------------------------

    fn parse_type_decl(&mut self) -> Result<TypeDecl, ParseError> {
        let span = self.span();
        let base = match self.bump() {
            TokenKind::KwInteger => BaseType::Integer,
            TokenKind::KwReal => BaseType::Real,
            TokenKind::KwLogical => BaseType::Logical,
            TokenKind::KwDouble => {
                self.expect(&TokenKind::KwPrecision)?;
                BaseType::DoublePrecision
            }
            other => return Err(self.error(format!("expected a type, found {other}"))),
        };

        let mut dimension = None;
        let mut parameter = false;
        // Attribute list: , DIMENSION(...) , ARRAY(...) , PARAMETER
        while matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            match self.bump() {
                TokenKind::KwDimension | TokenKind::KwArray => {
                    self.expect(&TokenKind::LParen)?;
                    dimension = Some(self.parse_dim_specs()?);
                    self.expect(&TokenKind::RParen)?;
                }
                TokenKind::KwParameter => parameter = true,
                other => return Err(self.error(format!("unknown declaration attribute {other}"))),
            }
        }
        self.eat(&TokenKind::DoubleColon);

        let mut entities = Vec::new();
        loop {
            let name = match self.bump() {
                TokenKind::Ident(n) => n,
                other => return Err(self.error(format!("expected entity name, found {other}"))),
            };
            let dims = if self.eat(&TokenKind::LParen) {
                let d = self.parse_dim_specs()?;
                self.expect(&TokenKind::RParen)?;
                Some(d)
            } else {
                None
            };
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            entities.push(Entity { name, dims, init });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.end_statement()?;
        Ok(TypeDecl {
            base,
            dimension,
            parameter,
            entities,
            span,
        })
    }

    fn parse_dim_specs(&mut self) -> Result<Vec<DimSpec>, ParseError> {
        let mut specs = Vec::new();
        loop {
            let first = self.parse_const_int()?;
            if self.eat(&TokenKind::Colon) {
                let hi = self.parse_const_int()?;
                specs.push(DimSpec { lo: first, hi });
            } else {
                specs.push(DimSpec { lo: 1, hi: first });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(specs)
    }

    fn parse_const_int(&mut self) -> Result<i64, ParseError> {
        let e = self.parse_expr()?;
        e.as_int()
            .ok_or_else(|| self.error("array bounds must be integer constants".into()))
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn parse_stmt_list(
        &mut self,
        done: &mut dyn FnMut(&Parser) -> bool,
    ) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        loop {
            self.skip_newlines();
            if done(self) || matches!(self.peek(), TokenKind::Eof) {
                break;
            }
            let (label, stmt) = self.parse_labelled_stmt()?;
            // A label closing a DO is handled inside parse_do_labelled;
            // a stray label elsewhere is tolerated (dusty decks).
            let _ = label;
            if let Some(s) = stmt {
                stmts.push(s);
            }
            // A labelled DO somewhere below just closed; the propagation
            // only matters to enclosing labelled loops, so clear it here
            // and keep parsing this (unlabelled) list.
            self.last_closed_label = None;
        }
        Ok(stmts)
    }

    /// Parse one statement, returning its label (if any). `None`
    /// statement means a bare `CONTINUE` that served as a loop
    /// terminator.
    fn parse_labelled_stmt(&mut self) -> Result<(Option<u32>, Option<Stmt>), ParseError> {
        let label = match self.peek() {
            TokenKind::Label(l) => {
                let l = *l;
                self.bump();
                Some(l)
            }
            _ => None,
        };
        let stmt = self.parse_stmt()?;
        Ok((label, Some(stmt)))
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        match self.peek() {
            TokenKind::KwDo => self.parse_do(span),
            TokenKind::KwForall => self.parse_forall(span),
            TokenKind::KwWhere => self.parse_where(span),
            TokenKind::KwIf => self.parse_if(span),
            TokenKind::KwContinue => {
                self.bump();
                self.end_statement()?;
                Ok(Stmt::Continue { span })
            }
            TokenKind::KwCall => {
                self.bump();
                let name = match self.bump() {
                    TokenKind::Ident(n) => n,
                    other => {
                        return Err(self.error(format!(
                            "expected subroutine name after CALL, found {other}"
                        )))
                    }
                };
                let mut args = Vec::new();
                if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                self.end_statement()?;
                Ok(Stmt::Call { name, args, span })
            }
            TokenKind::Ident(_) => self.parse_assignment(span),
            other => Err(self.error(format!("expected a statement, found {other}"))),
        }
    }

    fn parse_assignment(&mut self, span: Span) -> Result<Stmt, ParseError> {
        let lhs = self.parse_data_ref()?;
        self.expect(&TokenKind::Assign)?;
        let rhs = self.parse_expr()?;
        self.end_statement()?;
        Ok(Stmt::Assign { lhs, rhs, span })
    }

    fn parse_do(&mut self, span: Span) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::KwDo)?;
        // DO WHILE (cond)
        if self.eat(&TokenKind::KwWhile) {
            self.expect(&TokenKind::LParen)?;
            let cond = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            self.end_statement()?;
            let body = self.parse_block_until_enddo()?;
            return Ok(Stmt::DoWhile { cond, body, span });
        }
        // DO <label> var = ... (labelled form)
        let label = match self.peek() {
            TokenKind::IntLit(l) => {
                let l = *l;
                self.bump();
                Some(u32::try_from(l).map_err(|_| self.error("label out of range".into()))?)
            }
            _ => None,
        };
        let var = match self.bump() {
            TokenKind::Ident(n) => n,
            other => return Err(self.error(format!("expected loop variable, found {other}"))),
        };
        self.expect(&TokenKind::Assign)?;
        let lo = self.parse_expr()?;
        self.expect(&TokenKind::Comma)?;
        let hi = self.parse_expr()?;
        let step = if self.eat(&TokenKind::Comma) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.end_statement()?;
        let body = match label {
            Some(l) => self.parse_do_labelled(l)?,
            None => self.parse_block_until_enddo()?,
        };
        Ok(Stmt::Do {
            var,
            lo,
            hi,
            step,
            body,
            span,
        })
    }

    fn parse_block_until_enddo(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let body = self.parse_stmt_list(&mut |p| {
            matches!(p.peek(), TokenKind::KwEnddo)
                || (matches!(p.peek(), TokenKind::KwEnd) && matches!(p.peek_at(1), TokenKind::KwDo))
        })?;
        if self.eat(&TokenKind::KwEnddo) {
        } else {
            self.expect(&TokenKind::KwEnd)?;
            self.expect(&TokenKind::KwDo)?;
        }
        self.end_statement()?;
        Ok(body)
    }

    fn parse_do_labelled(&mut self, label: u32) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        loop {
            // A shared-terminator close propagating up from an inner
            // labelled loop: if the label is ours, we close too (leaving
            // the flag set for any enclosing loop with the same label);
            // a different label cannot close us — clear and keep going.
            match self.last_closed_label {
                Some(l) if l == label => return Ok(body),
                Some(_) => self.last_closed_label = None,
                None => {}
            }
            self.skip_newlines();
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.error(format!("DO loop terminator label {label} not found")));
            }
            let stmt_label = match self.peek() {
                TokenKind::Label(l) => Some(*l),
                _ => None,
            };
            if stmt_label == Some(label) {
                self.bump(); // label
                let stmt = self.parse_stmt()?;
                if !matches!(stmt, Stmt::Continue { .. }) {
                    body.push(stmt);
                }
                self.last_closed_label = Some(label);
                return Ok(body);
            }
            if stmt_label.is_some() {
                self.bump();
            }
            let stmt = self.parse_stmt()?;
            body.push(stmt);
        }
    }

    fn parse_forall(&mut self, span: Span) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::KwForall)?;
        self.expect(&TokenKind::LParen)?;
        let mut triplets = Vec::new();
        loop {
            let name = match self.bump() {
                TokenKind::Ident(n) => n,
                other => return Err(self.error(format!("expected FORALL index, found {other}"))),
            };
            self.expect(&TokenKind::Assign)?;
            let lo = self.parse_expr()?;
            self.expect(&TokenKind::Colon)?;
            let hi = self.parse_expr()?;
            let step = if self.eat(&TokenKind::Colon) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            triplets.push((name, lo, hi, step));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        let span2 = self.span();
        let assign = self.parse_assignment(span2)?;
        Ok(Stmt::Forall {
            triplets,
            assign: Box::new(assign),
            span,
        })
    }

    fn parse_where(&mut self, span: Span) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::KwWhere)?;
        self.expect(&TokenKind::LParen)?;
        let mask = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        // Single-statement form: WHERE (mask) a = b
        if let TokenKind::Ident(_) = self.peek() {
            let span2 = self.span();
            let assign = self.parse_assignment(span2)?;
            return Ok(Stmt::Where {
                mask,
                then_body: vec![assign],
                else_body: Vec::new(),
                span,
            });
        }
        self.end_statement()?;
        let then_body = self.parse_stmt_list(&mut |p| {
            matches!(p.peek(), TokenKind::KwElsewhere | TokenKind::KwEndwhere)
                || (matches!(p.peek(), TokenKind::KwEnd)
                    && matches!(p.peek_at(1), TokenKind::KwWhere))
        })?;
        let mut else_body = Vec::new();
        if self.eat(&TokenKind::KwElsewhere) {
            self.end_statement()?;
            else_body = self.parse_stmt_list(&mut |p| {
                matches!(p.peek(), TokenKind::KwEndwhere)
                    || (matches!(p.peek(), TokenKind::KwEnd)
                        && matches!(p.peek_at(1), TokenKind::KwWhere))
            })?;
        }
        if self.eat(&TokenKind::KwEndwhere) {
        } else {
            self.expect(&TokenKind::KwEnd)?;
            self.expect(&TokenKind::KwWhere)?;
        }
        self.end_statement()?;
        Ok(Stmt::Where {
            mask,
            then_body,
            else_body,
            span,
        })
    }

    fn parse_if(&mut self, span: Span) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::KwIf)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        if !self.eat(&TokenKind::KwThen) {
            // Single-line logical IF: IF (cond) stmt
            let inner = self.parse_stmt()?;
            return Ok(Stmt::If {
                arms: vec![(cond, vec![inner])],
                else_body: Vec::new(),
                span,
            });
        }
        self.end_statement()?;
        let mut arms = Vec::new();
        let mut else_body = Vec::new();
        let mut current_cond = cond;
        loop {
            let body = self.parse_stmt_list(&mut |p| {
                matches!(p.peek(), TokenKind::KwElse | TokenKind::KwEndif)
                    || (matches!(p.peek(), TokenKind::KwEnd)
                        && matches!(p.peek_at(1), TokenKind::KwIf))
                    || matches!(p.peek(), TokenKind::Ident(s) if s == "elseif")
            })?;
            arms.push((current_cond.clone(), body));
            let is_elseif_word = matches!(self.peek(), TokenKind::Ident(s) if s == "elseif");
            if is_elseif_word
                || (self.peek() == &TokenKind::KwElse && self.peek_at(1) == &TokenKind::KwIf)
            {
                if is_elseif_word {
                    self.bump();
                } else {
                    self.bump();
                    self.bump();
                }
                self.expect(&TokenKind::LParen)?;
                current_cond = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::KwThen)?;
                self.end_statement()?;
                continue;
            }
            if self.eat(&TokenKind::KwElse) {
                self.end_statement()?;
                else_body = self.parse_stmt_list(&mut |p| {
                    matches!(p.peek(), TokenKind::KwEndif)
                        || (matches!(p.peek(), TokenKind::KwEnd)
                            && matches!(p.peek_at(1), TokenKind::KwIf))
                })?;
            }
            break;
        }
        if self.eat(&TokenKind::KwEndif) {
        } else {
            self.expect(&TokenKind::KwEnd)?;
            self.expect(&TokenKind::KwIf)?;
        }
        self.end_statement()?;
        Ok(Stmt::If {
            arms,
            else_body,
            span,
        })
    }

    // -----------------------------------------------------------------
    // Expressions (Fortran precedence)
    // -----------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOpAst::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_not()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.parse_not()?;
            lhs = Expr::Binary(BinOpAst::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Not) {
            let inner = self.parse_not()?;
            Ok(Expr::Unary(UnOpAst::Not, Box::new(inner)))
        } else {
            self.parse_relational()
        }
    }

    fn parse_relational(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_addsub()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOpAst::Eq,
            TokenKind::Ne => BinOpAst::Ne,
            TokenKind::Lt => BinOpAst::Lt,
            TokenKind::Le => BinOpAst::Le,
            TokenKind::Gt => BinOpAst::Gt,
            TokenKind::Ge => BinOpAst::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_addsub()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_addsub(&mut self) -> Result<Expr, ParseError> {
        // Leading unary sign binds looser than * and / in Fortran:
        // -a*b parses as -(a*b).
        let negate = if self.eat(&TokenKind::Minus) {
            true
        } else {
            self.eat(&TokenKind::Plus);
            false
        };
        let mut lhs = self.parse_term()?;
        if negate {
            lhs = Expr::Unary(UnOpAst::Neg, Box::new(lhs));
        }
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOpAst::Add,
                TokenKind::Minus => BinOpAst::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_term()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_power()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOpAst::Mul,
                TokenKind::Slash => BinOpAst::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_power()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_power(&mut self) -> Result<Expr, ParseError> {
        let base = self.parse_primary()?;
        if self.eat(&TokenKind::Power) {
            // Right-associative; exponent may carry a unary sign.
            let negate = if self.eat(&TokenKind::Minus) {
                true
            } else {
                self.eat(&TokenKind::Plus);
                false
            };
            let mut exp = self.parse_power()?;
            if negate {
                exp = Expr::Unary(UnOpAst::Neg, Box::new(exp));
            }
            Ok(Expr::Binary(BinOpAst::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::RealLit(v) => {
                self.bump();
                Ok(Expr::Real(v))
            }
            TokenKind::DoubleLit(v) => {
                self.bump();
                Ok(Expr::Double(v))
            }
            TokenKind::LogicalLit(v) => {
                self.bump();
                Ok(Expr::Logical(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(_) => Ok(Expr::Ref(self.parse_data_ref()?)),
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }

    fn parse_data_ref(&mut self) -> Result<DataRef, ParseError> {
        let span = self.span();
        let name = match self.bump() {
            TokenKind::Ident(n) => n,
            other => return Err(self.error(format!("expected a name, found {other}"))),
        };
        let subs = if self.eat(&TokenKind::LParen) {
            let mut subs = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    subs.push(self.parse_subscript()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
            Some(subs)
        } else {
            None
        };
        Ok(DataRef { name, subs, span })
    }

    fn parse_subscript(&mut self) -> Result<Subscript, ParseError> {
        // Forms: expr | expr:expr | expr:expr:expr | : | :expr | expr: | ::expr
        let lo = if matches!(self.peek(), TokenKind::Colon) {
            None
        } else {
            Some(self.parse_keyword_or_expr()?)
        };
        if !self.eat(&TokenKind::Colon) {
            return Ok(match lo {
                Some(e) => Subscript::Index(e),
                None => unreachable!("colon checked above"),
            });
        }
        let hi = if matches!(
            self.peek(),
            TokenKind::Colon | TokenKind::Comma | TokenKind::RParen
        ) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        let step = if self.eat(&TokenKind::Colon) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Subscript::Triplet { lo, hi, step })
    }

    /// Parse a subscript element that may be a keyword argument
    /// (`DIM=1`, `SHIFT=-1` in intrinsic calls). The keyword is dropped —
    /// lowering resolves intrinsics positionally with the standard
    /// keyword order — but keyword syntax must not break parsing.
    fn parse_keyword_or_expr(&mut self) -> Result<Expr, ParseError> {
        if let TokenKind::Ident(_) = self.peek() {
            if matches!(self.peek_at(1), TokenKind::Assign) {
                let kw = match self.bump() {
                    TokenKind::Ident(n) => n,
                    _ => unreachable!("peeked Ident"),
                };
                self.bump(); // '='
                let value = self.parse_expr()?;
                // Re-encode as a tagged expression via a marker ref so
                // lowering can reorder keyword arguments.
                return Ok(Expr::Ref(DataRef {
                    name: format!("{kw}="),
                    subs: Some(vec![Subscript::Index(value)]),
                    span: self.span(),
                }));
            }
        }
        self.parse_expr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn parse_ok(src: &str) -> ProgramUnit {
        match parse(src) {
            Ok(u) => u,
            Err(e) => panic!("parse failed: {e}\nsource:\n{src}"),
        }
    }

    #[test]
    fn paper_fortran77_example_parses() {
        // The paper's §2.1 dusty-deck fragment.
        let unit = parse_ok(
            "
            INTEGER K(128,64), L(128)
            DO 10 I=1,128
               L(I) = 6
               DO 20 J=1,64
                  K(I,J) = 2*K(I,J) + 5
  20           CONTINUE
  10        CONTINUE
            ",
        );
        assert_eq!(unit.decls.len(), 1);
        assert_eq!(unit.decls[0].entities.len(), 2);
        assert_eq!(unit.stmts.len(), 1);
        match &unit.stmts[0] {
            Stmt::Do { var, body, .. } => {
                assert_eq!(var, "i");
                assert_eq!(body.len(), 2);
                assert!(matches!(&body[1], Stmt::Do { var, .. } if var == "j"));
            }
            other => panic!("expected DO, got {other:?}"),
        }
    }

    #[test]
    fn paper_fortran90_replacement_parses() {
        let unit = parse_ok("INTEGER K(128,64), L(128)\nL = 6\nK = 2*K + 5\n");
        assert_eq!(unit.stmts.len(), 2);
        assert!(matches!(&unit.stmts[0], Stmt::Assign { lhs, .. } if lhs.name == "l"));
    }

    #[test]
    fn paper_section_example_parses() {
        let unit = parse_ok(
            "INTEGER K(128,64), L(128)\nL(32:64) = L(96:128)\nK(32:64,:) = K(32:64,:)**2\n",
        );
        match &unit.stmts[1] {
            Stmt::Assign { lhs, rhs, .. } => {
                let subs = lhs.subs.as_ref().expect("subscripts");
                assert_eq!(subs.len(), 2);
                assert!(subs[0].is_triplet());
                assert!(subs[1].is_triplet());
                assert!(matches!(rhs, Expr::Binary(BinOpAst::Pow, _, _)));
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn forall_parses() {
        let unit = parse_ok("INTEGER, ARRAY(32,32) :: A\nFORALL (i=1:32, j=1:32) A(i,j) = i+j\n");
        match &unit.stmts[0] {
            Stmt::Forall {
                triplets, assign, ..
            } => {
                assert_eq!(triplets.len(), 2);
                assert_eq!(triplets[0].0, "i");
                assert!(matches!(&**assign, Stmt::Assign { .. }));
            }
            other => panic!("expected FORALL, got {other:?}"),
        }
    }

    #[test]
    fn where_elsewhere_parses() {
        let unit = parse_ok(
            "
            REAL A(8), B(8)
            WHERE (A > 0.0)
              B = A
            ELSEWHERE
              B = -A
            END WHERE
            ",
        );
        match &unit.stmts[0] {
            Stmt::Where {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected WHERE, got {other:?}"),
        }
    }

    #[test]
    fn single_line_where_parses() {
        let unit = parse_ok("REAL A(8), B(8)\nWHERE (A > 0.0) B = A\n");
        assert!(matches!(&unit.stmts[0], Stmt::Where { .. }));
    }

    #[test]
    fn if_elseif_else_parses() {
        let unit = parse_ok(
            "
            INTEGER x, y
            IF (x > 0) THEN
              y = 1
            ELSE IF (x < 0) THEN
              y = -1
            ELSE
              y = 0
            END IF
            ",
        );
        match &unit.stmts[0] {
            Stmt::If {
                arms, else_body, ..
            } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected IF, got {other:?}"),
        }
    }

    #[test]
    fn single_line_if_parses() {
        let unit = parse_ok("INTEGER x, y\nIF (x > 0) y = 1\n");
        assert!(matches!(&unit.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn do_while_parses() {
        let unit = parse_ok(
            "
            INTEGER x
            DO WHILE (x < 10)
              x = x + 1
            END DO
            ",
        );
        assert!(matches!(&unit.stmts[0], Stmt::DoWhile { .. }));
    }

    #[test]
    fn modern_do_with_enddo() {
        let unit = parse_ok("INTEGER i, s\ndo i = 1, 10, 2\n  s = s + i\nenddo\n");
        match &unit.stmts[0] {
            Stmt::Do { step, body, .. } => {
                assert!(step.is_some());
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected DO, got {other:?}"),
        }
    }

    #[test]
    fn program_wrapper_and_end_program() {
        let unit = parse_ok("PROGRAM swe\nREAL u(8)\nu = 0.0\nEND PROGRAM swe\n");
        assert_eq!(unit.name.as_deref(), Some("swe"));
        assert_eq!(unit.stmts.len(), 1);
    }

    #[test]
    fn cshift_call_with_keywords_parses() {
        let unit = parse_ok("REAL v(16), z(16)\nz = v - CSHIFT(v, DIM=1, SHIFT=-1)\n");
        match &unit.stmts[0] {
            Stmt::Assign { rhs, .. } => {
                // RHS is v - cshift(...)
                assert!(matches!(rhs, Expr::Binary(BinOpAst::Sub, _, _)));
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn declaration_forms() {
        // Attribute DIMENSION, entity dims, double colon, initializer.
        let unit = parse_ok(
            "
            INTEGER, DIMENSION(64,64) :: A, B
            DOUBLE PRECISION m, n
            REAL :: dt = 90.0
            LOGICAL flags(10)
            INTEGER, PARAMETER :: nx = 64
            ",
        );
        assert_eq!(unit.decls.len(), 5);
        assert_eq!(unit.decls[0].dimension.as_ref().map(|d| d.len()), Some(2));
        assert_eq!(unit.decls[1].base, BaseType::DoublePrecision);
        assert!(unit.decls[2].entities[0].init.is_some());
        assert_eq!(
            unit.decls[3].entities[0].dims.as_ref().map(|d| d.len()),
            Some(1)
        );
        assert!(unit.decls[4].parameter);
    }

    #[test]
    fn unary_minus_precedence() {
        // -a*b parses as -(a*b)
        let unit = parse_ok("REAL a, b, c\nc = -a*b\n");
        match &unit.stmts[0] {
            Stmt::Assign { rhs, .. } => match rhs {
                Expr::Unary(UnOpAst::Neg, inner) => {
                    assert!(matches!(**inner, Expr::Binary(BinOpAst::Mul, _, _)));
                }
                other => panic!("expected Neg, got {other:?}"),
            },
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative() {
        let unit = parse_ok("REAL a, c\nc = a**2**3\n");
        match &unit.stmts[0] {
            Stmt::Assign { rhs, .. } => match rhs {
                Expr::Binary(BinOpAst::Pow, _, exp) => {
                    assert!(matches!(**exp, Expr::Binary(BinOpAst::Pow, _, _)));
                }
                other => panic!("expected Pow, got {other:?}"),
            },
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn shared_do_terminators() {
        let unit = parse_ok(
            "
            INTEGER A(4,4)
            DO 10 I=1,4
            DO 10 J=1,4
            A(I,J) = I+J
  10        CONTINUE
            ",
        );
        match &unit.stmts[0] {
            Stmt::Do { body, .. } => match &body[0] {
                Stmt::Do { body: inner, .. } => assert_eq!(inner.len(), 1),
                other => panic!("expected inner DO, got {other:?}"),
            },
            other => panic!("expected DO, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("INTEGER A(\n").unwrap_err();
        assert!(err.span.line >= 1);
        let err = parse("x = = 1\n").unwrap_err();
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn missing_do_terminator_is_an_error() {
        assert!(parse("INTEGER i\nDO 10 i=1,4\ni = i\n").is_err());
    }
}
