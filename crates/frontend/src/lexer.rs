//! Free-form Fortran 90 lexer.
//!
//! Handles `!` comments, `&` continuations (trailing `&`, with optional
//! leading `&` on the continued line), `;` separators, case-insensitive
//! keywords, dot-operators (`.EQ.`, `.AND.`, …) and the three numeric
//! literal forms (integer, real, `d`-exponent double). Statement labels —
//! integers in leading position — are lexed as [`TokenKind::Label`] so the
//! parser can match dusty-deck `DO 10 … 10 CONTINUE` loops.

use std::error::Error;
use std::fmt;

use crate::token::{Span, Token, TokenKind};

/// A lexical error with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Where the offending character sits.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    at_line_start: bool,
    tokens: Vec<Token>,
}

/// Tokenise Fortran 90 source.
///
/// # Errors
///
/// Fails on malformed literals, unknown characters, or unterminated
/// dot-operators.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        at_line_start: true,
        tokens: Vec::new(),
    };
    lx.run()?;
    Ok(lx.tokens)
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        self.at_line_start = matches!(kind, TokenKind::Newline);
        self.tokens.push(Token { kind, span });
    }

    fn run(&mut self) -> Result<(), LexError> {
        while let Some(c) = self.peek() {
            let span = self.span();
            match c {
                b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'!' => {
                    // Comment to end of line.
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'\n' | b';' => {
                    self.bump();
                    // Collapse repeated separators.
                    if !matches!(
                        self.tokens.last().map(|t| &t.kind),
                        Some(TokenKind::Newline) | None
                    ) {
                        self.push(TokenKind::Newline, span);
                    } else {
                        self.at_line_start = true;
                    }
                }
                b'&' => {
                    // Continuation: skip to end of line, swallow the
                    // newline, and any leading '&' on the next line.
                    self.bump();
                    while let Some(c) = self.peek() {
                        match c {
                            b' ' | b'\t' | b'\r' => {
                                self.bump();
                            }
                            b'!' => {
                                while let Some(c2) = self.peek() {
                                    if c2 == b'\n' {
                                        break;
                                    }
                                    self.bump();
                                }
                            }
                            b'\n' => {
                                self.bump();
                                break;
                            }
                            _ => {
                                return Err(LexError {
                                    message: "text after continuation '&'".into(),
                                    span: self.span(),
                                })
                            }
                        }
                    }
                    // Optional leading '&' on the continued line.
                    let mut probe = self.pos;
                    while let Some(&c) = self.src.get(probe) {
                        if c == b' ' || c == b'\t' || c == b'\r' {
                            probe += 1;
                        } else {
                            break;
                        }
                    }
                    if self.src.get(probe) == Some(&b'&') {
                        while self.pos <= probe {
                            self.bump();
                        }
                    }
                }
                b'0'..=b'9' => self.lex_number(span)?,
                b'.' => {
                    // Could be a real literal (.5), a dot-operator, or a
                    // logical literal.
                    if self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                        self.lex_number(span)?;
                    } else {
                        self.lex_dot_operator(span)?;
                    }
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.lex_word(span),
                b'(' => {
                    self.bump();
                    self.push(TokenKind::LParen, span);
                }
                b')' => {
                    self.bump();
                    self.push(TokenKind::RParen, span);
                }
                b',' => {
                    self.bump();
                    self.push(TokenKind::Comma, span);
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b':') {
                        self.bump();
                        self.push(TokenKind::DoubleColon, span);
                    } else {
                        self.push(TokenKind::Colon, span);
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Eq, span);
                    } else {
                        self.push(TokenKind::Assign, span);
                    }
                }
                b'+' => {
                    self.bump();
                    self.push(TokenKind::Plus, span);
                }
                b'-' => {
                    self.bump();
                    self.push(TokenKind::Minus, span);
                }
                b'*' => {
                    self.bump();
                    if self.peek() == Some(b'*') {
                        self.bump();
                        self.push(TokenKind::Power, span);
                    } else {
                        self.push(TokenKind::Star, span);
                    }
                }
                b'/' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Ne, span);
                    } else {
                        self.push(TokenKind::Slash, span);
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Le, span);
                    } else {
                        self.push(TokenKind::Lt, span);
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Ge, span);
                    } else {
                        self.push(TokenKind::Gt, span);
                    }
                }
                other => {
                    return Err(LexError {
                        message: format!("unexpected character '{}'", other as char),
                        span,
                    })
                }
            }
        }
        let span = self.span();
        if !matches!(
            self.tokens.last().map(|t| &t.kind),
            Some(TokenKind::Newline) | None
        ) {
            self.push(TokenKind::Newline, span);
        }
        self.push(TokenKind::Eof, span);
        Ok(())
    }

    fn lex_number(&mut self, span: Span) -> Result<(), LexError> {
        let start = self.pos;
        let leading_statement_position = self.at_line_start;
        let mut is_real = false;
        let mut is_double = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        // Decimal point — but not a dot-operator like `1.eq.2`.
        if self.peek() == Some(b'.') {
            let after = self.peek2();
            let is_dot_op = after.is_some_and(|c| c.is_ascii_alphabetic()) && {
                // `.e` could start `.eq.` (operator) — a digit or
                // end/operator after means a real literal exponent is
                // impossible here anyway; treat alphabetic as operator.
                true
            };
            if !is_dot_op {
                is_real = true;
                self.bump();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        // Exponent.
        if let Some(e) = self.peek() {
            if e == b'e' || e == b'E' || e == b'd' || e == b'D' {
                let mut probe = self.pos + 1;
                if matches!(self.src.get(probe), Some(b'+') | Some(b'-')) {
                    probe += 1;
                }
                if self.src.get(probe).is_some_and(|c| c.is_ascii_digit()) {
                    is_real = true;
                    is_double = e == b'd' || e == b'D';
                    self.bump(); // e/d
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        self.bump();
                    }
                }
            }
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("source is str")
            .to_ascii_lowercase();
        if is_real {
            let normalised = text.replace('d', "e");
            let v: f64 = normalised.parse().map_err(|_| LexError {
                message: format!("malformed real literal '{text}'"),
                span,
            })?;
            let kind = if is_double {
                TokenKind::DoubleLit(v)
            } else {
                TokenKind::RealLit(v)
            };
            self.push(kind, span);
        } else {
            let v: i64 = text.parse().map_err(|_| LexError {
                message: format!("malformed integer literal '{text}'"),
                span,
            })?;
            if leading_statement_position {
                // A bare integer opening a statement is a label.
                let label = u32::try_from(v).map_err(|_| LexError {
                    message: format!("label {v} out of range"),
                    span,
                })?;
                self.push(TokenKind::Label(label), span);
            } else {
                self.push(TokenKind::IntLit(v), span);
            }
        }
        Ok(())
    }

    fn lex_dot_operator(&mut self, span: Span) -> Result<(), LexError> {
        // Consume `.WORD.`
        self.bump(); // '.'
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
            self.bump();
        }
        let word: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("source is str")
            .to_ascii_lowercase();
        if self.peek() != Some(b'.') {
            return Err(LexError {
                message: format!("unterminated dot-operator '.{word}'"),
                span,
            });
        }
        self.bump(); // closing '.'
        let kind = match word.as_str() {
            "eq" => TokenKind::Eq,
            "ne" => TokenKind::Ne,
            "lt" => TokenKind::Lt,
            "le" => TokenKind::Le,
            "gt" => TokenKind::Gt,
            "ge" => TokenKind::Ge,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            "true" => TokenKind::LogicalLit(true),
            "false" => TokenKind::LogicalLit(false),
            other => {
                return Err(LexError {
                    message: format!("unknown dot-operator '.{other}.'"),
                    span,
                })
            }
        };
        self.push(kind, span);
        Ok(())
    }

    fn lex_word(&mut self, span: Span) {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump();
        }
        let word: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("source is str")
            .to_ascii_lowercase();
        let kind = match word.as_str() {
            "program" => TokenKind::KwProgram,
            "end" => TokenKind::KwEnd,
            "integer" => TokenKind::KwInteger,
            "real" => TokenKind::KwReal,
            "double" => TokenKind::KwDouble,
            "precision" => TokenKind::KwPrecision,
            "logical" => TokenKind::KwLogical,
            "dimension" => TokenKind::KwDimension,
            "parameter" => TokenKind::KwParameter,
            "array" => TokenKind::KwArray,
            "do" => TokenKind::KwDo,
            "continue" => TokenKind::KwContinue,
            "forall" => TokenKind::KwForall,
            "where" => TokenKind::KwWhere,
            "elsewhere" => TokenKind::KwElsewhere,
            "if" => TokenKind::KwIf,
            "then" => TokenKind::KwThen,
            "else" => TokenKind::KwElse,
            "endif" => TokenKind::KwEndif,
            "enddo" => TokenKind::KwEnddo,
            "endwhere" => TokenKind::KwEndwhere,
            "while" => TokenKind::KwWhile,
            "subroutine" => TokenKind::KwSubroutine,
            "call" => TokenKind::KwCall,
            _ => TokenKind::Ident(word),
        };
        self.push(kind, span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("Program End INTEGER"),
            vec![KwProgram, KwEnd, KwInteger, Newline, Eof]
        );
    }

    #[test]
    fn identifiers_lowercase() {
        assert_eq!(
            kinds("MyVar x_1"),
            vec![Ident("myvar".into()), Ident("x_1".into()), Newline, Eof]
        );
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(
            kinds("x = 42 + 1.5 + 2e3 + 1.5d0 + .25"),
            vec![
                Ident("x".into()),
                Assign,
                IntLit(42),
                Plus,
                RealLit(1.5),
                Plus,
                RealLit(2000.0),
                Plus,
                DoubleLit(1.5),
                Plus,
                RealLit(0.25),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn leading_integer_is_a_label() {
        assert_eq!(
            kinds("10 continue"),
            vec![Label(10), KwContinue, Newline, Eof]
        );
        // But not mid-statement.
        assert_eq!(
            kinds("x = 10"),
            vec![Ident("x".into()), Assign, IntLit(10), Newline, Eof]
        );
    }

    #[test]
    fn dot_operators_and_relationals() {
        assert_eq!(
            kinds("a .eq. b == c .AND. d"),
            vec![
                Ident("a".into()),
                Eq,
                Ident("b".into()),
                Eq,
                Ident("c".into()),
                And,
                Ident("d".into()),
                Newline,
                Eof
            ]
        );
        assert_eq!(
            kinds("a /= b"),
            vec![Ident("a".into()), Ne, Ident("b".into()), Newline, Eof]
        );
    }

    #[test]
    fn real_vs_dot_operator_ambiguity() {
        // `1.eq.2` must lex as 1 .eq. 2, not real 1. followed by garbage.
        assert_eq!(
            kinds("x = 1.eq.2"),
            vec![
                Ident("x".into()),
                Assign,
                IntLit(1),
                Eq,
                IntLit(2),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn logical_literals() {
        assert_eq!(
            kinds("p = .true. .or. .false."),
            vec![
                Ident("p".into()),
                Assign,
                LogicalLit(true),
                Or,
                LogicalLit(false),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x = 1 ! set x\ny = 2"),
            vec![
                Ident("x".into()),
                Assign,
                IntLit(1),
                Newline,
                Ident("y".into()),
                Assign,
                IntLit(2),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn continuation_joins_lines() {
        assert_eq!(
            kinds("x = 1 + &\n    2"),
            vec![
                Ident("x".into()),
                Assign,
                IntLit(1),
                Plus,
                IntLit(2),
                Newline,
                Eof
            ]
        );
        // With leading '&' on the continued line.
        assert_eq!(
            kinds("x = 1 + &\n  & 2"),
            vec![
                Ident("x".into()),
                Assign,
                IntLit(1),
                Plus,
                IntLit(2),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn semicolons_separate_statements() {
        assert_eq!(
            kinds("x = 1; y = 2"),
            vec![
                Ident("x".into()),
                Assign,
                IntLit(1),
                Newline,
                Ident("y".into()),
                Assign,
                IntLit(2),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn blank_lines_collapse() {
        assert_eq!(kinds("x = 1\n\n\ny = 2"), kinds("x = 1\ny = 2"));
    }

    #[test]
    fn double_colon_and_sections() {
        assert_eq!(
            kinds("a(1:32:2,:)"),
            vec![
                Ident("a".into()),
                LParen,
                IntLit(1),
                Colon,
                IntLit(32),
                Colon,
                IntLit(2),
                Comma,
                Colon,
                RParen,
                Newline,
                Eof
            ]
        );
        assert_eq!(
            kinds("integer :: a"),
            vec![KwInteger, DoubleColon, Ident("a".into()), Newline, Eof]
        );
    }

    #[test]
    fn power_operator() {
        assert_eq!(
            kinds("k**2"),
            vec![Ident("k".into()), Power, IntLit(2), Newline, Eof]
        );
    }

    #[test]
    fn unknown_character_is_an_error() {
        assert!(lex("x = @").is_err());
    }

    #[test]
    fn unknown_dot_operator_is_an_error() {
        assert!(lex("a .xyz. b").is_err());
    }
}
