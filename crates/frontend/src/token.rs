//! Tokens and source spans.

use std::fmt;

/// A half-open source region, used in diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds of the Fortran 90 subset.
///
/// Keywords are recognised case-insensitively by the lexer and carried as
/// dedicated kinds; identifiers are lower-cased (Fortran names are
/// case-insensitive).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or non-reserved keyword, lower-cased.
    Ident(String),
    /// An integer literal.
    IntLit(i64),
    /// A single-precision real literal (`1.5`, `1.5e3`).
    RealLit(f64),
    /// A double-precision real literal (`1.5d0`).
    DoubleLit(f64),
    /// `.true.` or `.false.`.
    LogicalLit(bool),
    /// A statement label at the start of a line (`10 CONTINUE`).
    Label(u32),

    // Keywords
    /// `PROGRAM`.
    KwProgram,
    /// `END`.
    KwEnd,
    /// `INTEGER`.
    KwInteger,
    /// `REAL`.
    KwReal,
    /// `DOUBLE` (of `DOUBLE PRECISION`).
    KwDouble,
    /// `PRECISION`.
    KwPrecision,
    /// `LOGICAL`.
    KwLogical,
    /// `DIMENSION`.
    KwDimension,
    /// `PARAMETER`.
    KwParameter,
    /// `ARRAY` (CM Fortran style `INTEGER, ARRAY(32,32) :: A`).
    KwArray,
    /// `DO`.
    KwDo,
    /// `CONTINUE`.
    KwContinue,
    /// `FORALL`.
    KwForall,
    /// `WHERE`.
    KwWhere,
    /// `ELSEWHERE`.
    KwElsewhere,
    /// `IF`.
    KwIf,
    /// `THEN`.
    KwThen,
    /// `ELSE`.
    KwElse,
    /// `ENDIF` (also `END IF` via `KwEnd KwIf`).
    KwEndif,
    /// `ENDDO`.
    KwEnddo,
    /// `ENDWHERE`.
    KwEndwhere,
    /// `WHILE`.
    KwWhile,
    /// `SUBROUTINE`.
    KwSubroutine,
    /// `CALL`.
    KwCall,

    // Punctuation and operators
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `:`.
    Colon,
    /// `::`.
    DoubleColon,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `**`.
    Power,
    /// `/`.
    Slash,
    /// `==` or `.EQ.`.
    Eq,
    /// `/=` or `.NE.`.
    Ne,
    /// `<` or `.LT.`.
    Lt,
    /// `<=` or `.LE.`.
    Le,
    /// `>` or `.GT.`.
    Gt,
    /// `>=` or `.GE.`.
    Ge,
    /// `.AND.`.
    And,
    /// `.OR.`.
    Or,
    /// `.NOT.`.
    Not,

    /// End of statement (newline or `;`).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Ident(s) => write!(f, "identifier '{s}'"),
            IntLit(v) => write!(f, "integer {v}"),
            RealLit(v) => write!(f, "real {v}"),
            DoubleLit(v) => write!(f, "double {v}"),
            LogicalLit(v) => write!(f, "logical {v}"),
            Label(l) => write!(f, "label {l}"),
            KwProgram => f.write_str("'PROGRAM'"),
            KwEnd => f.write_str("'END'"),
            KwInteger => f.write_str("'INTEGER'"),
            KwReal => f.write_str("'REAL'"),
            KwDouble => f.write_str("'DOUBLE'"),
            KwPrecision => f.write_str("'PRECISION'"),
            KwLogical => f.write_str("'LOGICAL'"),
            KwDimension => f.write_str("'DIMENSION'"),
            KwParameter => f.write_str("'PARAMETER'"),
            KwArray => f.write_str("'ARRAY'"),
            KwDo => f.write_str("'DO'"),
            KwContinue => f.write_str("'CONTINUE'"),
            KwForall => f.write_str("'FORALL'"),
            KwWhere => f.write_str("'WHERE'"),
            KwElsewhere => f.write_str("'ELSEWHERE'"),
            KwIf => f.write_str("'IF'"),
            KwThen => f.write_str("'THEN'"),
            KwElse => f.write_str("'ELSE'"),
            KwEndif => f.write_str("'ENDIF'"),
            KwEnddo => f.write_str("'ENDDO'"),
            KwEndwhere => f.write_str("'ENDWHERE'"),
            KwWhile => f.write_str("'WHILE'"),
            KwSubroutine => f.write_str("'SUBROUTINE'"),
            KwCall => f.write_str("'CALL'"),
            LParen => f.write_str("'('"),
            RParen => f.write_str("')'"),
            Comma => f.write_str("','"),
            Colon => f.write_str("':'"),
            DoubleColon => f.write_str("'::'"),
            Assign => f.write_str("'='"),
            Plus => f.write_str("'+'"),
            Minus => f.write_str("'-'"),
            Star => f.write_str("'*'"),
            Power => f.write_str("'**'"),
            Slash => f.write_str("'/'"),
            Eq => f.write_str("'=='"),
            Ne => f.write_str("'/='"),
            Lt => f.write_str("'<'"),
            Le => f.write_str("'<='"),
            Gt => f.write_str("'>'"),
            Ge => f.write_str("'>='"),
            And => f.write_str("'.AND.'"),
            Or => f.write_str("'.OR.'"),
            Not => f.write_str("'.NOT.'"),
            Newline => f.write_str("end of statement"),
            Eof => f.write_str("end of input"),
        }
    }
}

/// A lexed token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}
