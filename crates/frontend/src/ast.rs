//! Abstract syntax for the Fortran 90 subset.

use std::fmt;

use crate::token::Span;

/// A parsed source file: one main program plus any subroutines.
///
/// The paper notes that the CMF compiler "cannot be used for developing
/// scientific library functions"; supporting `SUBROUTINE` units (inlined
/// at lowering time — see `f90y-lowering`) is this reproduction's answer
/// to that motivation.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// The main program unit.
    pub program: ProgramUnit,
    /// Subroutine units, in source order.
    pub subroutines: Vec<Subroutine>,
}

/// A `SUBROUTINE` unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Subroutine {
    /// Lower-cased name.
    pub name: String,
    /// Dummy-argument names, in order.
    pub params: Vec<String>,
    /// Type declarations (covering dummies and locals).
    pub decls: Vec<TypeDecl>,
    /// Executable statements.
    pub stmts: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A parsed program unit (main program).
///
/// The paper's prototype compiles "each complete procedural unit or main
/// program" to a single imperative action; this reproduction supports main
/// programs (procedures are listed as future work in DESIGN.md).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramUnit {
    /// `PROGRAM name`, when present.
    pub name: Option<String>,
    /// Type declarations, in source order.
    pub decls: Vec<TypeDecl>,
    /// Executable statements, in source order.
    pub stmts: Vec<Stmt>,
}

/// The intrinsic base types of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseType {
    /// `INTEGER`.
    Integer,
    /// `REAL` (single precision).
    Real,
    /// `DOUBLE PRECISION`.
    DoublePrecision,
    /// `LOGICAL`.
    Logical,
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BaseType::Integer => "INTEGER",
            BaseType::Real => "REAL",
            BaseType::DoublePrecision => "DOUBLE PRECISION",
            BaseType::Logical => "LOGICAL",
        };
        f.write_str(s)
    }
}

/// One axis of an array declarator: `lo:hi` or just `extent` (lower
/// bound 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimSpec {
    /// Inclusive lower bound (1 when omitted).
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl DimSpec {
    /// Number of elements along the axis.
    pub fn extent(&self) -> i64 {
        (self.hi - self.lo + 1).max(0)
    }
}

/// One declared entity: a name with optional per-entity dimensions and
/// optional initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Lower-cased name.
    pub name: String,
    /// Per-entity array spec (`K(128,64)`), if any.
    pub dims: Option<Vec<DimSpec>>,
    /// `= expr` initializer, if any.
    pub init: Option<Expr>,
}

/// One type declaration statement.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDecl {
    /// The base type.
    pub base: BaseType,
    /// A `DIMENSION(...)`/`ARRAY(...)` attribute applying to all entities
    /// without their own spec.
    pub dimension: Option<Vec<DimSpec>>,
    /// `PARAMETER` attribute: entities are named constants.
    pub parameter: bool,
    /// Declared entities.
    pub entities: Vec<Entity>,
    /// Source location.
    pub span: Span,
}

/// One element of a subscript list: an index or a section triplet.
#[derive(Debug, Clone, PartialEq)]
pub enum Subscript {
    /// A single index expression.
    Index(Expr),
    /// A triplet `lo:hi:step`; omitted parts are `None` (`:` is all
    /// three `None`).
    Triplet {
        /// Lower bound, defaulting to the array's declared lower bound.
        lo: Option<Expr>,
        /// Upper bound, defaulting to the declared upper bound.
        hi: Option<Expr>,
        /// Stride, defaulting to 1.
        step: Option<Expr>,
    },
}

impl Subscript {
    /// The full-axis section `:`.
    pub fn all() -> Subscript {
        Subscript::Triplet {
            lo: None,
            hi: None,
            step: None,
        }
    }

    /// `true` for a triplet subscript.
    pub fn is_triplet(&self) -> bool {
        matches!(self, Subscript::Triplet { .. })
    }
}

/// A data reference: `name` or `name(subscripts)`.
///
/// Until semantic analysis, `name(args)` is syntactically ambiguous
/// between an array element/section and an intrinsic call; the parser
/// produces a [`DataRef`] and lowering disambiguates against the symbol
/// table (classic Fortran).
#[derive(Debug, Clone, PartialEq)]
pub struct DataRef {
    /// Lower-cased name.
    pub name: String,
    /// Subscript list, when parenthesised.
    pub subs: Option<Vec<Subscript>>,
    /// Source location.
    pub span: Span,
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOpAst {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
    /// `==`/`.EQ.`
    Eq,
    /// `/=`/`.NE.`
    Ne,
    /// `<`/`.LT.`
    Lt,
    /// `<=`/`.LE.`
    Le,
    /// `>`/`.GT.`
    Gt,
    /// `>=`/`.GE.`
    Ge,
    /// `.AND.`
    And,
    /// `.OR.`
    Or,
}

/// Unary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOpAst {
    /// Unary minus.
    Neg,
    /// Unary plus (no-op, kept for fidelity).
    Plus,
    /// `.NOT.`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Single-precision literal.
    Real(f64),
    /// Double-precision literal.
    Double(f64),
    /// Logical literal.
    Logical(bool),
    /// A data reference (variable, array element, section, or — pending
    /// semantic disambiguation — an intrinsic call).
    Ref(DataRef),
    /// Unary operation.
    Unary(UnOpAst, Box<Expr>),
    /// Binary operation.
    Binary(BinOpAst, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// The expression as a compile-time integer, when it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Unary(UnOpAst::Neg, e) => e.as_int().map(|v| -v),
            Expr::Unary(UnOpAst::Plus, e) => e.as_int(),
            _ => None,
        }
    }
}

/// Executable statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = rhs` — scalar, whole-array or section assignment.
    Assign {
        /// Destination reference.
        lhs: DataRef,
        /// Source expression.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// A `DO` loop (both `do`…`end do` and labelled forms parse to
    /// this).
    Do {
        /// Loop variable (lower-cased).
        var: String,
        /// Initial value.
        lo: Expr,
        /// Final value.
        hi: Expr,
        /// Stride (1 when omitted).
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `DO WHILE (cond)` … `END DO`.
    DoWhile {
        /// Continuation condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `FORALL (i=1:32, j=1:32) A(i,j) = expr`.
    Forall {
        /// Index triplets `(name, lo, hi, step)`.
        triplets: Vec<(String, Expr, Expr, Option<Expr>)>,
        /// The controlled assignment.
        assign: Box<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `WHERE (mask) …` with optional `ELSEWHERE`.
    Where {
        /// The controlling mask expression.
        mask: Expr,
        /// Statements under the mask.
        then_body: Vec<Stmt>,
        /// Statements under the complement.
        else_body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// Block `IF`/`ELSE IF`/`ELSE`.
    If {
        /// `(condition, body)` arms, first the `IF`, then `ELSE IF`s.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// The `ELSE` body.
        else_body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `CONTINUE` (a no-op; loop-closing labels are consumed by `DO`
    /// parsing).
    Continue {
        /// Source location.
        span: Span,
    },
    /// `CALL name(args)`.
    Call {
        /// Lower-cased subroutine name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Stmt {
    /// The source location of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::Do { span, .. }
            | Stmt::DoWhile { span, .. }
            | Stmt::Forall { span, .. }
            | Stmt::Where { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::Continue { span } => *span,
        }
    }
}
