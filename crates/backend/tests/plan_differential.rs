//! The static machine-call profile must agree with a real CM/2 run on
//! every counter the machine keeps: the plan is a prediction of the
//! exact call sequence, not an estimate.

use f90y_backend::fe::HostExecutor;
use f90y_backend::plan::{self, StaticProfile};
use f90y_cm2::{Cm2, Cm2Config};

fn compile(src: &str) -> f90y_backend::CompiledProgram {
    let unit = f90y_frontend::parse(src).expect("parses");
    let nir = f90y_lowering::lower(&unit).expect("lowers");
    let optimized = f90y_transform::optimize(&nir).expect("optimizes");
    f90y_backend::compile(&optimized).expect("compiles")
}

/// Statically profile `src`, run it on the CM/2, and require every
/// machine counter to match the prediction.
fn reconcile(src: &str) -> StaticProfile {
    let compiled = compile(src);
    let profile = plan::profile(&compiled).expect("static profile");

    let mut cm = Cm2::new(Cm2Config::slicewise(16));
    HostExecutor::new(&mut cm).run(&compiled).expect("executes");
    let stats = cm.stats();

    assert_eq!(
        profile.dispatch_calls() as u64,
        stats.dispatches,
        "dispatch count\nsource:\n{src}"
    );
    assert_eq!(
        (profile.shift_calls() + profile.router_moves) as u64,
        stats.comm_calls,
        "comm call count\nsource:\n{src}"
    );
    assert_eq!(
        profile.reduces as u64, stats.reductions,
        "reduction count\nsource:\n{src}"
    );
    profile
}

#[test]
fn whole_array_compute_has_no_comm() {
    let p = reconcile("INTEGER K(32,16), L(32)\nL = 6\nK = 2*K + 5\n");
    assert!(p.shifts.is_empty());
    assert_eq!(p.router_moves, 0);
}

#[test]
fn cshift_chain_is_counted_with_geometry() {
    let p = reconcile("REAL, ARRAY(16,16) :: A, B\nB = CSHIFT(A, 1, 1) + CSHIFT(A, -1, 2)\n");
    assert_eq!(p.shift_calls(), 2);
    let mut axes: Vec<(usize, i64)> = p.shifts.iter().map(|s| (s.axis, s.shift)).collect();
    axes.sort_unstable();
    assert_eq!(axes, vec![(0, 1), (1, -1)]);
    assert!(p.shifts.iter().all(|s| s.dims == vec![16, 16]));
}

#[test]
fn eoshift_and_reduction_inside_do() {
    let p = reconcile(
        "
        REAL, ARRAY(8,8) :: A, B
        REAL S
        INTEGER I
        DO I = 1, 3
          B = EOSHIFT(A, 1, 1)
          S = S + SUM(A)
        END DO
        ",
    );
    assert_eq!(p.shift_calls(), 3);
    assert!(p.shifts.iter().all(|s| s.eoshift && s.shift == 1));
    assert_eq!(p.reduces, 3);
}

#[test]
fn masked_where_with_sections_reconciles() {
    // Sections and WHERE masks compile to dispatched node blocks, not
    // router traffic; the profile must agree either way.
    let p = reconcile(
        "
        INTEGER, ARRAY(16,16) :: A, B
        INTEGER N
        N = 7
        A(1:16:2, :) = 3
        WHERE (B > N) A = A + 1
        ",
    );
    assert!(p.dispatch_calls() >= 1);
}

#[test]
fn transpose_rides_the_router() {
    // One move for TRANSPOSE itself, one for the merging host move.
    let p = reconcile("REAL, ARRAY(8,4) :: A\nREAL, ARRAY(4,8) :: B\nB = TRANSPOSE(A)\n");
    assert_eq!(p.router_moves, 2);
}

#[test]
fn serial_subscripts_count_element_traffic() {
    let compiled = compile(
        "
        INTEGER, ARRAY(8) :: A
        INTEGER I
        DO I = 1, 8
          A(I) = A(I) + I
        END DO
        ",
    );
    let p = plan::profile(&compiled).expect("static profile");
    assert_eq!(p.host_elem_reads, 8);
    assert_eq!(p.host_elem_writes, 8);
}

#[test]
fn data_dependent_branch_is_an_honest_error() {
    // The IF condition reads machine data, so no exact static plan
    // exists; the profiler must say so rather than guess.
    let compiled = compile(
        "
        REAL, ARRAY(8) :: A, B
        IF (SUM(A) > 0.0) THEN
          B = CSHIFT(A, 1, 1)
        END IF
        ",
    );
    match plan::profile(&compiled) {
        Err(plan::PlanError::DataDependent(_)) => {}
        other => panic!("expected DataDependent, got {other:?}"),
    }
}
