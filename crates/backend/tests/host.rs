//! Focused tests of the FE/NIR host executor: serial loops, element
//! moves, reductions, dynamic communication arguments, router-path
//! moves, and error reporting.

use f90y_backend::fe::HostExecutor;
use f90y_backend::CompiledProgram;
use f90y_cm2::{Cm2, Cm2Config};

fn compile(src: &str) -> CompiledProgram {
    let unit = f90y_frontend::parse(src).expect("parses");
    let nir = f90y_lowering::lower(&unit).expect("lowers");
    let optimized = f90y_transform::optimize(&nir).expect("optimizes");
    f90y_backend::compile(&optimized).expect("compiles")
}

fn run(src: &str) -> (f90y_backend::fe::HostRun, f90y_cm2::MachineStats) {
    let compiled = compile(src);
    let mut cm = Cm2::new(Cm2Config::slicewise(16));
    let run = HostExecutor::new(&mut cm).run(&compiled).expect("executes");
    (run, cm.stats())
}

#[test]
fn serial_do_with_element_moves_charges_host_and_wire() {
    let (r, stats) = run("
        INTEGER a(8), b(8)
        FORALL (i=1:8) a(i) = i*i
        DO 10 k=1,8
           b(k) = a(k) + 1
  10    CONTINUE
        ");
    let b = r.final_array("b").unwrap();
    let expect: Vec<f64> = (1..=8).map(|i| (i * i + 1) as f64).collect();
    assert_eq!(b, expect);
    assert!(stats.host_cycles > 0, "element moves run on the host");
    assert!(
        stats.comm_cycles > 0,
        "host element access crosses the wire"
    );
}

#[test]
fn dynamic_shift_amounts_evaluate_on_the_host() {
    // CSHIFT with a shift that depends on a host scalar.
    let (r, _) = run("
        REAL v(8), w(8)
        INTEGER s
        FORALL (i=1:8) v(i) = i
        s = 2
        w = CSHIFT(v, s, 1)
        ");
    let w = r.final_array("w").unwrap();
    assert_eq!(w, vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 1.0, 2.0]);
}

#[test]
fn shift_depending_on_do_index_runs_each_iteration() {
    let (r, _) = run("
        REAL v(8), acc(8)
        FORALL (i=1:8) v(i) = i
        acc = 0.0
        DO k = 1, 3
          acc = acc + CSHIFT(v, k, 1)
        END DO
        ");
    let acc = r.final_array("acc").unwrap();
    // acc(i) = v(i+1)+v(i+2)+v(i+3) cyclically.
    for (i, &got) in acc.iter().enumerate() {
        let expect: f64 = (1..=3).map(|k| ((i + k) % 8 + 1) as f64).sum();
        assert_eq!(got, expect, "acc({})", i + 1);
    }
}

#[test]
fn reductions_of_expressions_materialise_temporaries() {
    let (r, stats) = run("
        REAL a(10), b(10)
        REAL s
        FORALL (i=1:10) a(i) = i
        FORALL (i=1:10) b(i) = 2*i
        s = SUM(a*b)
        ");
    let s = r.final_scalar("s").unwrap();
    let expect: f64 = (1..=10).map(|i| (i * 2 * i) as f64).sum();
    assert_eq!(s, expect);
    assert!(stats.reductions >= 1);
}

#[test]
fn misaligned_section_copy_takes_the_router() {
    let (r, stats) = run("
        INTEGER l(16)
        FORALL (i=1:16) l(i) = i
        l(1:4) = l(9:12)
        ");
    let l = r.final_array("l").unwrap();
    assert_eq!(&l[..4], &[9.0, 10.0, 11.0, 12.0]);
    let tail: Vec<f64> = (5..=16).map(|i| i as f64).collect();
    assert_eq!(&l[4..], &tail[..]);
    assert!(stats.comm_calls >= 1, "section copy is communication");
}

#[test]
fn host_while_loops_and_scalar_state() {
    let (r, _) = run("
        INTEGER n, total
        n = 1
        total = 0
        DO WHILE (n <= 10)
          total = total + n
          n = n + 1
        END DO
        ");
    assert_eq!(r.final_scalar("total").unwrap(), 55.0);
    assert_eq!(r.final_scalar("n").unwrap(), 11.0);
}

#[test]
fn host_if_branches_on_machine_reductions() {
    let (r, _) = run("
        REAL a(8)
        INTEGER flag
        FORALL (i=1:8) a(i) = i
        IF (MAXVAL(a) > 7.5) THEN
          flag = 1
        ELSE
          flag = 0
        END IF
        ");
    assert_eq!(r.final_scalar("flag").unwrap(), 1.0);
}

#[test]
fn masked_element_move_under_scalar_condition() {
    let (r, _) = run("
        INTEGER a(6)
        FORALL (i=1:6) a(i) = i
        DO 10 k=1,6
           IF (a(k) > 3) a(k) = 0
  10    CONTINUE
        ");
    assert_eq!(
        r.final_array("a").unwrap(),
        vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]
    );
}

#[test]
fn finals_report_missing_names_as_errors() {
    let (r, _) = run("REAL a(4)\na = 1.0\n");
    assert!(r.final_array("a").is_ok());
    assert!(r.final_array("ghost").is_err());
    assert!(r.final_scalar("a").is_err(), "a is an array, not a scalar");
}

#[test]
fn integer_division_on_host_truncates_like_the_evaluator() {
    let (r, _) = run("
        INTEGER q
        INTEGER a(4)
        FORALL (i=1:4) a(i) = 10*i
        q = a(3) / 7
        ");
    assert_eq!(r.final_scalar("q").unwrap(), 4.0); // 30/7 = 4
}

#[test]
fn stats_isolate_per_run_when_machine_is_reused() {
    let compiled = compile("REAL a(64)\na = 1.5\n");
    let mut cm = Cm2::new(Cm2Config::slicewise(16));
    HostExecutor::new(&mut cm).run(&compiled).unwrap();
    let first = cm.stats().node_cycles();
    HostExecutor::new(&mut cm).run(&compiled).unwrap();
    let second = cm.stats().node_cycles();
    assert!(
        second > first,
        "stats accumulate across runs on one machine"
    );
    assert_eq!(second - first, first, "equal work charges equal cycles");
}
