//! End-to-end translation validation: Fortran 90 source through the full
//! Fortran-90-Y pipeline onto the simulated CM/2, with every result
//! compared bit-for-bit structure against the NIR reference evaluator.

use f90y_backend::fe::HostExecutor;
use f90y_cm2::{Cm2, Cm2Config};
use f90y_nir::eval::Evaluator;

/// Compile and run `src` both ways; compare every named array/scalar.
fn validate(src: &str, arrays: &[&str], scalars: &[&str]) {
    // Ground truth.
    let unit = f90y_frontend::parse(src).expect("parses");
    let nir = f90y_lowering::lower(&unit).expect("lowers");
    let mut ev = Evaluator::new();
    ev.run(&nir).expect("evaluates");

    // The compiled machine run.
    let optimized = f90y_transform::optimize(&nir).expect("optimizes");
    // The optimized program must still mean the same.
    let mut ev_opt = Evaluator::new();
    ev_opt.run(&optimized).expect("optimized program evaluates");
    for name in arrays {
        assert_eq!(
            ev.final_array_f64(name).unwrap(),
            ev_opt.final_array_f64(name).unwrap(),
            "{name}: transform changed semantics"
        );
    }

    let compiled = f90y_backend::compile(&optimized).expect("compiles");
    let mut cm = Cm2::new(Cm2Config::slicewise(16));
    let run = HostExecutor::new(&mut cm).run(&compiled).expect("executes");

    for name in arrays {
        let expect = ev.final_array_f64(name).unwrap();
        let got = run.final_array(name).unwrap();
        assert_eq!(expect.len(), got.len(), "{name}: length");
        for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
            assert!(
                (e - g).abs() <= 1e-9 * e.abs().max(1.0),
                "{name}[{i}]: evaluator {e} vs machine {g}\nsource:\n{src}"
            );
        }
    }
    for name in scalars {
        let expect = ev.final_scalar_f64(name).unwrap();
        let got = run.final_scalar(name).unwrap();
        assert!(
            (expect - got).abs() <= 1e-9 * expect.abs().max(1.0),
            "{name}: evaluator {expect} vs machine {got}"
        );
    }
}

#[test]
fn fig8_whole_array_program() {
    validate(
        "INTEGER K(32,16), L(32)\nL = 6\nK = 2*K + 5\n",
        &["k", "l"],
        &[],
    );
}

#[test]
fn fig7_forall_coordinates() {
    validate(
        "INTEGER, ARRAY(16,16) :: A\nFORALL (i=1:16, j=1:16) A(i,j) = i+j\n",
        &["a"],
        &[],
    );
}

#[test]
fn fig10_strided_masked_blocking() {
    validate(
        "
        INTEGER, ARRAY(16,16) :: A, B
        INTEGER, ARRAY(16) :: C
        INTEGER N
        N = 7
        A = N
        B(1:15:2,:) = A(1:15:2,:)
        C = N+1
        B(2:16:2,:) = 5*A(2:16:2,:)
        ",
        &["a", "b", "c"],
        &[],
    );
}

#[test]
fn fig9_diagonal_gather_with_serial_do() {
    validate(
        "
        INTEGER, ARRAY(8,8) :: A, B
        INTEGER, ARRAY(8) :: C
        FORALL (i=1:8, j=1:8) B(i,j) = 10*i + j
        FORALL (i=1:8, j=1:8) A(i,j) = B(i,j) + j
        DO 20 I=1,8
           C(I) = A(I,I)
  20    CONTINUE
        B = A
        ",
        &["a", "b", "c"],
        &[],
    );
}

#[test]
fn cshift_communication() {
    validate(
        "
        REAL v(16), z(16)
        FORALL (i=1:16) v(i) = i*i
        z = v - CSHIFT(v, DIM=1, SHIFT=-1)
        ",
        &["v", "z"],
        &[],
    );
}

#[test]
fn swe_excerpt_fig12() {
    validate(
        "
        REAL u(8,8), v(8,8), p(8,8), z(8,8)
        REAL fsdx, fsdy
        fsdx = 4.0
        fsdy = 5.0
        FORALL (i=1:8, j=1:8) u(i,j) = i + 2*j
        FORALL (i=1:8, j=1:8) v(i,j) = 3*i + j
        FORALL (i=1:8, j=1:8) p(i,j) = 100 + i + j
        z = (fsdx*(v - CSHIFT(v, DIM=1, SHIFT=-1)) - fsdy*(u - CSHIFT(u, DIM=2, SHIFT=-1))) &
            / (p + CSHIFT(p, DIM=1, SHIFT=-1))
        ",
        &["u", "v", "p", "z"],
        &["fsdx", "fsdy"],
    );
}

#[test]
fn time_loop_with_communication_inside() {
    validate(
        "
        REAL v(16), t(16)
        FORALL (i=1:16) v(i) = i
        DO step = 1, 5
          t = CSHIFT(v, 1, 1)
          v = v + t
        END DO
        ",
        &["v", "t"],
        &[],
    );
}

#[test]
fn where_elsewhere_masked() {
    validate(
        "
        REAL A(16), B(16)
        FORALL (i=1:16) A(i) = i - 8
        WHERE (A > 0.0)
          B = A
        ELSEWHERE
          B = -A
        END WHERE
        ",
        &["a", "b"],
        &[],
    );
}

#[test]
fn reductions_to_host_scalars() {
    validate(
        "
        REAL a(12)
        REAL s, mx
        FORALL (i=1:12) a(i) = i
        s = SUM(a)
        mx = MAXVAL(a)
        ",
        &["a"],
        &["s", "mx"],
    );
}

#[test]
fn misaligned_section_copy() {
    validate(
        "
        INTEGER L(128)
        FORALL (i=1:128) L(i) = i
        L(32:64) = L(96:128)
        ",
        &["l"],
        &[],
    );
}

#[test]
fn scalar_control_flow_on_host() {
    validate(
        "
        INTEGER x, y
        REAL a(8)
        x = 3
        IF (x > 2) THEN
          a = 1.5
          y = 10
        ELSE
          a = 2.5
          y = 0
        END IF
        ",
        &["a"],
        &["x", "y"],
    );
}

#[test]
fn intrinsic_functions_in_blocks() {
    validate(
        "
        REAL a(16), b(16)
        FORALL (i=1:16) a(i) = i
        b = SQRT(a) + SIN(a)*COS(a) + ABS(-a)
        ",
        &["a", "b"],
        &[],
    );
}

#[test]
fn integer_arithmetic_semantics() {
    validate(
        "
        INTEGER k(16), m(16)
        FORALL (i=1:16) k(i) = i
        m = k/3 + MOD(k, 4) + MIN(k, 7) + MAX(k, 3)
        ",
        &["k", "m"],
        &[],
    );
}

#[test]
fn power_operators() {
    validate(
        "
        REAL a(8), b(8)
        FORALL (i=1:8) a(i) = i
        b = a**2 + a**3
        ",
        &["a", "b"],
        &[],
    );
}

#[test]
fn eoshift_boundary() {
    validate(
        "
        REAL v(12), w(12)
        FORALL (i=1:12) v(i) = i
        w = EOSHIFT(v, 2, 1)
        ",
        &["v", "w"],
        &[],
    );
}

#[test]
fn machine_size_does_not_change_results() {
    let src = "
        REAL v(32), t(32)
        FORALL (i=1:32) v(i) = i
        DO step = 1, 3
          t = CSHIFT(v, 1, 1)
          v = v + 0.5*t
        END DO
    ";
    let unit = f90y_frontend::parse(src).unwrap();
    let nir = f90y_lowering::lower(&unit).unwrap();
    let optimized = f90y_transform::optimize(&nir).unwrap();
    let compiled = f90y_backend::compile(&optimized).unwrap();
    let mut results = Vec::new();
    for nodes in [1, 4, 64, 2048] {
        let mut cm = Cm2::new(Cm2Config::slicewise(nodes));
        let run = HostExecutor::new(&mut cm).run(&compiled).unwrap();
        results.push(run.final_array("v").unwrap());
    }
    for w in results.windows(2) {
        assert_eq!(w[0], w[1], "results must not depend on machine size");
    }
}

#[test]
fn blocking_reduces_dispatches() {
    // Two programs with identical semantics; the blocked one should
    // dispatch fewer PEAC routines.
    let src = "
        REAL a(64), b(64), c(64), d(64)
        a = 1.0
        b = 2.0
        c = a + b
        d = a * b + c
    ";
    let unit = f90y_frontend::parse(src).unwrap();
    let nir = f90y_lowering::lower(&unit).unwrap();

    let optimized = f90y_transform::optimize(&nir).unwrap();
    let blocked = f90y_backend::compile(&optimized).unwrap();
    let unblocked = f90y_backend::compile(&nir).unwrap();
    assert!(
        blocked.blocks.len() < unblocked.blocks.len(),
        "blocking should fuse: {} vs {}",
        blocked.blocks.len(),
        unblocked.blocks.len()
    );

    // And the blocked program must pay less dispatch overhead.
    let mut cm_b = Cm2::new(Cm2Config::slicewise(16));
    HostExecutor::new(&mut cm_b).run(&blocked).unwrap();
    let mut cm_u = Cm2::new(Cm2Config::slicewise(16));
    HostExecutor::new(&mut cm_u).run(&unblocked).unwrap();
    assert!(
        cm_b.stats().dispatch_overhead_cycles < cm_u.stats().dispatch_overhead_cycles,
        "blocked {} vs unblocked {}",
        cm_b.stats().dispatch_overhead_cycles,
        cm_u.stats().dispatch_overhead_cycles
    );
}
