//! Property tests for the PE compiler: deep random expression trees
//! (far past the 8-register vector file, forcing Belady spills and
//! rematerialisation) must compute exactly what the NIR reference
//! evaluator computes.

use proptest::prelude::*;

use f90y_backend::pe::compile_block;
use f90y_cm2::{Cm2, Cm2Config};
use f90y_nir::build::*;
use f90y_nir::eval::Evaluator;
use f90y_nir::typecheck::Ctx;
use f90y_nir::{BinOp, Imp, MoveClause, Shape, UnOp, Value};

const ARRAYS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
const N: i64 = 8;

fn arb_value(depth: u32) -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        (0usize..ARRAYS.len()).prop_map(|i| ld(ARRAYS[i], everywhere())),
        (-4i32..5).prop_map(int),
        (1u32..5).prop_map(|k| f64c(k as f64 / 2.0)),
        // The coordinate field over the (rank-1) block shape.
        Just(local_under(grid(&[N]), 1)),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| add(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| sub(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| mul(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| bin(BinOp::Max, x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| bin(BinOp::Min, x, y)),
            inner.clone().prop_map(|x| un(UnOp::Neg, x)),
            inner.clone().prop_map(|x| un(UnOp::Abs, x)),
        ]
    })
}

/// Wrap a single-clause block into a whole program the evaluator can
/// run: declare the arrays, initialise them deterministically, run the
/// clause.
fn as_program(clause: &MoveClause, inits: &[Vec<f64>]) -> Imp {
    let mut decls = vec![decl("out", dfield(domain("s"), float64()))];
    let mut stmts = Vec::new();
    for (name, data) in ARRAYS.iter().zip(inits) {
        decls.push(decl(name, dfield(domain("s"), float64())));
        for (ix, v) in data.iter().enumerate() {
            stmts.push(mv(
                avar(name, subscript(vec![int(ix as i32 + 1)])),
                f64c(*v),
            ));
        }
    }
    stmts.push(Imp::Move(vec![clause.clone()]));
    program(with_domain(
        "s",
        interval(1, N),
        with_decl(declset(decls), seq(stmts)),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn deep_expressions_compile_and_match_the_evaluator(
        v in arb_value(6),
        seeds in proptest::collection::vec(-8i32..9, 6),
    ) {
        // Deterministic input data per array.
        let inits: Vec<Vec<f64>> = seeds
            .iter()
            .enumerate()
            .map(|(k, &s)| {
                (0..N)
                    .map(|i| ((i as i32 * (k as i32 + 3) + s) % 7 - 3) as f64 / 2.0)
                    .collect()
            })
            .collect();

        let clause = MoveClause::unmasked(avar("out", everywhere()), v);

        // Reference result.
        let programmed = as_program(&clause, &inits);
        let mut ev = Evaluator::new();
        ev.run(&programmed).expect("reference evaluation");
        let expect = ev.final_array_f64("out").expect("out captured");

        // Compiled result: one block dispatched on a small machine.
        let mut ctx = Ctx::new();
        ctx.bind_var("out".into(), dfield(grid(&[N]), float64()));
        for a in ARRAYS {
            ctx.bind_var(a.into(), dfield(grid(&[N]), float64()));
        }
        let shape = Shape::grid(&[N]);
        let blocks = compile_block("p", &shape, &[clause], &mut ctx)
            .expect("compiles (splitting as needed)");

        let mut cm = Cm2::new(Cm2Config::slicewise(2));
        let mut ids = std::collections::HashMap::new();
        ids.insert("out".to_string(), cm.alloc(&[N as usize]));
        for (name, data) in ARRAYS.iter().zip(&inits) {
            ids.insert((*name).to_string(), cm.alloc_from(&[N as usize], data.clone()));
        }
        for b in blocks {
            let mut args = Vec::new();
            for p in &b.array_params {
                let id = match p {
                    f90y_backend::ArrayParam::Read(v)
                    | f90y_backend::ArrayParam::Write(v) => ids[v.as_str()],
                    f90y_backend::ArrayParam::Coord(dim) => {
                        cm.coordinates(&[N as usize], &[1], *dim - 1)
                    }
                };
                args.push(id);
            }
            prop_assert!(b.scalar_params.is_empty());
            cm.dispatch(&b.routine, &args, &[]).expect("dispatches");
        }
        let got = cm.read(ids["out"]).expect("readable");
        for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
            prop_assert!(
                (e - g).abs() <= 1e-9 * e.abs().max(1.0),
                "out[{i}]: evaluator {e} vs machine {g}"
            );
        }
    }

    /// Every routine the PE compiler emits disassembles to a stable
    /// listing: `parse_listing(listing) |> listing == listing`.
    #[test]
    fn emitted_listings_reassemble(v in arb_value(4)) {
        let clause = MoveClause::unmasked(avar("out", everywhere()), v);
        let mut ctx = Ctx::new();
        ctx.bind_var("out".into(), dfield(grid(&[N]), float64()));
        for a in ARRAYS {
            ctx.bind_var(a.into(), dfield(grid(&[N]), float64()));
        }
        let shape = Shape::grid(&[N]);
        let blocks = compile_block("p", &shape, &[clause], &mut ctx).expect("compiles");
        for b in blocks {
            let text = b.routine.listing();
            let back = f90y_peac::parse_listing(&text).expect("reassembles");
            prop_assert_eq!(back.listing(), text);
        }
    }

    /// Spill-heavy kernels stay exact: a right-nested difference spine
    /// of distinct products keeps all terms live at once, defeating both
    /// the block CSE and multiply-add fusion, so the Belady allocator
    /// must spill past the 8-register file.
    #[test]
    fn spill_pressure_preserves_values(terms in 8usize..16) {
        let mut ctx = Ctx::new();
        for a in ARRAYS {
            ctx.bind_var(a.into(), dfield(grid(&[N]), float64()));
        }
        ctx.bind_var("out".into(), dfield(grid(&[N]), float64()));
        let term: Vec<Value> = (0..terms)
            .map(|k| {
                mul(
                    ld(ARRAYS[k % ARRAYS.len()], everywhere()),
                    f64c(k as f64 / 2.0 + 1.0),
                )
            })
            .collect();
        let mut sum_v = term.last().expect("terms >= 8").clone();
        for t in term[..terms - 1].iter().rev() {
            sum_v = sub(t.clone(), sum_v);
        }
        let clause = MoveClause::unmasked(avar("out", everywhere()), sum_v);
        let inits: Vec<Vec<f64>> = (0..ARRAYS.len())
            .map(|k| (0..N).map(|i| 1.0 + ((i + k as i64) % 3) as f64 / 4.0).collect())
            .collect();

        let programmed = as_program(&clause, &inits);
        let mut ev = Evaluator::new();
        ev.run(&programmed).expect("reference evaluation");
        let expect = ev.final_array_f64("out").expect("captured");

        let shape = Shape::grid(&[N]);
        let blocks = compile_block("s", &shape, &[clause], &mut ctx).expect("compiles");
        // The kernel must actually spill — otherwise it tests nothing.
        let spills: usize = blocks
            .iter()
            .flat_map(|b| b.routine.body())
            .filter(|i| matches!(i, f90y_peac::Instr::SpillStore { .. }))
            .count();
        prop_assert!(spills > 0 || terms < 10, "expected spills at {terms} terms");
        let mut cm = Cm2::new(Cm2Config::slicewise(2));
        let out = cm.alloc(&[N as usize]);
        let mut ids = std::collections::HashMap::new();
        ids.insert("out".to_string(), out);
        for (name, data) in ARRAYS.iter().zip(&inits) {
            ids.insert((*name).to_string(), cm.alloc_from(&[N as usize], data.clone()));
        }
        for b in blocks {
            let args: Vec<_> = b
                .array_params
                .iter()
                .map(|p| match p {
                    f90y_backend::ArrayParam::Read(v)
                    | f90y_backend::ArrayParam::Write(v) => ids[v.as_str()],
                    f90y_backend::ArrayParam::Coord(dim) => {
                        cm.coordinates(&[N as usize], &[1], *dim - 1)
                    }
                })
                .collect();
            cm.dispatch(&b.routine, &args, &[]).expect("dispatches");
        }
        let got = cm.read(out).expect("readable");
        for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
            prop_assert!(
                (e - g).abs() <= 1e-9 * e.abs().max(1.0),
                "out[{i}]: {e} vs {g} at {terms} terms"
            );
        }
    }
}
