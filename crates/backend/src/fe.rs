//! The FE/NIR compiler's output, executing: the host program.
//!
//! "The FE/NIR compiler translates the NIR remainder program into SPARC
//! assembly code plus runtime system library calls. DO- and
//! MOVE-constructs over serial shapes become explicit iteration …
//! declarative NIR constructs become memory allocations … communication
//! intrinsics are replaced by calls to their CM runtime library
//! implementations. For each computation block being executed remotely,
//! the compiler inserts calling code to push PEAC procedure arguments
//! over the IFIFO to the processors." (paper §5.2)
//!
//! In this reproduction the host program is *interpreted* with a
//! per-operation cost model (`HOST_OP_CYCLES`) standing in for the
//! paper's deliberately naive memory-to-memory SPARC code — the paper
//! itself argues host time is off the critical path, and the
//! host-fraction experiment reproduces that claim.

use std::collections::HashMap;

use f90y_cm2::runtime::ReduceOp;
use f90y_nir::array::Scalar as NScalar;
use f90y_nir::eval::{apply_binop, apply_unop};
use f90y_nir::{Const, Decl, FieldAction, LValue, MoveClause, ScalarType, Shape, Type, Value};
use f90y_transform::program::Binder;

use crate::machine::Machine;
use crate::{ArrayParam, BackendError, CompiledProgram, HostStmt};

/// A finalised program variable, captured when its scope exited.
#[derive(Debug, Clone, PartialEq)]
pub enum Final {
    /// A scalar's last value.
    Scalar(f64),
    /// An array's last contents (row-major).
    Array(Vec<f64>),
}

/// The result of running a compiled program on a machine.
#[derive(Debug, Clone)]
pub struct HostRun {
    finals: HashMap<String, Final>,
}

impl HostRun {
    /// The final contents of an array variable.
    ///
    /// # Errors
    ///
    /// Fails when the variable was not captured or is a scalar.
    pub fn final_array(&self, name: &str) -> Result<Vec<f64>, BackendError> {
        match self.finals.get(name) {
            Some(Final::Array(v)) => Ok(v.clone()),
            Some(Final::Scalar(_)) => Err(BackendError::Host(format!("'{name}' is a scalar"))),
            None => Err(BackendError::Host(format!("no final value for '{name}'"))),
        }
    }

    /// The final value of a scalar variable.
    ///
    /// # Errors
    ///
    /// Fails when the variable was not captured or is an array.
    pub fn final_scalar(&self, name: &str) -> Result<f64, BackendError> {
        match self.finals.get(name) {
            Some(Final::Scalar(v)) => Ok(*v),
            Some(Final::Array(_)) => Err(BackendError::Host(format!("'{name}' is an array"))),
            None => Err(BackendError::Host(format!("no final value for '{name}'"))),
        }
    }

    /// All captured finals.
    pub fn finals(&self) -> &HashMap<String, Final> {
        &self.finals
    }
}

#[derive(Debug, Clone)]
struct ArrayRef<I> {
    id: I,
    dims: Vec<usize>,
    lower: Vec<i64>,
    elem: ScalarType,
}

#[derive(Debug, Clone)]
enum Entry<I> {
    Scalar(NScalar),
    Array(ArrayRef<I>),
}

/// A host value during expression evaluation.
#[derive(Debug, Clone)]
enum HVal {
    Scalar(NScalar),
    Array(Vec<NScalar>, Vec<usize>),
}

/// The front-end executor: runs a [`CompiledProgram`] on any
/// [`Machine`] — the CM/2 SIMD simulator or the CM/5 MIMD runtime.
#[derive(Debug)]
pub struct HostExecutor<'m, M: Machine> {
    cm: &'m mut M,
    scopes: Vec<HashMap<String, Entry<M::Id>>>,
    domains: HashMap<String, Shape>,
    do_env: Vec<(String, Vec<i64>)>,
    finals: HashMap<String, Final>,
}

impl<'m, M: Machine> HostExecutor<'m, M> {
    /// An executor over the given machine.
    pub fn new(cm: &'m mut M) -> Self {
        HostExecutor {
            cm,
            scopes: vec![HashMap::new()],
            domains: HashMap::new(),
            do_env: Vec::new(),
            finals: HashMap::new(),
        }
    }

    /// Run the program to completion.
    ///
    /// # Errors
    ///
    /// Fails on any dynamic host error or machine fault.
    pub fn run(mut self, program: &CompiledProgram) -> Result<HostRun, BackendError> {
        // Outer binders: domains and global allocations.
        for b in &program.binders {
            match b {
                Binder::Domain(name, shape) => {
                    let resolved = shape.resolve(&self.domains).map_err(BackendError::Nir)?;
                    self.domains.insert(name.clone(), resolved);
                }
                Binder::Decls(d) => self.alloc_decls(d)?,
            }
        }
        self.exec_stmts(&program.host, program)?;
        // Capture everything still live.
        while let Some(scope) = self.scopes.pop() {
            self.capture(scope)?;
        }
        Ok(HostRun {
            finals: self.finals,
        })
    }

    fn capture(&mut self, scope: HashMap<String, Entry<M::Id>>) -> Result<(), BackendError> {
        for (name, entry) in scope {
            let value = match entry {
                Entry::Scalar(s) => {
                    Final::Scalar(s.to_f64().unwrap_or(if matches!(s, NScalar::Bool(true)) {
                        1.0
                    } else {
                        0.0
                    }))
                }
                Entry::Array(a) => Final::Array(self.cm.read(a.id)?),
            };
            self.finals.entry(name).or_insert(value);
        }
        Ok(())
    }

    fn alloc_decls(&mut self, d: &Decl) -> Result<(), BackendError> {
        for (id, ty, init) in d.bindings() {
            let entry = match ty {
                Type::Scalar(st) => {
                    let mut v = NScalar::zero(*st);
                    if let Some(e) = init {
                        let s = self.eval_scalar(e)?;
                        v = s.convert(*st).map_err(BackendError::Nir)?;
                    }
                    Entry::Scalar(v)
                }
                Type::DField { shape, elem } => {
                    let resolved = shape.resolve(&self.domains).map_err(BackendError::Nir)?;
                    let extents = resolved.extents();
                    let dims: Vec<usize> = extents.iter().map(|e| e.len()).collect();
                    let lower: Vec<i64> = extents.iter().map(|e| e.lo).collect();
                    let aid = self.cm.alloc_with_bounds(&dims, &lower);
                    self.cm.charge_host_ops(2);
                    if let Some(e) = init {
                        let s = self.eval_scalar(e)?;
                        let v = s.to_f64().map_err(BackendError::Nir)?;
                        let total: usize = dims.iter().product();
                        self.cm.write(aid, &vec![v; total])?;
                    }
                    Entry::Array(ArrayRef {
                        id: aid,
                        dims,
                        lower,
                        elem: elem.elem_scalar(),
                    })
                }
            };
            self.scopes
                .last_mut()
                .expect("executor always has a scope")
                .insert(id.clone(), entry);
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<&Entry<M::Id>, BackendError> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .ok_or_else(|| BackendError::Host(format!("unbound variable '{name}'")))
    }

    fn lookup_array(&self, name: &str) -> Result<ArrayRef<M::Id>, BackendError> {
        match self.lookup(name)? {
            Entry::Array(a) => Ok(a.clone()),
            Entry::Scalar(_) => Err(BackendError::Host(format!("'{name}' is a scalar"))),
        }
    }

    fn exec_stmts(
        &mut self,
        stmts: &[HostStmt],
        program: &CompiledProgram,
    ) -> Result<(), BackendError> {
        for s in stmts {
            self.exec_stmt(s, program)?;
        }
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        stmt: &HostStmt,
        program: &CompiledProgram,
    ) -> Result<(), BackendError> {
        match stmt {
            HostStmt::Dispatch(i) => self.dispatch(*i, program),
            HostStmt::Comm {
                dst,
                src,
                dim,
                shift,
                boundary,
            } => {
                let dim = self.eval_scalar(dim)?.to_i64().map_err(BackendError::Nir)?;
                let shift = self
                    .eval_scalar(shift)?
                    .to_i64()
                    .map_err(BackendError::Nir)?;
                let src_ref = self.lookup_array(src)?;
                let dst_ref = self.lookup_array(dst)?;
                if dim < 1 || dim as usize > src_ref.dims.len() {
                    return Err(BackendError::Host(format!("bad CSHIFT DIM={dim}")));
                }
                let tmp = match boundary {
                    None => self.cm.cshift(src_ref.id, dim as usize - 1, shift)?,
                    Some(b) => {
                        let b = self.eval_scalar(b)?.to_f64().map_err(BackendError::Nir)?;
                        self.cm.eoshift(src_ref.id, dim as usize - 1, shift, b)?
                    }
                };
                let data = self.cm.read(tmp)?;
                self.cm.write(dst_ref.id, &data)?;
                self.cm.free(tmp)?;
                self.cm.charge_host_ops(4);
                Ok(())
            }
            HostStmt::HostMove(clauses) => {
                for c in clauses {
                    self.exec_host_clause(c)?;
                }
                Ok(())
            }
            HostStmt::Do { dom, shape, body } => {
                let resolved = shape.resolve(&self.domains).map_err(BackendError::Nir)?;
                for p in resolved.points() {
                    self.cm.charge_host_ops(2); // loop bookkeeping
                    self.do_env.push((dom.clone(), p));
                    let r = self.exec_stmts(body, program);
                    self.do_env.pop();
                    r?;
                }
                Ok(())
            }
            HostStmt::While { cond, body } => {
                let mut fuel: u64 = 100_000_000;
                loop {
                    self.cm.charge_host_ops(value_size(cond));
                    let c = self
                        .eval_scalar(cond)?
                        .to_bool()
                        .map_err(BackendError::Nir)?;
                    if !c {
                        return Ok(());
                    }
                    self.exec_stmts(body, program)?;
                    fuel -= 1;
                    if fuel == 0 {
                        return Err(BackendError::Host("WHILE exceeded fuel".into()));
                    }
                }
            }
            HostStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.cm.charge_host_ops(value_size(cond));
                if self
                    .eval_scalar(cond)?
                    .to_bool()
                    .map_err(BackendError::Nir)?
                {
                    self.exec_stmts(then_body, program)
                } else {
                    self.exec_stmts(else_body, program)
                }
            }
            HostStmt::WithDecl { decl, body } => {
                self.scopes.push(HashMap::new());
                let r = self
                    .alloc_decls(decl)
                    .and_then(|()| self.exec_stmts(body, program));
                let scope = self.scopes.pop().expect("scope pushed above");
                self.capture(scope)?;
                r
            }
            HostStmt::WithDomain { name, shape, body } => {
                let old = self.domains.insert(name.clone(), shape.clone());
                let r = self.exec_stmts(body, program);
                match old {
                    Some(s) => {
                        self.domains.insert(name.clone(), s);
                    }
                    None => {
                        self.domains.remove(name);
                    }
                }
                r
            }
        }
    }

    fn dispatch(&mut self, index: usize, program: &CompiledProgram) -> Result<(), BackendError> {
        let block = program
            .blocks
            .get(index)
            .ok_or_else(|| BackendError::Host(format!("unknown block {index}")))?;
        let extents = block.shape.extents();
        let dims: Vec<usize> = extents.iter().map(|e| e.len()).collect();
        let lower: Vec<i64> = extents.iter().map(|e| e.lo).collect();
        let mut ids = Vec::with_capacity(block.array_params.len());
        for p in &block.array_params {
            let id = match p {
                ArrayParam::Read(v) | ArrayParam::Write(v) => self.lookup_array(v)?.id,
                ArrayParam::Coord(dim) => self.cm.coordinates(&dims, &lower, *dim - 1),
            };
            ids.push(id);
        }
        let mut scalars = Vec::with_capacity(block.scalar_params.len());
        for v in &block.scalar_params {
            scalars.push(self.eval_scalar(v)?.to_f64().map_err(BackendError::Nir)?);
        }
        self.cm
            .charge_host_ops(2 + ids.len() as u64 + scalars.len() as u64);
        self.cm.dispatch(&block.routine, &ids, &scalars)?;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Host moves (element, scalar, and router-path array moves)
    // -----------------------------------------------------------------

    fn exec_host_clause(&mut self, c: &MoveClause) -> Result<(), BackendError> {
        self.cm
            .charge_host_ops(value_size(&c.src) + value_size(&c.mask));
        match &c.dst {
            LValue::SVar(name) => {
                let enabled = self
                    .eval_scalar(&c.mask)?
                    .to_bool()
                    .map_err(BackendError::Nir)?;
                if !enabled {
                    return Ok(());
                }
                let v = self.eval_scalar(&c.src)?;
                let entry = self
                    .scopes
                    .iter_mut()
                    .rev()
                    .find_map(|s| s.get_mut(name))
                    .ok_or_else(|| BackendError::Host(format!("unbound '{name}'")))?;
                match entry {
                    Entry::Scalar(s) => {
                        *s = v.convert(s.scalar_type()).map_err(BackendError::Nir)?;
                        Ok(())
                    }
                    Entry::Array(_) => Err(BackendError::Host(format!(
                        "SVAR target '{name}' is an array"
                    ))),
                }
            }
            LValue::AVar(name, FieldAction::Subscript(ixs)) => {
                let enabled = self
                    .eval_scalar(&c.mask)?
                    .to_bool()
                    .map_err(BackendError::Nir)?;
                if !enabled {
                    return Ok(());
                }
                let arr = self.lookup_array(name)?;
                let flat = self.flat_index(&arr, ixs)?;
                let v = self.eval_scalar(&c.src)?;
                let v = v.convert(arr.elem).map_err(BackendError::Nir)?;
                self.cm
                    .host_write_elem(arr.id, flat, v.to_f64().map_err(BackendError::Nir)?)?;
                Ok(())
            }
            LValue::AVar(name, fa @ (FieldAction::Everywhere | FieldAction::Section(_))) => {
                // Router path: a data motion the grid network cannot
                // express (misaligned sections, host-context whole-array
                // moves).
                let arr = self.lookup_array(name)?;
                let mask = self.eval_host(&c.mask)?;
                let src = self.eval_host(&c.src)?;
                let mut data = self.cm.read(arr.id)?;
                let flats: Vec<usize> = match fa {
                    FieldAction::Everywhere => (0..data.len()).collect(),
                    FieldAction::Section(ranges) => section_flats(&arr, ranges)?,
                    FieldAction::Subscript(_) => unreachable!("matched above"),
                };
                let n = flats.len();
                check_conforms(&mask, n, "mask")?;
                check_conforms(&src, n, "source")?;
                for (k, &flat) in flats.iter().enumerate() {
                    let enabled = match &mask {
                        HVal::Scalar(s) => s.to_bool().map_err(BackendError::Nir)?,
                        HVal::Array(m, _) => m[k].to_bool().map_err(BackendError::Nir)?,
                    };
                    if !enabled {
                        continue;
                    }
                    let v = match &src {
                        HVal::Scalar(s) => *s,
                        HVal::Array(vs, _) => vs[k],
                    };
                    data[flat] = v
                        .convert(arr.elem)
                        .map_err(BackendError::Nir)?
                        .to_f64()
                        .map_err(BackendError::Nir)?;
                }
                self.cm.write(arr.id, &data)?;
                self.cm.charge_router_move(arr.id)?;
                Ok(())
            }
        }
    }

    fn flat_index(&mut self, arr: &ArrayRef<M::Id>, ixs: &[Value]) -> Result<usize, BackendError> {
        if ixs.len() != arr.dims.len() {
            return Err(BackendError::Host(format!(
                "rank mismatch: {} subscripts for rank {}",
                ixs.len(),
                arr.dims.len()
            )));
        }
        let mut flat = 0usize;
        for (k, ix) in ixs.iter().enumerate() {
            let c = self.eval_scalar(ix)?.to_i64().map_err(BackendError::Nir)?;
            let off = c - arr.lower[k];
            if off < 0 || off as usize >= arr.dims[k] {
                return Err(BackendError::Host(format!(
                    "subscript {c} out of bounds in axis {}",
                    k + 1
                )));
            }
            flat = flat * arr.dims[k] + off as usize;
        }
        Ok(flat)
    }

    // -----------------------------------------------------------------
    // Host expression evaluation
    // -----------------------------------------------------------------

    fn eval_scalar(&mut self, v: &Value) -> Result<NScalar, BackendError> {
        match self.eval_host(v)? {
            HVal::Scalar(s) => Ok(s),
            HVal::Array(..) => Err(BackendError::Host(format!(
                "array value where the host needs a scalar: {v}"
            ))),
        }
    }

    fn eval_host(&mut self, v: &Value) -> Result<HVal, BackendError> {
        match v {
            Value::Scalar(c) => Ok(HVal::Scalar(match c {
                Const::I32(i) => NScalar::I32(*i),
                Const::Bool(b) => NScalar::Bool(*b),
                Const::F32(x) => NScalar::F32(*x),
                Const::F64(x) => NScalar::F64(*x),
            })),
            Value::SVar(name) => match self.lookup(name)? {
                Entry::Scalar(s) => Ok(HVal::Scalar(*s)),
                Entry::Array(_) => Err(BackendError::Host(format!("SVAR '{name}' is an array"))),
            },
            Value::DoIndex(dom, dim) => {
                let (_, coords) = self
                    .do_env
                    .iter()
                    .rev()
                    .find(|(d, _)| d == dom)
                    .ok_or_else(|| BackendError::Host(format!("do_index outside DO '{dom}'")))?;
                let c = coords.get(*dim - 1).copied().ok_or_else(|| {
                    BackendError::Host(format!("do_index axis {dim} out of range"))
                })?;
                Ok(HVal::Scalar(NScalar::I32(c as i32)))
            }
            Value::AVar(name, FieldAction::Subscript(ixs)) => {
                let arr = self.lookup_array(name)?;
                let ixs = ixs.clone();
                let flat = self.flat_index(&arr, &ixs)?;
                let raw = self.cm.host_read_elem(arr.id, flat)?;
                Ok(HVal::Scalar(
                    NScalar::F64(raw)
                        .convert(arr.elem)
                        .map_err(BackendError::Nir)?,
                ))
            }
            Value::AVar(name, FieldAction::Everywhere) => {
                let arr = self.lookup_array(name)?;
                let data = self.cm.read(arr.id)?;
                let typed = data
                    .into_iter()
                    .map(|x| NScalar::F64(x).convert(arr.elem))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(BackendError::Nir)?;
                Ok(HVal::Array(typed, arr.dims.clone()))
            }
            Value::AVar(name, FieldAction::Section(ranges)) => {
                let arr = self.lookup_array(name)?;
                let data = self.cm.read(arr.id)?;
                let flats = section_flats(&arr, ranges)?;
                let dims: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let typed = flats
                    .into_iter()
                    .map(|f| NScalar::F64(data[f]).convert(arr.elem))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(BackendError::Nir)?;
                Ok(HVal::Array(typed, dims))
            }
            Value::LocalUnder(shape, dim) => {
                let resolved = shape.resolve(&self.domains).map_err(BackendError::Nir)?;
                let mut out = Vec::with_capacity(resolved.size());
                for p in resolved.points() {
                    out.push(NScalar::I32(p[*dim - 1] as i32));
                }
                let dims: Vec<usize> = resolved.extents().iter().map(|e| e.len()).collect();
                Ok(HVal::Array(out, dims))
            }
            Value::Unary(op, a) => {
                let a = self.eval_host(a)?;
                map_hval(a, |s| apply_unop(*op, s).map_err(BackendError::Nir))
            }
            Value::Binary(op, a, b) => {
                let a = self.eval_host(a)?;
                let b = self.eval_host(b)?;
                zip_hval(a, b, |x, y| {
                    apply_binop(*op, x, y).map_err(BackendError::Nir)
                })
            }
            Value::FcnCall(name, args) => self.eval_call(name, args),
        }
    }

    fn eval_call(&mut self, name: &str, args: &[(Type, Value)]) -> Result<HVal, BackendError> {
        match name {
            "sum" | "maxval" | "minval" if args.len() == 2 => {
                // Partial reduction along an axis: computed by a grid
                // scan; charged as a reduction call.
                let HVal::Array(data, dims) = self.eval_host(&args[0].1)? else {
                    return Err(BackendError::Host(format!("{name} of a scalar")));
                };
                let dim = self
                    .eval_scalar(&args[1].1)?
                    .to_i64()
                    .map_err(BackendError::Nir)?;
                if dim < 1 || dim as usize > dims.len() {
                    return Err(BackendError::Host(format!("{name} DIM={dim} out of range")));
                }
                let axis = dim as usize - 1;
                let inner: usize = dims[axis + 1..].iter().product();
                let extent = dims[axis];
                let outer: usize = dims[..axis].iter().product();
                let mut out = Vec::with_capacity(outer * inner);
                for o in 0..outer {
                    for i in 0..inner {
                        let mut acc = match name {
                            "sum" => 0.0,
                            "maxval" => f64::NEG_INFINITY,
                            _ => f64::INFINITY,
                        };
                        for a in 0..extent {
                            let v = data[(o * extent + a) * inner + i]
                                .to_f64()
                                .map_err(BackendError::Nir)?;
                            acc = match name {
                                "sum" => acc + v,
                                "maxval" => acc.max(v),
                                _ => acc.min(v),
                            };
                        }
                        let elem = data[0].scalar_type();
                        out.push(NScalar::F64(acc).convert(elem).map_err(BackendError::Nir)?);
                    }
                }
                // Charge as a reduction over the source geometry.
                let tmp = self.cm.alloc(&dims);
                let raw: Vec<f64> = data
                    .iter()
                    .map(|s| s.to_f64())
                    .collect::<Result<_, _>>()
                    .map_err(BackendError::Nir)?;
                self.cm.write(tmp, &raw)?;
                self.cm.reduce(tmp, ReduceOp::Sum)?;
                self.cm.free(tmp)?;
                let mut out_dims = dims.clone();
                out_dims.remove(axis);
                Ok(HVal::Array(out, out_dims))
            }
            "spread" => {
                let HVal::Array(data, dims) = self.eval_host(&args[0].1)? else {
                    return Err(BackendError::Host("spread of a scalar".into()));
                };
                let dim = self
                    .eval_scalar(&args[1].1)?
                    .to_i64()
                    .map_err(BackendError::Nir)?;
                let n = self
                    .eval_scalar(&args[2].1)?
                    .to_i64()
                    .map_err(BackendError::Nir)?;
                if dim < 1 || dim as usize > dims.len() + 1 || n < 0 {
                    return Err(BackendError::Host(format!(
                        "bad SPREAD arguments DIM={dim} NCOPIES={n}"
                    )));
                }
                let axis = dim as usize - 1;
                let n = n as usize;
                let inner: usize = dims[axis..].iter().product();
                let outer: usize = dims[..axis].iter().product();
                let mut out = Vec::with_capacity(data.len() * n);
                for o in 0..outer {
                    for _ in 0..n {
                        out.extend_from_slice(&data[o * inner..(o + 1) * inner]);
                    }
                }
                let mut out_dims = dims.clone();
                out_dims.insert(axis, n);
                // A broadcast rides the grid network: charge one grid
                // communication over the result geometry.
                let tmp = self.cm.alloc(&out_dims);
                self.cm.charge_router_move(tmp)?;
                self.cm.free(tmp)?;
                Ok(HVal::Array(out, out_dims))
            }
            "sum" | "maxval" | "minval" => {
                let op = match name {
                    "sum" => ReduceOp::Sum,
                    "maxval" => ReduceOp::Max,
                    _ => ReduceOp::Min,
                };
                let arg = &args[0].1;
                // Fast path: a plain array variable reduces in place.
                if let Value::AVar(v, FieldAction::Everywhere) = arg {
                    let arr = self.lookup_array(v)?;
                    let x = self.cm.reduce(arr.id, op)?;
                    return Ok(HVal::Scalar(
                        NScalar::F64(x)
                            .convert(match arr.elem {
                                ScalarType::Integer32 => ScalarType::Integer32,
                                other => other,
                            })
                            .map_err(BackendError::Nir)?,
                    ));
                }
                // General case: materialise, reduce, free.
                let HVal::Array(data, dims) = self.eval_host(arg)? else {
                    return Err(BackendError::Host(format!("{name} of a scalar")));
                };
                let raw: Vec<f64> = data
                    .iter()
                    .map(|s| s.to_f64())
                    .collect::<Result<_, _>>()
                    .map_err(BackendError::Nir)?;
                let tmp = self.cm.alloc_from(&dims, raw);
                let x = self.cm.reduce(tmp, op)?;
                self.cm.free(tmp)?;
                Ok(HVal::Scalar(NScalar::F64(x)))
            }
            "merge" => {
                let t = self.eval_host(&args[0].1)?;
                let f = self.eval_host(&args[1].1)?;
                let m = self.eval_host(&args[2].1)?;
                let n = [&t, &f, &m].iter().find_map(|v| match v {
                    HVal::Array(d, _) => Some(d.len()),
                    HVal::Scalar(_) => None,
                });
                let Some(n) = n else {
                    let HVal::Scalar(ms) = m else {
                        unreachable!("no arrays")
                    };
                    let cond = ms.to_bool().map_err(BackendError::Nir)?;
                    return Ok(if cond { t } else { f });
                };
                let dims = [&t, &f, &m]
                    .iter()
                    .find_map(|v| match v {
                        HVal::Array(_, dims) => Some(dims.clone()),
                        HVal::Scalar(_) => None,
                    })
                    .expect("n came from an array");
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let cond = match &m {
                        HVal::Scalar(s) => s.to_bool().map_err(BackendError::Nir)?,
                        HVal::Array(d, _) => d[i].to_bool().map_err(BackendError::Nir)?,
                    };
                    let v = match (cond, &t, &f) {
                        (true, HVal::Scalar(s), _) => *s,
                        (true, HVal::Array(d, _), _) => d[i],
                        (false, _, HVal::Scalar(s)) => *s,
                        (false, _, HVal::Array(d, _)) => d[i],
                    };
                    out.push(v);
                }
                Ok(HVal::Array(out, dims))
            }
            "transpose" => {
                let HVal::Array(data, dims) = self.eval_host(&args[0].1)? else {
                    return Err(BackendError::Host("transpose of a scalar".into()));
                };
                if dims.len() != 2 {
                    return Err(BackendError::Host(format!(
                        "transpose requires rank 2, got rank {}",
                        dims.len()
                    )));
                }
                let (r, c) = (dims[0], dims[1]);
                let mut out = vec![data[0]; data.len()];
                for i in 0..r {
                    for j in 0..c {
                        out[j * r + i] = data[i * c + j];
                    }
                }
                // A transpose is a general permutation: charge the
                // router over a temporary of the result's geometry.
                let tmp = self.cm.alloc(&[c, r]);
                self.cm.charge_router_move(tmp)?;
                self.cm.free(tmp)?;
                Ok(HVal::Array(out, vec![c, r]))
            }
            "cshift" | "eoshift" => {
                // Host-context communication (shift amounts depending on
                // DO indices, etc.): materialise the argument, call the
                // runtime, read back.
                let HVal::Array(data, dims) = self.eval_host(&args[0].1)? else {
                    return Err(BackendError::Host(format!("{name} of a scalar")));
                };
                let shift = self
                    .eval_scalar(&args[1].1)?
                    .to_i64()
                    .map_err(BackendError::Nir)?;
                let dim = self
                    .eval_scalar(&args[2].1)?
                    .to_i64()
                    .map_err(BackendError::Nir)?;
                if dim < 1 || dim as usize > dims.len() {
                    return Err(BackendError::Host(format!("bad {name} DIM={dim}")));
                }
                let elem = data
                    .first()
                    .map(|s| s.scalar_type())
                    .unwrap_or(ScalarType::Float64);
                let raw: Vec<f64> = data
                    .iter()
                    .map(|s| s.to_f64())
                    .collect::<Result<_, _>>()
                    .map_err(BackendError::Nir)?;
                let tmp = self.cm.alloc_from(&dims, raw);
                let shifted = if name == "cshift" {
                    self.cm.cshift(tmp, dim as usize - 1, shift)?
                } else {
                    let b = match args.get(3) {
                        Some((_, v)) => self.eval_scalar(v)?.to_f64().map_err(BackendError::Nir)?,
                        None => 0.0,
                    };
                    self.cm.eoshift(tmp, dim as usize - 1, shift, b)?
                };
                let out = self.cm.read(shifted)?;
                self.cm.free(tmp)?;
                self.cm.free(shifted)?;
                let typed = out
                    .into_iter()
                    .map(|x| NScalar::F64(x).convert(elem))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(BackendError::Nir)?;
                Ok(HVal::Array(typed, dims))
            }
            other => Err(BackendError::Host(format!("unknown primitive '{other}'"))),
        }
    }
}

fn check_conforms(v: &HVal, n: usize, what: &str) -> Result<(), BackendError> {
    if let HVal::Array(data, _) = v {
        if data.len() != n {
            return Err(BackendError::Host(format!(
                "{what} has {} elements; destination selects {n}",
                data.len()
            )));
        }
    }
    Ok(())
}

fn section_flats<I>(
    arr: &ArrayRef<I>,
    ranges: &[f90y_nir::SectionRange],
) -> Result<Vec<usize>, BackendError> {
    if ranges.len() != arr.dims.len() {
        return Err(BackendError::Host(format!(
            "section rank {} on rank-{} array",
            ranges.len(),
            arr.dims.len()
        )));
    }
    let total: usize = ranges.iter().map(|r| r.len()).product();
    let mut flats = Vec::with_capacity(total);
    if total == 0 {
        return Ok(flats);
    }
    let mut coords: Vec<i64> = ranges.iter().map(|r| r.lo).collect();
    for _ in 0..total {
        let mut flat = 0usize;
        for (k, &c) in coords.iter().enumerate() {
            let off = c - arr.lower[k];
            if off < 0 || off as usize >= arr.dims[k] {
                return Err(BackendError::Host(format!(
                    "section index {c} out of bounds in axis {}",
                    k + 1
                )));
            }
            flat = flat * arr.dims[k] + off as usize;
        }
        flats.push(flat);
        for axis in (0..ranges.len()).rev() {
            coords[axis] += ranges[axis].step;
            if coords[axis] <= ranges[axis].hi {
                break;
            }
            coords[axis] = ranges[axis].lo;
        }
    }
    Ok(flats)
}

fn map_hval(
    v: HVal,
    f: impl Fn(NScalar) -> Result<NScalar, BackendError>,
) -> Result<HVal, BackendError> {
    match v {
        HVal::Scalar(s) => Ok(HVal::Scalar(f(s)?)),
        HVal::Array(mut data, dims) => {
            for s in &mut data {
                *s = f(*s)?;
            }
            Ok(HVal::Array(data, dims))
        }
    }
}

fn zip_hval(
    a: HVal,
    b: HVal,
    f: impl Fn(NScalar, NScalar) -> Result<NScalar, BackendError>,
) -> Result<HVal, BackendError> {
    match (a, b) {
        (HVal::Scalar(x), HVal::Scalar(y)) => Ok(HVal::Scalar(f(x, y)?)),
        (HVal::Array(mut xs, dims), HVal::Scalar(y)) => {
            for x in &mut xs {
                *x = f(*x, y)?;
            }
            Ok(HVal::Array(xs, dims))
        }
        (HVal::Scalar(x), HVal::Array(mut ys, dims)) => {
            for y in &mut ys {
                *y = f(x, *y)?;
            }
            Ok(HVal::Array(ys, dims))
        }
        (HVal::Array(xs, dims), HVal::Array(ys, dims2)) => {
            if xs.len() != ys.len() {
                return Err(BackendError::Host(format!(
                    "elementwise host operation on non-conforming arrays ({} vs {})",
                    xs.len(),
                    ys.len()
                )));
            }
            let _ = dims2;
            let mut out = Vec::with_capacity(xs.len());
            for (x, y) in xs.into_iter().zip(ys) {
                out.push(f(x, y)?);
            }
            Ok(HVal::Array(out, dims))
        }
    }
}

/// The number of nodes in a value term (the host-op charge for
/// evaluating it).
pub fn value_size(v: &Value) -> u64 {
    let mut n = 0u64;
    v.walk(&mut |_| n += 1);
    n
}
