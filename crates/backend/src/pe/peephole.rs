//! VIR peephole rewriting: dead-code removal, chained multiply-add
//! recognition ("multiply-add sequences are converted to chained
//! multiply-adds wherever possible", paper §5.2) and load chaining
//! marking ("PEAC's support for load chaining also allows one in-memory
//! operand to be substituted for a register operand").

use std::collections::{HashMap, HashSet};

use crate::pe::vir::{use_counts, VBin, VirOp, Vr};
use crate::ArrayParam;

/// Remove operations whose results are never used. Iterates to a
/// fixpoint (removing one op can kill its operands' only uses).
pub fn dead_code(ops: &mut Vec<VirOp>) -> usize {
    let mut removed = 0;
    loop {
        let counts = use_counts(ops);
        let before = ops.len();
        ops.retain(|op| match op.def() {
            Some(d) => counts.get(&d).copied().unwrap_or(0) > 0,
            None => true, // stores are effects
        });
        removed += before - ops.len();
        if ops.len() == before {
            return removed;
        }
    }
}

/// Fuse `t = a*b; d = t+c` (or `d = c+t`) into `d = madd(a,b,c)` when
/// `t` has exactly one use. Returns the number of fusions.
pub fn fuse_madd(ops: &mut Vec<VirOp>) -> usize {
    let counts = use_counts(ops);
    // Map: result of a single-use multiply -> (a, b, defining index).
    let mut mul_of: HashMap<Vr, (Vr, Vr, usize)> = HashMap::new();
    for (ix, op) in ops.iter().enumerate() {
        if let VirOp::Bin {
            op: VBin::Mul,
            a,
            b,
            dst,
        } = op
        {
            if counts.get(dst).copied().unwrap_or(0) == 1 {
                mul_of.insert(*dst, (*a, *b, ix));
            }
        }
    }
    let mut kill: HashSet<usize> = HashSet::new();
    let mut fused = 0;
    for ix in 0..ops.len() {
        let VirOp::Bin {
            op: VBin::Add,
            a,
            b,
            dst,
        } = ops[ix]
        else {
            continue;
        };
        // Prefer fusing the left multiply; either operand may be it.
        let candidate = mul_of
            .get(&a)
            .map(|m| (*m, b))
            .or_else(|| mul_of.get(&b).map(|m| (*m, a)));
        let Some(((ma, mb, mix), addend)) = candidate else {
            continue;
        };
        if kill.contains(&mix) {
            continue; // already consumed by an earlier fusion
        }
        // The addend must be defined before the multiply is removed —
        // VIR is SSA in program order, so any operand defined before
        // `ix` stays valid; just ensure we are not using the multiply's
        // own result as the addend.
        if addend == ops[mix].def().expect("multiplies define") {
            continue;
        }
        ops[ix] = VirOp::Madd {
            a: ma,
            b: mb,
            c: addend,
            dst,
        };
        kill.insert(mix);
        fused += 1;
    }
    let mut ix = 0;
    ops.retain(|_| {
        let keep = !kill.contains(&ix);
        ix += 1;
        keep
    });
    fused
}

/// Mark single-use loads as chained memory operands of the instruction
/// that consumes them, subject to:
///
/// * one chained operand per consuming instruction;
/// * the consumer must accept folded operands;
/// * never chain a load of a variable the block also stores (the load
///   must not migrate past the store of the same stream's memory).
///
/// Returns the number of loads chained.
pub fn chain_loads(ops: &mut [VirOp], params: &[ArrayParam]) -> usize {
    let counts = use_counts(ops);
    // Variables written by the block.
    let stored_vars: HashSet<&str> = params
        .iter()
        .filter_map(|p| match p {
            ArrayParam::Write(v) => Some(v.as_str()),
            _ => None,
        })
        .collect();
    let chainable_param = |p: usize| match &params[p] {
        ArrayParam::Read(v) => !stored_vars.contains(v.as_str()),
        ArrayParam::Coord(_) => true,
        ArrayParam::Write(_) => false,
    };

    // Which load defines each Vr.
    let mut load_ix: HashMap<Vr, usize> = HashMap::new();
    for (ix, op) in ops.iter().enumerate() {
        if let VirOp::LoadVar {
            param,
            dst,
            chained: false,
        } = op
        {
            if counts.get(dst).copied().unwrap_or(0) == 1 && chainable_param(*param) {
                load_ix.insert(*dst, ix);
            }
        }
    }

    let mut total = 0;
    for ix in 0..ops.len() {
        if !ops[ix].accepts_folded_operands() {
            continue;
        }
        // Chain at most one operand of this instruction. A select's
        // mask slot must stay a register, so skip it.
        let uses = ops[ix].uses();
        let foldable = match &ops[ix] {
            VirOp::Sel { .. } => &uses[1..],
            _ => &uses[..],
        };
        for &u in foldable {
            if let Some(lix) = load_ix.remove(&u) {
                if let VirOp::LoadVar { chained, .. } = &mut ops[lix] {
                    *chained = true;
                }
                total += 1;
                break;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_code_removes_transitively() {
        let mut ops = vec![
            VirOp::Imm {
                value: 1.0,
                dst: Vr(0),
            },
            VirOp::Bin {
                op: VBin::Add,
                a: Vr(0),
                b: Vr(0),
                dst: Vr(1),
            },
            VirOp::Imm {
                value: 2.0,
                dst: Vr(2),
            },
            VirOp::Store {
                param: 0,
                src: Vr(2),
            },
        ];
        let removed = dead_code(&mut ops);
        assert_eq!(removed, 2, "the add and its imm are dead");
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn madd_fuses_single_use_multiplies() {
        let mut ops = vec![
            VirOp::Imm {
                value: 2.0,
                dst: Vr(0),
            },
            VirOp::Imm {
                value: 3.0,
                dst: Vr(1),
            },
            VirOp::Imm {
                value: 4.0,
                dst: Vr(2),
            },
            VirOp::Bin {
                op: VBin::Mul,
                a: Vr(0),
                b: Vr(1),
                dst: Vr(3),
            },
            VirOp::Bin {
                op: VBin::Add,
                a: Vr(3),
                b: Vr(2),
                dst: Vr(4),
            },
            VirOp::Store {
                param: 0,
                src: Vr(4),
            },
        ];
        assert_eq!(fuse_madd(&mut ops), 1);
        assert!(ops.iter().any(|o| matches!(o, VirOp::Madd { .. })));
        assert!(!ops
            .iter()
            .any(|o| matches!(o, VirOp::Bin { op: VBin::Mul, .. })));
    }

    #[test]
    fn multiply_with_two_uses_is_not_fused() {
        let mut ops = vec![
            VirOp::Imm {
                value: 2.0,
                dst: Vr(0),
            },
            VirOp::Bin {
                op: VBin::Mul,
                a: Vr(0),
                b: Vr(0),
                dst: Vr(1),
            },
            VirOp::Bin {
                op: VBin::Add,
                a: Vr(1),
                b: Vr(0),
                dst: Vr(2),
            },
            VirOp::Store {
                param: 0,
                src: Vr(1),
            },
            VirOp::Store {
                param: 1,
                src: Vr(2),
            },
        ];
        assert_eq!(fuse_madd(&mut ops), 0);
    }

    #[test]
    fn chain_loads_marks_single_use_reads() {
        let params = vec![
            ArrayParam::Read("a".into()),
            ArrayParam::Read("b".into()),
            ArrayParam::Write("c".into()),
        ];
        let mut ops = vec![
            VirOp::LoadVar {
                param: 0,
                dst: Vr(0),
                chained: false,
            },
            VirOp::LoadVar {
                param: 1,
                dst: Vr(1),
                chained: false,
            },
            VirOp::Bin {
                op: VBin::Sub,
                a: Vr(0),
                b: Vr(1),
                dst: Vr(2),
            },
            VirOp::Store {
                param: 2,
                src: Vr(2),
            },
        ];
        let n = chain_loads(&mut ops, &params);
        assert_eq!(n, 1, "one memory operand per instruction");
        let chained = ops
            .iter()
            .filter(|o| matches!(o, VirOp::LoadVar { chained: true, .. }))
            .count();
        assert_eq!(chained, 1);
    }

    #[test]
    fn loads_of_stored_variables_never_chain() {
        let params = vec![ArrayParam::Read("k".into()), ArrayParam::Write("k".into())];
        let mut ops = vec![
            VirOp::LoadVar {
                param: 0,
                dst: Vr(0),
                chained: false,
            },
            VirOp::Imm {
                value: 5.0,
                dst: Vr(1),
            },
            VirOp::Bin {
                op: VBin::Add,
                a: Vr(0),
                b: Vr(1),
                dst: Vr(2),
            },
            VirOp::Store {
                param: 1,
                src: Vr(2),
            },
        ];
        assert_eq!(chain_loads(&mut ops, &params), 0);
    }
}
