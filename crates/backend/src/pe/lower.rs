//! Lowering a computation block's clauses to VIR.
//!
//! The lowerer keeps a per-variable value cache so that within one block
//! each array is loaded at most once and values flow between clauses in
//! registers — this is precisely why blocked computations allocate
//! registers better than per-statement compilation (paper §6: "lifetime
//! analysis allows optimal register assignment within the body of the
//! virtual subgrid loop").

use std::collections::HashMap;

use f90y_nir::typecheck::{Checker, Ctx, Mode};
use f90y_nir::{BinOp, Const, FieldAction, LValue, MoveClause, ScalarType, Shape, UnOp, Value};
use f90y_peac::isa::LibOp;

use crate::pe::vir::{VBin, VCmp, VUn, VirOp, Vr};
use crate::{ArrayParam, BackendError};

/// The result of lowering one block: VIR plus the dispatch signature.
#[derive(Debug, Clone)]
pub struct LoweredBlock {
    /// The VIR body.
    pub ops: Vec<VirOp>,
    /// Pointer parameters in order.
    pub array_params: Vec<ArrayParam>,
    /// Scalar parameters in order (host expressions).
    pub scalar_params: Vec<Value>,
}

pub(crate) struct BlockLowerer<'a> {
    shape: &'a Shape,
    checker: Checker,
    ctx: &'a mut Ctx,
    ops: Vec<VirOp>,
    array_params: Vec<ArrayParam>,
    scalar_params: Vec<Value>,
    load_param: HashMap<String, usize>,
    store_param: HashMap<String, usize>,
    coord_param: HashMap<usize, usize>,
    scalar_param: HashMap<String, usize>,
    var_value: HashMap<String, Vr>,
    /// Common-subexpression cache: printed term → (register, type,
    /// variables the term reads). The paper calls this out for masks —
    /// "the logical mask which is generated can be reused" across the
    /// clauses of a blocked `WHERE`/`ELSEWHERE` — and it applies to any
    /// repeated subterm within a block.
    expr_cache: HashMap<String, (Vr, ScalarType, Vec<String>)>,
    next: usize,
}

impl<'a> BlockLowerer<'a> {
    pub(crate) fn new(shape: &'a Shape, ctx: &'a mut Ctx) -> Self {
        BlockLowerer {
            shape,
            checker: Checker::new(Mode::Both),
            ctx,
            ops: Vec::new(),
            array_params: Vec::new(),
            scalar_params: Vec::new(),
            load_param: HashMap::new(),
            store_param: HashMap::new(),
            coord_param: HashMap::new(),
            scalar_param: HashMap::new(),
            var_value: HashMap::new(),
            expr_cache: HashMap::new(),
            next: 0,
        }
    }

    fn fresh(&mut self) -> Vr {
        self.next += 1;
        Vr(self.next - 1)
    }

    fn emit(&mut self, op: VirOp) -> Option<Vr> {
        let d = op.def();
        self.ops.push(op);
        d
    }

    fn load_stream(&mut self, var: &str) -> usize {
        if let Some(&p) = self.load_param.get(var) {
            return p;
        }
        let p = self.array_params.len();
        self.array_params.push(ArrayParam::Read(var.to_string()));
        self.load_param.insert(var.to_string(), p);
        p
    }

    fn store_stream(&mut self, var: &str) -> usize {
        if let Some(&p) = self.store_param.get(var) {
            return p;
        }
        let p = self.array_params.len();
        self.array_params.push(ArrayParam::Write(var.to_string()));
        self.store_param.insert(var.to_string(), p);
        p
    }

    fn coord_stream(&mut self, dim: usize) -> usize {
        if let Some(&p) = self.coord_param.get(&dim) {
            return p;
        }
        let p = self.array_params.len();
        self.array_params.push(ArrayParam::Coord(dim));
        self.coord_param.insert(dim, p);
        p
    }

    fn scalar_slot(&mut self, id: &str) -> usize {
        if let Some(&p) = self.scalar_param.get(id) {
            return p;
        }
        let p = self.scalar_params.len();
        self.scalar_params.push(Value::SVar(id.to_string()));
        self.scalar_param.insert(id.to_string(), p);
        p
    }

    /// Lower one (possibly masked) clause.
    pub(crate) fn lower_clause(&mut self, c: &MoveClause) -> Result<(), BackendError> {
        let LValue::AVar(dst, FieldAction::Everywhere) = &c.dst else {
            return Err(BackendError::Malformed(format!(
                "computation block clause writes non-everywhere target {}",
                c.dst
            )));
        };
        let (src, _) = self.lower_value(&c.src)?;
        let value = if c.is_unmasked() {
            src
        } else {
            let (mask, mt) = self.lower_value(&c.mask)?;
            if mt != ScalarType::Logical32 {
                return Err(BackendError::Malformed("non-logical mask in block".into()));
            }
            // Masked move: dst = mask ? src : old dst.
            let old = self.read_var(dst)?;
            let d = self.fresh();
            self.emit(VirOp::Sel {
                mask,
                a: src,
                b: old,
                dst: d,
            });
            d
        };
        let param = self.store_stream(dst);
        self.emit(VirOp::Store { param, src: value });
        // Later clauses of the block see the new value in a register,
        // and any cached subterm that read the old value is stale.
        self.var_value.insert(dst.clone(), value);
        let dst_name = dst.clone();
        self.expr_cache
            .retain(|_, (_, _, reads)| !reads.contains(&dst_name));
        Ok(())
    }

    fn read_var(&mut self, var: &str) -> Result<Vr, BackendError> {
        if let Some(&v) = self.var_value.get(var) {
            return Ok(v);
        }
        let param = self.load_stream(var);
        let d = self.fresh();
        self.emit(VirOp::LoadVar {
            param,
            dst: d,
            chained: false,
        });
        self.var_value.insert(var.to_string(), d);
        Ok(d)
    }

    fn scalar_type_of(&mut self, v: &Value) -> Result<ScalarType, BackendError> {
        Ok(self.checker.type_of(v, self.ctx)?.elem)
    }

    fn lower_value(&mut self, v: &Value) -> Result<(Vr, ScalarType), BackendError> {
        // Only compound terms are worth caching (leaves are already
        // memoized through var_value / scalar slots / immediates).
        let cacheable = matches!(v, Value::Unary(..) | Value::Binary(..));
        let key = if cacheable { Some(v.to_string()) } else { None };
        if let Some(k) = &key {
            if let Some((vr, ty, _)) = self.expr_cache.get(k) {
                return Ok((*vr, *ty));
            }
        }
        let out = self.lower_value_uncached(v)?;
        if let Some(k) = key {
            let reads: Vec<String> = v.reads().into_iter().cloned().collect();
            self.expr_cache.insert(k, (out.0, out.1, reads));
        }
        Ok(out)
    }

    fn lower_value_uncached(&mut self, v: &Value) -> Result<(Vr, ScalarType), BackendError> {
        match v {
            Value::Scalar(c) => {
                let (value, ty) = match c {
                    Const::I32(i) => (*i as f64, ScalarType::Integer32),
                    Const::F32(x) => (*x as f64, ScalarType::Float32),
                    Const::F64(x) => (*x, ScalarType::Float64),
                    Const::Bool(b) => (if *b { 1.0 } else { 0.0 }, ScalarType::Logical32),
                };
                let d = self.fresh();
                self.emit(VirOp::Imm { value, dst: d });
                Ok((d, ty))
            }
            Value::SVar(id) => {
                let ty = self.scalar_type_of(v)?;
                let p = self.scalar_slot(id);
                let d = self.fresh();
                self.emit(VirOp::LoadScalar { param: p, dst: d });
                Ok((d, ty))
            }
            Value::AVar(id, FieldAction::Everywhere) => {
                let ty = self.scalar_type_of(v)?;
                Ok((self.read_var(id)?, ty))
            }
            Value::AVar(id, fa) => Err(BackendError::Malformed(format!(
                "non-local reference AVAR('{id}',{fa}) inside a computation block"
            ))),
            Value::LocalUnder(shape, dim) => {
                let resolved = self.ctx.resolve(shape)?;
                if !resolved.conforms(self.shape) {
                    return Err(BackendError::Malformed(format!(
                        "coordinate field over {resolved} in a block over {}",
                        self.shape
                    )));
                }
                let p = self.coord_stream(*dim);
                let d = self.fresh();
                self.emit(VirOp::LoadVar {
                    param: p,
                    dst: d,
                    chained: false,
                });
                Ok((d, ScalarType::Integer32))
            }
            Value::DoIndex(..) => Err(BackendError::Malformed(
                "DO index inside a computation block".into(),
            )),
            Value::FcnCall(name, args) if name == "merge" => {
                // Elemental select: dst = mask ? t : f (paper §2.2's
                // masked move, straight to fselv).
                let (t, tt) = self.lower_value(&args[0].1)?;
                let (f, ft) = self.lower_value(&args[1].1)?;
                let (m, mt) = self.lower_value(&args[2].1)?;
                if mt != ScalarType::Logical32 {
                    return Err(BackendError::Malformed("merge mask must be logical".into()));
                }
                let d = self.fresh();
                self.emit(VirOp::Sel {
                    mask: m,
                    a: t,
                    b: f,
                    dst: d,
                });
                Ok((d, tt.promote(ft).unwrap_or(ScalarType::Float64)))
            }
            Value::FcnCall(name, _) => Err(BackendError::Malformed(format!(
                "function call '{name}' inside a computation block"
            ))),
            Value::Unary(op, a) => self.lower_unary(*op, a),
            Value::Binary(op, a, b) => self.lower_binary(*op, a, b),
        }
    }

    fn lower_unary(&mut self, op: UnOp, a: &Value) -> Result<(Vr, ScalarType), BackendError> {
        let (av, at) = self.lower_value(a)?;
        let out_ty = op.result_type(at).unwrap_or(at);
        let d = match op {
            UnOp::Neg => {
                let d = self.fresh();
                self.emit(VirOp::Un {
                    op: VUn::Neg,
                    a: av,
                    dst: d,
                });
                d
            }
            UnOp::Abs => {
                let d = self.fresh();
                self.emit(VirOp::Un {
                    op: VUn::Abs,
                    a: av,
                    dst: d,
                });
                d
            }
            UnOp::Not => {
                // Masks are 1/0 lanes: NOT x = 1 - x.
                let one = self.fresh();
                self.emit(VirOp::Imm {
                    value: 1.0,
                    dst: one,
                });
                let d = self.fresh();
                self.emit(VirOp::Bin {
                    op: VBin::Sub,
                    a: one,
                    b: av,
                    dst: d,
                });
                d
            }
            UnOp::Sqrt | UnOp::Sin | UnOp::Cos | UnOp::Exp | UnOp::Log => {
                let lib = match op {
                    UnOp::Sqrt => LibOp::Sqrt,
                    UnOp::Sin => LibOp::Sin,
                    UnOp::Cos => LibOp::Cos,
                    UnOp::Exp => LibOp::Exp,
                    _ => LibOp::Log,
                };
                let d = self.fresh();
                self.emit(VirOp::Lib {
                    op: lib,
                    a: av,
                    b: None,
                    dst: d,
                });
                d
            }
            UnOp::ToFloat64 | UnOp::ToFloat32 => av, // numeric identity on the f64 path
            UnOp::ToInt => {
                let d = self.fresh();
                self.emit(VirOp::Un {
                    op: VUn::Trunc,
                    a: av,
                    dst: d,
                });
                d
            }
        };
        Ok((d, out_ty))
    }

    fn lower_binary(
        &mut self,
        op: BinOp,
        a: &Value,
        b: &Value,
    ) -> Result<(Vr, ScalarType), BackendError> {
        // Integer exponent expansion before lowering the operands twice.
        if op == BinOp::Pow {
            if let Some(Const::I32(n)) = b.as_const() {
                if (0..=4).contains(&n) {
                    return self.lower_int_pow(a, n as u32);
                }
            }
        }
        let (av, at) = self.lower_value(a)?;
        let (bv, bt) = self.lower_value(b)?;
        let joined = at.promote(bt).unwrap_or(ScalarType::Float64);
        let result_ty = op.result_type(joined);
        let is_int = joined == ScalarType::Integer32;

        let d = match op {
            BinOp::Add => self.bin(VBin::Add, av, bv),
            BinOp::Sub => self.bin(VBin::Sub, av, bv),
            BinOp::Mul => self.bin(VBin::Mul, av, bv),
            BinOp::Max => self.bin(VBin::Max, av, bv),
            BinOp::Min => self.bin(VBin::Min, av, bv),
            BinOp::Div => {
                let q = self.bin(VBin::Div, av, bv);
                if is_int {
                    let d = self.fresh();
                    self.emit(VirOp::Un {
                        op: VUn::Trunc,
                        a: q,
                        dst: d,
                    });
                    d
                } else {
                    q
                }
            }
            BinOp::Mod => {
                // MOD(a,b) = a - trunc(a/b)*b for floats and integers.
                let q = self.bin(VBin::Div, av, bv);
                let t = self.fresh();
                self.emit(VirOp::Un {
                    op: VUn::Trunc,
                    a: q,
                    dst: t,
                });
                let m = self.bin(VBin::Mul, t, bv);
                self.bin(VBin::Sub, av, m)
            }
            BinOp::Pow => {
                let d = self.fresh();
                self.emit(VirOp::Lib {
                    op: LibOp::Pow,
                    a: av,
                    b: Some(bv),
                    dst: d,
                });
                if is_int {
                    let t = self.fresh();
                    self.emit(VirOp::Un {
                        op: VUn::Trunc,
                        a: d,
                        dst: t,
                    });
                    t
                } else {
                    d
                }
            }
            BinOp::Eq => self.cmp(VCmp::Eq, av, bv),
            BinOp::Ne => self.cmp(VCmp::Ne, av, bv),
            BinOp::Lt => self.cmp(VCmp::Lt, av, bv),
            BinOp::Le => self.cmp(VCmp::Le, av, bv),
            BinOp::Gt => self.cmp(VCmp::Gt, av, bv),
            BinOp::Ge => self.cmp(VCmp::Ge, av, bv),
            // Masks are 1/0 lanes: AND = min, OR = max (exact on 0/1).
            BinOp::And => self.bin(VBin::Min, av, bv),
            BinOp::Or => self.bin(VBin::Max, av, bv),
        };
        Ok((d, result_ty))
    }

    fn lower_int_pow(&mut self, a: &Value, n: u32) -> Result<(Vr, ScalarType), BackendError> {
        let (av, at) = self.lower_value(a)?;
        if n == 0 {
            let d = self.fresh();
            self.emit(VirOp::Imm { value: 1.0, dst: d });
            return Ok((d, at));
        }
        let mut acc = av;
        for _ in 1..n {
            acc = self.bin(VBin::Mul, acc, av);
        }
        Ok((acc, at))
    }

    fn bin(&mut self, op: VBin, a: Vr, b: Vr) -> Vr {
        let d = self.fresh();
        self.emit(VirOp::Bin { op, a, b, dst: d });
        d
    }

    fn cmp(&mut self, op: VCmp, a: Vr, b: Vr) -> Vr {
        let d = self.fresh();
        self.emit(VirOp::Cmp { op, a, b, dst: d });
        d
    }

    pub(crate) fn finish(self) -> LoweredBlock {
        LoweredBlock {
            ops: self.ops,
            array_params: self.array_params,
            scalar_params: self.scalar_params,
        }
    }
}

/// Lower a block's clauses to VIR.
///
/// # Errors
///
/// Fails when a clause is not grid-local (the CM2/NIR splitter only
/// sends grid-local clauses here, so an error indicates a pipeline bug
/// upstream).
pub fn lower_block(
    shape: &Shape,
    clauses: &[MoveClause],
    ctx: &mut Ctx,
) -> Result<LoweredBlock, BackendError> {
    let mut lw = BlockLowerer::new(shape, ctx);
    for c in clauses {
        lw.lower_clause(c)?;
    }
    Ok(lw.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;

    fn ctx_with_arrays(names: &[&str], n: i64) -> Ctx {
        let mut ctx = Ctx::new();
        for name in names {
            ctx.bind_var((*name).into(), dfield(grid(&[n]), float64()));
        }
        ctx
    }

    #[test]
    fn fig8_block_loads_once_and_stores_once() {
        // k = 2*k + 5
        let mut ctx = Ctx::new();
        ctx.bind_var("k".into(), dfield(grid(&[64]), int32()));
        let shape = Shape::grid(&[64]);
        let clause = MoveClause::unmasked(
            avar("k", everywhere()),
            add(mul(int(2), ld("k", everywhere())), int(5)),
        );
        let lowered = lower_block(&shape, &[clause], &mut ctx).unwrap();
        let loads = lowered
            .ops
            .iter()
            .filter(|o| matches!(o, VirOp::LoadVar { .. }))
            .count();
        let stores = lowered
            .ops
            .iter()
            .filter(|o| matches!(o, VirOp::Store { .. }))
            .count();
        assert_eq!(loads, 1);
        assert_eq!(stores, 1);
        // Two streams: k-read and k-write.
        assert_eq!(lowered.array_params.len(), 2);
    }

    #[test]
    fn fused_clauses_share_registers() {
        // a = b + 1; c = a * b : 'a' and 'b' flow in registers; only b
        // is loaded, and 'a' is never re-loaded.
        let mut ctx = ctx_with_arrays(&["a", "b", "c"], 32);
        let shape = Shape::grid(&[32]);
        let clauses = vec![
            MoveClause::unmasked(
                avar("a", everywhere()),
                add(ld("b", everywhere()), f64c(1.0)),
            ),
            MoveClause::unmasked(
                avar("c", everywhere()),
                mul(ld("a", everywhere()), ld("b", everywhere())),
            ),
        ];
        let lowered = lower_block(&shape, &clauses, &mut ctx).unwrap();
        let loads = lowered
            .ops
            .iter()
            .filter(|o| matches!(o, VirOp::LoadVar { .. }))
            .count();
        assert_eq!(loads, 1, "only b is loaded; a flows in a register");
    }

    #[test]
    fn masked_clause_selects_against_old_value() {
        let mut ctx = ctx_with_arrays(&["a", "b"], 32);
        let shape = Shape::grid(&[32]);
        let clause = MoveClause {
            mask: bin(f90y_nir::BinOp::Gt, ld("b", everywhere()), f64c(0.0)),
            src: f64c(1.0),
            dst: avar("a", everywhere()),
        };
        let lowered = lower_block(&shape, &[clause], &mut ctx).unwrap();
        assert!(lowered.ops.iter().any(|o| matches!(o, VirOp::Sel { .. })));
        // Old value of a must be loaded for the unmasked lanes.
        assert!(lowered
            .array_params
            .iter()
            .any(|p| matches!(p, ArrayParam::Read(v) if v == "a")));
    }

    #[test]
    fn scalar_variables_become_scalar_params() {
        let mut ctx = ctx_with_arrays(&["a"], 32);
        ctx.bind_var("n".into(), float64());
        let shape = Shape::grid(&[32]);
        let clause = MoveClause::unmasked(avar("a", everywhere()), svar("n"));
        let lowered = lower_block(&shape, &[clause], &mut ctx).unwrap();
        assert_eq!(lowered.scalar_params, vec![svar("n")]);
    }

    #[test]
    fn integer_division_truncates() {
        let mut ctx = Ctx::new();
        ctx.bind_var("k".into(), dfield(grid(&[8]), int32()));
        let shape = Shape::grid(&[8]);
        let clause =
            MoveClause::unmasked(avar("k", everywhere()), div(ld("k", everywhere()), int(2)));
        let lowered = lower_block(&shape, &[clause], &mut ctx).unwrap();
        assert!(lowered
            .ops
            .iter()
            .any(|o| matches!(o, VirOp::Un { op: VUn::Trunc, .. })));
    }

    #[test]
    fn pow2_expands_to_multiply() {
        let mut ctx = ctx_with_arrays(&["a", "b"], 8);
        let shape = Shape::grid(&[8]);
        let clause = MoveClause::unmasked(
            avar("b", everywhere()),
            bin(f90y_nir::BinOp::Pow, ld("a", everywhere()), int(2)),
        );
        let lowered = lower_block(&shape, &[clause], &mut ctx).unwrap();
        assert!(
            !lowered.ops.iter().any(|o| matches!(o, VirOp::Lib { .. })),
            "x**2 should expand to a multiply, not a library call"
        );
    }

    #[test]
    fn communication_in_a_block_is_a_pipeline_bug() {
        let mut ctx = ctx_with_arrays(&["a", "b"], 8);
        let shape = Shape::grid(&[8]);
        let clause = MoveClause::unmasked(
            avar("b", everywhere()),
            fcncall(
                "cshift",
                vec![
                    (float64(), ld("a", everywhere())),
                    (int32(), int(1)),
                    (int32(), int(1)),
                ],
            ),
        );
        assert!(lower_block(&shape, &[clause], &mut ctx).is_err());
    }

    #[test]
    fn where_elsewhere_mask_is_computed_once() {
        // Two masked clauses over M and NOT M (the WHERE/ELSEWHERE
        // blocking of paper §4.2): the comparison must lower once.
        let mut ctx = ctx_with_arrays(&["a", "b", "x"], 16);
        let shape = Shape::grid(&[16]);
        let m = bin(f90y_nir::BinOp::Gt, ld("x", everywhere()), f64c(0.0));
        let clauses = vec![
            MoveClause {
                mask: m.clone(),
                src: f64c(1.0),
                dst: avar("a", everywhere()),
            },
            MoveClause {
                mask: un(f90y_nir::UnOp::Not, m),
                src: f64c(2.0),
                dst: avar("b", everywhere()),
            },
        ];
        let lowered = lower_block(&shape, &clauses, &mut ctx).unwrap();
        let cmps = lowered
            .ops
            .iter()
            .filter(|o| matches!(o, VirOp::Cmp { .. }))
            .count();
        assert_eq!(
            cmps, 1,
            "the mask comparison must be reused, not recomputed"
        );
    }

    #[test]
    fn cse_invalidates_after_a_store() {
        // b = a + 1; a = 0; c = a + 1 — the second a+1 must NOT reuse
        // the first (a changed in between).
        let mut ctx = ctx_with_arrays(&["a", "b", "c"], 16);
        let shape = Shape::grid(&[16]);
        let clauses = vec![
            MoveClause::unmasked(
                avar("b", everywhere()),
                add(ld("a", everywhere()), f64c(1.0)),
            ),
            MoveClause::unmasked(avar("a", everywhere()), f64c(0.0)),
            MoveClause::unmasked(
                avar("c", everywhere()),
                add(ld("a", everywhere()), f64c(1.0)),
            ),
        ];
        let lowered = lower_block(&shape, &clauses, &mut ctx).unwrap();
        let adds = lowered
            .ops
            .iter()
            .filter(|o| matches!(o, VirOp::Bin { op: VBin::Add, .. }))
            .count();
        assert_eq!(adds, 2, "a+1 must be recomputed after a is overwritten");
    }
}
