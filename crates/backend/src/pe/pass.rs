//! Named VIR-level peephole passes.
//!
//! The PE code generator's peephole rewrites ([`crate::pe::peephole`])
//! get the same structure as the middle end's NIR passes: each is a
//! named [`VirPass`] whose run produces a
//! [`f90y_transform::PassOutcome`], and a block's pass sequence yields
//! per-pass [`f90y_transform::PassReport`]s — so `fuse-madd` statistics
//! read exactly like `blocking-fuse` statistics one layer up, and a
//! harness can account for every rewrite in the whole compiler with one
//! report shape.

use f90y_transform::{PassOutcome, PassReport};

use crate::pe::peephole;
use crate::pe::vir::VirOp;
use crate::ArrayParam;

/// A named rewriting pass over one lowered block's VIR.
pub trait VirPass {
    /// The registered name (kebab-case, `vir-*`/peephole namespace).
    fn name(&self) -> &'static str;

    /// Apply the pass to the block's operations.
    fn run(&self, ops: &mut Vec<VirOp>, params: &[ArrayParam]) -> PassOutcome;
}

/// Dead-code elimination: drop operations whose results are never used
/// (iterated to a fixpoint inside the pass).
struct VirDcePass;

impl VirPass for VirDcePass {
    fn name(&self) -> &'static str {
        "vir-dce"
    }

    fn run(&self, ops: &mut Vec<VirOp>, _params: &[ArrayParam]) -> PassOutcome {
        PassOutcome::rewrites(peephole::dead_code(ops))
    }
}

/// Chained multiply-add recognition (paper §5.2).
struct FuseMaddPass;

impl VirPass for FuseMaddPass {
    fn name(&self) -> &'static str {
        "fuse-madd"
    }

    fn run(&self, ops: &mut Vec<VirOp>, _params: &[ArrayParam]) -> PassOutcome {
        PassOutcome::rewrites(peephole::fuse_madd(ops))
    }
}

/// Fold single-use loads into memory operands of their consumers.
struct ChainLoadsPass;

impl VirPass for ChainLoadsPass {
    fn name(&self) -> &'static str {
        "chain-loads"
    }

    fn run(&self, ops: &mut Vec<VirOp>, params: &[ArrayParam]) -> PassOutcome {
        PassOutcome::rewrites(peephole::chain_loads(ops, params))
    }
}

/// Every registered VIR pass name, in default order.
pub const VIR_PASS_NAMES: &[&str] = &["vir-dce", "fuse-madd", "chain-loads"];

/// Look a VIR pass up by its registered name.
#[must_use]
pub fn vir_pass_by_name(name: &str) -> Option<Box<dyn VirPass>> {
    match name {
        "vir-dce" => Some(Box::new(VirDcePass)),
        "fuse-madd" => Some(Box::new(FuseMaddPass)),
        "chain-loads" => Some(Box::new(ChainLoadsPass)),
        _ => None,
    }
}

/// The pass sequence the [`crate::pe::PeOptions`] switches describe:
/// a dead-code sweep, the enabled peepholes, then a final sweep (fusing
/// multiplies can orphan immediates).
#[must_use]
pub fn passes_for(options: crate::pe::PeOptions) -> Vec<Box<dyn VirPass>> {
    let mut passes: Vec<Box<dyn VirPass>> = vec![Box::new(VirDcePass)];
    if options.fuse_madd {
        passes.push(Box::new(FuseMaddPass));
    }
    if options.chain_loads {
        passes.push(Box::new(ChainLoadsPass));
    }
    passes.push(Box::new(VirDcePass));
    passes
}

/// Run a pass sequence over one block's VIR; one report per pass run,
/// in execution order — the same shape the NIR pass manager produces.
pub fn run_vir_passes(
    passes: &[Box<dyn VirPass>],
    ops: &mut Vec<VirOp>,
    params: &[ArrayParam],
) -> Vec<PassReport> {
    passes
        .iter()
        .map(|p| {
            let outcome = p.run(ops, params);
            PassReport {
                name: p.name().to_string(),
                rewrites: outcome.rewrites,
                counters: outcome
                    .counters
                    .into_iter()
                    .map(|(n, v)| (n.to_string(), v))
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::vir::{VBin, Vr};
    use crate::pe::PeOptions;

    fn madd_shape_ops() -> Vec<VirOp> {
        vec![
            VirOp::LoadVar {
                param: 0,
                dst: Vr(0),
                chained: false,
            },
            VirOp::Imm {
                value: 3.0,
                dst: Vr(1),
            },
            VirOp::Imm {
                value: 4.0,
                dst: Vr(2),
            },
            VirOp::Bin {
                op: VBin::Mul,
                a: Vr(0),
                b: Vr(1),
                dst: Vr(3),
            },
            VirOp::Bin {
                op: VBin::Add,
                a: Vr(3),
                b: Vr(2),
                dst: Vr(4),
            },
            VirOp::Store {
                param: 1,
                src: Vr(4),
            },
        ]
    }

    fn madd_params() -> Vec<ArrayParam> {
        vec![ArrayParam::Read("a".into()), ArrayParam::Write("b".into())]
    }

    #[test]
    fn the_full_sequence_reports_each_pass_by_name() {
        let mut ops = madd_shape_ops();
        let params = madd_params();
        let reports = run_vir_passes(&passes_for(PeOptions::full()), &mut ops, &params);
        let names: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["vir-dce", "fuse-madd", "chain-loads", "vir-dce"]);
        let fused: usize = reports
            .iter()
            .filter(|r| r.name == "fuse-madd")
            .map(|r| r.rewrites)
            .sum();
        assert_eq!(fused, 1);
        assert!(ops.iter().any(|o| matches!(o, VirOp::Madd { .. })));
    }

    #[test]
    fn naive_options_run_only_the_dce_sweeps() {
        let mut ops = madd_shape_ops();
        let params = madd_params();
        let reports = run_vir_passes(&passes_for(PeOptions::naive()), &mut ops, &params);
        let names: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["vir-dce", "vir-dce"]);
        assert!(!ops.iter().any(|o| matches!(o, VirOp::Madd { .. })));
    }

    #[test]
    fn unknown_vir_pass_names_resolve_to_none() {
        assert!(vir_pass_by_name("fuse-madd").is_some());
        assert!(vir_pass_by_name("no-such-pass").is_none());
        for name in VIR_PASS_NAMES {
            assert!(vir_pass_by_name(name).is_some());
        }
    }
}
