//! The PE compiler's vector intermediate form.
//!
//! A computation block lowers first to this SSA-style three-address form
//! over unbounded virtual registers; peephole rewriting (chained
//! multiply-add recognition, dead-code removal) and load chaining happen
//! here, and register allocation maps it onto the eight PEAC vector
//! registers.

use f90y_peac::isa::LibOp;

/// A virtual vector register (single-assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vr(pub usize);

/// Two-operand arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VBin {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

/// Comparison predicates (masks are 1.0/0.0 lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VCmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

/// One-operand operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VUn {
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Truncation toward zero (integer semantics on the float path).
    Trunc,
}

/// VIR operations.
#[derive(Debug, Clone, PartialEq)]
pub enum VirOp {
    /// Broadcast an immediate.
    Imm {
        /// The constant.
        value: f64,
        /// Defined register.
        dst: Vr,
    },
    /// Load the next vector of pointer parameter `param`.
    LoadVar {
        /// Pointer-parameter index.
        param: usize,
        /// Defined register.
        dst: Vr,
        /// Set by load chaining: folded into its single use as a memory
        /// operand instead of being a standalone `flodv`.
        chained: bool,
    },
    /// Broadcast scalar parameter `param`.
    LoadScalar {
        /// Scalar-parameter index.
        param: usize,
        /// Defined register.
        dst: Vr,
    },
    /// Two-operand arithmetic.
    Bin {
        /// Operation.
        op: VBin,
        /// Left operand.
        a: Vr,
        /// Right operand.
        b: Vr,
        /// Defined register.
        dst: Vr,
    },
    /// Chained multiply-add `dst = a*b + c` (created by peephole
    /// rewriting).
    Madd {
        /// Multiplicand.
        a: Vr,
        /// Multiplier.
        b: Vr,
        /// Addend.
        c: Vr,
        /// Defined register.
        dst: Vr,
    },
    /// One-operand arithmetic.
    Un {
        /// Operation.
        op: VUn,
        /// Operand.
        a: Vr,
        /// Defined register.
        dst: Vr,
    },
    /// Comparison producing a mask.
    Cmp {
        /// Predicate.
        op: VCmp,
        /// Left operand.
        a: Vr,
        /// Right operand.
        b: Vr,
        /// Defined register.
        dst: Vr,
    },
    /// Masked select `dst = mask ? a : b`.
    Sel {
        /// Mask register.
        mask: Vr,
        /// Value where the mask holds.
        a: Vr,
        /// Value where it does not.
        b: Vr,
        /// Defined register.
        dst: Vr,
    },
    /// Vector library call.
    Lib {
        /// The routine.
        op: LibOp,
        /// First operand.
        a: Vr,
        /// Second operand (`Pow`).
        b: Option<Vr>,
        /// Defined register.
        dst: Vr,
    },
    /// Store to the next vector of pointer parameter `param`.
    Store {
        /// Pointer-parameter index.
        param: usize,
        /// Stored register.
        src: Vr,
    },
}

impl VirOp {
    /// The register this op defines, if any.
    pub fn def(&self) -> Option<Vr> {
        use VirOp::*;
        match self {
            Imm { dst, .. }
            | LoadVar { dst, .. }
            | LoadScalar { dst, .. }
            | Bin { dst, .. }
            | Madd { dst, .. }
            | Un { dst, .. }
            | Cmp { dst, .. }
            | Sel { dst, .. }
            | Lib { dst, .. } => Some(*dst),
            Store { .. } => None,
        }
    }

    /// The registers this op reads, in operand order.
    pub fn uses(&self) -> Vec<Vr> {
        use VirOp::*;
        match self {
            Imm { .. } | LoadVar { .. } | LoadScalar { .. } => vec![],
            Bin { a, b, .. } | Cmp { a, b, .. } => vec![*a, *b],
            Madd { a, b, c, .. } => vec![*a, *b, *c],
            Un { a, .. } => vec![*a],
            Sel { mask, a, b, .. } => vec![*mask, *a, *b],
            Lib { a, b, .. } => {
                let mut v = vec![*a];
                if let Some(b) = b {
                    v.push(*b);
                }
                v
            }
            Store { src, .. } => vec![*src],
        }
    }

    /// `true` for operations that accept a chained memory or broadcast
    /// scalar operand in place of a vector register.
    pub fn accepts_folded_operands(&self) -> bool {
        matches!(
            self,
            VirOp::Bin { .. }
                | VirOp::Madd { .. }
                | VirOp::Cmp { .. }
                | VirOp::Un { .. }
                | VirOp::Lib { .. }
                | VirOp::Sel { .. }
        )
    }
}

/// Count uses of every virtual register in a sequence.
pub fn use_counts(ops: &[VirOp]) -> std::collections::HashMap<Vr, usize> {
    let mut counts = std::collections::HashMap::new();
    for op in ops {
        for u in op.uses() {
            *counts.entry(u).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_use_accounting() {
        let op = VirOp::Madd {
            a: Vr(1),
            b: Vr(2),
            c: Vr(3),
            dst: Vr(4),
        };
        assert_eq!(op.def(), Some(Vr(4)));
        assert_eq!(op.uses(), vec![Vr(1), Vr(2), Vr(3)]);
        let st = VirOp::Store {
            param: 0,
            src: Vr(4),
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![Vr(4)]);
    }

    #[test]
    fn use_counts_sum_over_ops() {
        let ops = vec![
            VirOp::Imm {
                value: 1.0,
                dst: Vr(0),
            },
            VirOp::Bin {
                op: VBin::Add,
                a: Vr(0),
                b: Vr(0),
                dst: Vr(1),
            },
            VirOp::Store {
                param: 0,
                src: Vr(1),
            },
        ];
        let counts = use_counts(&ops);
        assert_eq!(counts[&Vr(0)], 2);
        assert_eq!(counts[&Vr(1)], 1);
    }
}
