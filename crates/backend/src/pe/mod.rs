//! The PE/NIR compiler: computation blocks → PEAC routines.
//!
//! "The prototype CM/PE node compiler is carefully tuned for optimizing
//! the loop over local data in each processor … CM/PE therefore only
//! needs to process procedures whose body is a single loop containing a
//! sequence of (optionally masked) moves from the local points of source
//! arrays to the corresponding points in the target." (paper §5.2)
//!
//! Pipeline: [`lower`] (clauses → VIR with cross-clause register
//! flow) → [`peephole`] (dead code, chained multiply-add, load
//! chaining) → [`emit`] (Belady register allocation with spill
//! rematerialization, overlap scheduling, PEAC assembly).

pub mod emit;
pub mod lower;
pub mod pass;
pub mod peephole;
pub mod vir;

pub use pass::{vir_pass_by_name, VirPass, VIR_PASS_NAMES};

use f90y_nir::typecheck::Ctx;
use f90y_nir::{MoveClause, Shape, Value};
use f90y_peac::Routine;

use crate::{ArrayParam, BackendError};

/// PE code-generation switches. The full prototype enables everything;
/// the \*Lisp-fieldwise baseline compiler disables the Weitek-specific
/// optimizations its interpreted elemental operations never got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeOptions {
    /// Recognise chained multiply-adds.
    pub fuse_madd: bool,
    /// Fold single-use loads into memory operands.
    pub chain_loads: bool,
    /// Overlap memory traffic with arithmetic.
    pub overlap: bool,
}

impl PeOptions {
    /// Everything on (the prototype and the CMF-like baseline).
    pub fn full() -> Self {
        PeOptions {
            fuse_madd: true,
            chain_loads: true,
            overlap: true,
        }
    }

    /// Everything off (interpreted elemental operations).
    pub fn naive() -> Self {
        PeOptions {
            fuse_madd: false,
            chain_loads: false,
            overlap: false,
        }
    }
}

impl Default for PeOptions {
    fn default() -> Self {
        PeOptions::full()
    }
}

/// What the PE code generator did to one sub-block — the Figure 12
/// metrics, surfaced per block so the telemetry layer can aggregate
/// them across a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeStats {
    /// VIR ops removed by the dead-code sweeps.
    pub dead_ops_removed: usize,
    /// Chained multiply-adds recognised.
    pub madds_fused: usize,
    /// Single-use loads folded into memory operands.
    pub loads_chained: usize,
    /// `SpillStore` instructions emitted (each begins one of the
    /// paper's 18-cycle spill/restore pairs).
    pub spill_stores: usize,
    /// `SpillLoad` instructions emitted.
    pub spill_loads: usize,
    /// Distinct vector registers the emitted routine touches (≤
    /// [`f90y_peac::isa::NUM_VREGS`]): the block's register pressure.
    pub vregs_used: usize,
    /// PEAC instructions in the emitted routine body.
    pub instructions: usize,
}

impl PeStats {
    /// Component-wise sum (aggregating across sub-blocks; `vregs_used`
    /// takes the maximum, being a pressure not a volume).
    pub fn merge(&self, other: &PeStats) -> PeStats {
        PeStats {
            dead_ops_removed: self.dead_ops_removed + other.dead_ops_removed,
            madds_fused: self.madds_fused + other.madds_fused,
            loads_chained: self.loads_chained + other.loads_chained,
            spill_stores: self.spill_stores + other.spill_stores,
            spill_loads: self.spill_loads + other.spill_loads,
            vregs_used: self.vregs_used.max(other.vregs_used),
            instructions: self.instructions + other.instructions,
        }
    }
}

/// One compiled sub-block (most blocks compile whole; blocks whose
/// dispatch signature would overflow the pointer file are split).
#[derive(Debug, Clone)]
pub struct CompiledBlock {
    /// The PEAC routine.
    pub routine: Routine,
    /// Pointer parameters in order.
    pub array_params: Vec<ArrayParam>,
    /// Scalar parameters in order.
    pub scalar_params: Vec<Value>,
    /// The clauses this sub-block implements.
    pub clauses: Vec<MoveClause>,
    /// Code-generation statistics (a derived view over `vir_passes`,
    /// plus the emitter's spill/register/instruction counts).
    pub stats: PeStats,
    /// Per-pass reports from the named VIR peephole passes, in
    /// execution order — the same report shape the NIR pass manager
    /// produces (see [`pass`]).
    pub vir_passes: Vec<f90y_transform::PassReport>,
}

/// Compile a computation block, splitting it as needed to fit the
/// pointer/scalar register files.
///
/// # Errors
///
/// Fails when even a single clause cannot fit the files or the clauses
/// are not grid-local.
pub fn compile_block(
    name: &str,
    shape: &Shape,
    clauses: &[MoveClause],
    ctx: &mut Ctx,
) -> Result<Vec<CompiledBlock>, BackendError> {
    compile_block_with(name, shape, clauses, ctx, PeOptions::full())
}

/// [`compile_block`] with explicit code-generation switches.
///
/// # Errors
///
/// As [`compile_block`].
pub fn compile_block_with(
    name: &str,
    shape: &Shape,
    clauses: &[MoveClause],
    ctx: &mut Ctx,
    options: PeOptions,
) -> Result<Vec<CompiledBlock>, BackendError> {
    match try_compile(name, shape, clauses, ctx, options) {
        Ok(block) => Ok(vec![block]),
        Err(BackendError::Malformed(msg))
            if msg.contains("pointer streams") || msg.contains("scalar arguments") =>
        {
            if clauses.len() <= 1 {
                return Err(BackendError::Malformed(format!(
                    "single clause exceeds the register files: {msg}"
                )));
            }
            let mid = clauses.len() / 2;
            let mut out =
                compile_block_with(&format!("{name}a"), shape, &clauses[..mid], ctx, options)?;
            out.extend(compile_block_with(
                &format!("{name}b"),
                shape,
                &clauses[mid..],
                ctx,
                options,
            )?);
            Ok(out)
        }
        Err(e) => Err(e),
    }
}

fn try_compile(
    name: &str,
    shape: &Shape,
    clauses: &[MoveClause],
    ctx: &mut Ctx,
    options: PeOptions,
) -> Result<CompiledBlock, BackendError> {
    let mut lowered = lower::lower_block(shape, clauses, ctx)?;
    let vir_passes = pass::run_vir_passes(
        &pass::passes_for(options),
        &mut lowered.ops,
        &lowered.array_params,
    );
    let mut stats = PeStats::default();
    for report in &vir_passes {
        match report.name.as_str() {
            "vir-dce" => stats.dead_ops_removed += report.rewrites,
            "fuse-madd" => stats.madds_fused += report.rewrites,
            "chain-loads" => stats.loads_chained += report.rewrites,
            _ => {}
        }
    }
    let routine = emit::emit_with(name, &lowered, options.overlap)?;
    let mut vregs = std::collections::BTreeSet::new();
    for instr in routine.body() {
        use f90y_peac::isa::Instr;
        match instr {
            Instr::SpillStore { .. } => stats.spill_stores += 1,
            Instr::SpillLoad { .. } => stats.spill_loads += 1,
            _ => {}
        }
        vregs.extend(instr.def());
        vregs.extend(instr.uses());
    }
    stats.vregs_used = vregs.len();
    stats.instructions = routine.len();
    Ok(CompiledBlock {
        routine,
        array_params: lowered.array_params,
        scalar_params: lowered.scalar_params,
        clauses: clauses.to_vec(),
        stats,
        vir_passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;

    #[test]
    fn oversized_block_splits() {
        // 20 independent writes, each needing its own store stream:
        // must split into sub-blocks of ≤ 16 streams.
        let mut ctx = Ctx::new();
        let mut clauses = Vec::new();
        for i in 0..20 {
            let name = format!("v{i}");
            ctx.bind_var(name.clone(), dfield(grid(&[8]), float64()));
            clauses.push(MoveClause::unmasked(
                avar(&name, everywhere()),
                f64c(i as f64),
            ));
        }
        let shape = Shape::grid(&[8]);
        let blocks = compile_block("big", &shape, &clauses, &mut ctx).unwrap();
        assert!(blocks.len() >= 2);
        let total: usize = blocks.iter().map(|b| b.clauses.len()).sum();
        assert_eq!(total, 20);
        for b in &blocks {
            assert!(b.array_params.len() <= f90y_peac::isa::NUM_PREGS as usize);
        }
    }
}
