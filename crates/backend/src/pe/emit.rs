//! Register allocation, spill placement, overlap scheduling and PEAC
//! emission.
//!
//! The virtual subgrid loop is "one basic block with a single back-edge,
//! \[so\] register allocation can be optimized" (paper §5.2): lifetimes
//! are exact use positions, and spilling uses Belady's
//! furthest-next-use rule. Immediates are *rematerialized* on restore
//! (an `fimmv` instead of an 18-cycle spill pair). The final pass marks
//! memory accesses overlapped with arithmetic up to the machine's
//! overlap budget ("spill/restore code may move up- or downstream from
//! the actual spill site, as overlapping permits", §6).

use std::collections::HashMap;

use f90y_peac::isa::{
    CmpOp, Instr, Mem, Operand, PReg, Routine, SReg, VReg, NUM_PREGS, NUM_SREGS, NUM_VREGS,
};

use crate::pe::lower::LoweredBlock;
use crate::pe::vir::{VBin, VCmp, VUn, VirOp, Vr};
use crate::BackendError;

/// How a virtual register reaches its consumers without holding a
/// machine vector register.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Folded {
    /// A chained memory operand.
    Mem(u8),
    /// A broadcast scalar register operand.
    Scalar(u8),
}

struct Allocator {
    instrs: Vec<Instr>,
    reg_of: HashMap<Vr, u8>,
    content: [Option<Vr>; NUM_VREGS as usize],
    spill_slot: HashMap<Vr, u16>,
    next_slot: u16,
    /// Register-operand use positions of each Vr (sorted).
    uses: HashMap<Vr, Vec<usize>>,
    /// Rematerializable immediates.
    remat: HashMap<Vr, f64>,
    folded: HashMap<Vr, Folded>,
}

impl Allocator {
    fn next_use_after(&self, vr: Vr, pos: usize) -> Option<usize> {
        self.uses
            .get(&vr)
            .and_then(|us| us.iter().copied().find(|&u| u > pos))
    }

    fn free_reg(&mut self, r: u8) {
        if let Some(vr) = self.content[r as usize].take() {
            self.reg_of.remove(&vr);
        }
    }

    fn take_reg(&mut self, pos: usize, locked: &[u8]) -> Result<u8, BackendError> {
        // Free any register holding a dead value.
        for r in 0..NUM_VREGS {
            if let Some(vr) = self.content[r as usize] {
                if self.next_use_after(vr, pos).is_none() && !locked.contains(&r) {
                    self.free_reg(r);
                }
            }
        }
        if let Some(r) = (0..NUM_VREGS).find(|r| self.content[*r as usize].is_none()) {
            return Ok(r);
        }
        // Belady: evict the unlocked value used furthest in the future.
        let victim = (0..NUM_VREGS)
            .filter(|r| !locked.contains(r))
            .max_by_key(|r| {
                let vr = self.content[*r as usize].expect("occupied");
                self.next_use_after(vr, pos).unwrap_or(usize::MAX)
            })
            .ok_or_else(|| {
                BackendError::Malformed(
                    "register pressure exceeds the vector file even with spilling".into(),
                )
            })?;
        let vr = self.content[victim as usize].expect("occupied");
        let needed_later = self.next_use_after(vr, pos).is_some();
        if needed_later && !self.remat.contains_key(&vr) && !self.spill_slot.contains_key(&vr) {
            let slot = self.next_slot;
            self.next_slot += 1;
            self.spill_slot.insert(vr, slot);
            self.instrs.push(Instr::SpillStore {
                src: VReg(victim),
                slot,
                overlapped: false,
            });
        }
        self.free_reg(victim);
        Ok(victim)
    }

    fn ensure(&mut self, vr: Vr, pos: usize, locked: &mut Vec<u8>) -> Result<u8, BackendError> {
        if let Some(&r) = self.reg_of.get(&vr) {
            locked.push(r);
            return Ok(r);
        }
        let r = self.take_reg(pos, locked)?;
        if let Some(&value) = self.remat.get(&vr) {
            self.instrs.push(Instr::Fimmv {
                value,
                dst: VReg(r),
            });
        } else if let Some(&slot) = self.spill_slot.get(&vr) {
            self.instrs.push(Instr::SpillLoad {
                slot,
                dst: VReg(r),
                overlapped: false,
            });
        } else {
            return Err(BackendError::Malformed(format!(
                "virtual register {vr:?} used before definition"
            )));
        }
        self.bind(vr, r);
        locked.push(r);
        Ok(r)
    }

    fn define(&mut self, vr: Vr, pos: usize, locked: &mut Vec<u8>) -> Result<u8, BackendError> {
        let r = self.take_reg(pos, locked)?;
        self.bind(vr, r);
        locked.push(r);
        Ok(r)
    }

    fn bind(&mut self, vr: Vr, r: u8) {
        self.content[r as usize] = Some(vr);
        self.reg_of.insert(vr, r);
    }

    fn operand(
        &mut self,
        vr: Vr,
        pos: usize,
        locked: &mut Vec<u8>,
    ) -> Result<Operand, BackendError> {
        match self.folded.get(&vr) {
            Some(Folded::Mem(p)) => Ok(Operand::M(Mem { ptr: PReg(*p) })),
            Some(Folded::Scalar(s)) => Ok(Operand::S(SReg(*s))),
            None => Ok(Operand::V(VReg(self.ensure(vr, pos, locked)?))),
        }
    }
}

/// Emit a lowered block as a PEAC routine.
///
/// # Errors
///
/// Fails when the dispatch signature exceeds the register files (the
/// caller splits the block and retries) or on a malformed VIR sequence.
pub fn emit(name: &str, lowered: &LoweredBlock) -> Result<Routine, BackendError> {
    emit_with(name, lowered, true)
}

/// [`emit`] with overlap scheduling switchable (the naive baselines do
/// not hide memory traffic).
///
/// # Errors
///
/// As [`emit`].
pub fn emit_with(
    name: &str,
    lowered: &LoweredBlock,
    overlap: bool,
) -> Result<Routine, BackendError> {
    let nptr = lowered.array_params.len();
    let nsc = lowered.scalar_params.len();
    if nptr > NUM_PREGS as usize {
        return Err(BackendError::Malformed(format!(
            "block needs {nptr} pointer streams; the file has {NUM_PREGS}"
        )));
    }
    if nsc > NUM_SREGS as usize {
        return Err(BackendError::Malformed(format!(
            "block needs {nsc} scalar arguments; the file has {NUM_SREGS}"
        )));
    }

    let ops = &lowered.ops;

    // Decide folding: chained loads become memory operands; scalar
    // loads become S-register operands unless some use demands a vector
    // register (a select's mask or a store source).
    let mut folded: HashMap<Vr, Folded> = HashMap::new();
    let mut needs_vreg: HashMap<Vr, bool> = HashMap::new();
    for op in ops {
        match op {
            VirOp::Store { src, .. } => {
                needs_vreg.insert(*src, true);
            }
            VirOp::Sel { mask, .. } => {
                needs_vreg.insert(*mask, true);
            }
            _ => {}
        }
    }
    for op in ops {
        match op {
            VirOp::LoadVar {
                param,
                dst,
                chained: true,
            } => {
                folded.insert(*dst, Folded::Mem(*param as u8));
            }
            VirOp::LoadScalar { param, dst } if !needs_vreg.get(dst).copied().unwrap_or(false) => {
                folded.insert(*dst, Folded::Scalar(*param as u8));
            }
            _ => {}
        }
    }

    // Register-operand use positions (folded operands need none).
    let mut uses: HashMap<Vr, Vec<usize>> = HashMap::new();
    for (pos, op) in ops.iter().enumerate() {
        for u in op.uses() {
            if !folded.contains_key(&u) {
                uses.entry(u).or_default().push(pos);
            }
        }
    }

    let mut remat = HashMap::new();
    for op in ops {
        if let VirOp::Imm { value, dst } = op {
            remat.insert(*dst, *value);
        }
    }

    let mut alloc = Allocator {
        instrs: Vec::new(),
        reg_of: HashMap::new(),
        content: [None; NUM_VREGS as usize],
        spill_slot: HashMap::new(),
        next_slot: 0,
        uses,
        remat,
        folded,
    };

    for (pos, op) in ops.iter().enumerate() {
        // Pre-lock every operand already resident: the dead-value sweep
        // inside take_reg must not free a register whose *last* use is
        // this very instruction (next_use_after is strictly-after).
        let mut locked: Vec<u8> = op
            .uses()
            .iter()
            .filter_map(|u| alloc.reg_of.get(u).copied())
            .collect();
        match op {
            VirOp::Imm { value, dst } => {
                // Defined lazily via rematerialization unless used right
                // away; defining eagerly keeps the common case simple.
                if alloc.uses.contains_key(dst) {
                    let r = alloc.define(*dst, pos, &mut locked)?;
                    alloc.instrs.push(Instr::Fimmv {
                        value: *value,
                        dst: VReg(r),
                    });
                }
            }
            VirOp::LoadVar {
                param,
                dst,
                chained,
            } => {
                if *chained {
                    continue; // folded into its consumer
                }
                let r = alloc.define(*dst, pos, &mut locked)?;
                alloc.instrs.push(Instr::Flodv {
                    src: Mem {
                        ptr: PReg(*param as u8),
                    },
                    dst: VReg(r),
                    overlapped: false,
                });
            }
            VirOp::LoadScalar { param, dst } => {
                if alloc.folded.contains_key(dst) {
                    continue; // consumed as an S operand
                }
                // Materialize the broadcast: r = 0; r = s + r.
                let r = alloc.define(*dst, pos, &mut locked)?;
                alloc.instrs.push(Instr::Fimmv {
                    value: 0.0,
                    dst: VReg(r),
                });
                alloc.instrs.push(Instr::Faddv {
                    a: Operand::S(SReg(*param as u8)),
                    b: Operand::V(VReg(r)),
                    dst: VReg(r),
                });
            }
            VirOp::Bin { op: bop, a, b, dst } => {
                let oa = alloc.operand(*a, pos, &mut locked)?;
                let ob = alloc.operand(*b, pos, &mut locked)?;
                let r = VReg(alloc.define(*dst, pos, &mut locked)?);
                alloc.instrs.push(match bop {
                    VBin::Add => Instr::Faddv {
                        a: oa,
                        b: ob,
                        dst: r,
                    },
                    VBin::Sub => Instr::Fsubv {
                        a: oa,
                        b: ob,
                        dst: r,
                    },
                    VBin::Mul => Instr::Fmulv {
                        a: oa,
                        b: ob,
                        dst: r,
                    },
                    VBin::Div => Instr::Fdivv {
                        a: oa,
                        b: ob,
                        dst: r,
                    },
                    VBin::Max => Instr::Fmaxv {
                        a: oa,
                        b: ob,
                        dst: r,
                    },
                    VBin::Min => Instr::Fminv {
                        a: oa,
                        b: ob,
                        dst: r,
                    },
                });
            }
            VirOp::Madd { a, b, c, dst } => {
                let oa = alloc.operand(*a, pos, &mut locked)?;
                let ob = alloc.operand(*b, pos, &mut locked)?;
                let oc = alloc.operand(*c, pos, &mut locked)?;
                let r = VReg(alloc.define(*dst, pos, &mut locked)?);
                alloc.instrs.push(Instr::Fmaddv {
                    a: oa,
                    b: ob,
                    c: oc,
                    dst: r,
                });
            }
            VirOp::Un { op: uop, a, dst } => {
                let oa = alloc.operand(*a, pos, &mut locked)?;
                let r = VReg(alloc.define(*dst, pos, &mut locked)?);
                alloc.instrs.push(match uop {
                    VUn::Neg => Instr::Fnegv { a: oa, dst: r },
                    VUn::Abs => Instr::Fabsv { a: oa, dst: r },
                    VUn::Trunc => Instr::Ftruncv { a: oa, dst: r },
                });
            }
            VirOp::Cmp { op: cop, a, b, dst } => {
                let oa = alloc.operand(*a, pos, &mut locked)?;
                let ob = alloc.operand(*b, pos, &mut locked)?;
                let r = VReg(alloc.define(*dst, pos, &mut locked)?);
                let op = match cop {
                    VCmp::Eq => CmpOp::Eq,
                    VCmp::Ne => CmpOp::Ne,
                    VCmp::Lt => CmpOp::Lt,
                    VCmp::Le => CmpOp::Le,
                    VCmp::Gt => CmpOp::Gt,
                    VCmp::Ge => CmpOp::Ge,
                };
                alloc.instrs.push(Instr::Fcmpv {
                    op,
                    a: oa,
                    b: ob,
                    dst: r,
                });
            }
            VirOp::Sel { mask, a, b, dst } => {
                let m = VReg(alloc.ensure(*mask, pos, &mut locked)?);
                let oa = alloc.operand(*a, pos, &mut locked)?;
                let ob = alloc.operand(*b, pos, &mut locked)?;
                let r = VReg(alloc.define(*dst, pos, &mut locked)?);
                alloc.instrs.push(Instr::Fselv {
                    mask: m,
                    a: oa,
                    b: ob,
                    dst: r,
                });
            }
            VirOp::Lib { op: lop, a, b, dst } => {
                let oa = alloc.operand(*a, pos, &mut locked)?;
                let ob = match b {
                    Some(b) => Some(alloc.operand(*b, pos, &mut locked)?),
                    None => None,
                };
                let r = VReg(alloc.define(*dst, pos, &mut locked)?);
                alloc.instrs.push(Instr::Flib {
                    op: *lop,
                    a: oa,
                    b: ob,
                    dst: r,
                });
            }
            VirOp::Store { param, src } => {
                let r = VReg(alloc.ensure(*src, pos, &mut locked)?);
                alloc.instrs.push(Instr::Fstrv {
                    src: r,
                    dst: Mem {
                        ptr: PReg(*param as u8),
                    },
                    overlapped: false,
                });
            }
        }
    }

    let mut instrs = alloc.instrs;
    if overlap {
        schedule_overlap(&mut instrs);
    }
    Ok(Routine::new(name, nptr, nsc, instrs)?)
}

/// Mark memory traffic overlapped with arithmetic: ordinary loads and
/// stores first (they become free), then spill traffic (which keeps its
/// issue cost). An access can only hide behind an arithmetic
/// instruction that does not consume its result, which in a single
/// dependence-chained block leaves about one pairing opportunity per
/// two arithmetic instructions — hence the budget.
fn schedule_overlap(instrs: &mut [Instr]) {
    let mut budget = instrs.iter().filter(|i| i.is_arith()).count() / 2;
    for i in instrs.iter_mut() {
        if budget == 0 {
            break;
        }
        match i {
            Instr::Flodv { overlapped, .. } | Instr::Fstrv { overlapped, .. } => {
                *overlapped = true;
                budget -= 1;
            }
            _ => {}
        }
    }
    for i in instrs.iter_mut() {
        if budget == 0 {
            break;
        }
        match i {
            Instr::SpillStore { overlapped, .. } | Instr::SpillLoad { overlapped, .. } => {
                *overlapped = true;
                budget -= 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::lower::lower_block;
    use crate::pe::peephole;
    use f90y_nir::build::*;
    use f90y_nir::typecheck::Ctx;
    use f90y_nir::{MoveClause, Shape};
    use f90y_peac::sim::{run_routine, NodeMemory};

    fn compile_simple(clauses: Vec<MoveClause>, arrays: &[&str], n: i64) -> Routine {
        let mut ctx = Ctx::new();
        for a in arrays {
            ctx.bind_var((*a).into(), dfield(grid(&[n]), float64()));
        }
        let shape = Shape::grid(&[n]);
        let mut lowered = lower_block(&shape, &clauses, &mut ctx).unwrap();
        peephole::dead_code(&mut lowered.ops);
        peephole::fuse_madd(&mut lowered.ops);
        peephole::chain_loads(&mut lowered.ops, &lowered.array_params);
        emit("t", &lowered).unwrap()
    }

    #[test]
    fn emitted_routine_executes_correctly() {
        // c = 2*a + b
        let r = compile_simple(
            vec![MoveClause::unmasked(
                avar("c", everywhere()),
                add(mul(f64c(2.0), ld("a", everywhere())), ld("b", everywhere())),
            )],
            &["a", "b", "c"],
            8,
        );
        // Expect an fmaddv from peephole fusion.
        assert!(r.body().iter().any(|i| matches!(i, Instr::Fmaddv { .. })));
        let mut mem = NodeMemory::new();
        let a = mem.alloc(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = mem.alloc(&[10.0; 8]);
        let c = mem.alloc_zeroed(8);
        // Param order: reads first in first-use order, then writes.
        run_routine(&r, &mut mem, &[a, b, c], &[], 8).unwrap();
        let out = mem.read(c, 8);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 2.0 * (i as f64 + 1.0) + 10.0);
        }
    }

    #[test]
    fn high_pressure_block_spills_and_still_computes() {
        // A 12-term sum of distinct arrays forces spills past 8 vregs
        // only if values are kept alive; the allocator frees dead values
        // eagerly, so build long-lived values via nested products.
        let names: Vec<String> = (0..10).map(|i| format!("x{i}")).collect();
        let mut sum = ld("x0", everywhere());
        for name in &names[1..] {
            sum = add(sum, ld(name, everywhere()));
        }
        // (x0*x1*…*x9) + sum: products keep many terms live.
        let mut prod_v = ld("x0", everywhere());
        for name in &names[1..] {
            prod_v = mul(prod_v, ld(name, everywhere()));
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut arrays = refs.clone();
        arrays.push("out");
        let r = compile_simple(
            vec![MoveClause::unmasked(
                avar("out", everywhere()),
                add(sum, prod_v),
            )],
            &arrays,
            4,
        );
        let mut mem = NodeMemory::new();
        let mut ptrs = Vec::new();
        for i in 0..10 {
            ptrs.push(mem.alloc(&[(i + 1) as f64; 4]));
        }
        let out = mem.alloc_zeroed(4);
        ptrs.push(out);
        run_routine(&r, &mut mem, &ptrs, &[], 4).unwrap();
        let expect = (1..=10).sum::<i64>() as f64 + (1..=10).product::<i64>() as f64;
        assert_eq!(mem.read(out, 4), vec![expect; 4]);
    }

    #[test]
    fn overlap_marks_memory_behind_arithmetic() {
        // Enough arithmetic (4+ ops) to grant a non-zero overlap budget.
        let r = compile_simple(
            vec![MoveClause::unmasked(
                avar("c", everywhere()),
                add(
                    mul(ld("a", everywhere()), ld("b", everywhere())),
                    div(sub(ld("a", everywhere()), ld("b", everywhere())), f64c(3.0)),
                ),
            )],
            &["a", "b", "c"],
            8,
        );
        let arith = r.body().iter().filter(|i| i.is_arith()).count();
        let overlapped = r.body().iter().filter(|i| i.is_overlapped()).count();
        assert!(overlapped >= 1, "some memory traffic should hide");
        assert!(
            overlapped <= arith / 2,
            "budget is half the arithmetic: {overlapped} vs {arith}"
        );
    }

    #[test]
    fn scalar_param_folds_into_operand() {
        let mut ctx = Ctx::new();
        ctx.bind_var("a".into(), dfield(grid(&[8]), float64()));
        ctx.bind_var("s".into(), float64());
        let shape = Shape::grid(&[8]);
        let mut lowered = lower_block(
            &shape,
            &[MoveClause::unmasked(
                avar("a", everywhere()),
                mul(svar("s"), ld("a", everywhere())),
            )],
            &mut ctx,
        )
        .unwrap();
        peephole::dead_code(&mut lowered.ops);
        peephole::chain_loads(&mut lowered.ops, &lowered.array_params);
        let r = emit("t", &lowered).unwrap();
        // The multiply should carry an S operand directly.
        assert!(r.body().iter().any(|i| matches!(
            i,
            Instr::Fmulv {
                a: Operand::S(_),
                ..
            } | Instr::Fmulv {
                b: Operand::S(_),
                ..
            }
        )));
        // a is both the load and the store stream of one buffer, as the
        // dispatch layer arranges on the real machine.
        let mut mem = NodeMemory::new();
        let a = mem.alloc(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        run_routine(&r, &mut mem, &[a, a], &[3.0], 8).unwrap();
        assert_eq!(
            mem.read(a, 8),
            vec![3.0, 6.0, 9.0, 12.0, 15.0, 18.0, 21.0, 24.0]
        );
    }
}
