//! Static machine-call profiling: predict every runtime call a
//! [`CompiledProgram`] will make — before any machine runs.
//!
//! [`profile`] walks the host program exactly as
//! [`crate::fe::HostExecutor`] executes it, but with *no data*: scalars
//! are tracked as known constants where they fold statically (loop
//! indices, literals, integer arithmetic) and `Unknown` otherwise;
//! arrays are tracked as geometry only (extents, lower bounds, element
//! type). Every machine call the executor would issue — dispatches,
//! grid shifts, router moves, reductions, whole-array reads and writes,
//! element traffic, coordinate generation — is recorded with the
//! geometry that determines its cost, producing a [`StaticProfile`]
//! whose counts reconcile bit-exactly with the machine counters and
//! flight-recorder events of a real run.
//!
//! The mirror is sound because the walk *is* the executor's control
//! flow: both resolve the same shapes, unroll the same `DO` loops over
//! the same statically-bounded domains, and issue the same call
//! sequence per statement. Where control flow or communication geometry
//! genuinely depends on runtime data (an `IF` on a reduction result, a
//! shift distance read from an array), the profile is not computable
//! and [`PlanError::DataDependent`] says exactly which value broke it —
//! the honest answer, rather than an approximate count.

use std::collections::{BTreeSet, HashMap};

use f90y_nir::array::Scalar as NScalar;
use f90y_nir::eval::{apply_binop, apply_unop};
use f90y_nir::{Const, Decl, FieldAction, LValue, MoveClause, ScalarType, Shape, Type, Value};
use f90y_transform::program::Binder;

use crate::fe::value_size;
use crate::{ArrayParam, CompiledProgram, HostStmt};

/// One predicted dispatch: which routine launches, with how many
/// arguments, over how many elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchSite {
    /// The node routine's name.
    pub routine: String,
    /// Array (pointer) arguments, coordinate streams included.
    pub array_args: usize,
    /// Scalar arguments pushed over the IFIFO.
    pub scalar_args: usize,
    /// Elements of the dispatch shape (per-node iteration count scales
    /// with this).
    pub elems: usize,
}

/// One predicted grid shift (`CSHIFT`/`EOSHIFT` runtime call).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftSite {
    /// Extents of the shifted array.
    pub dims: Vec<usize>,
    /// Zero-based shift axis.
    pub axis: usize,
    /// Shift distance (sign = direction).
    pub shift: i64,
    /// `true` for the end-off variant.
    pub eoshift: bool,
}

/// Every machine call a program will make, counted statically.
///
/// Raw call tallies, deliberately target-neutral: each target prices
/// the same calls differently (the CM/2 counts `comm_calls`, the MIMD
/// engine supersteps and messages, the accelerator bus transfers), so
/// the per-target fold lives with the code that knows those rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticProfile {
    /// Dispatches, in issue order.
    pub dispatches: Vec<DispatchSite>,
    /// Grid shifts, in issue order.
    pub shifts: Vec<ShiftSite>,
    /// Router (general-permutation) moves: masked/sectioned host moves,
    /// `SPREAD`, `TRANSPOSE`.
    pub router_moves: usize,
    /// Full-array reductions (`SUM`/`MAXVAL`/`MINVAL` runtime calls).
    pub reduces: usize,
    /// Data-carrying device allocations (`alloc_from`): host→machine.
    pub allocs_from: usize,
    /// Whole-array reads (machine→host), scope captures included.
    pub array_reads: usize,
    /// Whole-array writes (host→machine), initializers included.
    pub array_writes: usize,
    /// Single-element reads (host subscript evaluation).
    pub host_elem_reads: usize,
    /// Single-element writes (host subscripted assignment).
    pub host_elem_writes: usize,
    /// Distinct coordinate streams generated (machines cache by
    /// `(dims, lower, axis)`).
    pub coord_keys: BTreeSet<(Vec<usize>, Vec<i64>, usize)>,
    /// Host bookkeeping operations charged.
    pub host_ops: u64,
}

impl StaticProfile {
    /// Total grid-shift calls.
    pub fn shift_calls(&self) -> usize {
        self.shifts.len()
    }

    /// Total dispatch calls.
    pub fn dispatch_calls(&self) -> usize {
        self.dispatches.len()
    }
}

/// Why a static profile could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A value that decides control flow or communication geometry is
    /// only known at run time.
    DataDependent(String),
    /// The host program is malformed (the dynamic executor would fail
    /// the same way).
    Malformed(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::DataDependent(m) => write!(f, "data-dependent: {m}"),
            PlanError::Malformed(m) => write!(f, "malformed host program: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Compute the static machine-call profile of a compiled program.
///
/// # Errors
///
/// [`PlanError::DataDependent`] when a control-flow or communication
/// decision depends on runtime data; [`PlanError::Malformed`] when the
/// host program would fail dynamically too.
pub fn profile(program: &CompiledProgram) -> Result<StaticProfile, PlanError> {
    let mut planner = Planner {
        program,
        scopes: vec![HashMap::new()],
        domains: HashMap::new(),
        do_env: Vec::new(),
        out: StaticProfile::default(),
    };
    for b in &program.binders {
        match b {
            Binder::Domain(name, shape) => {
                let resolved = resolve(shape, &planner.domains)?;
                planner.domains.insert(name.clone(), resolved);
            }
            Binder::Decls(d) => planner.alloc_decls(d)?,
        }
    }
    planner.exec_stmts(&program.host)?;
    while let Some(scope) = planner.scopes.pop() {
        planner.capture(&scope);
    }
    Ok(planner.out)
}

/// Geometry of a live array: everything the cost of a call on it
/// depends on.
#[derive(Debug, Clone)]
struct ArrayInfo {
    dims: Vec<usize>,
}

#[derive(Debug, Clone)]
enum Entry {
    /// A scalar of a declared type; `None` when its value is only known
    /// at run time.
    Scalar(ScalarType, Option<NScalar>),
    Array(ArrayInfo),
}

/// The abstract counterpart of the executor's `HVal`.
#[derive(Debug, Clone)]
enum SVal {
    Scalar(Option<NScalar>),
    /// Array geometry; element values are never tracked.
    Array(Vec<usize>),
}

fn resolve(shape: &Shape, domains: &HashMap<String, Shape>) -> Result<Shape, PlanError> {
    shape
        .resolve(domains)
        .map_err(|e| PlanError::Malformed(e.to_string()))
}

struct Planner<'p> {
    program: &'p CompiledProgram,
    scopes: Vec<HashMap<String, Entry>>,
    domains: HashMap<String, Shape>,
    do_env: Vec<(String, Vec<i64>)>,
    out: StaticProfile,
}

impl Planner<'_> {
    fn capture(&mut self, scope: &HashMap<String, Entry>) {
        // The executor reads every array back when its scope exits.
        for entry in scope.values() {
            if matches!(entry, Entry::Array(_)) {
                self.out.array_reads += 1;
            }
        }
    }

    fn alloc_decls(&mut self, d: &Decl) -> Result<(), PlanError> {
        for (id, ty, init) in d.bindings() {
            let entry = match ty {
                Type::Scalar(st) => {
                    let mut v = Some(NScalar::zero(*st));
                    if let Some(e) = init {
                        let s = self.eval_scalar(e)?;
                        v = s.and_then(|s| s.convert(*st).ok());
                    }
                    Entry::Scalar(*st, v)
                }
                Type::DField { shape, elem: _ } => {
                    let resolved = resolve(shape, &self.domains)?;
                    let extents = resolved.extents();
                    let dims: Vec<usize> = extents.iter().map(|e| e.len()).collect();
                    self.out.host_ops += 2;
                    if init.is_some() {
                        // Initializer value is irrelevant to the call:
                        // one whole-array write either way.
                        if let Some(e) = init {
                            self.eval_scalar(e)?;
                        }
                        self.out.array_writes += 1;
                    }
                    Entry::Array(ArrayInfo { dims })
                }
            };
            self.scopes
                .last_mut()
                .expect("planner always has a scope")
                .insert(id.clone(), entry);
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<&Entry, PlanError> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .ok_or_else(|| PlanError::Malformed(format!("unbound variable '{name}'")))
    }

    fn lookup_array(&self, name: &str) -> Result<ArrayInfo, PlanError> {
        match self.lookup(name)? {
            Entry::Array(a) => Ok(a.clone()),
            Entry::Scalar(..) => Err(PlanError::Malformed(format!("'{name}' is a scalar"))),
        }
    }

    fn exec_stmts(&mut self, stmts: &[HostStmt]) -> Result<(), PlanError> {
        for s in stmts {
            self.exec_stmt(s)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &HostStmt) -> Result<(), PlanError> {
        match stmt {
            HostStmt::Dispatch(i) => self.dispatch(*i),
            HostStmt::Comm {
                dst,
                src,
                dim,
                shift,
                boundary,
            } => {
                let dim = self.need_i64(dim, "CSHIFT DIM")?;
                let shift = self.need_i64(shift, "CSHIFT SHIFT")?;
                let src_ref = self.lookup_array(src)?;
                let _dst_ref = self.lookup_array(dst)?;
                if dim < 1 || dim as usize > src_ref.dims.len() {
                    return Err(PlanError::Malformed(format!("bad CSHIFT DIM={dim}")));
                }
                if let Some(b) = boundary {
                    // Boundary value is cost-free; evaluate only for its
                    // element-traffic side effects.
                    self.eval_scalar(b)?;
                }
                self.out.shifts.push(ShiftSite {
                    dims: src_ref.dims,
                    axis: dim as usize - 1,
                    shift,
                    eoshift: boundary.is_some(),
                });
                self.out.array_reads += 1; // shifted temporary read back
                self.out.array_writes += 1; // written into the target
                self.out.host_ops += 4;
                Ok(())
            }
            HostStmt::HostMove(clauses) => {
                for c in clauses {
                    self.exec_host_clause(c)?;
                }
                Ok(())
            }
            HostStmt::Do { dom, shape, body } => {
                let resolved = resolve(shape, &self.domains)?;
                for p in resolved.points() {
                    self.out.host_ops += 2;
                    self.do_env.push((dom.clone(), p));
                    let r = self.exec_stmts(body);
                    self.do_env.pop();
                    r?;
                }
                Ok(())
            }
            HostStmt::While { cond, body } => {
                let mut fuel: u64 = 1_000_000;
                loop {
                    self.out.host_ops += value_size(cond);
                    let c = self.need_bool(cond, "WHILE condition")?;
                    if !c {
                        return Ok(());
                    }
                    self.exec_stmts(body)?;
                    fuel -= 1;
                    if fuel == 0 {
                        return Err(PlanError::Malformed("static WHILE exceeded fuel".into()));
                    }
                }
            }
            HostStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.out.host_ops += value_size(cond);
                if self.need_bool(cond, "IF condition")? {
                    self.exec_stmts(then_body)
                } else {
                    self.exec_stmts(else_body)
                }
            }
            HostStmt::WithDecl { decl, body } => {
                self.scopes.push(HashMap::new());
                let r = self.alloc_decls(decl).and_then(|()| self.exec_stmts(body));
                let scope = self.scopes.pop().expect("scope pushed above");
                self.capture(&scope);
                r
            }
            HostStmt::WithDomain { name, shape, body } => {
                let old = self.domains.insert(name.clone(), shape.clone());
                let r = self.exec_stmts(body);
                match old {
                    Some(s) => {
                        self.domains.insert(name.clone(), s);
                    }
                    None => {
                        self.domains.remove(name);
                    }
                }
                r
            }
        }
    }

    fn dispatch(&mut self, index: usize) -> Result<(), PlanError> {
        let block = self
            .program
            .blocks
            .get(index)
            .ok_or_else(|| PlanError::Malformed(format!("unknown block {index}")))?;
        let extents = block.shape.extents();
        let dims: Vec<usize> = extents.iter().map(|e| e.len()).collect();
        let lower: Vec<i64> = extents.iter().map(|e| e.lo).collect();
        for p in &block.array_params {
            match p {
                ArrayParam::Read(v) | ArrayParam::Write(v) => {
                    self.lookup_array(v)?;
                }
                ArrayParam::Coord(dim) => {
                    self.out
                        .coord_keys
                        .insert((dims.clone(), lower.clone(), *dim - 1));
                }
            }
        }
        for v in &block.scalar_params {
            self.eval_scalar(v)?;
        }
        self.out.host_ops += 2 + block.array_params.len() as u64 + block.scalar_params.len() as u64;
        self.out.dispatches.push(DispatchSite {
            routine: block.routine.name().to_string(),
            array_args: block.array_params.len(),
            scalar_args: block.scalar_params.len(),
            elems: dims.iter().product(),
        });
        Ok(())
    }

    fn exec_host_clause(&mut self, c: &MoveClause) -> Result<(), PlanError> {
        self.out.host_ops += value_size(&c.src) + value_size(&c.mask);
        match &c.dst {
            LValue::SVar(name) => {
                match self.eval_scalar(&c.mask)? {
                    Some(m) => {
                        let enabled = m
                            .to_bool()
                            .map_err(|e| PlanError::Malformed(e.to_string()))?;
                        if !enabled {
                            return Ok(());
                        }
                        let v = self.eval_scalar(&c.src)?;
                        self.assign_scalar(name, v)?;
                    }
                    None => {
                        // The guard is runtime data. If evaluating the
                        // source would touch the machine, the call count
                        // depends on it; a machine-silent source merely
                        // leaves the scalar unknown.
                        if touches_machine(&c.src) {
                            return Err(PlanError::DataDependent(format!(
                                "masked host move into '{name}' guards machine traffic"
                            )));
                        }
                        self.assign_scalar(name, None)?;
                    }
                }
                Ok(())
            }
            LValue::AVar(name, FieldAction::Subscript(ixs)) => {
                match self.eval_scalar(&c.mask)? {
                    Some(m) => {
                        let enabled = m
                            .to_bool()
                            .map_err(|e| PlanError::Malformed(e.to_string()))?;
                        if !enabled {
                            return Ok(());
                        }
                        let arr = self.lookup_array(name)?;
                        self.flat_index(&arr, ixs)?;
                        self.eval_scalar(&c.src)?;
                        self.out.host_elem_writes += 1;
                    }
                    None => {
                        return Err(PlanError::DataDependent(format!(
                            "masked element write into '{name}' guards machine traffic"
                        )));
                    }
                }
                Ok(())
            }
            LValue::AVar(name, fa @ (FieldAction::Everywhere | FieldAction::Section(_))) => {
                // Router path: the read/merge/write/router sequence runs
                // regardless of the mask's value.
                let arr = self.lookup_array(name)?;
                self.eval_host(&c.mask)?;
                self.eval_host(&c.src)?;
                let _ = (fa, arr);
                self.out.array_reads += 1;
                self.out.array_writes += 1;
                self.out.router_moves += 1;
                Ok(())
            }
        }
    }

    fn assign_scalar(&mut self, name: &str, v: Option<NScalar>) -> Result<(), PlanError> {
        let entry = self
            .scopes
            .iter_mut()
            .rev()
            .find_map(|s| s.get_mut(name))
            .ok_or_else(|| PlanError::Malformed(format!("unbound '{name}'")))?;
        match entry {
            Entry::Scalar(st, s) => {
                *s = v.and_then(|v| v.convert(*st).ok());
                Ok(())
            }
            Entry::Array(_) => Err(PlanError::Malformed(format!(
                "SVAR target '{name}' is an array"
            ))),
        }
    }

    /// Evaluate each subscript for its side effects; the flat offset
    /// itself never changes a call count.
    fn flat_index(&mut self, arr: &ArrayInfo, ixs: &[Value]) -> Result<(), PlanError> {
        if ixs.len() != arr.dims.len() {
            return Err(PlanError::Malformed(format!(
                "rank mismatch: {} subscripts for rank {}",
                ixs.len(),
                arr.dims.len()
            )));
        }
        for ix in ixs {
            self.eval_scalar(ix)?;
        }
        Ok(())
    }

    fn need_i64(&mut self, v: &Value, what: &str) -> Result<i64, PlanError> {
        match self.eval_scalar(v)? {
            Some(s) => s.to_i64().map_err(|e| PlanError::Malformed(e.to_string())),
            None => Err(PlanError::DataDependent(format!(
                "{what} is only known at run time"
            ))),
        }
    }

    fn need_bool(&mut self, v: &Value, what: &str) -> Result<bool, PlanError> {
        match self.eval_scalar(v)? {
            Some(s) => s.to_bool().map_err(|e| PlanError::Malformed(e.to_string())),
            None => Err(PlanError::DataDependent(format!(
                "{what} is only known at run time"
            ))),
        }
    }

    fn eval_scalar(&mut self, v: &Value) -> Result<Option<NScalar>, PlanError> {
        match self.eval_host(v)? {
            SVal::Scalar(s) => Ok(s),
            SVal::Array(..) => Err(PlanError::Malformed(format!(
                "array value where the host needs a scalar: {v}"
            ))),
        }
    }

    fn eval_host(&mut self, v: &Value) -> Result<SVal, PlanError> {
        match v {
            Value::Scalar(c) => Ok(SVal::Scalar(Some(match c {
                Const::I32(i) => NScalar::I32(*i),
                Const::Bool(b) => NScalar::Bool(*b),
                Const::F32(x) => NScalar::F32(*x),
                Const::F64(x) => NScalar::F64(*x),
            }))),
            Value::SVar(name) => match self.lookup(name)? {
                Entry::Scalar(_, s) => Ok(SVal::Scalar(*s)),
                Entry::Array(_) => Err(PlanError::Malformed(format!("SVAR '{name}' is an array"))),
            },
            Value::DoIndex(dom, dim) => {
                let (_, coords) = self
                    .do_env
                    .iter()
                    .rev()
                    .find(|(d, _)| d == dom)
                    .ok_or_else(|| PlanError::Malformed(format!("do_index outside DO '{dom}'")))?;
                let c = coords.get(*dim - 1).copied().ok_or_else(|| {
                    PlanError::Malformed(format!("do_index axis {dim} out of range"))
                })?;
                Ok(SVal::Scalar(Some(NScalar::I32(c as i32))))
            }
            Value::AVar(name, FieldAction::Subscript(ixs)) => {
                let arr = self.lookup_array(name)?;
                self.flat_index(&arr, ixs)?;
                self.out.host_elem_reads += 1;
                Ok(SVal::Scalar(None))
            }
            Value::AVar(name, FieldAction::Everywhere) => {
                let arr = self.lookup_array(name)?;
                self.out.array_reads += 1;
                Ok(SVal::Array(arr.dims))
            }
            Value::AVar(name, FieldAction::Section(ranges)) => {
                let arr = self.lookup_array(name)?;
                let _ = arr;
                self.out.array_reads += 1;
                Ok(SVal::Array(ranges.iter().map(|r| r.len()).collect()))
            }
            Value::LocalUnder(shape, dim) => {
                let resolved = resolve(shape, &self.domains)?;
                let _ = dim;
                let dims: Vec<usize> = resolved.extents().iter().map(|e| e.len()).collect();
                Ok(SVal::Array(dims))
            }
            Value::Unary(op, a) => {
                let a = self.eval_host(a)?;
                Ok(match a {
                    SVal::Scalar(Some(s)) => SVal::Scalar(apply_unop(*op, s).ok()),
                    SVal::Scalar(None) => SVal::Scalar(None),
                    SVal::Array(d) => SVal::Array(d),
                })
            }
            Value::Binary(op, a, b) => {
                let a = self.eval_host(a)?;
                let b = self.eval_host(b)?;
                Ok(match (a, b) {
                    (SVal::Scalar(Some(x)), SVal::Scalar(Some(y))) => {
                        SVal::Scalar(apply_binop(*op, x, y).ok())
                    }
                    (SVal::Array(d), _) | (_, SVal::Array(d)) => SVal::Array(d),
                    _ => SVal::Scalar(None),
                })
            }
            Value::FcnCall(name, args) => self.eval_call(name, args),
        }
    }

    fn eval_call(&mut self, name: &str, args: &[(Type, Value)]) -> Result<SVal, PlanError> {
        match name {
            "sum" | "maxval" | "minval" if args.len() == 2 => {
                let SVal::Array(dims) = self.eval_host(&args[0].1)? else {
                    return Err(PlanError::Malformed(format!("{name} of a scalar")));
                };
                let dim = self.need_i64(&args[1].1, "reduction DIM")?;
                if dim < 1 || dim as usize > dims.len() {
                    return Err(PlanError::Malformed(format!(
                        "{name} DIM={dim} out of range"
                    )));
                }
                let axis = dim as usize - 1;
                // Charged as a materialised reduction over the source.
                self.out.array_writes += 1;
                self.out.reduces += 1;
                let mut out_dims = dims;
                out_dims.remove(axis);
                Ok(SVal::Array(out_dims))
            }
            "spread" => {
                let SVal::Array(dims) = self.eval_host(&args[0].1)? else {
                    return Err(PlanError::Malformed("spread of a scalar".into()));
                };
                let dim = self.need_i64(&args[1].1, "SPREAD DIM")?;
                let n = self.need_i64(&args[2].1, "SPREAD NCOPIES")?;
                if dim < 1 || dim as usize > dims.len() + 1 || n < 0 {
                    return Err(PlanError::Malformed(format!(
                        "bad SPREAD arguments DIM={dim} NCOPIES={n}"
                    )));
                }
                let mut out_dims = dims;
                out_dims.insert(dim as usize - 1, n as usize);
                self.out.router_moves += 1;
                Ok(SVal::Array(out_dims))
            }
            "sum" | "maxval" | "minval" => {
                let arg = &args[0].1;
                // Fast path: a plain array variable reduces in place.
                if let Value::AVar(v, FieldAction::Everywhere) = arg {
                    self.lookup_array(v)?;
                    self.out.reduces += 1;
                    return Ok(SVal::Scalar(None));
                }
                let SVal::Array(_) = self.eval_host(arg)? else {
                    return Err(PlanError::Malformed(format!("{name} of a scalar")));
                };
                self.out.allocs_from += 1;
                self.out.reduces += 1;
                Ok(SVal::Scalar(None))
            }
            "merge" => {
                let t = self.eval_host(&args[0].1)?;
                let f = self.eval_host(&args[1].1)?;
                let m = self.eval_host(&args[2].1)?;
                let dims = [&t, &f, &m].iter().find_map(|v| match v {
                    SVal::Array(d) => Some(d.clone()),
                    SVal::Scalar(_) => None,
                });
                Ok(match dims {
                    Some(d) => SVal::Array(d),
                    None => {
                        let SVal::Scalar(ms) = m else {
                            unreachable!("no arrays")
                        };
                        match ms.and_then(|s| s.to_bool().ok()) {
                            Some(true) => t,
                            Some(false) => f,
                            None => SVal::Scalar(None),
                        }
                    }
                })
            }
            "transpose" => {
                let SVal::Array(dims) = self.eval_host(&args[0].1)? else {
                    return Err(PlanError::Malformed("transpose of a scalar".into()));
                };
                if dims.len() != 2 {
                    return Err(PlanError::Malformed(format!(
                        "transpose requires rank 2, got rank {}",
                        dims.len()
                    )));
                }
                self.out.router_moves += 1;
                Ok(SVal::Array(vec![dims[1], dims[0]]))
            }
            "cshift" | "eoshift" => {
                let SVal::Array(dims) = self.eval_host(&args[0].1)? else {
                    return Err(PlanError::Malformed(format!("{name} of a scalar")));
                };
                let shift = self.need_i64(&args[1].1, "host-context SHIFT")?;
                let dim = self.need_i64(&args[2].1, "host-context DIM")?;
                if dim < 1 || dim as usize > dims.len() {
                    return Err(PlanError::Malformed(format!("bad {name} DIM={dim}")));
                }
                if name == "eoshift" {
                    if let Some((_, v)) = args.get(3) {
                        self.eval_scalar(v)?;
                    }
                }
                self.out.allocs_from += 1;
                self.out.shifts.push(ShiftSite {
                    dims: dims.clone(),
                    axis: dim as usize - 1,
                    shift,
                    eoshift: name == "eoshift",
                });
                self.out.array_reads += 1; // shifted result read back
                Ok(SVal::Array(dims))
            }
            other => Err(PlanError::Malformed(format!("unknown primitive '{other}'"))),
        }
    }
}

/// Whether evaluating a value can issue machine calls (array traffic or
/// runtime intrinsics) — the test that decides if an unknown guard is
/// tolerable.
fn touches_machine(v: &Value) -> bool {
    let mut touches = false;
    v.walk(&mut |x| {
        if matches!(x, Value::AVar(..) | Value::FcnCall(..)) {
            touches = true;
        }
    });
    touches
}
