//! The machine abstraction the host program runs against.
//!
//! The paper's retargeting claim (§5.3.1) is that the compiler splits a
//! program once and only the *machine model* underneath changes. This
//! trait is that seam made executable: [`crate::fe::HostExecutor`] is
//! generic over [`Machine`], so the identical compiled host program
//! drives either the SIMD CM/2 simulator ([`f90y_cm2::Cm2`]) or the
//! MIMD CM/5 runtime (`f90y-mimd`'s sharded multi-node engine) — and
//! differential tests can assert the final arrays are bit-identical.
//!
//! The surface is exactly the CM runtime system (CMRT) calls the FE/NIR
//! compiler emits: allocation, PEAC dispatch, grid shifts, router
//! moves, reductions, coordinate subgrids, and slow serial host access
//! to distributed memory. Errors stay [`f90y_cm2::Cm2Error`] — it is
//! the runtime-error currency of the whole backend regardless of which
//! machine is underneath.

use std::fmt::Debug;
use std::hash::Hash;

use f90y_cm2::runtime::ReduceOp;
use f90y_cm2::{ArrayId, Cm2, Cm2Error};
use f90y_peac::Routine;

/// A simulated target machine executing the compiled host program's
/// runtime calls.
///
/// Data-carrying operations must be *exact* (every implementation
/// computes the same IEEE results); time and traffic accounting is the
/// implementation's own model.
pub trait Machine {
    /// Handle to an array living in this machine's memory.
    type Id: Copy + Eq + Hash + Debug;

    /// Allocate a zeroed array with explicit per-axis lower bounds.
    fn alloc_with_bounds(&mut self, dims: &[usize], lower: &[i64]) -> Self::Id;

    /// Allocate a zeroed array with unit lower bounds.
    fn alloc(&mut self, dims: &[usize]) -> Self::Id {
        self.alloc_with_bounds(dims, &vec![1; dims.len()])
    }

    /// Allocate and initialise an array (row-major data).
    fn alloc_from(&mut self, dims: &[usize], data: Vec<f64>) -> Self::Id;

    /// Free an array.
    ///
    /// # Errors
    ///
    /// Fails on a stale handle.
    fn free(&mut self, id: Self::Id) -> Result<(), Cm2Error>;

    /// A copy of an array's elements (row-major), free of charge — a
    /// harness/verification affordance, not a runtime call.
    ///
    /// # Errors
    ///
    /// Fails on a stale handle.
    fn read(&self, id: Self::Id) -> Result<Vec<f64>, Cm2Error>;

    /// Overwrite an array's elements, free of charge (harness
    /// affordance).
    ///
    /// # Errors
    ///
    /// Fails on a stale handle or a length mismatch.
    fn write(&mut self, id: Self::Id, data: &[f64]) -> Result<(), Cm2Error>;

    /// Dispatch a PEAC routine elementwise over the given arrays.
    ///
    /// # Errors
    ///
    /// Fails on stale handles, mismatched extents or PEAC faults.
    fn dispatch(
        &mut self,
        routine: &Routine,
        ptr_args: &[Self::Id],
        scalar_args: &[f64],
    ) -> Result<(), Cm2Error>;

    /// Grid circular shift (Fortran `CSHIFT` semantics) along `axis`
    /// (0-based), returning a new array.
    ///
    /// # Errors
    ///
    /// Fails on a stale handle or a bad axis.
    fn cshift(&mut self, src: Self::Id, axis: usize, shift: i64) -> Result<Self::Id, Cm2Error>;

    /// Grid end-off shift (Fortran `EOSHIFT`): vacated positions take
    /// `boundary`.
    ///
    /// # Errors
    ///
    /// Fails on a stale handle or a bad axis.
    fn eoshift(
        &mut self,
        src: Self::Id,
        axis: usize,
        shift: i64,
        boundary: f64,
    ) -> Result<Self::Id, Cm2Error>;

    /// Global reduction to the front end.
    ///
    /// # Errors
    ///
    /// Fails on a stale handle.
    fn reduce(&mut self, src: Self::Id, op: ReduceOp) -> Result<f64, Cm2Error>;

    /// The coordinate subgrid of `axis` (0-based) for arrays of the
    /// given extents and lower bounds.
    fn coordinates(&mut self, dims: &[usize], lower: &[i64], axis: usize) -> Self::Id;

    /// Charge a general-router data movement over an array's layout
    /// without moving data (the host executor moves the data itself).
    ///
    /// # Errors
    ///
    /// Fails on a stale handle.
    fn charge_router_move(&mut self, id: Self::Id) -> Result<(), Cm2Error>;

    /// Charge host-side work: `n` host program operations.
    fn charge_host_ops(&mut self, n: u64);

    /// Read a single element from the front end (serial host access to
    /// distributed memory — slow).
    ///
    /// # Errors
    ///
    /// Fails on a stale handle or an out-of-range flat index.
    fn host_read_elem(&mut self, id: Self::Id, flat: usize) -> Result<f64, Cm2Error>;

    /// Write a single element from the front end.
    ///
    /// # Errors
    ///
    /// Fails on a stale handle or an out-of-range flat index.
    fn host_write_elem(&mut self, id: Self::Id, flat: usize, v: f64) -> Result<(), Cm2Error>;
}

impl Machine for Cm2 {
    type Id = ArrayId;

    fn alloc_with_bounds(&mut self, dims: &[usize], lower: &[i64]) -> ArrayId {
        Cm2::alloc_with_bounds(self, dims, lower)
    }

    fn alloc_from(&mut self, dims: &[usize], data: Vec<f64>) -> ArrayId {
        Cm2::alloc_from(self, dims, data)
    }

    fn free(&mut self, id: ArrayId) -> Result<(), Cm2Error> {
        Cm2::free(self, id)
    }

    fn read(&self, id: ArrayId) -> Result<Vec<f64>, Cm2Error> {
        Cm2::read(self, id)
    }

    fn write(&mut self, id: ArrayId, data: &[f64]) -> Result<(), Cm2Error> {
        Cm2::write(self, id, data)
    }

    fn dispatch(
        &mut self,
        routine: &Routine,
        ptr_args: &[ArrayId],
        scalar_args: &[f64],
    ) -> Result<(), Cm2Error> {
        Cm2::dispatch(self, routine, ptr_args, scalar_args)
    }

    fn cshift(&mut self, src: ArrayId, axis: usize, shift: i64) -> Result<ArrayId, Cm2Error> {
        Cm2::cshift(self, src, axis, shift)
    }

    fn eoshift(
        &mut self,
        src: ArrayId,
        axis: usize,
        shift: i64,
        boundary: f64,
    ) -> Result<ArrayId, Cm2Error> {
        Cm2::eoshift(self, src, axis, shift, boundary)
    }

    fn reduce(&mut self, src: ArrayId, op: ReduceOp) -> Result<f64, Cm2Error> {
        Cm2::reduce(self, src, op)
    }

    fn coordinates(&mut self, dims: &[usize], lower: &[i64], axis: usize) -> ArrayId {
        Cm2::coordinates(self, dims, lower, axis)
    }

    fn charge_router_move(&mut self, id: ArrayId) -> Result<(), Cm2Error> {
        Cm2::charge_router_move(self, id)
    }

    fn charge_host_ops(&mut self, n: u64) {
        Cm2::charge_host_ops(self, n)
    }

    fn host_read_elem(&mut self, id: ArrayId, flat: usize) -> Result<f64, Cm2Error> {
        Cm2::host_read_elem(self, id, flat)
    }

    fn host_write_elem(&mut self, id: ArrayId, flat: usize, v: f64) -> Result<(), Cm2Error> {
        Cm2::host_write_elem(self, id, flat, v)
    }
}
