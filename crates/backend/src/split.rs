//! The CM2/NIR compiler: division of labour between host and nodes.
//!
//! "The CM2/NIR compiler just cuts out the computation phases and
//! patches the remaining program to include appropriate NIR calling
//! code. Each computation phase will be compiled as a single node
//! procedure, and the remainder will become supporting host code."
//! (paper §5.1)

use f90y_nir::typecheck::Ctx;
use f90y_nir::{FieldAction, Imp, LValue, NirError, Value};
use f90y_transform::program::{classify_stmt, ProgramBody, StmtClass};

use crate::pe::{self, PeOptions};
use crate::{BackendError, CompiledProgram, HostStmt, NodeBlock};

/// Partition an optimized program and compile its computation blocks.
///
/// # Errors
///
/// Fails when the program is not a lowered unit or a block fails to
/// compile.
pub fn split(optimized: &Imp) -> Result<CompiledProgram, BackendError> {
    split_with_options(optimized, PeOptions::full())
}

/// [`split`] with explicit PE code-generation switches.
///
/// # Errors
///
/// As [`split`].
pub fn split_with_options(
    optimized: &Imp,
    options: PeOptions,
) -> Result<CompiledProgram, BackendError> {
    let body = ProgramBody::decompose(optimized)?;
    let mut ctx = body.ctx()?;
    let mut blocks = Vec::new();
    let host = split_stmts(&body.stmts, &mut ctx, &mut blocks, options)?;
    Ok(CompiledProgram {
        blocks,
        binders: body.binders,
        host,
    })
}

fn split_stmts(
    stmts: &[Imp],
    ctx: &mut Ctx,
    blocks: &mut Vec<NodeBlock>,
    options: PeOptions,
) -> Result<Vec<HostStmt>, BackendError> {
    let mut out = Vec::with_capacity(stmts.len());
    for stmt in stmts {
        out.extend(split_stmt(stmt, ctx, blocks, options)?);
    }
    Ok(out)
}

fn split_stmt(
    stmt: &Imp,
    ctx: &mut Ctx,
    blocks: &mut Vec<NodeBlock>,
    options: PeOptions,
) -> Result<Vec<HostStmt>, BackendError> {
    match classify_stmt(stmt, ctx)? {
        StmtClass::Compute(shape) => {
            let Imp::Move(clauses) = stmt else {
                unreachable!("computation phases are moves")
            };
            let name = format!("Pk{}vs1", blocks.len());
            let compiled = pe::compile_block_with(&name, &shape, clauses, ctx, options)?;
            let mut out = Vec::with_capacity(compiled.len());
            for cb in compiled {
                let index = blocks.len();
                blocks.push(NodeBlock {
                    index,
                    shape: shape.clone(),
                    clauses: cb.clauses,
                    routine: cb.routine,
                    array_params: cb.array_params,
                    scalar_params: cb.scalar_params,
                    stats: cb.stats,
                });
                out.push(HostStmt::Dispatch(index));
            }
            Ok(out)
        }
        StmtClass::Comm(_) => {
            let Imp::Move(clauses) = stmt else {
                unreachable!("communication phases are moves")
            };
            let [clause] = clauses.as_slice() else {
                unreachable!("communication phases are single-clause")
            };
            let LValue::AVar(dst, FieldAction::Everywhere) = &clause.dst else {
                unreachable!("communication targets are whole arrays")
            };
            let Value::FcnCall(name, args) = &clause.src else {
                unreachable!("communication sources are intrinsic calls")
            };
            // Argument layouts (see lowering): cshift(array, shift, dim),
            // eoshift(array, shift, dim[, boundary]).
            let src_var = match &args[0].1 {
                Value::AVar(v, FieldAction::Everywhere) => v.clone(),
                // A composite argument the transformations could not
                // materialise (e.g. typed under a DO binding): the host
                // evaluates it through the runtime instead.
                _ => return Ok(vec![HostStmt::HostMove(clauses.clone())]),
            };
            let shift = args
                .get(1)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| BackendError::Malformed("missing SHIFT".into()))?;
            let dim = args
                .get(2)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Scalar(f90y_nir::Const::I32(1)));
            let boundary = if name == "eoshift" {
                Some(
                    args.get(3)
                        .map(|(_, v)| v.clone())
                        .unwrap_or(Value::Scalar(f90y_nir::Const::F64(0.0))),
                )
            } else {
                None
            };
            Ok(vec![HostStmt::Comm {
                dst: dst.clone(),
                src: src_var,
                dim,
                shift,
                boundary,
            }])
        }
        StmtClass::Host => match stmt {
            Imp::Move(clauses) => Ok(vec![HostStmt::HostMove(clauses.clone())]),
            Imp::Do(dom, shape, b) => {
                let resolved = ctx.resolve(shape)?;
                ctx.push_do(dom.clone(), resolved.clone());
                let body = split_body(b, ctx, blocks, options);
                ctx.pop_do();
                Ok(vec![HostStmt::Do {
                    dom: dom.clone(),
                    shape: resolved,
                    body: body?,
                }])
            }
            Imp::While(cond, b) => Ok(vec![HostStmt::While {
                cond: cond.clone(),
                body: split_body(b, ctx, blocks, options)?,
            }]),
            Imp::IfThenElse(cond, t, e) => Ok(vec![HostStmt::If {
                cond: cond.clone(),
                then_body: split_body(t, ctx, blocks, options)?,
                else_body: split_body(e, ctx, blocks, options)?,
            }]),
            Imp::WithDecl(d, b) => {
                let mut inner = ctx.clone();
                for (id, ty, _) in d.bindings() {
                    let resolved = resolve_type(ty, &inner)?;
                    inner.bind_var(id.clone(), resolved);
                }
                Ok(vec![HostStmt::WithDecl {
                    decl: d.clone(),
                    body: split_body(b, &mut inner, blocks, options)?,
                }])
            }
            Imp::WithDomain(name, shape, b) => {
                let mut inner = ctx.clone();
                inner.bind_domain(name.clone(), shape)?;
                Ok(vec![HostStmt::WithDomain {
                    name: name.clone(),
                    shape: inner.resolve(shape)?,
                    body: split_body(b, &mut inner, blocks, options)?,
                }])
            }
            Imp::Sequentially(xs) | Imp::Concurrently(xs) => split_stmts(xs, ctx, blocks, options),
            Imp::Program(b) => split_body(b, ctx, blocks, options),
            Imp::Skip => Ok(vec![]),
        },
    }
}

fn split_body(
    b: &Imp,
    ctx: &mut Ctx,
    blocks: &mut Vec<NodeBlock>,
    options: PeOptions,
) -> Result<Vec<HostStmt>, BackendError> {
    match b {
        Imp::Sequentially(xs) => split_stmts(xs, ctx, blocks, options),
        Imp::Skip => Ok(vec![]),
        other => split_stmt(other, ctx, blocks, options),
    }
}

fn resolve_type(ty: &f90y_nir::Type, ctx: &Ctx) -> Result<f90y_nir::Type, NirError> {
    match ty {
        f90y_nir::Type::Scalar(s) => Ok(f90y_nir::Type::Scalar(*s)),
        f90y_nir::Type::DField { shape, elem } => Ok(f90y_nir::Type::DField {
            shape: ctx.resolve(shape)?,
            elem: Box::new(resolve_type(elem, ctx)?),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_nir::build::*;

    #[test]
    fn fig11_partition_cuts_blocks_and_keeps_host_code() {
        // compute(A) ; comm ; compute(A) inside a serial DO.
        let p = program(with_domain(
            "s",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("v", dfield(domain("s"), float64())),
                    decl("t", dfield(domain("s"), float64())),
                ]),
                seq(vec![
                    mv(avar("v", everywhere()), local_under(domain("s"), 1)),
                    do_over(
                        "step",
                        serial_interval(1, 3),
                        seq(vec![
                            mv(
                                avar("t", everywhere()),
                                fcncall(
                                    "cshift",
                                    vec![
                                        (float64(), ld("v", everywhere())),
                                        (int32(), int(1)),
                                        (int32(), int(1)),
                                    ],
                                ),
                            ),
                            mv(
                                avar("v", everywhere()),
                                add(ld("v", everywhere()), ld("t", everywhere())),
                            ),
                        ]),
                    ),
                ]),
            ),
        ));
        let compiled = split(&p).unwrap();
        assert_eq!(compiled.blocks.len(), 2, "init block + in-loop block");
        // Host: dispatch, then DO containing comm + dispatch.
        assert!(matches!(compiled.host[0], HostStmt::Dispatch(0)));
        match &compiled.host[1] {
            HostStmt::Do { body, .. } => {
                assert!(matches!(body[0], HostStmt::Comm { .. }));
                assert!(matches!(body[1], HostStmt::Dispatch(1)));
            }
            other => panic!("expected DO, got {other:?}"),
        }
    }
}
