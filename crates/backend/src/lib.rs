//! # f90y-backend — the target-specific compilation phase
//!
//! The paper's §5: "The problem of compiling a valid NIR program into
//! code for the CM/2 is broken down into a hierarchy of NIR compilers
//! for different levels of target abstraction."
//!
//! * **CM2/NIR** ([`split`]) — "models the CM/2 host and nodes together
//!   as a single machine, and then partitions input NIR programs into
//!   NIR subprograms for each half … just cuts out the computation
//!   phases and patches the remaining program to include appropriate
//!   NIR calling code."
//! * **PE/NIR** ([`pe`]) — compiles each excised computation block to a
//!   PEAC virtual-subgrid loop: vectorization, chained multiply-add
//!   recognition, load chaining, lifetime-analysis register allocation
//!   with spill placement, and load/store overlap scheduling.
//! * **FE/NIR** ([`fe`]) — executes the remainder program as the host:
//!   memory allocation, serial loops and scalar code, CM runtime
//!   communication calls, and PEAC dispatch over the IFIFO. (In this
//!   reproduction the "SPARC assembly" half of FE/NIR is an interpreted
//!   host program with a per-operation cost model — the documented
//!   substitution of DESIGN.md; the paper itself used "a simple
//!   memory-to-memory load/store model" here.)
//!
//! [`compile`] runs CM2/NIR over an optimized program;
//! [`fe::HostExecutor`] runs the result on a simulated machine.
//!
//! ## Example
//!
//! ```
//! use f90y_cm2::{Cm2, Cm2Config};
//!
//! let unit = f90y_frontend::parse("INTEGER K(64,64)\nK = 2*K + 5\n")?;
//! let nir = f90y_lowering::lower(&unit)?;
//! let optimized = f90y_transform::optimize(&nir)?;
//! let compiled = f90y_backend::compile(&optimized)?;
//! assert_eq!(compiled.blocks.len(), 1);
//!
//! let mut cm = Cm2::new(Cm2Config::slicewise(64));
//! let run = f90y_backend::fe::HostExecutor::new(&mut cm).run(&compiled)?;
//! assert!(run.final_array("k")?.iter().all(|&x| x == 5.0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod fe;
pub mod machine;
pub mod pe;
pub mod plan;
pub mod split;

pub use machine::Machine;

use std::error::Error;
use std::fmt;

use f90y_nir::{Imp, MoveClause, Shape, Value};
use f90y_peac::Routine;
use f90y_transform::program::Binder;

/// Errors from the target-specific phase.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The program does not have the form the phase expects.
    Malformed(String),
    /// A static error surfaced while partitioning.
    Nir(f90y_nir::NirError),
    /// PEAC assembly failed.
    Peac(f90y_peac::PeacError),
    /// A machine/runtime error at host-execution time.
    Machine(f90y_cm2::Cm2Error),
    /// A dynamic error in host-executed code.
    Host(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Malformed(m) => write!(f, "malformed input to backend: {m}"),
            BackendError::Nir(e) => write!(f, "{e}"),
            BackendError::Peac(e) => write!(f, "{e}"),
            BackendError::Machine(e) => write!(f, "{e}"),
            BackendError::Host(m) => write!(f, "host execution error: {m}"),
        }
    }
}

impl Error for BackendError {}

impl From<f90y_nir::NirError> for BackendError {
    fn from(e: f90y_nir::NirError) -> Self {
        BackendError::Nir(e)
    }
}

impl From<f90y_peac::PeacError> for BackendError {
    fn from(e: f90y_peac::PeacError) -> Self {
        BackendError::Peac(e)
    }
}

impl From<f90y_cm2::Cm2Error> for BackendError {
    fn from(e: f90y_cm2::Cm2Error) -> Self {
        BackendError::Machine(e)
    }
}

/// How one pointer argument of a node routine is fed at dispatch time.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayParam {
    /// A load stream over the named CM array.
    Read(String),
    /// A store stream over the named CM array.
    Write(String),
    /// A load stream over the runtime's coordinate subgrid for the given
    /// 1-based axis of the block shape.
    Coord(usize),
}

/// One excised computation block: its source clauses, compiled PEAC
/// routine and dispatch signature.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeBlock {
    /// Block index (the dispatch label).
    pub index: usize,
    /// The resolved parallel shape the block computes over.
    pub shape: Shape,
    /// The grid-local clauses the block came from.
    pub clauses: Vec<MoveClause>,
    /// The compiled PEAC routine.
    pub routine: Routine,
    /// Pointer arguments, in routine order.
    pub array_params: Vec<ArrayParam>,
    /// Scalar arguments: host expressions evaluated per dispatch, in
    /// routine order.
    pub scalar_params: Vec<Value>,
    /// What PE code generation did to this block.
    pub stats: pe::PeStats,
}

impl NodeBlock {
    /// Whether this block can be sharded row-wise across MIMD nodes.
    ///
    /// A block is shardable when it computes a parallel shape of rank
    /// ≥ 1 elementwise: PEAC routines advance every pointer stream one
    /// vector per iteration and have no cross-element addressing, so
    /// any contiguous row-major slice of the element space computes
    /// independently of the rest. All blocks the CM2/NIR splitter
    /// excises have this form (communication is hoisted into separate
    /// `Comm` host statements first); the method exists so a MIMD
    /// runtime can *check* the invariant instead of assuming it.
    pub fn shardable(&self) -> bool {
        !self.shape.extents().is_empty() && !self.routine.body().is_empty()
    }

    /// Extent of the outermost axis — the axis a MIMD runtime shards
    /// the block's element space along (rows of the row-major layout).
    pub fn shard_extent(&self) -> usize {
        self.shape.extents().first().map_or(1, |e| e.len())
    }
}

/// A statement of the host remainder program.
#[derive(Debug, Clone, PartialEq)]
pub enum HostStmt {
    /// Push arguments over the IFIFO and run node block `i`.
    Dispatch(usize),
    /// A grid communication: `dst = cshift/eoshift(src, shift[, boundary])`.
    Comm {
        /// Destination CM array variable.
        dst: String,
        /// Source CM array variable.
        src: String,
        /// 1-based axis, host-evaluated.
        dim: Value,
        /// Shift amount, host-evaluated.
        shift: Value,
        /// End-off boundary; `None` means circular.
        boundary: Option<Value>,
    },
    /// A host-executed move (scalar assignments, element moves,
    /// misaligned section copies, reductions into scalars).
    HostMove(Vec<MoveClause>),
    /// Serial iteration driven by the host.
    Do {
        /// Loop domain name (for `do_index`).
        dom: String,
        /// Loop shape (possibly referencing bound domains).
        shape: Shape,
        /// Body statements.
        body: Vec<HostStmt>,
    },
    /// Host `WHILE`.
    While {
        /// Continuation condition (host-evaluated scalar).
        cond: Value,
        /// Body statements.
        body: Vec<HostStmt>,
    },
    /// Host `IF`.
    If {
        /// Condition (host-evaluated scalar).
        cond: Value,
        /// Taken branch.
        then_body: Vec<HostStmt>,
        /// Untaken branch.
        else_body: Vec<HostStmt>,
    },
    /// Scoped declarations executed by the host (allocation).
    WithDecl {
        /// The declarations.
        decl: f90y_nir::Decl,
        /// Scope body.
        body: Vec<HostStmt>,
    },
    /// A domain binding.
    WithDomain {
        /// Domain name.
        name: String,
        /// Bound shape.
        shape: Shape,
        /// Scope body.
        body: Vec<HostStmt>,
    },
}

/// The output of the CM2/NIR compiler: node routines plus the host
/// remainder program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Compiled computation blocks.
    pub blocks: Vec<NodeBlock>,
    /// Outer binders of the unit (domains, global declarations).
    pub binders: Vec<Binder>,
    /// The host remainder program.
    pub host: Vec<HostStmt>,
}

impl CompiledProgram {
    /// Total PEAC instructions across all blocks (a Figure 12 metric).
    pub fn total_node_instructions(&self) -> usize {
        self.blocks.iter().map(|b| b.routine.len()).sum()
    }

    /// PE code-generation statistics aggregated over all blocks
    /// (counts sum; register pressure takes the maximum).
    pub fn pe_stats(&self) -> pe::PeStats {
        self.blocks
            .iter()
            .fold(pe::PeStats::default(), |acc, b| acc.merge(&b.stats))
    }

    /// Pretty listing of every node routine (Figure 12 style).
    pub fn listings(&self) -> String {
        let mut out = String::new();
        for b in &self.blocks {
            out.push_str(&b.routine.listing());
            out.push('\n');
        }
        out
    }
}

/// Compile an optimized NIR program for the CM/2 (the CM2/NIR phase).
///
/// # Errors
///
/// Fails when the program is not a lowered unit or a computation block
/// cannot be compiled.
pub fn compile(optimized: &Imp) -> Result<CompiledProgram, BackendError> {
    split::split(optimized)
}

/// [`compile`] with explicit PE code-generation switches (used by the
/// baseline compilers).
///
/// # Errors
///
/// As [`compile`].
pub fn compile_with_options(
    optimized: &Imp,
    options: pe::PeOptions,
) -> Result<CompiledProgram, BackendError> {
    split::split_with_options(optimized, options)
}
