//! End-to-end smoke tests for the `f90y-served` binary: pipe mode over
//! stdin/stdout, and TCP mode over a real socket.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use f90y_serve::protocol::Response;

const SERVED: &str = env!("CARGO_BIN_EXE_f90y-served");

fn requests() -> Vec<String> {
    let src = |s: &str| f90y_obs::json::Json::Str(s.into()).to_string();
    let a = src("REAL A(8)\nA = A + 1.0\n");
    let lint = src("REAL A(8,8)\nA = CSHIFT(A, DIM=1, SHIFT=1)\n");
    vec![
        format!(r#"{{"id":1,"tenant":"alice","source":{a}}}"#),
        format!(r#"{{"id":2,"tenant":"bob","source":{a}}}"#),
        format!(r#"{{"id":3,"tenant":"alice","kind":"lint","source":{lint}}}"#),
        format!(r#"{{"id":4,"tenant":"bob","source":{a},"target":"cm5","nodes":4}}"#),
        "this is not json".to_string(),
    ]
}

/// Every request gets exactly one response; the repeated source hits
/// the cache; the junk line gets a typed protocol error.
fn check_responses(lines: &[String]) {
    assert_eq!(lines.len(), 5, "one response per request line: {lines:?}");
    let mut hits = 0;
    let mut protocol_errors = 0;
    let mut lint_warnings = 0;
    for line in lines {
        match Response::parse(line).expect("response parses") {
            Response::Done(d) => {
                if d.cache == "hit" {
                    hits += 1;
                }
                if !d.warnings.is_empty() {
                    lint_warnings += 1;
                }
            }
            Response::Error(e) => {
                assert_eq!(e.kind, f90y_serve::protocol::ErrorKind::Protocol);
                protocol_errors += 1;
            }
        }
    }
    assert_eq!(hits, 1, "ids 1 and 2 share a source: exactly one hit");
    assert_eq!(protocol_errors, 1, "the junk line errors");
    assert_eq!(lint_warnings, 1, "the lint request warns (W-RACE)");
}

#[test]
fn pipe_mode_answers_every_line_then_exits_on_eof() {
    let mut child = Command::new(SERVED)
        .args(["--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn f90y-served");
    {
        let stdin = child.stdin.as_mut().expect("stdin");
        for line in requests() {
            writeln!(stdin, "{line}").expect("write request");
        }
    }
    child.stdin.take(); // EOF: the service drains and exits.
    let output = child.wait_with_output().expect("served exits");
    assert!(output.status.success(), "clean exit on EOF");
    let lines: Vec<String> = String::from_utf8(output.stdout)
        .expect("utf-8")
        .lines()
        .map(str::to_string)
        .collect();
    check_responses(&lines);
}

struct KillOnDrop(Child);
impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn tcp_mode_serves_a_connection() {
    let mut child = Command::new(SERVED)
        .args(["--listen", "127.0.0.1:0", "--workers", "1"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn f90y-served");
    // The service prints "listening on <addr>" once bound.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("read banner");
    let child = KillOnDrop(child);
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    for line in requests() {
        writeln!(stream, "{line}").expect("send request");
    }
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut body = String::new();
    BufReader::new(&mut stream)
        .read_to_string(&mut body)
        .expect("read responses");
    let lines: Vec<String> = body.lines().map(str::to_string).collect();
    check_responses(&lines);
    drop(child);
}
