//! Cache-key discrimination and determinism (ISSUE 7 satellite).
//!
//! * Byte-identical requests must **hit**.
//! * A change anywhere in `(source, pipeline, passes, target, nodes)`
//!   must **miss** — the key discriminates every component.
//! * Eviction keeps determinism: re-compiling an evicted key yields a
//!   bit-identical artifact fingerprint.
//! * The differential acceptance gate: a run served from cache has
//!   finals bit-identical to a freshly compiled run.

use std::sync::mpsc::channel;

use f90y_serve::cache::CacheKey;
use f90y_serve::engine::{Engine, ServeConfig};
use f90y_serve::protocol::{Request, Response};

const SOURCE: &str = "REAL A(8,8), S\nA = A + 1.5\nS = SUM(A)\n";

/// Submit one request line to a drained deterministic engine and
/// return its response.
fn ask(engine: &Engine, line: &str) -> Response {
    let (tx, rx) = channel();
    let req = Request::parse(line).expect("request parses");
    engine.submit(req, tx).expect("queue has room");
    engine.drain();
    rx.recv().expect("one response")
}

fn done(resp: Response) -> f90y_serve::protocol::Done {
    match resp {
        Response::Done(d) => d,
        Response::Error(e) => panic!("request failed: {e:?}"),
    }
}

fn line(id: u64, source: &str, extra: &str) -> String {
    let src = f90y_obs::json::Json::Str(source.into());
    format!(r#"{{"id":{id},"tenant":"t","source":{src}{extra}}}"#)
}

#[test]
fn key_discriminates_every_component() {
    let base = Request::parse(&line(1, SOURCE, "")).unwrap();
    let base_key = CacheKey::for_request(&base);

    // Byte-identical request: identical key.
    let again = Request::parse(&line(2, SOURCE, "")).unwrap();
    assert_eq!(CacheKey::for_request(&again), base_key, "id is not keyed");

    // Every varied component must change the key.
    let variants = [
        line(1, "REAL A(8,8), S\nA = A + 2.5\nS = SUM(A)\n", ""),
        line(1, SOURCE, r#","pipeline":"cmf""#),
        line(1, SOURCE, r#","passes":["comm-split","blocking"]"#),
        line(1, SOURCE, r#","target":"cm5""#),
        line(1, SOURCE, r#","target":"accel""#),
        line(1, SOURCE, r#","nodes":32"#),
    ];
    for v in &variants {
        let req = Request::parse(v).unwrap();
        assert_ne!(
            CacheKey::for_request(&req),
            base_key,
            "variant must change the key: {v}"
        );
    }
}

#[test]
fn non_semantic_fields_stay_out_of_the_key() {
    // The audit: every wire field that perturbs the run but not the
    // compiled artifact must share one cache entry with its default.
    // A new protocol field either changes the artifact (add it to the
    // key and to `key_discriminates_every_component`) or it does not
    // (add it here).
    let base = Request::parse(&line(1, SOURCE, r#","target":"cm5""#)).unwrap();
    let base_key = CacheKey::for_request(&base);
    let non_semantic = [
        r#","target":"cm5","host_threads":4"#,
        r#","target":"cm5","fault_seed":9"#,
        r#","target":"cm5","fault_seed":9,"fault_drop_per_mille":100"#,
    ];
    for extra in &non_semantic {
        let req = Request::parse(&line(2, SOURCE, extra)).unwrap();
        assert_eq!(
            CacheKey::for_request(&req),
            base_key,
            "non-semantic field must not change the key: {extra}"
        );
    }
}

#[test]
fn engine_hits_on_identical_requests_and_misses_on_variants() {
    let engine = Engine::new(ServeConfig::deterministic());

    let first = done(ask(&engine, &line(1, SOURCE, "")));
    assert_eq!(first.cache, "miss");
    assert!(first.compile_units > 0, "a fresh compile has a cost");

    let second = done(ask(&engine, &line(2, SOURCE, "")));
    assert_eq!(second.cache, "hit", "byte-identical request must hit");
    assert_eq!(second.compile_units, 0, "a hit charges no compile units");

    // Different pass pipeline, target, and node count each miss.
    for (id, extra) in [
        (3, r#","passes":["comm-split","mask-pad","blocking"]"#),
        (4, r#","target":"cm5""#),
        (5, r#","nodes":32"#),
        (6, r#","pipeline":"cmf""#),
    ] {
        let resp = done(ask(&engine, &line(id, SOURCE, extra)));
        assert_eq!(resp.cache, "miss", "variant {extra} must miss");
    }

    let stats = engine.stats();
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 5);
}

#[test]
fn eviction_keeps_artifact_fingerprints_deterministic() {
    // Capacity 1: the second distinct program evicts the first.
    let engine = Engine::new(ServeConfig {
        cache_capacity: 1,
        ..ServeConfig::deterministic()
    });
    let compile =
        |id: u64, source: &str| done(ask(&engine, &line(id, source, r#","kind":"compile""#)));

    let first = compile(1, SOURCE);
    assert_eq!(first.cache, "miss");
    let fp_first = first
        .fingerprint
        .expect("compile responses carry a fingerprint");
    assert!(fp_first.starts_with("fnv1a64:"));

    let other = compile(2, "REAL B(4,4)\nB = B * 3.0\n");
    assert_eq!(other.cache, "miss");
    assert!(engine.stats().cache.evictions >= 1, "capacity 1 must evict");

    // The evicted key recompiles to a bit-identical artifact.
    let again = compile(3, SOURCE);
    assert_eq!(again.cache, "miss", "evicted entry is gone");
    assert_eq!(
        again.fingerprint.expect("fingerprint"),
        fp_first,
        "re-compile after eviction must be bit-identical"
    );
}

#[test]
fn cached_and_fresh_runs_have_bit_identical_finals() {
    // The acceptance differential: run once compiled fresh, once from
    // cache, and once on a cache-disabled engine — all three finals
    // fingerprints must be equal, on every target.
    for target in ["", r#","target":"cm5""#, r#","target":"accel""#] {
        let engine = Engine::new(ServeConfig::deterministic());
        let fresh = done(ask(&engine, &line(1, SOURCE, target)));
        assert_eq!(fresh.cache, "miss");
        let cached = done(ask(&engine, &line(2, SOURCE, target)));
        assert_eq!(cached.cache, "hit");

        let uncached_engine = Engine::new(ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::deterministic()
        });
        let uncached = done(ask(&uncached_engine, &line(3, SOURCE, target)));
        assert_eq!(uncached.cache, "miss");

        let fp = fresh.fingerprint.expect("fingerprint");
        assert_eq!(
            cached.fingerprint.as_deref(),
            Some(fp.as_str()),
            "cache-served finals must be bit-identical (target {target:?})"
        );
        assert_eq!(
            uncached.fingerprint.as_deref(),
            Some(fp.as_str()),
            "cache-disabled finals must be bit-identical (target {target:?})"
        );
        // The run's behaviour (trace digest) matches too, not just the
        // final values.
        assert_eq!(fresh.trace_digest, cached.trace_digest);
        assert_eq!(fresh.trace_digest, uncached.trace_digest);
    }
}
