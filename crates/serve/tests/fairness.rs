//! Fairness and backpressure (ISSUE 7 satellite).
//!
//! The scheduler's documented bound: once a request from the
//! least-charged tenant is pending, at most `workers` requests of other
//! tenants start before it (the ones already in flight). In the
//! deterministic drain mode `workers` is effectively 1 — so after a
//! heavy tenant's first grid completes, **every** pending light-tenant
//! request runs before that tenant's next one.
//!
//! The backpressure contract: a submit past the queue bound returns a
//! typed `Overloaded` response immediately — never a block, never a
//! hang — and the shed request is counted.

use std::sync::mpsc::{channel, RecvTimeoutError};
use std::time::Duration;

use f90y_core::workloads;
use f90y_obs::json::Json;
use f90y_serve::engine::{Engine, ServeConfig};
use f90y_serve::protocol::{ErrorKind, Request, Response};

fn run_request(id: u64, tenant: &str, source: &str) -> Request {
    let src = Json::Str(source.into());
    Request::parse(&format!(
        r#"{{"id":{id},"tenant":"{tenant}","source":{src},"nodes":16}}"#
    ))
    .expect("request parses")
}

#[test]
fn a_huge_grid_does_not_starve_small_tenants() {
    let engine = Engine::new(ServeConfig::deterministic());
    let (tx, rx) = channel();

    // Tenant "big" queues three 512²-grid runs; tenant "small" queues
    // four 16² runs strictly *after* them.
    let big_src = workloads::heat_source(512, 1);
    let small_src = workloads::heat_source(16, 1);
    for id in [100, 101, 102] {
        engine
            .submit(run_request(id, "big", &big_src), tx.clone())
            .expect("room");
    }
    for id in [1, 2, 3, 4] {
        engine
            .submit(run_request(id, "small", &small_src), tx.clone())
            .expect("room");
    }
    engine.drain();
    drop(tx);

    let order: Vec<u64> = rx.iter().map(|r| r.id()).collect();
    assert_eq!(order.len(), 7, "every request answered");

    // All tenants start at charge 0, so submission order wins the first
    // pick: big's first grid runs. From then on "big" carries its cost
    // as charge, so ALL of small's requests overtake big's remaining
    // two — the documented bound (≤ 1 other-tenant start in drain mode).
    assert_eq!(order[0], 100, "first pick is FIFO among equals");
    assert_eq!(
        &order[1..5],
        &[1, 2, 3, 4],
        "small tenant overtakes the heavy tenant's queued grids: {order:?}"
    );
    assert_eq!(&order[5..], &[101, 102], "heavy tenant finishes last");

    // The ledger shows why: big's accumulated machine time dwarfs
    // small's, and the spread is exactly their difference.
    let stats = engine.stats();
    let big_charge = stats.tenants["big"];
    let small_charge = stats.tenants["small"];
    assert!(
        big_charge > 10 * small_charge,
        "512² must cost an order of magnitude more than 4×16²: {big_charge} vs {small_charge}"
    );
    assert_eq!(stats.fairness_spread(), big_charge - small_charge);
}

#[test]
fn queue_overflow_returns_typed_overloaded_immediately() {
    let engine = Engine::new(ServeConfig {
        queue_capacity: 3,
        ..ServeConfig::deterministic()
    });
    let (tx, rx) = channel();
    let src = "REAL A(8)\nA = A + 1.0\n";
    for id in 1..=3 {
        engine
            .submit(run_request(id, "t", src), tx.clone())
            .expect("under capacity");
    }
    // The 4th must be refused *now* (no worker is draining — a blocking
    // submit would deadlock this single-threaded test, which is the
    // point: refusal never blocks).
    let refused = engine
        .submit(run_request(4, "t", src), tx.clone())
        .expect_err("queue is full");
    match &refused {
        Response::Error(e) => {
            assert_eq!(e.id, 4);
            assert_eq!(e.kind, ErrorKind::Overloaded);
        }
        other => panic!("expected a typed Overloaded error, got {other:?}"),
    }
    assert_eq!(engine.stats().rejected, 1);

    // Shed load is shed, not queued: draining answers exactly 3.
    engine.drain();
    drop(tx);
    assert_eq!(rx.iter().count(), 3);
    assert_eq!(engine.stats().completed, 3);
}

#[test]
fn a_successful_run_reports_its_static_prediction() {
    // On the CM/5 the static comm-plan prediction's cost units ARE
    // supersteps, and run_units are supersteps too — so for a program
    // with an exact static plan (no cache-miss compile on a hit), the
    // two must agree exactly.
    let engine = Engine::new(ServeConfig::deterministic());
    let (tx, rx) = channel();
    let src = Json::Str(workloads::heat_source(16, 2));
    let line = format!(r#"{{"id":1,"tenant":"t","source":{src},"target":"cm5","nodes":16}}"#);
    engine
        .submit(Request::parse(&line).expect("parses"), tx.clone())
        .expect("room");
    engine.drain();
    drop(tx);
    let done = match rx.iter().next().expect("answered") {
        Response::Done(d) => d,
        other => panic!("expected Done, got {other:?}"),
    };
    assert!(done.predicted_units > 0, "heat has an exact static plan");
    assert_eq!(
        done.predicted_units, done.run_units,
        "CM/5 prediction units are supersteps — they must equal the run's"
    );
}

#[test]
fn a_failing_run_is_charged_its_predicted_cost_not_the_one_unit_floor() {
    // A drop-everything fault plan guarantees the CM/5 run dies with a
    // typed Run error after compiling fine. Static admission charges
    // the tenant the *predicted* cost of the run it asked for, so the
    // failure costs far more than the old flat 1 unit.
    let engine = Engine::new(ServeConfig::deterministic());
    let (tx, rx) = channel();
    let src = Json::Str(workloads::heat_source(32, 2));
    let line = format!(
        r#"{{"id":9,"tenant":"prober","source":{src},"target":"cm5","nodes":16,
            "fault_drop_per_mille":1000}}"#
    );
    engine
        .submit(Request::parse(&line).expect("parses"), tx.clone())
        .expect("room");
    engine.drain();
    drop(tx);
    match rx.iter().next().expect("answered") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::Run, "{e:?}"),
        other => panic!("expected a Run failure, got {other:?}"),
    }
    let charge = engine.stats().tenants["prober"];
    assert!(
        charge > 1,
        "a failing 32² run must be charged its prediction, not 1: {charge}"
    );

    // The same failure on a fresh tenant matches an honest prediction:
    // compile the identical source and compare against the ledger.
    let exe = f90y_core::Compiler::new(f90y_core::Pipeline::F90y)
        .compile(&workloads::heat_source(32, 2))
        .expect("compiles");
    let predicted = exe
        .predict(f90y_core::Target::Cm5Mimd { nodes: 16 })
        .expect("exact plan")
        .cost_units();
    assert_eq!(charge, predicted.max(1), "failure charge IS the prediction");
}

/// Deterministic splitmix64 — the same generator the fault plans use,
/// so the stress mix is reproducible from its seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn seeded_concurrent_stress_answers_every_request_or_sheds_typed() {
    // 4 client threads × 15 requests against 2 workers and a small
    // queue: every submit either lands in the queue (and is answered)
    // or is refused with a typed Overloaded — accepted + rejected must
    // equal submitted, and nothing hangs.
    let engine = std::sync::Arc::new(Engine::new(ServeConfig {
        queue_capacity: 8,
        cache_capacity: 16,
        workers: 2,
    }));
    let sources = [
        "REAL A(8)\nA = A + 1.0\n",
        "REAL B(8,8)\nB = B * 2.0\n",
        "INTEGER K(4,4)\nK = 2*K + 5\n",
    ];
    let tenants = ["alice", "bob", "carol"];

    let mut handles = Vec::new();
    for thread_id in 0..4u64 {
        let engine = std::sync::Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut rng = 0xf90_0000 + thread_id;
            let (tx, rx) = channel();
            let mut accepted = 0u64;
            let mut shed = 0u64;
            for i in 0..15u64 {
                let id = thread_id * 1000 + i;
                let source = sources[(splitmix64(&mut rng) % 3) as usize];
                let tenant = tenants[(splitmix64(&mut rng) % 3) as usize];
                match engine.submit(run_request(id, tenant, source), tx.clone()) {
                    Ok(()) => accepted += 1,
                    Err(Response::Error(e)) => {
                        assert_eq!(e.kind, ErrorKind::Overloaded, "only backpressure sheds");
                        shed += 1;
                    }
                    Err(other) => panic!("unexpected refusal {other:?}"),
                }
            }
            drop(tx);
            // Every accepted request must answer; a hang here is the bug
            // this test exists to catch, so fail loudly instead.
            let mut answers = 0u64;
            loop {
                match rx.recv_timeout(Duration::from_secs(120)) {
                    Ok(Response::Done(_)) => answers += 1,
                    Ok(Response::Error(e)) => panic!("in-queue request failed: {e:?}"),
                    Err(RecvTimeoutError::Disconnected) => break,
                    Err(RecvTimeoutError::Timeout) => {
                        panic!("request unanswered after 120s — the engine hung")
                    }
                }
                if answers == accepted {
                    break;
                }
            }
            assert_eq!(answers, accepted);
            (accepted, shed)
        }));
    }
    let mut total_accepted = 0;
    let mut total_shed = 0;
    for h in handles {
        let (accepted, shed) = h.join().expect("client thread");
        total_accepted += accepted;
        total_shed += shed;
    }
    assert_eq!(
        total_accepted + total_shed,
        60,
        "every submit accounted for"
    );
    let stats = engine.stats();
    assert_eq!(stats.accepted, total_accepted);
    assert_eq!(stats.rejected, total_shed);
    assert_eq!(stats.completed, total_accepted);
    // Three distinct programs repeated 60× across a 16-slot cache: the
    // repeats must hit.
    assert!(
        stats.cache.hits > 0,
        "repeated sources must hit the cache: {:?}",
        stats.cache
    );
    // The service telemetry absorbed every request's report.
    let tel = engine.telemetry_report();
    assert_eq!(tel.counter("serve.requests"), Some(total_accepted));
}
