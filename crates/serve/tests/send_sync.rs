//! Compile-time thread-safety audit (ISSUE 7 satellite).
//!
//! The compile cache hands one `Arc<Executable>` to many worker
//! threads, so `Executable` — and transitively everything it closes
//! over: the NIR, the pass reports, the PEAC routines and the host
//! program — must be `Send + Sync`. These assertions are evaluated at
//! compile time; if any layer grows an `Rc`, a `RefCell` or a raw
//! pointer, this test stops building and names the offending type.

use std::sync::Arc;

use f90y_core::Executable;
use f90y_serve::engine::Engine;
use f90y_serve::protocol::{Request, Response};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn cached_artifacts_cross_threads_without_cloning() {
    // The artifact itself, shared form included.
    assert_send_sync::<Executable>();
    assert_send_sync::<Arc<Executable>>();
    // The engine is shared by reference across connection handlers.
    assert_send_sync::<Engine>();
    // Requests and responses travel between threads over channels.
    assert_send_sync::<Request>();
    assert_send_sync::<Response>();
}

#[test]
fn a_compiled_artifact_really_runs_from_another_thread() {
    use f90y_core::{Compiler, Pipeline, Target};

    let exe = Arc::new(
        Compiler::new(Pipeline::F90y)
            .compile("REAL A(16)\nA = A + 2.0\n")
            .expect("compiles"),
    );
    let shared = Arc::clone(&exe);
    let handle = std::thread::spawn(move || {
        let run = shared
            .session(Target::Cm2 { nodes: 8 })
            .run()
            .expect("runs on a worker thread");
        run.finals().final_array("a").expect("finals")
    });
    let theirs = handle.join().expect("worker thread");
    let ours = exe
        .session(Target::Cm2 { nodes: 8 })
        .run()
        .expect("runs on the main thread")
        .finals()
        .final_array("a")
        .expect("finals");
    assert_eq!(ours, theirs, "shared artifact runs identically anywhere");
}
