//! # f90y-serve — the compiler as a multi-tenant service
//!
//! Everything before this crate turns one source text into one run; this
//! crate turns the [`Session`](f90y_core::Session)/[`Target`](f90y_core::Target) seam into a
//! long-running **compile-and-run service**: many concurrent requests,
//! many tenants, one machine room (DESIGN.md §13).
//!
//! Three mechanisms carry the load story:
//!
//! * **Content-hash compile cache** ([`cache`]): requests are keyed by
//!   `fnv1a64(source ‖ pipeline ‖ passes ‖ target ‖ nodes)` and the
//!   compiled [`Executable`](f90y_core::Executable) is shared between
//!   requests as an `Arc` — `Executable` is `Send + Sync`, so cached
//!   artifacts cross worker threads without cloning program IR. A
//!   bounded LRU with hit/miss/eviction counters keeps residency honest.
//! * **Fair machine-time scheduling** ([`engine`]): every run charges
//!   its tenant *simulated* machine time — node cycles on the CM/2,
//!   supersteps on the CM/5 MIMD engine — and the scheduler always
//!   dispatches the pending request whose tenant has been charged
//!   least. One tenant's 512² grid cannot starve another's 16² request.
//! * **Admission control** ([`engine`]): the pending queue is bounded;
//!   an over-capacity submit is refused *immediately* with a typed
//!   [`protocol::ErrorKind::Overloaded`] response — load is shed, never
//!   buffered unboundedly, and a refusal is never a hang.
//!
//! The wire format is newline-delimited JSON ([`protocol`]); the
//! `f90y-served` binary speaks it on stdin/stdout (pipe mode) or a TCP
//! listener. Every request runs inside a `serve.request` telemetry span
//! and — for run requests — records its flight-recorder trace, whose
//! [`digest`](f90y_obs::trace::Trace::digest) is returned to the client.
//!
//! ```
//! use f90y_serve::engine::{Engine, ServeConfig};
//! use f90y_serve::protocol::{Request, Response};
//!
//! // A deterministic single-lane engine (workers = 0: callers drain).
//! let engine = Engine::new(ServeConfig::deterministic());
//! let (tx, rx) = std::sync::mpsc::channel();
//! let req = Request::parse(
//!     r#"{"id":1,"tenant":"alice","kind":"run","source":"REAL A(8)\nA = A + 1.0\n"}"#,
//! )?;
//! engine.submit(req, tx).expect("queue has room");
//! engine.drain();
//! match rx.recv()? {
//!     Response::Done(d) => assert_eq!(d.id, 1),
//!     Response::Error(e) => panic!("{e:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod engine;
pub mod protocol;

pub use cache::{CacheKey, CacheStats, CompileCache};
pub use engine::{Engine, ServeConfig, ServeStats};
pub use protocol::{ErrorKind, Request, RequestKind, Response};
