//! The newline-delimited JSON wire protocol (DESIGN.md §13).
//!
//! One request per line, one response per line; responses carry the
//! request's `id` and may arrive out of order (the engine schedules by
//! tenant fairness, not arrival). The serialisation rides on
//! [`f90y_obs::json`] so the workspace stays dependency-free.
//!
//! ## Request
//!
//! ```json
//! {"id":1,"tenant":"alice","kind":"run","source":"REAL A(8)\nA = A + 1.0\n",
//!  "pipeline":"f90y","target":"cm2","nodes":16}
//! ```
//!
//! * `id` — client-chosen, echoed verbatim (required).
//! * `tenant` — fairness accounting bucket (default `"anon"`).
//! * `kind` — `"run"` (compile + execute), `"compile"` (compile only,
//!   warms the cache), `"lint"` (diagnostics only, never cached).
//! * `source` — Fortran 90 text (required).
//! * `pipeline` — `"f90y"` | `"cmf"` | `"starlisp"` (default `"f90y"`).
//! * `passes` — optional explicit middle-end pass list.
//! * `target` — `"cm2"` | `"cm5"` | `"accel"` (default `"cm2"`);
//!   `nodes` (default 16). The spellings are the HAL registry names.
//! * `host_threads` — host worker threads for the MIMD compute phase
//!   (default 1). A pure throughput knob: results, fingerprints and
//!   trace digests are bit-identical at any value, so it is *not* part
//!   of the compile-cache key.
//! * `fault_seed`, `fault_drop_per_mille` — message-fault plan for the
//!   MIMD engine. Only `"cm5"` has a message layer, so these fields on
//!   a `"cm2"` or `"accel"` request are a typed protocol error, the
//!   same rejection the Session API gives. Like `host_threads`, they
//!   perturb the run, never the artifact, and stay out of the cache
//!   key.
//!
//! ## Response
//!
//! `{"id":…,"ok":true,…}` with cache outcome, modelled cost/latency
//! units, the statically predicted run cost (`predicted_units`,
//! present when the communication-plan analysis found an exact static
//! plan), finals fingerprint and trace digest — or `{"id":…,"ok":false,
//! "error":{"kind":…,"message":…}}` with a typed [`ErrorKind`].

use f90y_core::{FaultPlan, Pipeline, Target};
use f90y_obs::json::{parse, Json, JsonError};

/// What a request asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Compile (through the cache) and execute on the target.
    Run,
    /// Compile only — warms the cache, returns the artifact fingerprint.
    Compile,
    /// Lint only — diagnostics, never cached, never executed.
    Lint,
}

impl RequestKind {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Run => "run",
            RequestKind::Compile => "compile",
            RequestKind::Lint => "lint",
        }
    }
}

/// One parsed service request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Fairness accounting bucket.
    pub tenant: String,
    /// What to do.
    pub kind: RequestKind,
    /// Fortran 90 source text.
    pub source: String,
    /// Compiler model.
    pub pipeline: Pipeline,
    /// Explicit middle-end pass list (`None` = the pipeline default).
    pub passes: Option<Vec<String>>,
    /// Where to run (also part of the cache key).
    pub target: Target,
    /// Host worker threads for the MIMD compute phase (default 1).
    /// Deliberately *not* part of the cache key: the artifact and every
    /// observable result are bit-identical at any value.
    pub host_threads: usize,
    /// Message-fault plan for the MIMD engine (`"cm5"` requests only;
    /// the other targets have no message layer to perturb). Like
    /// `host_threads`, never part of the cache key: faults perturb the
    /// run, not the compiled artifact.
    pub faults: Option<FaultPlan>,
}

/// Look up a field of a JSON object.
fn field<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    match doc {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn str_field(doc: &Json, name: &str) -> Option<String> {
    match field(doc, name) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

impl Request {
    /// Parse one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed JSON, a missing
    /// required field, or an unknown enum spelling — the engine wraps
    /// it in an [`ErrorKind::Protocol`] response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = parse(line).map_err(|e: JsonError| e.to_string())?;
        if !matches!(doc, Json::Obj(_)) {
            return Err("request must be a JSON object".into());
        }
        let id = match field(&doc, "id") {
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as u64,
            Some(other) => return Err(format!("'id' must be a non-negative integer, got {other}")),
            None => return Err("'id' is required".into()),
        };
        let source = match str_field(&doc, "source") {
            Some(s) if !s.is_empty() => s,
            Some(_) => return Err("'source' must be non-empty".into()),
            None => return Err("'source' is required".into()),
        };
        let tenant = str_field(&doc, "tenant").unwrap_or_else(|| "anon".into());
        let kind = match str_field(&doc, "kind").as_deref() {
            None | Some("run") => RequestKind::Run,
            Some("compile") => RequestKind::Compile,
            Some("lint") => RequestKind::Lint,
            Some(other) => return Err(format!("unknown kind '{other}'")),
        };
        let pipeline = match str_field(&doc, "pipeline").as_deref() {
            None | Some("f90y") => Pipeline::F90y,
            Some("cmf") => Pipeline::Cmf,
            Some("starlisp") => Pipeline::StarLisp,
            Some(other) => return Err(format!("unknown pipeline '{other}'")),
        };
        let passes = match field(&doc, "passes") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => {
                let mut names = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Json::Str(s) => names.push(s.clone()),
                        other => return Err(format!("'passes' entries must be strings: {other}")),
                    }
                }
                Some(names)
            }
            Some(other) => return Err(format!("'passes' must be an array, got {other}")),
        };
        let nodes = match field(&doc, "nodes") {
            None => 16,
            Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 => *n as usize,
            Some(other) => return Err(format!("'nodes' must be a positive integer, got {other}")),
        };
        let target = match str_field(&doc, "target").as_deref() {
            None | Some("cm2") => Target::Cm2 { nodes },
            Some("cm5") => Target::Cm5Mimd { nodes },
            Some("accel") => Target::Accel { nodes },
            Some(other) => return Err(format!("unknown target '{other}'")),
        };
        let host_threads = match field(&doc, "host_threads") {
            None => 1,
            Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 => *n as usize,
            Some(other) => {
                return Err(format!(
                    "'host_threads' must be a positive integer, got {other}"
                ))
            }
        };
        if host_threads > 1 && !matches!(target, Target::Cm5Mimd { .. }) {
            return Err("'host_threads' applies to target \"cm5\" only".into());
        }
        let fault_seed = match field(&doc, "fault_seed") {
            None => None,
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            Some(other) => {
                return Err(format!(
                    "'fault_seed' must be a non-negative integer, got {other}"
                ))
            }
        };
        let fault_drop = match field(&doc, "fault_drop_per_mille") {
            None => None,
            Some(Json::Num(n)) if (0.0..=1000.0).contains(n) && n.fract() == 0.0 => Some(*n as u16),
            Some(other) => {
                return Err(format!(
                    "'fault_drop_per_mille' must be an integer in 0..=1000, got {other}"
                ))
            }
        };
        let faults = if fault_seed.is_some() || fault_drop.is_some() {
            if !matches!(target, Target::Cm5Mimd { .. }) {
                return Err(
                    "fault-plan fields ('fault_seed', 'fault_drop_per_mille') apply to \
                     target \"cm5\" only — the other targets have no message layer"
                        .into(),
                );
            }
            Some(FaultPlan::seeded(fault_seed.unwrap_or(0)).drop_per_mille(fault_drop.unwrap_or(0)))
        } else {
            None
        };
        Ok(Request {
            id,
            tenant,
            kind,
            source,
            pipeline,
            passes,
            target,
            host_threads,
            faults,
        })
    }

    /// Wire spelling of the pipeline.
    pub fn pipeline_name(&self) -> &'static str {
        match self.pipeline {
            Pipeline::F90y => "f90y",
            Pipeline::Cmf => "cmf",
            Pipeline::StarLisp => "starlisp",
        }
    }

    /// Wire spelling of the target kind plus node count (the HAL
    /// registry names).
    pub fn target_parts(&self) -> (&'static str, usize) {
        match self.target {
            Target::Cm2 { nodes } => ("cm2", nodes),
            Target::Cm5Mimd { nodes } => ("cm5", nodes),
            Target::Accel { nodes } => ("accel", nodes),
        }
    }

    /// Serialise back to one request line (the load generator's side).
    pub fn to_json(&self) -> String {
        let (target, nodes) = self.target_parts();
        let mut fields = vec![
            ("id".into(), Json::Num(self.id as f64)),
            ("tenant".into(), Json::Str(self.tenant.clone())),
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            ("source".into(), Json::Str(self.source.clone())),
            ("pipeline".into(), Json::Str(self.pipeline_name().into())),
            ("target".into(), Json::Str(target.into())),
            ("nodes".into(), Json::Num(nodes as f64)),
        ];
        if self.host_threads != 1 {
            fields.push(("host_threads".into(), Json::Num(self.host_threads as f64)));
        }
        if let Some(plan) = &self.faults {
            fields.push(("fault_seed".into(), Json::Num(plan.seed as f64)));
            if plan.drop_per_mille != 0 {
                fields.push((
                    "fault_drop_per_mille".into(),
                    Json::Num(f64::from(plan.drop_per_mille)),
                ));
            }
        }
        if let Some(passes) = &self.passes {
            fields.push((
                "passes".into(),
                Json::Arr(passes.iter().map(|p| Json::Str(p.clone())).collect()),
            ));
        }
        Json::Obj(fields).to_string()
    }
}

/// Typed failure categories — the client can branch on `error.kind`
/// without parsing prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The admission queue is full; resubmit later. The request was
    /// refused *before* any work — backpressure, not failure.
    Overloaded,
    /// The request line itself is malformed.
    Protocol,
    /// The source failed to compile (or lint-parse).
    Compile,
    /// The compiled program's run failed (bad session config, fault
    /// budget exhaustion, dynamic error).
    Run,
}

impl ErrorKind {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Compile => "compile",
            ErrorKind::Run => "run",
        }
    }
}

/// A successful response's payload.
#[derive(Debug, Clone)]
pub struct Done {
    /// Echoed request id.
    pub id: u64,
    /// Echoed tenant.
    pub tenant: String,
    /// Echoed request kind.
    pub kind: RequestKind,
    /// `"hit"`, `"miss"`, or `"bypass"` (lint never touches the cache).
    pub cache: &'static str,
    /// Modelled compile cost in units (0 on a cache hit).
    pub compile_units: u64,
    /// Simulated machine time of the run: CM/2 node cycles or MIMD
    /// supersteps (0 for compile/lint requests).
    pub run_units: u64,
    /// What the tenant was charged (`compile_units + run_units`, min 1).
    pub charged_units: u64,
    /// Statically predicted run cost in scheduler units, from the
    /// communication-plan analysis (`0` when the program has no exact
    /// static plan, and for lint requests). A run that *fails* is
    /// charged this amount (min 1) — static admission, DESIGN.md §16.
    pub predicted_units: u64,
    /// Virtual machine-time units spent waiting in the queue.
    pub queue_wait_units: u64,
    /// Virtual submission-to-completion units (wait + service).
    pub latency_units: u64,
    /// Sustained model GFLOPS (run requests only).
    pub gflops: Option<f64>,
    /// `fnv1a64:` fingerprint — finals for a run, the compiled artifact
    /// for a compile-only request.
    pub fingerprint: Option<String>,
    /// The run's flight-recorder digest (run requests only).
    pub trace_digest: Option<String>,
    /// Lint warning codes (lint requests only).
    pub warnings: Vec<String>,
}

/// A failed response's payload.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Echoed request id.
    pub id: u64,
    /// What category of failure.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

/// One response line, success or typed failure.
#[derive(Debug, Clone)]
pub enum Response {
    /// The request completed.
    Done(Done),
    /// The request was refused or failed.
    Error(Failure),
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Done(d) => d.id,
            Response::Error(e) => e.id,
        }
    }

    /// Shorthand for a typed failure.
    pub fn error(id: u64, kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Error(Failure {
            id,
            kind,
            message: message.into(),
        })
    }

    /// Serialise to one response line.
    pub fn to_json(&self) -> String {
        match self {
            Response::Done(d) => {
                let mut fields = vec![
                    ("id".into(), Json::Num(d.id as f64)),
                    ("ok".into(), Json::Bool(true)),
                    ("tenant".into(), Json::Str(d.tenant.clone())),
                    ("kind".into(), Json::Str(d.kind.as_str().into())),
                    ("cache".into(), Json::Str(d.cache.into())),
                    ("compile_units".into(), Json::Num(d.compile_units as f64)),
                    ("run_units".into(), Json::Num(d.run_units as f64)),
                    ("charged_units".into(), Json::Num(d.charged_units as f64)),
                    (
                        "queue_wait_units".into(),
                        Json::Num(d.queue_wait_units as f64),
                    ),
                    ("latency_units".into(), Json::Num(d.latency_units as f64)),
                ];
                // Zero stays off the wire so pre-analysis golden
                // response lines keep their exact bytes.
                if d.predicted_units != 0 {
                    fields.push((
                        "predicted_units".into(),
                        Json::Num(d.predicted_units as f64),
                    ));
                }
                if let Some(g) = d.gflops {
                    fields.push(("gflops".into(), Json::Num(g)));
                }
                if let Some(fp) = &d.fingerprint {
                    fields.push(("fingerprint".into(), Json::Str(fp.clone())));
                }
                if let Some(digest) = &d.trace_digest {
                    fields.push(("trace_digest".into(), Json::Str(digest.clone())));
                }
                if !d.warnings.is_empty() {
                    fields.push((
                        "warnings".into(),
                        Json::Arr(d.warnings.iter().map(|w| Json::Str(w.clone())).collect()),
                    ));
                }
                Json::Obj(fields).to_string()
            }
            Response::Error(e) => Json::Obj(vec![
                ("id".into(), Json::Num(e.id as f64)),
                ("ok".into(), Json::Bool(false)),
                (
                    "error".into(),
                    Json::Obj(vec![
                        ("kind".into(), Json::Str(e.kind.as_str().into())),
                        ("message".into(), Json::Str(e.message.clone())),
                    ]),
                ),
            ])
            .to_string(),
        }
    }

    /// Parse one response line (the load generator's side).
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a shape that is neither a
    /// `Done` nor an `Error` response.
    pub fn parse(line: &str) -> Result<Response, String> {
        let doc = parse(line).map_err(|e| e.to_string())?;
        let id = match field(&doc, "id") {
            Some(Json::Num(n)) => *n as u64,
            _ => return Err("'id' missing".into()),
        };
        let ok = match field(&doc, "ok") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("'ok' missing".into()),
        };
        if !ok {
            let err = field(&doc, "error").ok_or("'error' missing")?;
            let kind = match str_field(err, "kind").as_deref() {
                Some("overloaded") => ErrorKind::Overloaded,
                Some("protocol") => ErrorKind::Protocol,
                Some("compile") => ErrorKind::Compile,
                Some("run") => ErrorKind::Run,
                other => return Err(format!("unknown error kind {other:?}")),
            };
            return Ok(Response::Error(Failure {
                id,
                kind,
                message: str_field(err, "message").unwrap_or_default(),
            }));
        }
        let num = |name: &str| match field(&doc, name) {
            Some(Json::Num(n)) => *n as u64,
            _ => 0,
        };
        let kind = match str_field(&doc, "kind").as_deref() {
            Some("compile") => RequestKind::Compile,
            Some("lint") => RequestKind::Lint,
            _ => RequestKind::Run,
        };
        let cache = match str_field(&doc, "cache").as_deref() {
            Some("hit") => "hit",
            Some("bypass") => "bypass",
            _ => "miss",
        };
        let warnings = match field(&doc, "warnings") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(|w| match w {
                    Json::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        Ok(Response::Done(Done {
            id,
            tenant: str_field(&doc, "tenant").unwrap_or_default(),
            kind,
            cache,
            compile_units: num("compile_units"),
            run_units: num("run_units"),
            charged_units: num("charged_units"),
            predicted_units: num("predicted_units"),
            queue_wait_units: num("queue_wait_units"),
            latency_units: num("latency_units"),
            gflops: match field(&doc, "gflops") {
                Some(Json::Num(n)) => Some(*n),
                _ => None,
            },
            fingerprint: str_field(&doc, "fingerprint"),
            trace_digest: str_field(&doc, "trace_digest"),
            warnings,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request::parse(
            r#"{"id":7,"tenant":"t","kind":"compile","source":"REAL A(8)\nA = A\n",
                "pipeline":"cmf","target":"cm5","nodes":8,"passes":["comm-split"]}"#,
        )
        .unwrap();
        assert_eq!(req.id, 7);
        assert_eq!(req.kind, RequestKind::Compile);
        assert_eq!(req.pipeline, Pipeline::Cmf);
        assert_eq!(req.target, Target::Cm5Mimd { nodes: 8 });
        assert_eq!(req.passes.as_deref(), Some(&["comm-split".to_string()][..]));
        let again = Request::parse(&req.to_json()).unwrap();
        assert_eq!(again.source, req.source);
        assert_eq!(again.target, req.target);
    }

    #[test]
    fn request_defaults_apply() {
        let req = Request::parse(r#"{"id":1,"source":"REAL A(8)\nA = A\n"}"#).unwrap();
        assert_eq!(req.tenant, "anon");
        assert_eq!(req.kind, RequestKind::Run);
        assert_eq!(req.pipeline, Pipeline::F90y);
        assert_eq!(req.target, Target::Cm2 { nodes: 16 });
        assert_eq!(req.host_threads, 1);
    }

    #[test]
    fn request_host_threads_round_trip() {
        let req = Request::parse(
            r#"{"id":2,"source":"REAL A(8)\nA = A\n","target":"cm5","nodes":8,
                "host_threads":4}"#,
        )
        .unwrap();
        assert_eq!(req.host_threads, 4);
        let again = Request::parse(&req.to_json()).unwrap();
        assert_eq!(again.host_threads, 4);
        // The default value stays off the wire so existing golden
        // request lines keep their exact bytes.
        let default = Request::parse(r#"{"id":3,"source":"x"}"#).unwrap();
        assert!(!default.to_json().contains("host_threads"));
    }

    #[test]
    fn request_rejects_malformed_lines() {
        for bad in [
            "not json",
            "[]",
            r#"{"source":"x"}"#,
            r#"{"id":1}"#,
            r#"{"id":1,"source":""}"#,
            r#"{"id":1,"source":"x","kind":"dance"}"#,
            r#"{"id":1,"source":"x","pipeline":"gcc"}"#,
            r#"{"id":1,"source":"x","target":"gpu"}"#,
            r#"{"id":-3,"source":"x"}"#,
            r#"{"id":1,"source":"x","host_threads":0}"#,
            r#"{"id":1,"source":"x","host_threads":1.5}"#,
            r#"{"id":1,"source":"x","target":"cm2","host_threads":2}"#,
            r#"{"id":1,"source":"x","target":"accel","host_threads":2}"#,
            r#"{"id":1,"source":"x","fault_drop_per_mille":1001}"#,
            r#"{"id":1,"source":"x","fault_seed":-1}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn request_accepts_the_accel_target() {
        let req =
            Request::parse(r#"{"id":4,"source":"REAL A(8)\nA = A\n","target":"accel","nodes":32}"#)
                .unwrap();
        assert_eq!(req.target, Target::Accel { nodes: 32 });
        assert_eq!(req.target_parts(), ("accel", 32));
        let again = Request::parse(&req.to_json()).unwrap();
        assert_eq!(again.target, req.target);
    }

    #[test]
    fn fault_fields_build_a_plan_on_cm5_only() {
        let req = Request::parse(
            r#"{"id":5,"source":"x","target":"cm5","nodes":8,
                "fault_seed":7,"fault_drop_per_mille":50}"#,
        )
        .unwrap();
        let plan = req.faults.clone().expect("fault plan built");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop_per_mille, 50);
        let again = Request::parse(&req.to_json()).unwrap();
        assert_eq!(again.faults, req.faults);
        // No fault fields: no plan, and nothing on the wire.
        let quiet = Request::parse(r#"{"id":6,"source":"x","target":"cm5"}"#).unwrap();
        assert!(quiet.faults.is_none());
        assert!(!quiet.to_json().contains("fault"));
        // The typed rejection: targets without a message layer.
        for target in ["cm2", "accel"] {
            let line = format!(r#"{{"id":7,"source":"x","target":"{target}","fault_seed":1}}"#);
            let err = Request::parse(&line).unwrap_err();
            assert!(
                err.contains("\"cm5\" only"),
                "{target} must reject fault fields, got: {err}"
            );
        }
    }

    #[test]
    fn responses_round_trip() {
        let done = Response::Done(Done {
            id: 3,
            tenant: "alice".into(),
            kind: RequestKind::Run,
            cache: "hit",
            compile_units: 0,
            run_units: 1234,
            charged_units: 1234,
            predicted_units: 1234,
            queue_wait_units: 10,
            latency_units: 1244,
            gflops: Some(3.5),
            fingerprint: Some("fnv1a64:dead".into()),
            trace_digest: Some("fnv1a64:beef".into()),
            warnings: vec![],
        });
        match Response::parse(&done.to_json()).unwrap() {
            Response::Done(d) => {
                assert_eq!(d.id, 3);
                assert_eq!(d.cache, "hit");
                assert_eq!(d.run_units, 1234);
                assert_eq!(d.predicted_units, 1234);
                assert_eq!(d.fingerprint.as_deref(), Some("fnv1a64:dead"));
            }
            other => panic!("expected Done, got {other:?}"),
        }
        // A zero prediction (no exact static plan) stays off the wire
        // and parses back as zero.
        let unplanned = Response::Done(Done {
            predicted_units: 0,
            ..match done {
                Response::Done(d) => d,
                Response::Error(_) => unreachable!(),
            }
        });
        assert!(!unplanned.to_json().contains("predicted_units"));
        match Response::parse(&unplanned.to_json()).unwrap() {
            Response::Done(d) => assert_eq!(d.predicted_units, 0),
            other => panic!("expected Done, got {other:?}"),
        }
        let err = Response::error(9, ErrorKind::Overloaded, "queue full");
        match Response::parse(&err.to_json()).unwrap() {
            Response::Error(e) => {
                assert_eq!(e.id, 9);
                assert_eq!(e.kind, ErrorKind::Overloaded);
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }
}
