//! `f90y-served` — the long-running compile-and-run service.
//!
//! ```text
//! f90y-served [options]
//!   --listen ADDR     serve TCP connections on ADDR (e.g. 127.0.0.1:9090)
//!                     instead of the default stdin/stdout pipe mode
//!   --workers N       worker threads                       (default 2)
//!   --queue N         pending-queue bound (backpressure)   (default 256)
//!   --cache N         compile-cache residency bound        (default 64)
//! ```
//!
//! **Pipe mode** (default): one JSON request per stdin line, one JSON
//! response per stdout line; responses may arrive out of order (match
//! them by `id`). EOF on stdin drains the queue and exits. One-liner:
//!
//! ```text
//! echo '{"id":1,"source":"REAL A(8)\nA = A + 1.0\n"}' | f90y-served
//! ```
//!
//! **TCP mode** (`--listen`): the same newline-delimited protocol per
//! connection; each connection gets its own response stream. The
//! process runs until killed.
//!
//! Malformed lines get a typed `protocol` error response; an
//! over-capacity submit gets a typed `overloaded` response immediately
//! — the service never buffers unboundedly and never hangs a client.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

use f90y_serve::engine::{Engine, ServeConfig};
use f90y_serve::protocol::{ErrorKind, Request, Response};

struct Options {
    listen: Option<String>,
    config: ServeConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: f90y-served [--listen ADDR] [--workers N] [--queue N] [--cache N]\n\
         pipe mode (default): newline-delimited JSON requests on stdin, responses on stdout"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        listen: None,
        config: ServeConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> usize {
            match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => n,
                None => {
                    eprintln!("f90y-served: {what} needs a number");
                    usage();
                }
            }
        };
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => opts.listen = Some(addr),
                None => usage(),
            },
            "--workers" => opts.config.workers = num("--workers"),
            "--queue" => opts.config.queue_capacity = num("--queue").max(1),
            "--cache" => opts.config.cache_capacity = num("--cache"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("f90y-served: unknown option '{other}'");
                usage();
            }
        }
    }
    if opts.config.workers == 0 {
        // The service needs someone to do the work; 0 is the embedded
        // deterministic mode, not a server mode.
        opts.config.workers = 1;
    }
    opts
}

/// Feed one line to the engine, routing parse failures and admission
/// refusals straight back as typed responses.
fn dispatch(engine: &Engine, line: &str, reply: &Sender<Response>) {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return;
    }
    let req = match Request::parse(trimmed) {
        Ok(req) => req,
        Err(message) => {
            // No parseable id; 0 flags "unattributable" to the client.
            let _ = reply.send(Response::error(0, ErrorKind::Protocol, message));
            return;
        }
    };
    if let Err(overloaded) = engine.submit(req, reply.clone()) {
        let _ = reply.send(overloaded);
    }
}

/// Pipe mode: stdin → engine → stdout until EOF, then drain and exit.
fn serve_pipe(engine: Engine) -> ExitCode {
    let (tx, rx) = channel::<Response>();
    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for response in rx {
            let mut out = stdout.lock();
            if writeln!(out, "{}", response.to_json())
                .and_then(|()| out.flush())
                .is_err()
            {
                return;
            }
        }
    });
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(line) => dispatch(&engine, &line, &tx),
            Err(e) => {
                eprintln!("f90y-served: stdin: {e}");
                break;
            }
        }
    }
    // EOF: let queued work finish, then close the response stream.
    engine.shutdown();
    drop(tx);
    let _ = writer.join();
    ExitCode::SUCCESS
}

/// One TCP connection: reader loop on this thread, writer on another.
fn serve_connection(engine: &Engine, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("f90y-served: {peer}: {e}");
            return;
        }
    };
    let (tx, rx) = channel::<Response>();
    let writer = std::thread::spawn(move || {
        let mut out = write_half;
        for response in rx {
            if writeln!(out, "{}", response.to_json()).is_err() {
                return;
            }
        }
    });
    for line in BufReader::new(stream).lines() {
        match line {
            Ok(line) => dispatch(engine, &line, &tx),
            Err(_) => break,
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// TCP mode: accept loop, one reader thread per connection.
fn serve_tcp(engine: Engine, addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("f90y-served: cannot listen on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "f90y-served: listening on {}",
        listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.into())
    );
    let engine = Arc::new(engine);
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || serve_connection(&engine, stream));
            }
            Err(e) => eprintln!("f90y-served: accept: {e}"),
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = parse_args();
    let engine = Engine::new(opts.config);
    match &opts.listen {
        Some(addr) => serve_tcp(engine, addr),
        None => serve_pipe(engine),
    }
}
