//! The content-hash compile cache (DESIGN.md §13).
//!
//! A compiled [`Executable`] is a pure function of `(source, pipeline,
//! pass list, target, nodes)` — the whole pipeline is deterministic —
//! so the cache key is an FNV-1a-64 over exactly those components and a
//! hit can hand out a shared `Arc<Executable>` with no recompilation
//! and no cloning of program IR (`Executable: Send + Sync`; the
//! compile-time assertion lives in `tests/send_sync.rs`).
//!
//! The target and node count are part of the key even though codegen
//! does not depend on them: a served artifact is *the thing a request
//! names*, and two requests that differ anywhere in the tuple must not
//! alias (the discrimination tests in `tests/cache_key.rs` pin this).
//! Hash collisions cannot alias either — every entry stores its full
//! composed key text and a lookup compares it before handing the
//! artifact out.
//!
//! Residency is a bounded LRU: each entry carries a monotonic
//! last-touch stamp; inserting past capacity evicts the least recently
//! touched entry. Hits, misses and evictions are counted and surface
//! as `serve.cache.*` telemetry.

use std::collections::HashMap;
use std::sync::Arc;

use f90y_core::Executable;

use crate::protocol::Request;

/// The composed cache key: the FNV-1a-64 hash used for bucketing plus
/// the full component text compared on lookup (collision safety).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// `fnv1a64` over [`CacheKey::text`].
    pub hash: u64,
    /// `source ‖ '\0' ‖ pipeline ‖ '\0' ‖ passes ‖ '\0' ‖ target ‖ '\0' ‖ nodes`.
    pub text: String,
}

/// FNV-1a, 64 bit — the same function the flight recorder uses for
/// trace digests, so every fingerprint in the system reads alike.
pub fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl CacheKey {
    /// The key for a request: every component that can change the
    /// served artifact, NUL-separated (NUL cannot appear in any
    /// component, so the composition is injective). `host_threads` and
    /// the fault-plan fields are deliberately excluded — they are
    /// run-time knobs that never change the compiled artifact, so
    /// requests differing only in them share one cache entry (the audit
    /// test in `tests/cache_key.rs` pins this for every non-semantic
    /// field).
    pub fn for_request(req: &Request) -> CacheKey {
        let (target, nodes) = req.target_parts();
        let passes = match &req.passes {
            Some(names) => names.join(","),
            None => "<default>".to_string(),
        };
        let text = format!(
            "{}\0{}\0{}\0{}\0{}",
            req.source,
            req.pipeline_name(),
            passes,
            target,
            nodes
        );
        CacheKey {
            hash: fnv1a64(text.bytes()),
            text,
        }
    }

    /// The key rendered as `fnv1a64:<hex>` for logs and responses.
    pub fn rendered(&self) -> String {
        format!("fnv1a64:{:016x}", self.hash)
    }
}

/// Hit/miss/eviction counters, readable while the service runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a shared artifact.
    pub hits: u64,
    /// Lookups that found nothing (the caller compiles and inserts).
    pub misses: u64,
    /// Entries pushed out by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over all lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    key_text: String,
    exe: Arc<Executable>,
    touched: u64,
}

/// A bounded LRU mapping [`CacheKey`] → shared [`Executable`].
pub struct CompileCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, Entry>,
    stats: CacheStats,
}

impl CompileCache {
    /// An empty cache holding at most `capacity` artifacts
    /// (`capacity == 0` disables caching: every lookup misses).
    pub fn new(capacity: usize) -> Self {
        CompileCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look `key` up, counting a hit or a miss and refreshing the
    /// entry's LRU stamp on a hit.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Arc<Executable>> {
        self.clock += 1;
        match self.entries.get_mut(&key.hash) {
            Some(entry) if entry.key_text == key.text => {
                entry.touched = self.clock;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.exe))
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly compiled artifact, evicting the least recently
    /// touched entry if the cache is at capacity.
    pub fn insert(&mut self, key: &CacheKey, exe: Arc<Executable>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if !self.entries.contains_key(&key.hash) && self.entries.len() >= self.capacity {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(h, _)| h)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            key.hash,
            Entry {
                key_text: key.text.clone(),
                exe,
                touched: self.clock,
            },
        );
    }

    /// Resident artifact count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_core::{Compiler, Pipeline};

    fn request(source: &str) -> Request {
        Request::parse(&format!(
            r#"{{"id":1,"source":{}}}"#,
            f90y_obs::json::Json::Str(source.into())
        ))
        .unwrap()
    }

    fn compiled(source: &str) -> Arc<Executable> {
        Arc::new(Compiler::new(Pipeline::F90y).compile(source).unwrap())
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut cache = CompileCache::new(2);
        let sources = [
            "REAL A(8)\nA = A + 1.0\n",
            "REAL B(8)\nB = B + 2.0\n",
            "REAL C(8)\nC = C + 3.0\n",
        ];
        let keys: Vec<CacheKey> = sources
            .iter()
            .map(|s| CacheKey::for_request(&request(s)))
            .collect();
        cache.insert(&keys[0], compiled(sources[0]));
        cache.insert(&keys[1], compiled(sources[1]));
        // Touch [0] so [1] becomes the LRU victim.
        assert!(cache.lookup(&keys[0]).is_some());
        cache.insert(&keys[2], compiled(sources[2]));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(
            cache.lookup(&keys[0]).is_some(),
            "recently touched survives"
        );
        assert!(cache.lookup(&keys[1]).is_none(), "LRU victim evicted");
        assert!(cache.lookup(&keys[2]).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = CompileCache::new(0);
        let key = CacheKey::for_request(&request("REAL A(8)\nA = A\n"));
        cache.insert(&key, compiled("REAL A(8)\nA = A\n"));
        assert!(cache.is_empty());
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn colliding_hash_with_different_text_misses() {
        let mut cache = CompileCache::new(4);
        let key_a = CacheKey::for_request(&request("REAL A(8)\nA = A + 1.0\n"));
        cache.insert(&key_a, compiled("REAL A(8)\nA = A + 1.0\n"));
        // Forge a key with the same hash but different text: the full
        // comparison must refuse to alias.
        let forged = CacheKey {
            hash: key_a.hash,
            text: "something else".into(),
        };
        assert!(cache.lookup(&forged).is_none());
        assert!(cache.lookup(&key_a).is_some());
    }
}
