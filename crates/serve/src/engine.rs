//! The serving engine: admission, fair scheduling, execution
//! (DESIGN.md §13).
//!
//! ## The scheduler invariant
//!
//! Every completed request charges its tenant **simulated machine
//! time** — CM/2 node cycles or CM/5 MIMD supersteps for runs, modelled
//! compile units for fresh compiles, at least 1 unit always — and the
//! scheduler invariably dispatches the pending request whose tenant has
//! the **least accumulated charge** (ties broken by submission order).
//! The fairness bound that follows, and that `tests/fairness.rs` pins:
//! once a request from the least-charged tenant is pending, at most
//! `workers` other requests (the ones already in flight) start before
//! it. A tenant that just ran a 512² grid carries its cost as charge,
//! so a 16² tenant's next request overtakes every queued request of the
//! heavy tenant.
//!
//! ## Static admission
//!
//! A request that *fails* mid-run is charged the statically predicted
//! cost of the run it asked for — the communication-plan analysis'
//! per-target cost units (DESIGN.md §16) — not a flat 1-unit floor.
//! Tenants cannot probe expensive workloads for free by making them
//! fail, yet cheap error spam still costs only its honest minimum.
//! Successful requests are charged actual simulated machine time, so
//! the committed `BENCH_serve.json` distributions are untouched.
//!
//! ## The backpressure contract
//!
//! The pending queue holds at most `queue_capacity` requests.
//! [`Engine::submit`] never blocks and never buffers beyond the bound:
//! an over-capacity submit returns a typed
//! [`Overloaded`](ErrorKind::Overloaded) response immediately. Shed
//! load is observable (`serve.overloaded` counter) and re-submittable
//! by the client; it is never a hang.
//!
//! ## Virtual clock
//!
//! The engine keeps a virtual clock in charge units: each completion
//! advances it by the request's charge. Latency figures in responses
//! (`queue_wait_units`, `latency_units`) are measured on this clock, so
//! a deterministic drain (workers = 0, [`Engine::drain`]) yields
//! byte-identical latency distributions — that is what `bench_serve`
//! commits to `BENCH_serve.json`.

use std::collections::BTreeMap;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use f90y_backend::fe::{Final, HostRun};
use f90y_core::{Compiler, Executable, Run, TraceBuffer};
use f90y_obs::{Telemetry, TelemetryReport};

use crate::cache::{fnv1a64, CacheKey, CacheStats, CompileCache};
use crate::protocol::{Done, ErrorKind, Request, RequestKind, Response};

/// Engine sizing.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Pending-queue bound; submits past it are refused `Overloaded`.
    pub queue_capacity: usize,
    /// Compile-cache residency bound (artifacts, not bytes).
    pub cache_capacity: usize,
    /// Worker threads. `0` means no threads are spawned and the caller
    /// drives execution with [`Engine::drain`] — fully deterministic.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            cache_capacity: 64,
            workers: 2,
        }
    }
}

impl ServeConfig {
    /// The deterministic single-lane configuration used by the bench
    /// and the differential tests: no worker threads, caller drains.
    pub fn deterministic() -> Self {
        ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        }
    }
}

/// One queued request awaiting dispatch.
struct Queued {
    req: Request,
    reply: Sender<Response>,
    seq: u64,
    submit_clock: u64,
}

/// Scheduler state under the engine's mutex.
struct SchedState {
    queue_capacity: usize,
    pending: Vec<Queued>,
    /// Accumulated charge per tenant — the fairness ledger.
    tenants: BTreeMap<String, u64>,
    /// Virtual clock in charge units.
    clock: u64,
    in_flight: usize,
    next_seq: u64,
    accepted: u64,
    rejected: u64,
    completed: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<SchedState>,
    work: Condvar,
    cache: Mutex<CompileCache>,
    telemetry: Mutex<Telemetry>,
}

/// A point-in-time view of the engine's counters.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests refused `Overloaded`.
    pub rejected: u64,
    /// Requests answered (success or typed failure).
    pub completed: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Per-tenant accumulated machine-time charge.
    pub tenants: BTreeMap<String, u64>,
    /// The virtual clock, in charge units.
    pub clock: u64,
}

impl ServeStats {
    /// Fairness spread: max − min accumulated charge across tenants
    /// (0 with fewer than two tenants).
    pub fn fairness_spread(&self) -> u64 {
        let max = self.tenants.values().max().copied().unwrap_or(0);
        let min = self.tenants.values().min().copied().unwrap_or(0);
        max - min
    }
}

/// The multi-tenant compile-and-run engine.
pub struct Engine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Build an engine and spawn its worker threads (none when
    /// `config.workers == 0`; see [`Engine::drain`]).
    pub fn new(config: ServeConfig) -> Engine {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                queue_capacity: config.queue_capacity,
                pending: Vec::new(),
                tenants: BTreeMap::new(),
                clock: 0,
                in_flight: 0,
                next_seq: 0,
                accepted: 0,
                rejected: 0,
                completed: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            cache: Mutex::new(CompileCache::new(config.cache_capacity)),
            telemetry: Mutex::new(Telemetry::new()),
        });
        let handles = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("f90y-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Engine { shared, handles }
    }

    /// Admit a request, or refuse it immediately.
    ///
    /// # Errors
    ///
    /// Returns the typed `Overloaded` response (already carrying the
    /// request's id) when the pending queue is at capacity. The refusal
    /// is instantaneous — this method never blocks on queue room.
    // The Err is the ready-to-send wire payload, not a diagnostic —
    // callers forward it to the client verbatim, so boxing would only
    // add an allocation on the shed path.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, req: Request, reply: Sender<Response>) -> Result<(), Response> {
        let mut state = self.shared.state.lock().expect("engine lock");
        if state.pending.len() >= state.queue_capacity {
            state.rejected += 1;
            let mut tel = self.shared.telemetry.lock().expect("telemetry lock");
            tel.count("serve.overloaded", 1);
            return Err(Response::error(
                req.id,
                ErrorKind::Overloaded,
                format!(
                    "queue full ({} pending); shed, resubmit later",
                    state.pending.len()
                ),
            ));
        }
        state.accepted += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        let submit_clock = state.clock;
        state.pending.push(Queued {
            req,
            reply,
            seq,
            submit_clock,
        });
        let depth = state.pending.len() as f64;
        drop(state);
        {
            let mut tel = self.shared.telemetry.lock().expect("telemetry lock");
            tel.count("serve.accepted", 1);
            tel.gauge_max("serve.queue.depth", depth);
        }
        self.shared.work.notify_one();
        Ok(())
    }

    /// Drive execution on the caller's thread until the queue is empty
    /// (the deterministic mode; meaningful with `workers == 0`, safe —
    /// just redundant — alongside workers). Requests are dispatched in
    /// exactly the scheduler's fairness order.
    pub fn drain(&self) {
        loop {
            let picked = {
                let mut state = self.shared.state.lock().expect("engine lock");
                pick_next(&mut state)
            };
            match picked {
                Some(q) => process(&self.shared, q),
                None => break,
            }
        }
    }

    /// A snapshot of the engine counters.
    pub fn stats(&self) -> ServeStats {
        let state = self.shared.state.lock().expect("engine lock");
        ServeStats {
            accepted: state.accepted,
            rejected: state.rejected,
            completed: state.completed,
            cache: self.shared.cache.lock().expect("cache lock").stats(),
            tenants: state.tenants.clone(),
            clock: state.clock,
        }
    }

    /// A snapshot of the service-lifetime telemetry (per-request
    /// reports absorbed into one view).
    pub fn telemetry_report(&self) -> TelemetryReport {
        self.shared
            .telemetry
            .lock()
            .expect("telemetry lock")
            .report()
    }

    /// Stop accepting work, let in-flight and queued requests finish,
    /// and join the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("engine lock");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Pick the pending request whose tenant carries the least charge,
/// breaking ties by submission order. Returns `None` on an empty queue.
fn pick_next(state: &mut SchedState) -> Option<Queued> {
    if state.pending.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_key = (u64::MAX, u64::MAX);
    for (i, q) in state.pending.iter().enumerate() {
        let charge = state.tenants.get(&q.req.tenant).copied().unwrap_or(0);
        let key = (charge, q.seq);
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    state.in_flight += 1;
    Some(state.pending.remove(best))
}

fn worker_loop(shared: &Shared) {
    loop {
        let picked = {
            let mut state = shared.state.lock().expect("engine lock");
            loop {
                if let Some(q) = pick_next(&mut state) {
                    break Some(q);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.work.wait(state).expect("engine lock");
            }
        };
        match picked {
            Some(q) => process(shared, q),
            None => return,
        }
    }
}

/// Execute one request end to end and deliver its response.
fn process(shared: &Shared, q: Queued) {
    let Queued {
        req,
        reply,
        seq: _,
        submit_clock,
    } = q;
    let start_clock = shared.state.lock().expect("engine lock").clock;

    let mut tel = Telemetry::new();
    let span = tel.start("serve.request");
    let outcome = execute(shared, &req, &mut tel);
    tel.finish(span);
    tel.count("serve.requests", 1);

    // Charge the tenant and advance the virtual clock, then stamp the
    // scheduling fields into the response.
    let charged = match &outcome {
        Ok(done) => done.charged_units.max(1),
        // Failures charge the statically predicted cost of the work
        // they asked for (min 1): error spam cannot starve paying
        // tenants, and a 512²-grid run that dies mid-flight cannot
        // ride a flat 1-unit floor either — static admission.
        Err((_, predicted)) => (*predicted).max(1),
    };
    let response = {
        let mut state = shared.state.lock().expect("engine lock");
        *state.tenants.entry(req.tenant.clone()).or_insert(0) += charged;
        state.clock += charged;
        state.in_flight -= 1;
        state.completed += 1;
        let clock = state.clock;
        drop(state);
        match outcome {
            Ok(mut done) => {
                done.charged_units = charged;
                done.queue_wait_units = start_clock - submit_clock;
                done.latency_units = clock - submit_clock;
                Response::Done(done)
            }
            Err((resp, _)) => resp,
        }
    };
    {
        let mut service = shared.telemetry.lock().expect("telemetry lock");
        service.absorb(&tel.report());
        if matches!(response, Response::Error(_)) {
            service.count("serve.failed", 1);
        }
    }
    // A dropped receiver (client hung up) is not the engine's problem.
    let _ = reply.send(response);
    shared.work.notify_all();
}

/// The request body: cache, compile, run/lint. Returns either a `Done`
/// payload with the scheduling fields zeroed (filled by [`process`])
/// or a complete error response paired with the statically predicted
/// cost known at the point of failure (0 when nothing compiled yet) —
/// [`process`] charges the failing tenant that prediction.
#[allow(clippy::result_large_err)]
fn execute(shared: &Shared, req: &Request, tel: &mut Telemetry) -> Result<Done, (Response, u64)> {
    if req.kind == RequestKind::Lint {
        let report = Compiler::new(req.pipeline)
            .lint_with(&req.source, tel)
            .map_err(|e| {
                (
                    Response::error(req.id, ErrorKind::Compile, e.to_string()),
                    0,
                )
            })?;
        tel.count("serve.lints", 1);
        let warnings = report
            .diagnostics
            .iter()
            .map(|d| d.code.to_string())
            .collect();
        return Ok(Done {
            id: req.id,
            tenant: req.tenant.clone(),
            kind: req.kind,
            cache: "bypass",
            compile_units: report.stmts_analyzed as u64 + 1,
            run_units: 0,
            charged_units: report.stmts_analyzed as u64 + 1,
            predicted_units: 0,
            queue_wait_units: 0,
            latency_units: 0,
            gflops: None,
            fingerprint: None,
            trace_digest: None,
            warnings,
        });
    }

    // Compile through the content-hash cache.
    let key = CacheKey::for_request(req);
    let cached = shared.cache.lock().expect("cache lock").lookup(&key);
    let (exe, cache_outcome, compile_units) = match cached {
        Some(exe) => {
            tel.count("serve.cache.hit", 1);
            (exe, "hit", 0)
        }
        None => {
            tel.count("serve.cache.miss", 1);
            let mut compiler = Compiler::new(req.pipeline);
            if let Some(passes) = &req.passes {
                compiler = compiler.passes(passes.iter().cloned());
            }
            let exe = compiler.compile_with(&req.source, tel).map_err(|e| {
                (
                    Response::error(req.id, ErrorKind::Compile, e.to_string()),
                    0,
                )
            })?;
            let exe = Arc::new(exe);
            let evicted_before;
            {
                let mut cache = shared.cache.lock().expect("cache lock");
                evicted_before = cache.stats().evictions;
                cache.insert(&key, Arc::clone(&exe));
                let evictions = cache.stats().evictions - evicted_before;
                if evictions > 0 {
                    tel.count("serve.cache.evict", evictions);
                }
            }
            let units = compile_cost(&exe);
            (exe, "miss", units)
        }
    };

    // The static admission estimate: what the communication-plan
    // analysis says this run will cost, before it runs. Programs with
    // data-dependent control flow have no exact plan and predict 0.
    let predicted_units = exe.predict(req.target).map_or(0, |p| p.cost_units());

    if req.kind == RequestKind::Compile {
        return Ok(Done {
            id: req.id,
            tenant: req.tenant.clone(),
            kind: req.kind,
            cache: cache_outcome,
            compile_units,
            run_units: 0,
            charged_units: compile_units,
            predicted_units,
            queue_wait_units: 0,
            latency_units: 0,
            gflops: None,
            fingerprint: Some(executable_fingerprint(&exe)),
            trace_digest: None,
            warnings: Vec::new(),
        });
    }

    // Run on the requested target, tracing for the digest. The
    // host-thread count and fault plan are applied here, after the
    // cache: they perturb the run, never the artifact.
    let mut buf = TraceBuffer::new();
    let mut session = exe
        .session(req.target)
        .host_threads(req.host_threads)
        .telemetry(tel)
        .trace(&mut buf);
    if let Some(plan) = &req.faults {
        session = session.faults(plan.clone());
    }
    let run = session.run().map_err(|e| {
        (
            Response::error(req.id, ErrorKind::Run, e.to_string()),
            predicted_units,
        )
    })?;
    let run_units = simulated_units(&run);
    let trace_digest = buf.trace.as_ref().map(|t| t.digest());
    Ok(Done {
        id: req.id,
        tenant: req.tenant.clone(),
        kind: req.kind,
        cache: cache_outcome,
        compile_units,
        run_units,
        charged_units: compile_units + run_units,
        predicted_units,
        queue_wait_units: 0,
        latency_units: 0,
        gflops: Some(run.gflops()),
        fingerprint: Some(finals_fingerprint(run.finals())),
        trace_digest,
        warnings: Vec::new(),
    })
}

/// Simulated machine time of a run: node cycles on the CM/2, supersteps
/// on the CM/5 MIMD engine, device cycles on the accelerator (each
/// target's own clock domain — the same units its flight recorder
/// stamps).
pub fn simulated_units(run: &Run) -> u64 {
    match run {
        Run::Cm2(r) => r.stats.node_cycles(),
        Run::Mimd(r) => r.stats.supersteps,
        Run::Accel(r) => r.stats.device_cycles(),
    }
}

/// Modelled compile cost in units: generated PEAC instructions plus
/// middle-end rewrites plus dispatch blocks — deterministic, derived
/// from the artifact, never from wall time.
pub fn compile_cost(exe: &Executable) -> u64 {
    let rewrites: u64 = exe
        .pass_reports
        .passes
        .iter()
        .map(|p| p.rewrites as u64)
        .sum();
    exe.compiled.total_node_instructions() as u64 + rewrites + exe.compiled.blocks.len() as u64
}

/// `fnv1a64:` fingerprint of a run's final values: names sorted, each
/// value's IEEE-754 bit pattern hashed exactly — two runs fingerprint
/// equal iff their finals are bit-identical.
pub fn finals_fingerprint(finals: &HostRun) -> String {
    let mut names: Vec<&String> = finals.finals().keys().collect();
    names.sort();
    let mut bytes: Vec<u8> = Vec::new();
    for name in names {
        bytes.extend_from_slice(name.as_bytes());
        bytes.push(0);
        match &finals.finals()[name] {
            Final::Array(values) => {
                for v in values {
                    bytes.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Final::Scalar(v) => bytes.extend_from_slice(&v.to_bits().to_le_bytes()),
        }
        bytes.push(0);
    }
    format!("fnv1a64:{:016x}", fnv1a64(bytes))
}

/// `fnv1a64:` fingerprint of a compiled artifact: the optimized NIR's
/// canonical pretty-print plus the generated instruction count. Two
/// compiles of the same key must fingerprint identically (the eviction
/// determinism gate in `tests/cache_key.rs`).
pub fn executable_fingerprint(exe: &Executable) -> String {
    let mut text = exe.optimized.to_string();
    text.push('\0');
    text.push_str(&exe.compiled.total_node_instructions().to_string());
    format!("fnv1a64:{:016x}", fnv1a64(text.bytes()))
}
