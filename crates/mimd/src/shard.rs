//! The shard map: how one CM array is laid across the MIMD nodes.
//!
//! Every array is sharded along its **outermost axis** into contiguous
//! row-major slabs — node `k` of `n` owns rows `[k·d₀/n, (k+1)·d₀/n)`
//! of an array whose outer extent is `d₀`. Two consequences the rest of
//! the engine leans on:
//!
//! * concatenating the shards in node order reproduces the row-major
//!   element order exactly, so gathers, reductions in canonical order
//!   and whole-array reads need no permutation;
//! * arrays of the same shape shard identically, so an elementwise
//!   dispatch never needs communication — each node already holds
//!   matching slabs of every argument.

/// The slab decomposition of `rows` outer-axis rows over `nodes` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    rows: usize,
    nodes: usize,
}

impl ShardMap {
    /// The balanced decomposition (slab sizes differ by at most one
    /// row, smaller slabs last).
    pub fn new(rows: usize, nodes: usize) -> Self {
        assert!(nodes > 0, "a machine has at least one node");
        ShardMap { rows, nodes }
    }

    /// Outer-axis rows in total.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// First row of node `k`'s slab.
    pub fn row_start(&self, k: usize) -> usize {
        k * self.rows / self.nodes
    }

    /// One past the last row of node `k`'s slab.
    pub fn row_end(&self, k: usize) -> usize {
        (k + 1) * self.rows / self.nodes
    }

    /// Rows in node `k`'s slab (possibly zero when there are more
    /// nodes than rows).
    pub fn rows_of(&self, k: usize) -> usize {
        self.row_end(k) - self.row_start(k)
    }

    /// The node owning row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn owner(&self, r: usize) -> usize {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        // The start boundaries are non-decreasing: the owner is the
        // last node whose slab starts at or before r.
        let k = (r * self.nodes + self.nodes - 1) / self.rows.max(1);
        // Floor arithmetic can land one node high or low at slab
        // boundaries; settle locally.
        let mut k = k.min(self.nodes - 1);
        while self.row_start(k) > r {
            k -= 1;
        }
        while self.row_end(k) <= r {
            k += 1;
        }
        k
    }
}

/// Messages an outer-axis shift of `shift` over `rows` rows sharded
/// across `nodes` nodes exchanges: one `Halo` message per distinct
/// (owner → needer) node pair, exactly as the engine's shift step
/// batches them. `wrap` is `true` for `CSHIFT` (rows wrap around) and
/// `false` for `EOSHIFT` (end-off rows are boundary-filled locally and
/// never travel).
///
/// This is the static side of the plan↔trace reconciliation: the
/// engine counts these messages by running; this function counts them
/// from geometry alone, and the two must always agree.
pub fn halo_messages(rows: usize, nodes: usize, shift: i64, wrap: bool) -> usize {
    let map = ShardMap::new(rows, nodes);
    let mut pairs = 0;
    for k in 0..nodes {
        let mut owners: Vec<usize> = Vec::new();
        for a in map.row_start(k)..map.row_end(k) {
            let src_row = a as i64 + shift;
            if !wrap && (src_row < 0 || src_row >= rows as i64) {
                continue;
            }
            let r = src_row.rem_euclid(rows.max(1) as i64) as usize;
            let owner = map.owner(r);
            if owner != k && !owners.contains(&owner) {
                owners.push(owner);
            }
        }
        pairs += owners.len();
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slabs_partition_the_rows() {
        for rows in [0usize, 1, 5, 16, 17, 100] {
            for nodes in [1usize, 2, 4, 16, 64] {
                let m = ShardMap::new(rows, nodes);
                let mut covered = 0;
                for k in 0..nodes {
                    assert_eq!(m.row_start(k), covered, "rows={rows} nodes={nodes} k={k}");
                    covered = m.row_end(k);
                }
                assert_eq!(covered, rows);
            }
        }
    }

    #[test]
    fn slabs_are_balanced() {
        let m = ShardMap::new(100, 16);
        let sizes: Vec<usize> = (0..16).map(|k| m.rows_of(k)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "unbalanced slabs: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn halo_messages_matches_the_engine() {
        use crate::config::MimdConfig;
        use crate::machine::MimdMachine;
        use f90y_backend::Machine;

        for nodes in [1usize, 2, 4, 8, 16] {
            for rows in [4usize, 8, 16, 17] {
                for shift in [-5i64, -1, 1, 2, 7] {
                    for wrap in [true, false] {
                        let mut m = MimdMachine::new(MimdConfig::new(nodes));
                        let id = m.alloc(&[rows, 3]);
                        let before = m.stats().messages;
                        let shifted = if wrap {
                            m.cshift(id, 0, shift).unwrap()
                        } else {
                            m.eoshift(id, 0, shift, 0.0).unwrap()
                        };
                        let observed = m.stats().messages - before;
                        let predicted = halo_messages(rows, nodes, shift, wrap) as u64;
                        assert_eq!(
                            predicted, observed,
                            "rows={rows} nodes={nodes} shift={shift} wrap={wrap}"
                        );
                        m.free(shifted).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn owner_inverts_the_slab_ranges() {
        for rows in [1usize, 7, 16, 100] {
            for nodes in [1usize, 2, 8, 64] {
                let m = ShardMap::new(rows, nodes);
                for r in 0..rows {
                    let k = m.owner(r);
                    assert!(
                        m.row_start(k) <= r && r < m.row_end(k),
                        "rows={rows} nodes={nodes} r={r} → k={k}"
                    );
                }
            }
        }
    }
}
