//! Retargeting the prototype to the CM/5: the three-way split and the
//! analytic replay estimator (the surface of the retired `f90y-cm5`
//! crate, folded into the engine that models the same machine).
//!
//! The paper's §5.3.1: "The CM/5 NIR compiler retains the majority of
//! its structure and, therefore, its specification from the CM/2
//! version. … In the new model a single NIR program will be split three
//! ways rather than two; one part will go to the control processor, as
//! before; a second part will be executed on the SPARC node processor,
//! and a third part will carry out floating point vector operations on
//! the CM/5 vector datapaths. … Most importantly, the new compiler can
//! still take advantage of the machine-independent blocking and
//! vectorizing NIR transformations defined in the front end."
//!
//! This module reproduces exactly that claim:
//!
//! * [`split_block`] performs the **three-way split** of a compiled
//!   computation block: vector arithmetic to the four vector units,
//!   address generation and loop control to the node SPARC, dispatch to
//!   the control processor — without touching the front end or the
//!   blocking transformations.
//! * [`estimate`] replays a CM/2 execution trace
//!   ([`f90y_cm2::TraceEvent`]) under the CM/5 cost model via the
//!   manifest-driven [`f90y_hal::replay()`], so the same compiled program
//!   (same blocks, same host program) is re-timed for the new machine.
//!   Numerical results are unchanged by construction — the port is a
//!   *cost-model* port, which is the paper's point about concentrated
//!   effort.
//!
//! The machine constants both paths price with live in the CM/5
//! capability manifest ([`f90y_hal::CM5`]): a 33 MHz SPARC with four
//! 16 MHz vector units per node (the well-known 128 MFLOPS/node peak)
//! on a ~20 MB/s-per-node fat tree.

use std::error::Error;

use f90y_backend::CompiledProgram;
use f90y_cm2::TraceEvent;
use f90y_hal::{ReplayError, ReplayStats};

/// The three-way division of one computation block (paper Fig. 2, right
/// diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSplit {
    /// Instructions executed on the vector datapaths.
    pub vector_instructions: usize,
    /// Per-iteration SPARC work: address generation (one per stream)
    /// plus loop control.
    pub sparc_ops_per_iteration: usize,
    /// Arguments the control processor broadcasts.
    pub control_args: usize,
}

/// Split one compiled block three ways. The PEAC body maps onto the
/// vector units unchanged (DPEAC, the CM-5 VU assembly, is PEAC's direct
/// descendant); the SPARC takes over the pointer bookkeeping the CM-2
/// sequencer used to do; the control processor keeps only the dispatch.
pub fn split_block(block: &f90y_backend::NodeBlock) -> NodeSplit {
    NodeSplit {
        vector_instructions: block.routine.len(),
        // One address update per pointer stream per iteration, plus two
        // ops of loop control.
        sparc_ops_per_iteration: block.array_params.len() + 2,
        control_args: block.array_params.len() + block.scalar_params.len(),
    }
}

/// Replay a traced CM/2 run under the CM/5 cost model, for a partition
/// of `nodes` nodes.
///
/// The trace must come from a machine with the **same node count** as
/// the partition being estimated (subgrid geometry is baked into the
/// events); the compiled program supplies nothing here — data behaviour
/// is identical by construction — but is accepted to keep call sites
/// honest about what is being re-timed.
///
/// # Errors
///
/// Fails when the trace is empty (tracing was not enabled) or was
/// captured on a machine whose node count disagrees with `nodes`.
pub fn estimate(
    _compiled: &CompiledProgram,
    trace: &[TraceEvent],
    nodes: usize,
) -> Result<ReplayStats, ReplayError> {
    f90y_hal::replay(trace, &f90y_hal::CM5, nodes)
}

/// Convenience: run a compiled program on a traced CM/2 of matching
/// node count (for exact data), then estimate CM/5 time for a
/// partition of `nodes` nodes.
///
/// Returns the host-run results and the replay stats.
///
/// # Errors
///
/// Fails on execution errors or an empty trace.
pub fn run_and_estimate(
    compiled: &CompiledProgram,
    nodes: usize,
) -> Result<(f90y_backend::fe::HostRun, ReplayStats), Box<dyn Error>> {
    let mut cm = f90y_cm2::Cm2::new(f90y_cm2::Cm2Config::slicewise(nodes.min(2048)));
    cm.enable_trace();
    let run = f90y_backend::fe::HostExecutor::new(&mut cm).run(compiled)?;
    let trace = cm.trace().unwrap_or(&[]);
    let stats = estimate(compiled, trace, nodes)?;
    Ok((run, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MimdConfig;

    /// Compile the shallow-water kernel, naming the pipeline stage that
    /// failed instead of panicking mid-chain: a test that dies here
    /// should say *which* phase regressed, not just "called unwrap on
    /// an Err".
    fn compile_swe(n: usize) -> Result<CompiledProgram, String> {
        let src = format!(
            "
REAL v({n},{n}), t({n},{n})
FORALL (i=1:{n}, j=1:{n}) v(i,j) = MOD(i+j, 9)
DO step = 1, 3
  t = CSHIFT(v, DIM=1, SHIFT=1)
  v = 0.5*(v + t) + 0.25*v*t
END DO
"
        );
        let unit = f90y_frontend::parse(&src).map_err(|e| format!("frontend parse: {e}"))?;
        let nir = f90y_lowering::lower(&unit).map_err(|e| format!("lowering: {e}"))?;
        let optimized = f90y_transform::optimize(&nir).map_err(|e| format!("transform: {e}"))?;
        f90y_backend::compile(&optimized).map_err(|e| format!("backend split: {e}"))
    }

    fn compiled_swe(n: usize) -> CompiledProgram {
        compile_swe(n).expect("SWE kernel must compile")
    }

    #[test]
    fn peak_matches_the_announced_machine() {
        let c = MimdConfig::new(1024);
        // 1024 nodes × 128 MFLOPS = 131 GFLOPS.
        assert!((c.peak_gflops() - 131.072).abs() < 0.5);
    }

    #[test]
    fn three_way_split_covers_every_block() {
        let compiled = compiled_swe(64);
        for b in &compiled.blocks {
            let split = split_block(b);
            assert!(split.vector_instructions > 0);
            assert!(split.sparc_ops_per_iteration >= 3);
            assert_eq!(
                split.control_args,
                b.array_params.len() + b.scalar_params.len()
            );
        }
    }

    #[test]
    fn estimate_reuses_the_same_compiled_program() {
        let compiled = compiled_swe(128);
        let (run, stats) = run_and_estimate(&compiled, 256).unwrap();
        // Data identical to a plain CM/2 run.
        let mut cm = f90y_cm2::Cm2::new(f90y_cm2::Cm2Config::slicewise(256));
        let plain = f90y_backend::fe::HostExecutor::new(&mut cm)
            .run(&compiled)
            .unwrap();
        assert_eq!(
            run.final_array("v").unwrap(),
            plain.final_array("v").unwrap()
        );
        assert!(stats.gflops() > 0.0);
        assert!(stats.gflops() < MimdConfig::new(256).peak_gflops());
    }

    #[test]
    fn empty_trace_is_an_error() {
        let compiled = compiled_swe(16);
        assert!(estimate(&compiled, &[], 32).is_err());
    }

    #[test]
    fn node_count_mismatch_is_an_error() {
        let compiled = compiled_swe(16);
        // Trace on 64 nodes, estimate for 256: geometry disagrees.
        let mut cm = f90y_cm2::Cm2::new(f90y_cm2::Cm2Config::slicewise(64));
        cm.enable_trace();
        f90y_backend::fe::HostExecutor::new(&mut cm)
            .run(&compiled)
            .expect("CM/2 run must succeed");
        let trace = cm.trace().expect("trace was enabled").to_vec();
        let err =
            estimate(&compiled, &trace, 256).expect_err("mismatched node count must be rejected");
        let msg = err.to_string();
        assert!(
            msg.contains("trace node count is 64"),
            "error should label and name the traced count: {msg}"
        );
        assert!(
            msg.contains("config node count is 256"),
            "error should label and name the config count: {msg}"
        );
        // The matching count still estimates fine.
        assert!(estimate(&compiled, &trace, 64).is_ok());
    }

    #[test]
    fn mimd_engine_agrees_with_the_analytic_model() {
        let compiled = compiled_swe(64);
        // The engine really executes on 64 sharded nodes…
        let (mimd_run, mimd_stats) = crate::run(&compiled, &MimdConfig::new(64)).expect("MIMD run");
        // …while the estimator replays a traced SIMD run of the same
        // program.
        let mut cm = f90y_cm2::Cm2::new(f90y_cm2::Cm2Config::slicewise(64));
        cm.enable_trace();
        let simd_run = f90y_backend::fe::HostExecutor::new(&mut cm)
            .run(&compiled)
            .expect("SIMD run");
        let trace = cm.trace().expect("trace was enabled");

        // Same program, same data: bit-identical arrays.
        assert_eq!(
            mimd_run.final_array("v").unwrap(),
            simd_run.final_array("v").unwrap()
        );
        // Communication runtime calls counted call for call: the two
        // models see the identical host program.
        let traced_comm = trace
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::GridComm { .. }
                        | TraceEvent::Router { .. }
                        | TraceEvent::Reduce { .. }
                )
            })
            .count() as u64;
        assert_eq!(mimd_stats.comm_calls, traced_comm);
        assert!(estimate(&compiled, trace, 64).is_ok());
        mimd_stats.verify().expect("stats invariants");
    }

    #[test]
    fn more_nodes_more_throughput() {
        let compiled = compiled_swe(256);
        let small = run_and_estimate(&compiled, 64).unwrap().1;
        let large = run_and_estimate(&compiled, 512).unwrap().1;
        assert!(
            large.gflops() > small.gflops(),
            "512 nodes {} must beat 64 nodes {}",
            large.gflops(),
            small.gflops()
        );
    }
}
