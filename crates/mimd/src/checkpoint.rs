//! Barrier checkpoints of sharded array state.
//!
//! When a fault plan names node kills, the machine captures the entire
//! sharded array state at the start of every superstep — exactly the
//! state a bulk-synchronous barrier guarantees consistent, since no
//! message is in flight there. Killing a node then costs one restore of
//! the snapshot plus a replay of the interrupted superstep; because the
//! superstep is a pure function of the checkpointed state, the replay
//! reproduces the fault-free values **bit for bit**.
//!
//! The snapshot is value-complete but deliberately simple: it carries
//! every live array's handle, bounds and per-node shards, plus the
//! allocation cursor (so replayed allocations reuse the same handles).
//! Entries are kept sorted by handle, making two snapshots of one state
//! structurally equal — the determinism tests lean on that.

/// One array's state inside a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointEntry {
    /// The raw array handle.
    pub id: usize,
    /// Global dims.
    pub dims: Vec<usize>,
    /// Per-axis lower bounds.
    pub lower: Vec<i64>,
    /// Row-major slab per node, node order.
    pub shards: Vec<Vec<f64>>,
}

/// A consistent snapshot of every sharded array at one barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    entries: Vec<CheckpointEntry>,
    next_id: usize,
}

impl Checkpoint {
    /// Assemble a snapshot from entries (sorted by handle here, so the
    /// caller's iteration order cannot leak into comparisons) and the
    /// machine's allocation cursor.
    pub fn new(mut entries: Vec<CheckpointEntry>, next_id: usize) -> Self {
        entries.sort_by_key(|e| e.id);
        Checkpoint { entries, next_id }
    }

    /// The captured arrays, ascending by handle.
    pub fn entries(&self) -> &[CheckpointEntry] {
        &self.entries
    }

    /// The captured allocation cursor.
    pub fn next_id(&self) -> usize {
        self.next_id
    }

    /// Snapshot payload in bytes (8 per element).
    pub fn bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.shards.iter().map(|s| s.len() as u64 * 8).sum::<u64>())
            .sum()
    }

    /// Bytes of node `k`'s shards — what a restore of that node must
    /// move.
    pub fn node_bytes(&self, k: usize) -> u64 {
        self.entries
            .iter()
            .map(|e| e.shards.get(k).map_or(0, |s| s.len() as u64 * 8))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: usize, shards: Vec<Vec<f64>>) -> CheckpointEntry {
        CheckpointEntry {
            id,
            dims: vec![shards.iter().map(Vec::len).sum()],
            lower: vec![1],
            shards,
        }
    }

    #[test]
    fn entries_are_canonically_ordered() {
        let a = Checkpoint::new(
            vec![entry(3, vec![vec![1.0]]), entry(1, vec![vec![2.0]])],
            4,
        );
        let b = Checkpoint::new(
            vec![entry(1, vec![vec![2.0]]), entry(3, vec![vec![1.0]])],
            4,
        );
        assert_eq!(a, b);
        assert_eq!(a.entries()[0].id, 1);
    }

    #[test]
    fn byte_accounting_sums_shards() {
        let c = Checkpoint::new(vec![entry(0, vec![vec![0.0; 3], vec![0.0; 5]])], 1);
        assert_eq!(c.bytes(), 64);
        assert_eq!(c.node_bytes(0), 24);
        assert_eq!(c.node_bytes(1), 40);
        assert_eq!(c.node_bytes(2), 0);
    }
}
