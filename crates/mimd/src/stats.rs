//! Execution statistics of a MIMD run.
//!
//! The same discipline as `f90y-cm2`'s `CycleProfile`: every modelled
//! second is attributed to exactly one phase (compute, network,
//! control, host), so the phase breakdown **sums to the elapsed time by
//! construction** — `elapsed_seconds()` is derived from the parts, and
//! [`MimdStats::verify`] checks the redundant counters agree. Per-node
//! busy seconds expose load imbalance, which the bulk-synchronous model
//! turns directly into lost time (each superstep ends when the slowest
//! node does).

/// Counters and modelled time of one [`crate::MimdMachine`] lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct MimdStats {
    /// Seconds the busiest node computed, summed over supersteps (the
    /// compute critical path).
    pub compute_seconds: f64,
    /// Seconds of message traffic (busiest-endpoint serialization,
    /// summed over supersteps).
    pub network_seconds: f64,
    /// Seconds of control-processor dispatch protocol.
    pub control_seconds: f64,
    /// Seconds of serial host work.
    pub host_seconds: f64,
    /// Machine-wide floating-point operations.
    pub flops: u64,
    /// PEAC routine dispatches.
    pub dispatches: u64,
    /// Communication runtime calls (grid shifts, router moves,
    /// reductions) — the unit the analytic estimator also counts, so
    /// the two models can be cross-checked call for call.
    pub comm_calls: u64,
    /// Grid shifts that actually exchanged ghost rows between nodes.
    pub halo_exchanges: u64,
    /// All-to-all router batches.
    pub router_batches: u64,
    /// Global reductions.
    pub reductions: u64,
    /// Point-to-point messages delivered (tree edges, halo rows, router
    /// fragments, host element traffic). Fault-invariant: reliable
    /// delivery hides retransmissions and duplicates from this count.
    pub messages: u64,
    /// Total payload bytes those messages carried.
    pub bytes: u64,
    /// Supersteps executed (runtime calls that hit a barrier).
    pub supersteps: u64,
    /// Message delivery attempts an injected fault dropped.
    pub msgs_dropped: u64,
    /// Messages an injected fault duplicated on the wire.
    pub msgs_duplicated: u64,
    /// Messages an injected fault delayed past their batch (reorders).
    pub msgs_delayed: u64,
    /// Retransmissions after acknowledgement timeouts.
    pub retries: u64,
    /// Duplicate deliveries the sequence-number dedup suppressed.
    pub dedup_suppressed: u64,
    /// Nodes an injected fault killed mid-superstep.
    pub node_kills: u64,
    /// Node restarts performed (checkpoint restore + superstep replay).
    pub node_restarts: u64,
    /// Nodes an injected fault stalled at a barrier.
    pub node_stalls: u64,
    /// Barrier checkpoints captured.
    pub checkpoints: u64,
    /// Bytes of sharded state the checkpoints captured.
    pub checkpoint_bytes: u64,
    /// Seconds spent restoring checkpoints and replaying supersteps
    /// after kills (a subset of the phase times, kept separately so
    /// recovery overhead is visible).
    pub recovery_seconds: f64,
    /// Per-node compute busy seconds (index = node).
    pub node_busy_seconds: Vec<f64>,
}

impl MimdStats {
    /// A zeroed record for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        MimdStats {
            compute_seconds: 0.0,
            network_seconds: 0.0,
            control_seconds: 0.0,
            host_seconds: 0.0,
            flops: 0,
            dispatches: 0,
            comm_calls: 0,
            halo_exchanges: 0,
            router_batches: 0,
            reductions: 0,
            messages: 0,
            bytes: 0,
            supersteps: 0,
            msgs_dropped: 0,
            msgs_duplicated: 0,
            msgs_delayed: 0,
            retries: 0,
            dedup_suppressed: 0,
            node_kills: 0,
            node_restarts: 0,
            node_stalls: 0,
            checkpoints: 0,
            checkpoint_bytes: 0,
            recovery_seconds: 0.0,
            node_busy_seconds: vec![0.0; nodes],
        }
    }

    /// Total injected faults of every flavour.
    pub fn faults_injected(&self) -> u64 {
        self.msgs_dropped
            + self.msgs_duplicated
            + self.msgs_delayed
            + self.node_kills
            + self.node_stalls
    }

    /// Total modelled elapsed seconds — derived, so the phase
    /// attribution cannot drift from the total.
    pub fn elapsed_seconds(&self) -> f64 {
        self.compute_seconds + self.network_seconds + self.control_seconds + self.host_seconds
    }

    /// Sustained GFLOPS.
    pub fn gflops(&self) -> f64 {
        let s = self.elapsed_seconds();
        if s == 0.0 {
            0.0
        } else {
            self.flops as f64 / s / 1e9
        }
    }

    /// Compute imbalance: busiest node's busy time over the mean
    /// (1.0 = perfectly balanced; 0.0 when nothing ran).
    pub fn imbalance(&self) -> f64 {
        let max = self.node_busy_seconds.iter().cloned().fold(0.0, f64::max);
        let sum: f64 = self.node_busy_seconds.iter().sum();
        if sum == 0.0 {
            0.0
        } else {
            max * self.node_busy_seconds.len() as f64 / sum
        }
    }

    /// Check the redundant counters agree: no node can have been busy
    /// longer than the compute critical path, and the breakdown of
    /// communication calls sums to the total.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify(&self) -> Result<(), String> {
        for (k, &b) in self.node_busy_seconds.iter().enumerate() {
            if b > self.compute_seconds + 1e-12 {
                return Err(format!(
                    "node {k} busy {b}s exceeds the compute critical path {}s",
                    self.compute_seconds
                ));
            }
        }
        let parts = self.halo_exchanges + self.router_batches + self.reductions;
        if parts > self.comm_calls {
            return Err(format!(
                "comm breakdown {parts} exceeds comm_calls {}",
                self.comm_calls
            ));
        }
        if self.dedup_suppressed != self.msgs_duplicated {
            return Err(format!(
                "{} duplicates injected but {} suppressed: dedup must absorb every one",
                self.msgs_duplicated, self.dedup_suppressed
            ));
        }
        if self.retries != self.msgs_dropped {
            return Err(format!(
                "{} drops but {} retransmissions: a completed run retries every loss",
                self.msgs_dropped, self.retries
            ));
        }
        if self.node_restarts != self.node_kills {
            return Err(format!(
                "{} kills but {} restarts: a completed run recovers every killed node",
                self.node_kills, self.node_restarts
            ));
        }
        if self.recovery_seconds > self.network_seconds + self.compute_seconds + 1e-12 {
            return Err(format!(
                "recovery {}s exceeds the phases it is attributed inside",
                self.recovery_seconds
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_the_sum_of_phases() {
        let mut s = MimdStats::new(4);
        s.compute_seconds = 1.0;
        s.network_seconds = 0.5;
        s.control_seconds = 0.25;
        s.host_seconds = 0.125;
        assert_eq!(s.elapsed_seconds(), 1.875);
    }

    #[test]
    fn imbalance_reads_one_when_balanced() {
        let mut s = MimdStats::new(4);
        s.node_busy_seconds = vec![2.0; 4];
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
        s.node_busy_seconds = vec![4.0, 0.0, 0.0, 0.0];
        assert!((s.imbalance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn verify_catches_phase_drift() {
        let mut s = MimdStats::new(2);
        s.node_busy_seconds = vec![1.0, 0.0];
        s.compute_seconds = 0.5; // less than the busiest node: impossible
        assert!(s.verify().is_err());
        s.compute_seconds = 1.0;
        assert!(s.verify().is_ok());
    }
}
