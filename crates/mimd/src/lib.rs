//! # f90y-mimd — the CM/5 MIMD execution engine
//!
//! The paper's §5.3.1 sketches retargeting the prototype from the SIMD
//! CM/2 to the MIMD CM/5: "one part will go to the control processor,
//! as before; a second part will be executed on the SPARC node
//! processor, and a third part will carry out floating point vector
//! operations on the CM/5 vector datapaths." The [`retarget`] module
//! models that machine *analytically* (it replays a CM/2 trace under
//! the manifest-driven CM/5 cost model, [`f90y_hal::CM5`]); the rest of
//! this crate models it *operationally*: N simulated nodes each own a
//! slab of every array and really execute the compiled
//! program — per-node PEAC blocks, ghost-row halo exchanges behind
//! `CSHIFT`/`EOSHIFT`, all-to-all router batches, log₂ N combine trees
//! for reductions, and a host/control-processor protocol of broadcast
//! dispatches and scalar read-backs.
//!
//! The crate divides into
//!
//! * [`config`] — the machine constants (read from the CM/5 capability
//!   manifest, so engine and analytic model can be cross-checked);
//! * [`shard`] — the outer-axis slab decomposition every array uses;
//! * [`net`] — the deterministic message layer: batches of explicit
//!   point-to-point messages with sequence-numbered, acknowledged,
//!   deduplicated delivery; busiest-endpoint superstep timing; an
//!   optional bounded log;
//! * [`pool`] — the deterministic host thread pool the compute phase
//!   of every superstep fans out on ([`MimdConfig::host_threads`];
//!   results merge at the barrier in node-index order, so thread count
//!   never changes what a run produces);
//! * [`fault`] — [`FaultPlan`]: seeded, reproducible fault injection
//!   (message drops/duplicates/delays, node kills and stalls), every
//!   decision a pure function of `(seed, superstep, msg_seq)`;
//! * [`checkpoint`] — barrier snapshots of the sharded state, what a
//!   killed node is restored from;
//! * [`machine`] — [`MimdMachine`], implementing the backend's
//!   [`f90y_backend::Machine`] trait so the *identical* compiled host
//!   program drives either target;
//! * [`retarget`] — the paper's three-way block split and the analytic
//!   replay estimator (folded in from the retired `f90y-cm5` crate);
//! * [`stats`] — [`MimdStats`]: per-phase and per-node time
//!   attribution plus message/byte/fault counters.
//!
//! Two guarantees the tests enforce:
//!
//! 1. **Exactness** — final arrays are bit-identical to the CM/2
//!    simulator's for the same program: dispatches compute the same
//!    IEEE results on slabs, shifts move the same elements, and
//!    reductions fold in canonical element order (the deterministic
//!    combining the CM-5 control network guaranteed in hardware).
//! 2. **Determinism** — no wall clock, no randomness, fixed iteration
//!    and delivery orders: two runs of one program produce identical
//!    arrays, stats and message logs.
//!
//! ## Example
//!
//! ```
//! use f90y_mimd::{run, MimdConfig};
//!
//! let unit = f90y_frontend::parse("REAL A(32,32), S\nA = A + 1.0\nS = SUM(A)\n")?;
//! let nir = f90y_lowering::lower(&unit)?;
//! let optimized = f90y_transform::optimize(&nir)?;
//! let compiled = f90y_backend::compile(&optimized)?;
//!
//! let (run, stats) = run(&compiled, &MimdConfig::new(16))?;
//! assert_eq!(run.final_scalar("s")?, 1024.0);
//! assert_eq!(stats.dispatches, 1);
//! assert!(stats.reductions >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod checkpoint;
pub mod config;
pub mod fault;
pub mod machine;
pub mod net;
pub mod pool;
pub mod retarget;
pub mod shard;
pub mod stats;

pub use checkpoint::{Checkpoint, CheckpointEntry};
pub use config::MimdConfig;
pub use fault::{FaultCounters, FaultPlan};
pub use machine::{MimdId, MimdMachine};
pub use net::{Inbox, Message, MessageKind, Unrecoverable};
pub use retarget::{estimate, run_and_estimate, split_block, NodeSplit};
pub use stats::MimdStats;

use f90y_backend::fe::{HostExecutor, HostRun};
use f90y_backend::{BackendError, CompiledProgram};
use f90y_cm2::Cm2Error;

/// Execute a compiled program on a fresh MIMD machine; returns the
/// host-run results and the machine statistics.
///
/// # Errors
///
/// Fails on host-execution or runtime errors; on a fault plan that
/// targets nodes the partition does not have; and with
/// [`Cm2Error::Unrecoverable`] (wrapped in
/// [`BackendError::Machine`]) when an injected fault plan exhausts its
/// retry or restart budget.
pub fn run(
    compiled: &CompiledProgram,
    config: &MimdConfig,
) -> Result<(HostRun, MimdStats), BackendError> {
    if let Some(plan) = &config.fault_plan {
        if let Err(msg) = plan.validate(config.nodes) {
            return Err(BackendError::Machine(Cm2Error::Runtime(format!(
                "invalid fault plan: {msg}"
            ))));
        }
    }
    let mut machine = MimdMachine::new(config.clone());
    let run = HostExecutor::new(&mut machine).run(compiled)?;
    let stats = machine.stats().clone();
    Ok((run, stats))
}
