//! Deterministic fault injection: what goes wrong, and exactly when.
//!
//! A [`FaultPlan`] makes the simulated network and nodes unreliable in
//! a **reproducible** way: every fault decision is a pure function of
//! `(seed, superstep, msg_seq)` — no wall clock, no RNG state carried
//! between calls — so the same plan replays the identical fault
//! schedule on every run, and two runs with one plan produce identical
//! arrays, statistics and fault counters. The supported faults:
//!
//! * **drop** — a message delivery attempt is lost; the sender's
//!   acknowledgement timeout fires and it retransmits, up to
//!   [`FaultPlan::max_retries`] times per message.
//! * **duplicate** — a message arrives twice; the receiver's
//!   sequence-number dedup suppresses the copy.
//! * **delay** — a message arrives late, after the rest of its batch
//!   (a reordering); delivery is idempotent and set-based, so order
//!   does not affect the final state.
//! * **kill** — a node loses its in-flight superstep; the machine
//!   restores the barrier checkpoint and replays the superstep, up to
//!   [`FaultPlan::max_restarts`] restarts per run.
//! * **stall** — a node arrives late at a barrier; every node waits
//!   (the bulk-synchronous model turns the stall into elapsed time).
//!
//! Rates are expressed per mille (0..=1000) so thresholds compare
//! exactly against a hash residue — no float roundoff in the fault
//! schedule. Kills and stalls are *named*: they target one node at one
//! superstep. Message faults can be restricted to a superstep window
//! and to one [`MessageKind`].

use crate::net::MessageKind;

/// SplitMix64: the standard 64-bit finalizer used as the plan's pure
/// hash. Good avalanche, no state.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salts keeping the drop/duplicate/delay decisions independent.
const SALT_DROP: u64 = 0xD509;
const SALT_DUP: u64 = 0xD0B1;
const SALT_DELAY: u64 = 0xDE1A;

/// Counters of message-level faults the network injected and absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Delivery attempts lost on the wire.
    pub drops: u64,
    /// Messages delivered twice.
    pub duplicates: u64,
    /// Messages delivered late (reordered past their batch).
    pub delays: u64,
    /// Retransmissions after an acknowledgement timeout (one per drop
    /// in any run that completes).
    pub retries: u64,
    /// Duplicate deliveries the receiver's sequence-number dedup
    /// suppressed.
    pub dedup_suppressed: u64,
}

impl FaultCounters {
    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.drops + self.duplicates + self.delays
    }
}

/// A deterministic, seeded schedule of injected faults.
///
/// Build one with [`FaultPlan::seeded`] and the chainable setters:
///
/// ```
/// use f90y_mimd::{FaultPlan, MessageKind};
///
/// let plan = FaultPlan::seeded(42)
///     .drop_per_mille(50)          // 5% of delivery attempts vanish
///     .duplicate_per_mille(10)
///     .delay_per_mille(10)
///     .kill(3, 1)                  // node 1 dies in superstep 3
///     .stall(5, 0, 2.0e-3)         // node 0 is 2 ms late at barrier 5
///     .only_kind(MessageKind::Halo)
///     .retries(16)
///     .restarts(4);
/// assert!(plan.validate(4).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed every fault decision hashes in.
    pub seed: u64,
    /// Probability (‰) that one delivery attempt is dropped.
    pub drop_per_mille: u16,
    /// Probability (‰) that a message is delivered twice.
    pub dup_per_mille: u16,
    /// Probability (‰) that a message is delayed past its batch.
    pub delay_per_mille: u16,
    /// Restrict message faults to this kind (`None` = any kind).
    pub only_kind: Option<MessageKind>,
    /// Restrict message faults to supersteps in `[lo, hi)` (`None` =
    /// every superstep).
    pub window: Option<(u64, u64)>,
    /// Named node kills: `(superstep, node)`. Each fires once.
    pub kills: Vec<(u64, usize)>,
    /// Named node stalls: `(superstep, node, seconds)`. Each fires
    /// once.
    pub stalls: Vec<(u64, usize, f64)>,
    /// Retransmission budget per message; a message dropped more than
    /// this many times makes the run [unrecoverable].
    ///
    /// [unrecoverable]: crate::net::Unrecoverable
    pub max_retries: u32,
    /// Node-restart budget per run; more kills than this make the run
    /// unrecoverable.
    pub max_restarts: u32,
    /// The acknowledgement timeout: modelled seconds a sender waits
    /// before retransmitting (also the lateness of a delayed message).
    pub retry_timeout_seconds: f64,
}

impl FaultPlan {
    /// A quiet plan (no faults) with the given seed and the default
    /// budgets: 8 retries per message, 4 restarts per run, a 100 µs
    /// acknowledgement timeout.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            only_kind: None,
            window: None,
            kills: Vec::new(),
            stalls: Vec::new(),
            max_retries: 8,
            max_restarts: 4,
            retry_timeout_seconds: 100.0e-6,
        }
    }

    /// Set the per-attempt drop rate (clamped to 1000‰).
    #[must_use]
    pub fn drop_per_mille(mut self, rate: u16) -> Self {
        self.drop_per_mille = rate.min(1000);
        self
    }

    /// Set the duplicate rate (clamped to 1000‰).
    #[must_use]
    pub fn duplicate_per_mille(mut self, rate: u16) -> Self {
        self.dup_per_mille = rate.min(1000);
        self
    }

    /// Set the delay/reorder rate (clamped to 1000‰).
    #[must_use]
    pub fn delay_per_mille(mut self, rate: u16) -> Self {
        self.delay_per_mille = rate.min(1000);
        self
    }

    /// Kill `node` at the barrier of `superstep` (supersteps number
    /// from 1 in execution order; see `MimdStats::supersteps`).
    #[must_use]
    pub fn kill(mut self, superstep: u64, node: usize) -> Self {
        self.kills.push((superstep, node));
        self
    }

    /// Stall `node` for `seconds` at the barrier of `superstep`.
    #[must_use]
    pub fn stall(mut self, superstep: u64, node: usize, seconds: f64) -> Self {
        self.stalls.push((superstep, node, seconds));
        self
    }

    /// Restrict message faults to one message kind.
    #[must_use]
    pub fn only_kind(mut self, kind: MessageKind) -> Self {
        self.only_kind = Some(kind);
        self
    }

    /// Restrict message faults to supersteps in `[lo, hi)`.
    #[must_use]
    pub fn window(mut self, lo: u64, hi: u64) -> Self {
        self.window = Some((lo, hi));
        self
    }

    /// Set the per-message retransmission budget.
    #[must_use]
    pub fn retries(mut self, max: u32) -> Self {
        self.max_retries = max;
        self
    }

    /// Set the per-run node-restart budget.
    #[must_use]
    pub fn restarts(mut self, max: u32) -> Self {
        self.max_restarts = max;
        self
    }

    /// Set the acknowledgement timeout in seconds.
    #[must_use]
    pub fn retry_timeout(mut self, seconds: f64) -> Self {
        self.retry_timeout_seconds = seconds;
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_per_mille > 0
            || self.dup_per_mille > 0
            || self.delay_per_mille > 0
            || !self.kills.is_empty()
            || !self.stalls.is_empty()
    }

    /// Whether the plan names any node kills (the machine checkpoints
    /// every superstep barrier exactly when it does).
    pub fn has_kills(&self) -> bool {
        !self.kills.is_empty()
    }

    /// Check the plan against the machine it will run on.
    ///
    /// # Errors
    ///
    /// Returns a message naming both the offending node index and the
    /// machine's node count when a kill or stall targets a node the
    /// partition does not have, or when the timeout is not positive.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        for &(step, node) in &self.kills {
            if node >= nodes {
                return Err(format!(
                    "fault plan kills node {node} at superstep {step}, but the machine \
                     has only {nodes} nodes (valid indices 0..{nodes})"
                ));
            }
        }
        for &(step, node, _) in &self.stalls {
            if node >= nodes {
                return Err(format!(
                    "fault plan stalls node {node} at superstep {step}, but the machine \
                     has only {nodes} nodes (valid indices 0..{nodes})"
                ));
            }
        }
        // NaN must fail too, so avoid the `<=` complement.
        if self.retry_timeout_seconds.is_nan() || self.retry_timeout_seconds <= 0.0 {
            return Err(format!(
                "fault plan retry timeout must be positive, got {}",
                self.retry_timeout_seconds
            ));
        }
        Ok(())
    }

    /// The pure fault hash: a uniform residue in `0..1000` for one
    /// `(superstep, msg_seq, salt)` triple under this plan's seed.
    fn roll(&self, superstep: u64, seq: u64, salt: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(superstep ^ splitmix64(seq ^ salt))) % 1000
    }

    /// Whether message faults apply to `kind` at `superstep` at all.
    fn in_scope(&self, superstep: u64, kind: MessageKind) -> bool {
        if let Some((lo, hi)) = self.window {
            if superstep < lo || superstep >= hi {
                return false;
            }
        }
        match self.only_kind {
            Some(k) => k == kind,
            None => true,
        }
    }

    /// Is delivery attempt `attempt` (0 = the original send) of message
    /// `seq` dropped?
    pub fn drops(&self, superstep: u64, seq: u64, attempt: u32, kind: MessageKind) -> bool {
        self.drop_per_mille > 0
            && self.in_scope(superstep, kind)
            && self.roll(superstep, seq, SALT_DROP ^ u64::from(attempt))
                < u64::from(self.drop_per_mille)
    }

    /// Is message `seq` delivered twice?
    pub fn duplicates(&self, superstep: u64, seq: u64, kind: MessageKind) -> bool {
        self.dup_per_mille > 0
            && self.in_scope(superstep, kind)
            && self.roll(superstep, seq, SALT_DUP) < u64::from(self.dup_per_mille)
    }

    /// Is message `seq` delayed past the rest of its batch?
    pub fn delays(&self, superstep: u64, seq: u64, kind: MessageKind) -> bool {
        self.delay_per_mille > 0
            && self.in_scope(superstep, kind)
            && self.roll(superstep, seq, SALT_DELAY) < u64::from(self.delay_per_mille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_the_coordinates() {
        let plan = FaultPlan::seeded(7)
            .drop_per_mille(500)
            .duplicate_per_mille(500);
        for step in 0..20 {
            for seq in 0..50 {
                assert_eq!(
                    plan.drops(step, seq, 0, MessageKind::Halo),
                    plan.drops(step, seq, 0, MessageKind::Halo)
                );
                assert_eq!(
                    plan.duplicates(step, seq, MessageKind::Halo),
                    plan.duplicates(step, seq, MessageKind::Halo)
                );
            }
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::seeded(123).drop_per_mille(100); // 10%
        let n = 10_000;
        let hits = (0..n)
            .filter(|&seq| plan.drops(1, seq, 0, MessageKind::Router))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((0.07..0.13).contains(&rate), "rate drifted: {rate}");
    }

    #[test]
    fn different_seeds_differ_and_zero_rate_never_fires() {
        let a = FaultPlan::seeded(1).drop_per_mille(500);
        let b = FaultPlan::seeded(2).drop_per_mille(500);
        let schedule = |p: &FaultPlan| -> Vec<bool> {
            (0..256)
                .map(|s| p.drops(1, s, 0, MessageKind::Halo))
                .collect()
        };
        assert_ne!(schedule(&a), schedule(&b));
        let quiet = FaultPlan::seeded(1);
        assert!(!quiet.is_active());
        assert!(schedule(&quiet).iter().all(|&d| !d));
    }

    #[test]
    fn window_and_kind_restrict_the_blast_radius() {
        let plan = FaultPlan::seeded(9)
            .drop_per_mille(1000)
            .window(5, 10)
            .only_kind(MessageKind::Router);
        assert!(plan.drops(5, 0, 0, MessageKind::Router));
        assert!(!plan.drops(4, 0, 0, MessageKind::Router), "before window");
        assert!(!plan.drops(10, 0, 0, MessageKind::Router), "past window");
        assert!(!plan.drops(5, 0, 0, MessageKind::Halo), "wrong kind");
    }

    #[test]
    fn validate_names_both_node_and_machine_size() {
        let plan = FaultPlan::seeded(0).kill(2, 9);
        let msg = plan.validate(4).expect_err("node 9 of 4 must be rejected");
        assert!(msg.contains("node 9"), "names the plan's node: {msg}");
        assert!(msg.contains("4 nodes"), "names the machine's count: {msg}");
        assert!(plan.validate(16).is_ok());

        let stall = FaultPlan::seeded(0).stall(1, 5, 1e-3);
        let msg = stall.validate(4).expect_err("stalled node out of range");
        assert!(msg.contains("node 5") && msg.contains("4 nodes"), "{msg}");
    }
}
