//! The deterministic message layer of the MIMD engine.
//!
//! Every inter-node transfer in the engine is expressed as a **batch**
//! of point-to-point messages delivered in one bulk-synchronous
//! superstep: the runtime call names the messages, [`Net::deliver`]
//! accounts for them, and the modelled network time of the superstep is
//! the busiest endpoint's serialization time —
//!
//! ```text
//! t = net_call_seconds · max_k calls(k)  +  max_k bytes(k) / bandwidth
//! ```
//!
//! where `calls(k)` and `bytes(k)` count messages node `k` sends *or*
//! receives (each endpoint serializes its own traffic; the fat tree
//! itself is never the bottleneck at these sizes). There is no clock,
//! no randomness and no delivery reordering: batches are sorted by
//! `(src, dst)` before accounting, so two runs of the same program
//! produce byte-identical statistics and logs.

use std::fmt;

/// What a message carries (for the log and the per-kind counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// Control-processor dispatch broadcast (binomial tree edge).
    Broadcast,
    /// Ghost rows of a halo exchange backing a grid shift.
    Halo,
    /// An all-to-all slab fragment of a router move.
    Router,
    /// A partial value climbing a reduction combine tree.
    ReduceTree,
    /// A single element travelling between a node and the host.
    HostElem,
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageKind::Broadcast => "broadcast",
            MessageKind::Halo => "halo",
            MessageKind::Router => "router",
            MessageKind::ReduceTree => "reduce-tree",
            MessageKind::HostElem => "host-elem",
        };
        f.write_str(s)
    }
}

/// One point-to-point message. `src == usize::MAX` stands for the host
/// (control processor) endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending node (or [`HOST`]).
    pub src: usize,
    /// Receiving node (or [`HOST`]).
    pub dst: usize,
    /// Payload size.
    pub bytes: u64,
    /// Payload classification.
    pub kind: MessageKind,
}

/// The host/control-processor endpoint in [`Message`] coordinates.
pub const HOST: usize = usize::MAX;

/// Accounting state of the message layer.
#[derive(Debug, Clone)]
pub struct Net {
    nodes: usize,
    net_call_seconds: f64,
    bytes_per_sec: f64,
    messages: u64,
    bytes: u64,
    log: Option<Vec<Message>>,
    log_capacity: usize,
    dropped: u64,
}

impl Net {
    /// A quiet network of `nodes` endpoints plus the host.
    pub fn new(
        nodes: usize,
        net_call_seconds: f64,
        bytes_per_sec: f64,
        log_capacity: Option<usize>,
    ) -> Self {
        Net {
            nodes,
            net_call_seconds,
            bytes_per_sec,
            messages: 0,
            bytes: 0,
            log: log_capacity.map(|c| Vec::with_capacity(c.min(1 << 16))),
            log_capacity: log_capacity.unwrap_or(0),
            dropped: 0,
        }
    }

    /// Deliver one superstep's batch; returns its modelled network
    /// seconds. The batch is sorted by `(src, dst)` first so logs and
    /// float accounting are independent of caller iteration order.
    pub fn deliver(&mut self, mut batch: Vec<Message>) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        batch.sort_by_key(|m| (m.src, m.dst));
        // Per-endpoint load; index `nodes` is the host.
        let mut calls = vec![0u64; self.nodes + 1];
        let mut load = vec![0u64; self.nodes + 1];
        let slot = |e: usize, n: usize| if e == HOST { n } else { e };
        for m in &batch {
            let (s, d) = (slot(m.src, self.nodes), slot(m.dst, self.nodes));
            calls[s] += 1;
            load[s] += m.bytes;
            calls[d] += 1;
            load[d] += m.bytes;
            self.messages += 1;
            self.bytes += m.bytes;
        }
        if let Some(log) = self.log.as_mut() {
            for m in batch {
                if log.len() < self.log_capacity {
                    log.push(m);
                } else {
                    self.dropped += 1;
                }
            }
        }
        let max_calls = *calls.iter().max().unwrap_or(&0) as f64;
        let max_bytes = *load.iter().max().unwrap_or(&0) as f64;
        self.net_call_seconds * max_calls + max_bytes / self.bytes_per_sec
    }

    /// Total messages delivered.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The message log, if enabled.
    pub fn log(&self) -> Option<&[Message]> {
        self.log.as_deref()
    }

    /// Messages the bounded log could not keep.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, dst: usize, bytes: u64) -> Message {
        Message {
            src,
            dst,
            bytes,
            kind: MessageKind::Halo,
        }
    }

    #[test]
    fn empty_batch_is_free() {
        let mut net = Net::new(4, 25e-6, 20e6, None);
        assert_eq!(net.deliver(Vec::new()), 0.0);
        assert_eq!(net.messages(), 0);
    }

    #[test]
    fn superstep_time_tracks_the_busiest_endpoint() {
        let mut net = Net::new(4, 1e-6, 1e6, None);
        // Node 0 sends to everyone: three calls at its port, 3 kB out.
        let t = net.deliver(vec![msg(0, 1, 1000), msg(0, 2, 1000), msg(0, 3, 1000)]);
        assert!((t - (3.0 * 1e-6 + 3000.0 / 1e6)).abs() < 1e-12);
        assert_eq!(net.messages(), 3);
        assert_eq!(net.bytes(), 3000);
    }

    #[test]
    fn delivery_is_order_independent() {
        let batch = vec![msg(2, 1, 64), msg(0, 3, 8), msg(1, 0, 16)];
        let mut rev = batch.clone();
        rev.reverse();
        let mut a = Net::new(4, 25e-6, 20e6, Some(16));
        let mut b = Net::new(4, 25e-6, 20e6, Some(16));
        assert_eq!(a.deliver(batch), b.deliver(rev));
        assert_eq!(a.log(), b.log());
    }

    #[test]
    fn bounded_log_drops_and_counts() {
        let mut net = Net::new(2, 25e-6, 20e6, Some(1));
        net.deliver(vec![msg(0, 1, 8), msg(1, 0, 8)]);
        assert_eq!(net.log().unwrap().len(), 1);
        assert_eq!(net.dropped(), 1);
        assert_eq!(net.messages(), 2, "accounting sees every message");
    }
}
