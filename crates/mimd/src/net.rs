//! The deterministic message layer of the MIMD engine.
//!
//! Every inter-node transfer in the engine is expressed as a **batch**
//! of point-to-point messages delivered in one bulk-synchronous
//! superstep: the runtime call names the messages, [`Net::deliver`]
//! accounts for them, and the modelled network time of the superstep is
//! the busiest endpoint's serialization time —
//!
//! ```text
//! t = net_call_seconds · max_k calls(k)  +  max_k bytes(k) / bandwidth
//! ```
//!
//! where `calls(k)` and `bytes(k)` count message copies node `k` sends
//! *or* receives (each endpoint serializes its own traffic; the fat
//! tree itself is never the bottleneck at these sizes).
//!
//! ## Reliable delivery under injected faults
//!
//! Every message carries a **sequence number** and is delivered with an
//! acknowledged, idempotent protocol, so a [`FaultPlan`] can abuse the
//! wire without changing program results:
//!
//! * a **dropped** copy triggers the sender's acknowledgement timeout
//!   and a retransmission, bounded by [`FaultPlan::max_retries`] —
//!   exhausting the budget surfaces as a typed [`Unrecoverable`] error,
//!   never a hang;
//! * a **duplicated** copy is suppressed by the receiver's
//!   sequence-number dedup ([`Inbox`]);
//! * a **delayed** copy arrives after the rest of the batch — harmless,
//!   because delivery is a set keyed by sequence number, not an order.
//!
//! There is no clock and no randomness: batches are sorted by
//! `(src, dst)` before sequence numbers are assigned, and every fault
//! is a pure function of `(seed, superstep, msg_seq)`, so two runs of
//! one program under one plan produce byte-identical statistics, logs
//! and fault counters.

use std::fmt;

use f90y_obs::trace::{Actor, Trace, TraceEvent};

use crate::fault::{FaultCounters, FaultPlan};

/// The flight-recorder actor for a message endpoint.
fn actor_of(endpoint: usize) -> Actor {
    if endpoint == HOST {
        Actor::Host
    } else {
        Actor::Node(endpoint)
    }
}

/// What a message carries (for the log and the per-kind counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// Control-processor dispatch broadcast (binomial tree edge).
    Broadcast,
    /// Ghost rows of a halo exchange backing a grid shift.
    Halo,
    /// An all-to-all slab fragment of a router move.
    Router,
    /// A partial value climbing a reduction combine tree.
    ReduceTree,
    /// A single element travelling between a node and the host.
    HostElem,
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageKind::Broadcast => "broadcast",
            MessageKind::Halo => "halo",
            MessageKind::Router => "router",
            MessageKind::ReduceTree => "reduce-tree",
            MessageKind::HostElem => "host-elem",
        };
        f.write_str(s)
    }
}

/// One point-to-point message. `src == usize::MAX` stands for the host
/// (control processor) endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending node (or [`HOST`]).
    pub src: usize,
    /// Receiving node (or [`HOST`]).
    pub dst: usize,
    /// Payload size.
    pub bytes: u64,
    /// Payload classification.
    pub kind: MessageKind,
}

/// The host/control-processor endpoint in [`Message`] coordinates.
pub const HOST: usize = usize::MAX;

/// A message's per-message retry budget was exhausted: every delivery
/// attempt was dropped. The run cannot make progress and stops with
/// this typed error instead of hanging on a retransmission loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unrecoverable {
    /// Superstep the message belonged to.
    pub superstep: u64,
    /// The message's sequence number.
    pub seq: u64,
    /// What it carried.
    pub kind: MessageKind,
    /// Delivery attempts made (original send plus retransmissions).
    pub attempts: u32,
    /// The plan's retry budget.
    pub budget: u32,
}

impl fmt::Display for Unrecoverable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "message #{} ({}) in superstep {} was dropped on all {} delivery attempts \
             (retry budget {}); raise the fault plan's retry budget or lower its drop rate",
            self.seq, self.kind, self.superstep, self.attempts, self.budget
        )
    }
}

impl std::error::Error for Unrecoverable {}

/// The receiver side of reliable delivery: accepts each sequence number
/// at most once, making delivery idempotent under duplication and
/// insensitive to ordering.
#[derive(Debug, Clone, Default)]
pub struct Inbox {
    accepted: Vec<(u64, Message)>,
}

impl Inbox {
    /// An empty inbox.
    pub fn new() -> Self {
        Inbox::default()
    }

    /// Offer one delivery; returns `true` when the message is new and
    /// was accepted, `false` when its sequence number was already seen
    /// (a duplicate, suppressed).
    pub fn accept(&mut self, seq: u64, msg: Message) -> bool {
        if self.accepted.iter().any(|&(s, _)| s == seq) {
            return false;
        }
        self.accepted.push((seq, msg));
        true
    }

    /// Accepted messages so far, in arrival order.
    pub fn accepted(&self) -> &[(u64, Message)] {
        &self.accepted
    }

    /// The canonical final state: accepted messages sorted by sequence
    /// number. Two inboxes fed the same message set — in any order,
    /// with any duplication — finish with equal state.
    pub fn state(&self) -> Vec<(u64, Message)> {
        let mut out = self.accepted.clone();
        out.sort_by_key(|&(s, _)| s);
        out
    }
}

/// Accounting state of the message layer.
#[derive(Debug, Clone)]
pub struct Net {
    nodes: usize,
    net_call_seconds: f64,
    bytes_per_sec: f64,
    messages: u64,
    bytes: u64,
    next_seq: u64,
    plan: Option<FaultPlan>,
    faults: FaultCounters,
    log: Option<Vec<Message>>,
    log_capacity: usize,
    dropped: u64,
}

impl Net {
    /// A quiet network of `nodes` endpoints plus the host. A fault
    /// plan, when given, makes the wire lossy — reliably-delivered
    /// results, deterministically perturbed accounting.
    pub fn new(
        nodes: usize,
        net_call_seconds: f64,
        bytes_per_sec: f64,
        log_capacity: Option<usize>,
        plan: Option<FaultPlan>,
    ) -> Self {
        Net {
            nodes,
            net_call_seconds,
            bytes_per_sec,
            messages: 0,
            bytes: 0,
            next_seq: 0,
            plan,
            faults: FaultCounters::default(),
            log: log_capacity.map(|c| Vec::with_capacity(c.min(1 << 16))),
            log_capacity: log_capacity.unwrap_or(0),
            dropped: 0,
        }
    }

    /// Deliver one superstep's batch; returns its modelled network
    /// seconds. The batch is sorted by `(src, dst)` before sequence
    /// numbers are assigned, so logs, fault decisions and float
    /// accounting are all independent of caller iteration order.
    ///
    /// # Errors
    ///
    /// [`Unrecoverable`] when some message was dropped on every
    /// delivery attempt the retry budget allows.
    pub fn deliver(&mut self, superstep: u64, batch: Vec<Message>) -> Result<f64, Unrecoverable> {
        self.deliver_traced(superstep, batch, None)
    }

    /// [`Net::deliver`] with an optional flight recorder attached: each
    /// message records one [`TraceEvent::Send`] at injection and exactly
    /// one [`TraceEvent::Recv`] when the receiver's dedup accepts it
    /// (so sends pair bijectively with receives no matter how the wire
    /// drops, duplicates or delays copies), and every injected fault
    /// records a [`TraceEvent::Fault`].
    ///
    /// # Errors
    ///
    /// [`Unrecoverable`] when some message was dropped on every
    /// delivery attempt the retry budget allows.
    pub fn deliver_traced(
        &mut self,
        superstep: u64,
        mut batch: Vec<Message>,
        mut trace: Option<&mut Trace>,
    ) -> Result<f64, Unrecoverable> {
        if batch.is_empty() {
            return Ok(0.0);
        }
        batch.sort_by_key(|m| (m.src, m.dst));
        let first_seq = self.next_seq;
        self.next_seq += batch.len() as u64;

        // Per-endpoint load; index `nodes` is the host. Every wire copy
        // (original send, retransmission, duplicate) costs its sender a
        // serialization; receivers only pay for copies that arrive.
        let mut calls = vec![0u64; self.nodes + 1];
        let mut load = vec![0u64; self.nodes + 1];
        let slot = |e: usize, n: usize| if e == HOST { n } else { e };
        // Timeouts spent waiting for lost acknowledgements, plus the
        // lateness of delayed copies.
        let mut stall_seconds = 0.0;

        // The delivery schedule the receivers observe: prompt copies in
        // batch order, then delayed and duplicated copies at the end
        // (the reordering a real wire would produce).
        let mut prompt: Vec<(u64, Message)> = Vec::with_capacity(batch.len());
        let mut late: Vec<(u64, Message)> = Vec::new();

        for (i, m) in batch.iter().enumerate() {
            let seq = first_seq + i as u64;
            let (s, d) = (slot(m.src, self.nodes), slot(m.dst, self.nodes));
            if let Some(t) = trace.as_deref_mut() {
                t.record(TraceEvent::Send {
                    seq,
                    src: actor_of(m.src),
                    dst: actor_of(m.dst),
                    step: superstep,
                    bytes: m.bytes,
                    kind: m.kind.to_string(),
                });
            }
            let mut sends = 1u64;
            let mut arrivals = 1u64;
            let mut delayed = false;
            if let Some(plan) = &self.plan {
                // Drop + retransmit until a copy gets through or the
                // budget dies. Attempt indices salt the hash, so the
                // schedule stays a pure function of (seed, step, seq).
                let mut attempt = 0u32;
                while plan.drops(superstep, seq, attempt, m.kind) {
                    self.faults.drops += 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(TraceEvent::Fault {
                            step: superstep,
                            actor: actor_of(m.src),
                            kind: "drop".into(),
                        });
                    }
                    stall_seconds += plan.retry_timeout_seconds;
                    attempt += 1;
                    if attempt > plan.max_retries {
                        return Err(Unrecoverable {
                            superstep,
                            seq,
                            kind: m.kind,
                            attempts: attempt,
                            budget: plan.max_retries,
                        });
                    }
                    self.faults.retries += 1;
                    sends += 1;
                }
                if plan.duplicates(superstep, seq, m.kind) {
                    self.faults.duplicates += 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(TraceEvent::Fault {
                            step: superstep,
                            actor: actor_of(m.src),
                            kind: "duplicate".into(),
                        });
                    }
                    sends += 1;
                    arrivals += 1;
                }
                if plan.delays(superstep, seq, m.kind) {
                    self.faults.delays += 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(TraceEvent::Fault {
                            step: superstep,
                            actor: actor_of(m.dst),
                            kind: "delay".into(),
                        });
                    }
                    stall_seconds += plan.retry_timeout_seconds;
                    delayed = true;
                }
            }
            calls[s] += sends;
            load[s] += m.bytes * sends;
            calls[d] += arrivals;
            load[d] += m.bytes * arrivals;
            // The application-level counters see each message once:
            // reliable delivery makes the wire's misbehaviour invisible
            // above this line.
            self.messages += 1;
            self.bytes += m.bytes;
            if delayed {
                late.push((seq, *m));
            } else {
                prompt.push((seq, *m));
            }
            if arrivals > 1 {
                late.push((seq, *m)); // the duplicate copy trails the batch
            }
        }

        // Run the observed schedule through the receiver-side dedup:
        // every message is accepted exactly once no matter how the wire
        // reordered or duplicated it.
        let mut inbox = Inbox::new();
        for (seq, m) in prompt.into_iter().chain(late) {
            if inbox.accept(seq, m) {
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceEvent::Recv {
                        seq,
                        src: actor_of(m.src),
                        dst: actor_of(m.dst),
                        step: superstep,
                        bytes: m.bytes,
                        kind: m.kind.to_string(),
                    });
                }
            } else {
                self.faults.dedup_suppressed += 1;
            }
        }
        debug_assert_eq!(
            inbox.accepted().len(),
            batch.len(),
            "reliable delivery must hand every message to the application exactly once"
        );

        if let Some(log) = self.log.as_mut() {
            for m in batch {
                if log.len() < self.log_capacity {
                    log.push(m);
                } else {
                    self.dropped += 1;
                }
            }
        }
        let max_calls = *calls.iter().max().unwrap_or(&0) as f64;
        let max_bytes = *load.iter().max().unwrap_or(&0) as f64;
        Ok(self.net_call_seconds * max_calls + max_bytes / self.bytes_per_sec + stall_seconds)
    }

    /// Total messages delivered to the application (fault-invariant:
    /// retransmissions and duplicates never reach this counter).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes delivered to the application.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Sequence numbers issued so far.
    pub fn sequenced(&self) -> u64 {
        self.next_seq
    }

    /// Injected-fault counters.
    pub fn fault_counters(&self) -> &FaultCounters {
        &self.faults
    }

    /// The message log, if enabled.
    pub fn log(&self) -> Option<&[Message]> {
        self.log.as_deref()
    }

    /// Messages the bounded log could not keep.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, dst: usize, bytes: u64) -> Message {
        Message {
            src,
            dst,
            bytes,
            kind: MessageKind::Halo,
        }
    }

    fn quiet(nodes: usize, log: Option<usize>) -> Net {
        Net::new(nodes, 25e-6, 20e6, log, None)
    }

    #[test]
    fn empty_batch_is_free() {
        let mut net = quiet(4, None);
        assert_eq!(net.deliver(1, Vec::new()).unwrap(), 0.0);
        assert_eq!(net.messages(), 0);
    }

    #[test]
    fn superstep_time_tracks_the_busiest_endpoint() {
        let mut net = Net::new(4, 1e-6, 1e6, None, None);
        // Node 0 sends to everyone: three calls at its port, 3 kB out.
        let t = net
            .deliver(1, vec![msg(0, 1, 1000), msg(0, 2, 1000), msg(0, 3, 1000)])
            .unwrap();
        assert!((t - (3.0 * 1e-6 + 3000.0 / 1e6)).abs() < 1e-12);
        assert_eq!(net.messages(), 3);
        assert_eq!(net.bytes(), 3000);
    }

    #[test]
    fn delivery_is_order_independent() {
        let batch = vec![msg(2, 1, 64), msg(0, 3, 8), msg(1, 0, 16)];
        let mut rev = batch.clone();
        rev.reverse();
        let mut a = quiet(4, Some(16));
        let mut b = quiet(4, Some(16));
        assert_eq!(a.deliver(1, batch).unwrap(), b.deliver(1, rev).unwrap());
        assert_eq!(a.log(), b.log());
    }

    #[test]
    fn bounded_log_drops_and_counts() {
        let mut net = quiet(2, Some(1));
        net.deliver(1, vec![msg(0, 1, 8), msg(1, 0, 8)]).unwrap();
        assert_eq!(net.log().unwrap().len(), 1);
        assert_eq!(net.dropped(), 1);
        assert_eq!(net.messages(), 2, "accounting sees every message");
    }

    #[test]
    fn drops_cost_timeouts_but_not_application_messages() {
        let plan = FaultPlan::seeded(11).drop_per_mille(400).retries(32);
        let mut lossy = Net::new(4, 1e-6, 1e6, Some(64), Some(plan.clone()));
        let mut clean = Net::new(4, 1e-6, 1e6, Some(64), None);
        let batch: Vec<Message> = (0..32).map(|i| msg(i % 4, (i + 1) % 4, 100)).collect();
        let t_lossy = lossy.deliver(1, batch.clone()).unwrap();
        let t_clean = clean.deliver(1, batch).unwrap();
        let c = *lossy.fault_counters();
        assert!(c.drops > 0, "a 40% drop rate over 32 messages must fire");
        assert_eq!(c.retries, c.drops, "every lost copy was retransmitted");
        assert!(
            t_lossy >= t_clean + c.drops as f64 * plan.retry_timeout_seconds,
            "timeouts must show up in the superstep time"
        );
        assert_eq!(
            lossy.messages(),
            clean.messages(),
            "reliable delivery keeps the application-level count fault-invariant"
        );
        assert_eq!(lossy.log(), clean.log(), "same messages reach the log");
    }

    #[test]
    fn duplicates_are_suppressed_by_seq_dedup() {
        let plan = FaultPlan::seeded(5).duplicate_per_mille(1000);
        let mut net = Net::new(2, 1e-6, 1e6, None, Some(plan));
        net.deliver(1, vec![msg(0, 1, 8), msg(1, 0, 8)]).unwrap();
        let c = *net.fault_counters();
        assert_eq!(c.duplicates, 2, "every message was duplicated");
        assert_eq!(c.dedup_suppressed, 2, "every duplicate was suppressed");
        assert_eq!(net.messages(), 2);
    }

    #[test]
    fn always_drop_exhausts_the_budget_with_a_typed_error() {
        let plan = FaultPlan::seeded(1).drop_per_mille(1000).retries(3);
        let mut net = Net::new(2, 1e-6, 1e6, None, Some(plan));
        let err = net
            .deliver(7, vec![msg(0, 1, 8)])
            .expect_err("certain loss must not loop forever");
        assert_eq!(err.attempts, 4, "original send plus three retries");
        assert_eq!(err.budget, 3);
        assert_eq!(err.superstep, 7);
        let text = err.to_string();
        assert!(text.contains("retry budget"), "explains itself: {text}");
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let plan = FaultPlan::seeded(99)
            .drop_per_mille(100)
            .duplicate_per_mille(100)
            .delay_per_mille(100);
        let run = || {
            let mut net = Net::new(4, 1e-6, 1e6, Some(64), Some(plan.clone()));
            let mut times = Vec::new();
            for step in 1..=8 {
                let batch: Vec<Message> = (0..16).map(|i| msg(i % 4, (i + 2) % 4, 64)).collect();
                times.push(net.deliver(step, batch).unwrap().to_bits());
            }
            (times, *net.fault_counters(), net.log().unwrap().to_vec())
        };
        assert_eq!(run(), run());
    }
}
