//! A deterministic scoped thread pool for superstep compute phases.
//!
//! The MIMD engine's supersteps are bulk-synchronous: between two
//! barriers every simulated node computes independently, and nothing is
//! observable until the barrier merges the results. [`run_indexed`]
//! exploits exactly that window — it maps a pure function over the node
//! indices `0..n` on up to `host_threads` host workers and returns the
//! results **in index order**, so the caller's merge loop is identical
//! to the sequential one and every downstream artifact (finals,
//! telemetry, trace digests) stays bit-identical at any thread count.
//!
//! Determinism comes from the structure, not from luck:
//!
//! * each worker owns a *contiguous* chunk of the index space
//!   (`[w·n/workers, (w+1)·n/workers)`), carved out of the result
//!   buffer with `split_at_mut` — no sharing, no locks, no atomics;
//! * workers never touch shared mutable state; the closure gets an
//!   index and returns a value;
//! * the scope joins every worker before results are read, and results
//!   are consumed in index order regardless of which worker finished
//!   first.
//!
//! With `host_threads <= 1` (the default) no threads are spawned at
//! all — the sequential path is the exact same closure applied in the
//! exact same order.

/// Map `f` over `0..n`, computing on up to `host_threads` workers, and
/// return the results in index order.
///
/// `f` must be `Sync` (shared by reference across workers) and its
/// results `Send` (moved back to the caller). Panics in `f` propagate
/// to the caller, as with sequential iteration.
pub fn run_indexed<R, F>(host_threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if host_threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = host_threads.min(n);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        let mut rest: &mut [Option<R>] = &mut slots;
        let mut start = 0usize;
        for w in 0..workers {
            // Contiguous chunk [start, end): same partition shape the
            // row-slab ShardMap uses, so load skew stays bounded.
            let end = (w + 1) * n / workers;
            let (chunk, tail) = rest.split_at_mut(end - start);
            rest = tail;
            let f = &f;
            scope.spawn(move || {
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(start + offset));
                }
            });
            start = end;
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every index is owned by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(threads, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        // Floating-point results must be the identical bits, not just
        // approximately equal: each index's computation is independent,
        // so the thread count cannot perturb it.
        let f = |i: usize| (i as f64).sin() * 1.0e9 + (i as f64).sqrt();
        let seq: Vec<u64> = run_indexed(1, 100, f).iter().map(|x| x.to_bits()).collect();
        for threads in [2, 4, 7, 16] {
            let par: Vec<u64> = run_indexed(threads, 100, f)
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn handles_edge_sizes() {
        assert!(run_indexed::<usize, _>(4, 0, |i| i).is_empty());
        assert_eq!(run_indexed(4, 1, |i| i + 10), vec![10]);
        assert_eq!(run_indexed(16, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn results_carry_errors_not_panics() {
        // The engine maps fallible node bodies; errors ride the value
        // channel and the first one (in node order) wins at the merge.
        let out = run_indexed(4, 8, |i| if i == 5 { Err(i) } else { Ok(i) });
        let first_err = out.into_iter().find_map(|r| r.err());
        assert_eq!(first_err, Some(5));
    }
}
