//! The MIMD machine: N simulated nodes really executing the compiled
//! program's runtime calls.
//!
//! Every CM array is sharded along its outermost axis
//! ([`crate::shard::ShardMap`]); each runtime call becomes one
//! bulk-synchronous superstep:
//!
//! * **dispatch** — the control processor broadcasts the routine and
//!   its arguments down a binomial tree, then every node runs the PEAC
//!   routine over its own slab through `f90y-peac`'s executor. No data
//!   moves: arrays of one shape shard identically, so each node already
//!   holds matching slabs of every argument.
//! * **grid shifts** — a halo exchange. Rows a node needs but does not
//!   own arrive as one message per (owner → needer) pair; shifts along
//!   inner axes never cross a shard boundary and stay message-free.
//! * **router moves** — an all-to-all batch: each node scatters its
//!   slab uniformly over the other N−1.
//! * **reductions** — local partials combine up a binary tree
//!   (N−1 messages), and the root returns the scalar to the host.
//!   The *value* is computed in canonical element order, so it is
//!   bit-identical to the single-image runtime — the determinism the
//!   CM-5 control network guaranteed in hardware.
//! * **host element access** — one message between the owning node and
//!   the host.
//!
//! Supersteps make time attribution simple: each call advances the
//! modelled clock by the busiest node's compute plus the batch's
//! network time ([`crate::net::Net::deliver`]). There is no wall
//! clock and no randomness anywhere — two runs of one program produce
//! identical arrays, stats and message logs.
//!
//! ## Host parallelism
//!
//! The compute phase of every superstep — per-node routine execution
//! in dispatches, slab construction in shifts — fans out over
//! [`MimdConfig::host_threads`] host workers via [`crate::pool`].
//! Between barriers the nodes share nothing mutable; results merge at
//! the barrier in node-index order and messages are sequenced
//! canonically by `(src, dst)` before delivery (see [`crate::net`]),
//! so the thread count changes wall-clock time only: finals,
//! telemetry and trace digests are bit-identical at any value,
//! including under fault injection (superstep bodies are pure
//! functions of the machine state, so checkpoint/replay reproduces
//! them exactly regardless of how wide they ran).
//!
//! ## Fault recovery
//!
//! With a [`crate::fault::FaultPlan`] in the configuration, each
//! runtime call is a numbered superstep and the machine survives the
//! plan's faults: the network retries dropped messages and dedups
//! duplicates ([`crate::net`]); stalled nodes make the barrier (and so
//! the modelled clock) wait; and when the plan kills a node, the
//! machine restores the barrier checkpoint captured at the superstep's
//! start ([`crate::checkpoint`]) and replays the superstep. The replay
//! recomputes the identical pure function of the restored state, so
//! in-budget fault plans leave final values **bit-identical** to a
//! fault-free run; exhausted budgets surface as
//! [`Cm2Error::Unrecoverable`], never as a hang.

use std::collections::{HashMap, HashSet};

use f90y_backend::Machine;
use f90y_cm2::runtime::{shift_data, ReduceOp};
use f90y_cm2::Cm2Error;
use f90y_obs::trace::{Actor, ClockDomain, Trace, TraceEvent};
use f90y_peac::isa::Instr;
use f90y_peac::sim::NodeMemory;
use f90y_peac::threaded::CompiledBlock;
use f90y_peac::Routine;

use crate::checkpoint::{Checkpoint, CheckpointEntry};
use crate::config::MimdConfig;
use crate::net::{Message, MessageKind, Net, HOST};
use crate::pool;
use crate::shard::ShardMap;
use crate::stats::MimdStats;

/// Handle to an array in MIMD node memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MimdId(usize);

/// One array, laid across the nodes as outer-axis slabs.
#[derive(Debug, Clone)]
struct MimdArray {
    dims: Vec<usize>,
    lower: Vec<i64>,
    /// Row-major slab per node; concatenation in node order is the
    /// whole array in row-major order.
    shards: Vec<Vec<f64>>,
}

impl MimdArray {
    fn rows(&self) -> usize {
        self.dims.first().copied().unwrap_or(1)
    }

    fn inner(&self) -> usize {
        self.dims.iter().skip(1).product()
    }

    fn total(&self) -> usize {
        self.rows() * self.inner()
    }

    fn map(&self, nodes: usize) -> ShardMap {
        ShardMap::new(self.rows(), nodes)
    }

    fn gather(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.total());
        for s in &self.shards {
            out.extend_from_slice(s);
        }
        out
    }

    /// One whole row in global coordinates.
    fn row(&self, map: &ShardMap, r: usize) -> &[f64] {
        let k = map.owner(r);
        let local = r - map.row_start(k);
        let inner = self.inner();
        &self.shards[k][local * inner..(local + 1) * inner]
    }
}

/// The sharded multi-node execution engine.
#[derive(Debug, Clone)]
pub struct MimdMachine {
    config: MimdConfig,
    arrays: HashMap<usize, MimdArray>,
    next: usize,
    coord_cache: HashMap<(Vec<usize>, Vec<i64>, usize), MimdId>,
    stats: MimdStats,
    net: Net,
    /// The superstep clock: one tick per runtime call.
    superstep: u64,
    /// Node restarts consumed against the plan's budget.
    restarts_used: u32,
    /// Plan kill entries already fired (a named kill fires once).
    fired_kills: HashSet<usize>,
    /// Plan stall entries already fired.
    fired_stalls: HashSet<usize>,
    /// The flight recorder, clocked by the superstep counter.
    trace: Option<Trace>,
}

impl MimdMachine {
    /// A fresh machine.
    ///
    /// # Panics
    ///
    /// Panics when the configuration's fault plan targets a node the
    /// partition does not have (drivers that want a typed error call
    /// [`crate::fault::FaultPlan::validate`] first, as
    /// [`crate::run`] does).
    pub fn new(config: MimdConfig) -> Self {
        if let Some(plan) = &config.fault_plan {
            if let Err(msg) = plan.validate(config.nodes) {
                panic!("invalid fault plan: {msg}");
            }
        }
        let net = Net::new(
            config.nodes,
            config.net_call_seconds,
            config.network_bytes_per_sec,
            config.message_log_capacity,
            config.fault_plan.clone(),
        );
        MimdMachine {
            stats: MimdStats::new(config.nodes),
            arrays: HashMap::new(),
            next: 0,
            coord_cache: HashMap::new(),
            net,
            config,
            superstep: 0,
            restarts_used: 0,
            fired_kills: HashSet::new(),
            fired_stalls: HashSet::new(),
            trace: None,
        }
    }

    /// Start the flight recorder (clears any previous trace). Events
    /// are stamped with the superstep clock: each runtime call's phase
    /// occupies `[step, step + 1)` on every node's track, and its
    /// messages record send/recv flow edges within that window.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::new(ClockDomain::Superstep));
    }

    /// The flight-recorder trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Take ownership of the flight-recorder trace, leaving it disabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Record the current superstep as a phase slice on every node's
    /// track (the engine is bulk-synchronous: all nodes participate in
    /// every superstep).
    fn trace_phase_all_nodes(&mut self, label: &str) {
        let step = self.superstep;
        let nodes = self.config.nodes;
        if let Some(t) = &mut self.trace {
            for k in 0..nodes {
                t.record(TraceEvent::Phase {
                    actor: Actor::Node(k),
                    label: label.to_string(),
                    start: step,
                    end: step + 1,
                });
            }
        }
    }

    /// Record the current superstep as a phase slice on the host track.
    fn trace_phase_host(&mut self, label: &str) {
        let step = self.superstep;
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent::Phase {
                actor: Actor::Host,
                label: label.to_string(),
                start: step,
                end: step + 1,
            });
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MimdConfig {
        &self.config
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &MimdStats {
        &self.stats
    }

    /// The message log, when [`MimdConfig::message_log_capacity`] is
    /// set.
    pub fn message_log(&self) -> Option<&[Message]> {
        self.net.log()
    }

    fn array(&self, id: MimdId) -> Result<&MimdArray, Cm2Error> {
        self.arrays
            .get(&id.0)
            .ok_or_else(|| Cm2Error::Runtime(format!("stale MIMD array handle {:?}", id)))
    }

    fn alloc_sharded(&mut self, dims: &[usize], lower: &[i64], data: Option<Vec<f64>>) -> MimdId {
        let rows = dims.first().copied().unwrap_or(1);
        let inner: usize = dims.iter().skip(1).product();
        let map = ShardMap::new(rows, self.config.nodes);
        let shards = (0..self.config.nodes)
            .map(|k| {
                let lo = map.row_start(k) * inner;
                let hi = map.row_end(k) * inner;
                match &data {
                    Some(d) => d[lo..hi].to_vec(),
                    None => vec![0.0; hi - lo],
                }
            })
            .collect();
        let id = self.next;
        self.next += 1;
        self.arrays.insert(
            id,
            MimdArray {
                dims: dims.to_vec(),
                lower: lower.to_vec(),
                shards,
            },
        );
        MimdId(id)
    }

    /// The superstep clock so far (one tick per runtime call).
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// A barrier snapshot of every sharded array plus the allocation
    /// cursor — what node recovery restores from.
    pub fn checkpoint(&self) -> Checkpoint {
        let entries = self
            .arrays
            .iter()
            .map(|(&id, a)| CheckpointEntry {
                id,
                dims: a.dims.clone(),
                lower: a.lower.clone(),
                shards: a.shards.clone(),
            })
            .collect();
        Checkpoint::new(entries, self.next)
    }

    /// Roll all sharded array state back to `ckpt`. Arrays allocated
    /// after the capture vanish; the allocation cursor rewinds so a
    /// replayed superstep reuses the same handles. (The coordinate
    /// cache is left alone: stale entries miss the liveness check in
    /// [`Machine::coordinates`] and are re-filled deterministically.)
    pub fn restore(&mut self, ckpt: &Checkpoint) {
        self.arrays = ckpt
            .entries()
            .iter()
            .map(|e| {
                (
                    e.id,
                    MimdArray {
                        dims: e.dims.clone(),
                        lower: e.lower.clone(),
                        shards: e.shards.clone(),
                    },
                )
            })
            .collect();
        self.next = ckpt.next_id();
    }

    fn sync_net_stats(&mut self) {
        self.stats.messages = self.net.messages();
        self.stats.bytes = self.net.bytes();
        let c = *self.net.fault_counters();
        self.stats.msgs_dropped = c.drops;
        self.stats.msgs_duplicated = c.duplicates;
        self.stats.msgs_delayed = c.delays;
        self.stats.retries = c.retries;
        self.stats.dedup_suppressed = c.dedup_suppressed;
    }

    fn deliver(&mut self, batch: Vec<Message>) -> Result<(), Cm2Error> {
        let result = self
            .net
            .deliver_traced(self.superstep, batch, self.trace.as_mut());
        self.sync_net_stats();
        match result {
            Ok(secs) => {
                self.stats.network_seconds += secs;
                Ok(())
            }
            Err(u) => Err(Cm2Error::Unrecoverable(u.to_string())),
        }
    }

    /// Run one runtime call as a numbered, recoverable superstep.
    ///
    /// Without a fault plan this is just the tick. With one: stalled
    /// nodes hold the barrier; if the plan has kills, the sharded state
    /// is checkpointed first, and a kill fired at this step discards
    /// the superstep's effects, restores the checkpoint and replays —
    /// `body` must therefore be a pure function of machine state, which
    /// every runtime call is.
    fn run_superstep<T>(
        &mut self,
        body: impl Fn(&mut Self) -> Result<T, Cm2Error>,
    ) -> Result<T, Cm2Error> {
        self.superstep += 1;
        self.stats.supersteps += 1;
        let step = self.superstep;
        let Some(plan) = self.config.fault_plan.clone() else {
            return body(self);
        };
        for (i, &(s, node, secs)) in plan.stalls.iter().enumerate() {
            if s == step && self.fired_stalls.insert(i) {
                // The whole barrier waits for the stalled node.
                self.stats.node_stalls += 1;
                self.stats.compute_seconds += secs;
                self.stats.node_busy_seconds[node] += secs;
                if let Some(t) = &mut self.trace {
                    t.record(TraceEvent::Fault {
                        step,
                        actor: Actor::Node(node),
                        kind: "stall".into(),
                    });
                }
            }
        }
        if !plan.has_kills() {
            return body(self);
        }
        let ckpt = self.checkpoint();
        self.stats.checkpoints += 1;
        self.stats.checkpoint_bytes += ckpt.bytes();
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent::Checkpoint {
                step,
                bytes: ckpt.bytes(),
            });
        }
        // Agreeing to cut a checkpoint is one barrier synchronization.
        self.stats.network_seconds += self.config.net_call_seconds;
        let kills: Vec<usize> = plan
            .kills
            .iter()
            .enumerate()
            .filter(|&(i, &(s, _))| s == step && !self.fired_kills.contains(&i))
            .map(|(i, _)| i)
            .collect();
        if kills.is_empty() {
            return body(self);
        }
        if self.restarts_used + kills.len() as u32 > plan.max_restarts {
            return Err(Cm2Error::Unrecoverable(format!(
                "superstep {step} kills {} node(s) but only {} of {} restart(s) remain; \
                 raise the fault plan's restart budget or name fewer kills",
                kills.len(),
                plan.max_restarts - self.restarts_used,
                plan.max_restarts,
            )));
        }
        // The doomed attempt: the work runs, the kill surfaces at the
        // barrier, and the superstep's effects are thrown away.
        body(self)?;
        let mut restored_bytes = 0u64;
        for &i in &kills {
            let (_, node) = plan.kills[i];
            self.fired_kills.insert(i);
            self.stats.node_kills += 1;
            self.stats.node_restarts += 1;
            restored_bytes += ckpt.node_bytes(node);
            if let Some(t) = &mut self.trace {
                t.record(TraceEvent::Fault {
                    step,
                    actor: Actor::Node(node),
                    kind: "kill".into(),
                });
            }
        }
        self.restarts_used += kills.len() as u32;
        // Recovery: re-ship the killed nodes' checkpointed shards, then
        // replay the superstep from the restored barrier state.
        let restore_secs =
            plan.retry_timeout_seconds + restored_bytes as f64 / self.config.network_bytes_per_sec;
        self.stats.network_seconds += restore_secs;
        self.stats.recovery_seconds += restore_secs;
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent::Restore {
                step,
                bytes: restored_bytes,
            });
        }
        self.restore(&ckpt);
        body(self)
    }

    /// The binomial broadcast tree rooted at the host: N−1 edges, built
    /// doubling round by doubling round.
    fn broadcast_batch(&self, bytes: u64) -> Vec<Message> {
        let n = self.config.nodes;
        let mut batch = Vec::with_capacity(n);
        if n == 0 {
            return batch;
        }
        batch.push(Message {
            src: HOST,
            dst: 0,
            bytes,
            kind: MessageKind::Broadcast,
        });
        let mut have = 1;
        while have < n {
            for src in 0..have.min(n - have) {
                batch.push(Message {
                    src,
                    dst: src + have,
                    bytes,
                    kind: MessageKind::Broadcast,
                });
            }
            have *= 2;
        }
        batch
    }

    /// Charge a per-node compute superstep: the clock advances by the
    /// busiest node.
    fn charge_compute(&mut self, busy: &[f64]) {
        let max = busy.iter().cloned().fold(0.0, f64::max);
        self.stats.compute_seconds += max;
        for (k, b) in busy.iter().enumerate() {
            self.stats.node_busy_seconds[k] += b;
        }
    }

    /// Per-element VU beats of a routine body, classified the same way
    /// the CM/2 tracer classifies instructions (so the analytic
    /// estimator and this engine time identical beat counts).
    fn beats_per_elem(routine: &Routine) -> f64 {
        let mut beats = 0.0;
        for i in routine.body() {
            match i {
                Instr::Fdivv { .. } => beats += 5.0,
                Instr::Flib { .. } => beats += 10.0,
                Instr::Flodv { .. }
                | Instr::Fstrv { .. }
                | Instr::SpillLoad { .. }
                | Instr::SpillStore { .. } => beats += 0.5,
                other if other.is_arith() => beats += 1.0,
                _ => {}
            }
        }
        beats
    }

    /// The shift superstep behind both `cshift` and `eoshift`:
    /// `boundary: None` wraps, `Some(b)` end-off fills.
    fn shift_step(
        &mut self,
        src: MimdId,
        axis: usize,
        shift: i64,
        boundary: Option<f64>,
    ) -> Result<MimdId, Cm2Error> {
        let arr = self.array(src)?;
        if axis >= arr.dims.len() {
            return Err(Cm2Error::Runtime(format!(
                "shift axis {axis} out of range for rank {}",
                arr.dims.len()
            )));
        }
        let dims = arr.dims.clone();
        let lower = arr.lower.clone();
        let nodes = self.config.nodes;
        let map = arr.map(nodes);
        let inner = arr.inner();
        let rows = arr.rows();

        let host_threads = self.config.host_threads;
        let (shards, batch) = if axis == 0 {
            // Halo exchange: destination row `a` takes source row
            // `a + shift`; rows outside the local slab arrive as ghost
            // rows, one message per (owner → needer) pair. Slab
            // construction only reads the source array, so the nodes
            // build concurrently on the host pool; ghost counts merge
            // at the barrier in node order (delivery re-sorts the
            // batch by `(src, dst)` before sequencing anyway — see
            // `Net::deliver_traced` — so batch assembly order cannot
            // perturb the trace).
            // One shard slab plus its (owner, ghost-row-count) tallies.
            type SlabAndGhosts = (Vec<f64>, Vec<(usize, u64)>);
            let per_node: Vec<SlabAndGhosts> = pool::run_indexed(host_threads, nodes, |k| {
                let mut slab = Vec::with_capacity(map.rows_of(k) * inner);
                let mut ghosts: Vec<(usize, u64)> = Vec::new();
                for a in map.row_start(k)..map.row_end(k) {
                    let src_row = a as i64 + shift;
                    match boundary {
                        Some(b) if src_row < 0 || src_row >= rows as i64 => {
                            slab.extend(std::iter::repeat_n(b, inner));
                        }
                        _ => {
                            let r = src_row.rem_euclid(rows.max(1) as i64) as usize;
                            let owner = map.owner(r);
                            if owner != k {
                                // Few distinct owners per node
                                // (|shift| is small): linear scan.
                                match ghosts.iter_mut().find(|(o, _)| *o == owner) {
                                    Some((_, n)) => *n += 1,
                                    None => ghosts.push((owner, 1)),
                                }
                            }
                            slab.extend_from_slice(arr.row(&map, r));
                        }
                    }
                }
                (slab, ghosts)
            });
            let mut shards = Vec::with_capacity(nodes);
            let mut batch = Vec::new();
            for (k, (slab, ghosts)) in per_node.into_iter().enumerate() {
                shards.push(slab);
                for (owner, ghost_rows) in ghosts {
                    batch.push(Message {
                        src: owner,
                        dst: k,
                        bytes: ghost_rows * inner as u64 * 8,
                        kind: MessageKind::Halo,
                    });
                }
            }
            (shards, batch)
        } else {
            // Inner-axis shifts never cross a slab boundary: each node
            // shifts its own slab, viewed as an array whose outer
            // extent is its row count.
            let shards = pool::run_indexed(host_threads, nodes, |k| {
                let mut local_dims = dims.clone();
                local_dims[0] = map.rows_of(k);
                shift_data(&arr.shards[k], &local_dims, axis, shift, boundary)
            });
            (shards, Vec::new())
        };

        // Local copy work: two memory beats per element on each node.
        let busy: Vec<f64> = (0..nodes)
            .map(|k| {
                let elems = map.rows_of(k) * inner;
                2.0 * elems as f64 / self.config.vus_per_node as f64 / self.config.vu_clock_hz
            })
            .collect();
        self.charge_compute(&busy);
        self.stats.comm_calls += 1;
        self.trace_phase_all_nodes(if batch.is_empty() {
            "shift.local"
        } else {
            "halo"
        });
        if !batch.is_empty() {
            self.stats.halo_exchanges += 1;
        }
        // Every grid shift pays the runtime-call software overhead even
        // when no ghost row moves — the same floor the analytic
        // estimator charges per grid-communication event.
        self.stats.network_seconds += self.config.net_call_seconds;
        self.deliver(batch)?;

        let id = self.next;
        self.next += 1;
        self.arrays.insert(
            id,
            MimdArray {
                dims,
                lower,
                shards,
            },
        );
        Ok(MimdId(id))
    }

    /// The dispatch superstep body (see [`Machine::dispatch`]).
    fn dispatch_step(
        &mut self,
        routine: &Routine,
        ptr_args: &[MimdId],
        scalar_args: &[f64],
    ) -> Result<(), Cm2Error> {
        if ptr_args.is_empty() {
            return Err(Cm2Error::Runtime(
                "dispatch needs at least one array argument".into(),
            ));
        }
        // Stricter than the SIMD machine's element-count check: shards
        // only align when the *shapes* agree, so a dispatch mixing
        // dims would hand nodes mismatched slabs.
        let dims = self.array(ptr_args[0])?.dims.clone();
        for &id in ptr_args {
            let d = &self.array(id)?.dims;
            if *d != dims {
                return Err(Cm2Error::Runtime(format!(
                    "dispatch arguments disagree on shape ({d:?} vs {dims:?}): \
                     shards would not align across nodes"
                )));
            }
        }
        let nodes = self.config.nodes;
        let map = ShardMap::new(dims.first().copied().unwrap_or(1), nodes);
        let inner: usize = dims.iter().skip(1).product();

        // The control processor broadcasts the dispatch: routine handle
        // plus every argument word, down the binomial tree.
        let arg_bytes = 8 * (1 + ptr_args.len() + scalar_args.len()) as u64;
        let batch = self.broadcast_batch(arg_bytes);
        self.deliver(batch)?;
        self.stats.control_seconds += (self.config.cp_dispatch_cycles
            + self.config.cp_per_arg_cycles * (ptr_args.len() + scalar_args.len()) as u64)
            as f64
            / self.config.sparc_clock_hz;

        // Every node runs the routine over its slab — concurrently on
        // the host pool when `host_threads > 1`. The routine compiles
        // once to threaded code and every worker shares the block; a
        // node only reads the arrays and writes its own private
        // memory, so the compute phase is embarrassingly parallel and
        // the barrier merge below (node-index order, first error wins)
        // makes the thread count unobservable. An array passed through
        // several pointer arguments shares one node buffer, exactly as
        // on the SIMD machine.
        let block = CompiledBlock::compile(routine);
        let beats = Self::beats_per_elem(routine);
        let mut unique: Vec<MimdId> = Vec::new();
        for &id in ptr_args {
            if !unique.contains(&id) {
                unique.push(id);
            }
        }
        let arg_slots: Vec<usize> = ptr_args
            .iter()
            .map(|id| unique.iter().position(|u| u == id).expect("just inserted"))
            .collect();
        let arrays = &self.arrays;
        let vus_per_node = self.config.vus_per_node as f64;
        let vu_clock_hz = self.config.vu_clock_hz;
        let results = pool::run_indexed(
            self.config.host_threads,
            nodes,
            |k| -> Result<(Vec<Vec<f64>>, f64), Cm2Error> {
                let elems = map.rows_of(k) * inner;
                if elems == 0 {
                    return Ok((Vec::new(), 0.0));
                }
                let mut mem = NodeMemory::new();
                let bases: Vec<usize> = unique
                    .iter()
                    .map(|id| mem.alloc(&arrays.get(&id.0).expect("checked above").shards[k]))
                    .collect();
                let arg_bases: Vec<usize> = arg_slots.iter().map(|&s| bases[s]).collect();
                block.run(&mut mem, &arg_bases, scalar_args, elems)?;
                let outputs: Vec<Vec<f64>> = bases.iter().map(|&b| mem.read(b, elems)).collect();
                Ok((outputs, beats * (elems as f64 / vus_per_node) / vu_clock_hz))
            },
        );
        let mut busy = vec![0.0; nodes];
        for (k, result) in results.into_iter().enumerate() {
            let (outputs, b) = result?;
            busy[k] = b;
            for (id, out) in unique.iter().zip(outputs) {
                self.arrays.get_mut(&id.0).expect("checked above").shards[k].copy_from_slice(&out);
            }
        }
        self.charge_compute(&busy);

        let flops_per_elem: u64 = routine.body().iter().map(Instr::flops_per_elem).sum();
        self.stats.flops += flops_per_elem * (map.rows() * inner) as u64;
        self.stats.dispatches += 1;
        self.trace_phase_all_nodes(&format!("dispatch.{}", routine.name()));
        Ok(())
    }

    /// The reduction superstep body (see [`Machine::reduce`]).
    fn reduce_step(&mut self, src: MimdId, op: ReduceOp) -> Result<f64, Cm2Error> {
        let arr = self.array(src)?;
        // The value folds in canonical element order — shard
        // concatenation *is* row-major order — so it is bit-identical
        // to the single-image runtime's fold, the determinism the CM-5
        // control network guaranteed in hardware. Deliberately kept
        // sequential at any `host_threads`: parallel partial sums
        // would change the FP rounding, breaking bit-identity.
        let elems = arr.shards.iter().flat_map(|s| s.iter().copied());
        let value = match op {
            ReduceOp::Sum => elems.sum(),
            ReduceOp::Max => elems.fold(f64::NEG_INFINITY, f64::max),
            ReduceOp::Min => elems.fold(f64::INFINITY, f64::min),
        };
        let nodes = self.config.nodes;
        let map = arr.map(nodes);
        let inner = arr.inner();

        // Local partials: one beat per element.
        let busy: Vec<f64> = (0..nodes)
            .map(|k| {
                let elems = map.rows_of(k) * inner;
                elems as f64 / self.config.vus_per_node as f64 / self.config.vu_clock_hz
            })
            .collect();
        self.charge_compute(&busy);

        // Partials climb a binary tree: in round r, node k (with
        // k mod 2^(r+1) = 2^r) sends its partial to k − 2^r. N−1 tree
        // edges, then the root hands the scalar to the host.
        let mut batch = Vec::with_capacity(nodes);
        let mut stride = 1;
        while stride < nodes {
            let mut k = stride;
            while k < nodes {
                batch.push(Message {
                    src: k,
                    dst: k - stride,
                    bytes: 8,
                    kind: MessageKind::ReduceTree,
                });
                k += 2 * stride;
            }
            stride *= 2;
        }
        batch.push(Message {
            src: 0,
            dst: HOST,
            bytes: 8,
            kind: MessageKind::HostElem,
        });
        self.stats.network_seconds += self.config.net_call_seconds;
        self.deliver(batch)?;
        self.stats.comm_calls += 1;
        self.stats.reductions += 1;
        self.trace_phase_all_nodes("reduce");
        Ok(value)
    }

    /// The router all-to-all superstep body (see
    /// [`Machine::charge_router_move`]).
    fn router_move_step(&mut self, id: MimdId) -> Result<(), Cm2Error> {
        let arr = self.array(id)?;
        let nodes = self.config.nodes;
        let map = arr.map(nodes);
        let inner = arr.inner();
        // All-to-all: each node scatters its slab uniformly over the
        // other N−1 (the router has no grid pattern to exploit).
        let mut batch = Vec::new();
        if nodes > 1 {
            for src in 0..nodes {
                let slab_bytes = (map.rows_of(src) * inner * 8) as u64;
                let per_peer = slab_bytes.div_ceil(nodes as u64 - 1);
                for dst in 0..nodes {
                    if src != dst {
                        batch.push(Message {
                            src,
                            dst,
                            bytes: per_peer,
                            kind: MessageKind::Router,
                        });
                    }
                }
            }
        }
        self.stats.network_seconds += self.config.net_call_seconds;
        self.deliver(batch)?;
        self.stats.comm_calls += 1;
        self.stats.router_batches += 1;
        self.trace_phase_all_nodes("router");
        Ok(())
    }

    /// The host element-read superstep body (see
    /// [`Machine::host_read_elem`]).
    fn host_read_step(&mut self, id: MimdId, flat: usize) -> Result<f64, Cm2Error> {
        let arr = self.array(id)?;
        if flat >= arr.total() {
            return Err(Cm2Error::Runtime(format!("element {flat} out of range")));
        }
        let inner = arr.inner();
        let map = arr.map(self.config.nodes);
        let r = flat / inner.max(1);
        let owner = map.owner(r);
        let local = flat - map.row_start(owner) * inner;
        let v = arr.shards[owner][local];
        self.charge_host_ops(1);
        self.deliver(vec![Message {
            src: owner,
            dst: HOST,
            bytes: 8,
            kind: MessageKind::HostElem,
        }])?;
        self.trace_phase_host("host.read");
        Ok(v)
    }

    /// The host element-write superstep body (see
    /// [`Machine::host_write_elem`]).
    fn host_write_step(&mut self, id: MimdId, flat: usize, v: f64) -> Result<(), Cm2Error> {
        let nodes = self.config.nodes;
        let (owner, local) = {
            let arr = self.array(id)?;
            if flat >= arr.total() {
                return Err(Cm2Error::Runtime(format!("element {flat} out of range")));
            }
            let inner = arr.inner();
            let map = arr.map(nodes);
            let owner = map.owner(flat / inner.max(1));
            (owner, flat - map.row_start(owner) * inner)
        };
        self.arrays.get_mut(&id.0).expect("checked above").shards[owner][local] = v;
        self.charge_host_ops(1);
        self.deliver(vec![Message {
            src: HOST,
            dst: owner,
            bytes: 8,
            kind: MessageKind::HostElem,
        }])?;
        self.trace_phase_host("host.write");
        Ok(())
    }
}

impl Machine for MimdMachine {
    type Id = MimdId;

    fn alloc_with_bounds(&mut self, dims: &[usize], lower: &[i64]) -> MimdId {
        self.alloc_sharded(dims, lower, None)
    }

    fn alloc_from(&mut self, dims: &[usize], data: Vec<f64>) -> MimdId {
        self.alloc_sharded(dims, &vec![1; dims.len()], Some(data))
    }

    fn free(&mut self, id: MimdId) -> Result<(), Cm2Error> {
        self.arrays
            .remove(&id.0)
            .map(|_| ())
            .ok_or_else(|| Cm2Error::Runtime(format!("stale MIMD array handle {:?}", id)))
    }

    fn read(&self, id: MimdId) -> Result<Vec<f64>, Cm2Error> {
        Ok(self.array(id)?.gather())
    }

    fn write(&mut self, id: MimdId, data: &[f64]) -> Result<(), Cm2Error> {
        let nodes = self.config.nodes;
        let (map, inner, total) = {
            let arr = self.array(id)?;
            (arr.map(nodes), arr.inner(), arr.total())
        };
        if data.len() != total {
            return Err(Cm2Error::Runtime(format!(
                "write length {} disagrees with array size {total}",
                data.len()
            )));
        }
        let arr = self.arrays.get_mut(&id.0).expect("checked above");
        for (k, shard) in arr.shards.iter_mut().enumerate() {
            let lo = map.row_start(k) * inner;
            let hi = map.row_end(k) * inner;
            shard.copy_from_slice(&data[lo..hi]);
        }
        Ok(())
    }

    fn dispatch(
        &mut self,
        routine: &Routine,
        ptr_args: &[MimdId],
        scalar_args: &[f64],
    ) -> Result<(), Cm2Error> {
        self.run_superstep(|m| m.dispatch_step(routine, ptr_args, scalar_args))
    }

    fn cshift(&mut self, src: MimdId, axis: usize, shift: i64) -> Result<MimdId, Cm2Error> {
        self.run_superstep(|m| m.shift_step(src, axis, shift, None))
    }

    fn eoshift(
        &mut self,
        src: MimdId,
        axis: usize,
        shift: i64,
        boundary: f64,
    ) -> Result<MimdId, Cm2Error> {
        self.run_superstep(|m| m.shift_step(src, axis, shift, Some(boundary)))
    }

    fn reduce(&mut self, src: MimdId, op: ReduceOp) -> Result<f64, Cm2Error> {
        self.run_superstep(|m| m.reduce_step(src, op))
    }

    fn coordinates(&mut self, dims: &[usize], lower: &[i64], axis: usize) -> MimdId {
        let key = (dims.to_vec(), lower.to_vec(), axis);
        if let Some(&id) = self.coord_cache.get(&key) {
            if self.arrays.contains_key(&id.0) {
                return id;
            }
        }
        // Coordinates are a function of the global element index, so
        // every node generates its slab locally — no messages.
        let total: usize = dims.iter().product();
        let stride: usize = dims[axis + 1..].iter().product();
        let extent = dims[axis];
        let mut data = Vec::with_capacity(total);
        for flat in 0..total {
            let coord = (flat / stride) % extent;
            data.push((lower[axis] + coord as i64) as f64);
        }
        let id = self.alloc_sharded(dims, lower, Some(data));
        let map = ShardMap::new(dims.first().copied().unwrap_or(1), self.config.nodes);
        let inner: usize = dims.iter().skip(1).product();
        let busy: Vec<f64> = (0..self.config.nodes)
            .map(|k| {
                let elems = map.rows_of(k) * inner;
                elems as f64 / self.config.vus_per_node as f64 / self.config.vu_clock_hz
            })
            .collect();
        self.charge_compute(&busy);
        self.coord_cache.insert(key, id);
        id
    }

    fn charge_router_move(&mut self, id: MimdId) -> Result<(), Cm2Error> {
        self.run_superstep(|m| m.router_move_step(id))
    }

    fn charge_host_ops(&mut self, n: u64) {
        self.stats.host_seconds += n as f64 * 2.0 / self.config.sparc_clock_hz;
    }

    fn host_read_elem(&mut self, id: MimdId, flat: usize) -> Result<f64, Cm2Error> {
        self.run_superstep(|m| m.host_read_step(id, flat))
    }

    fn host_write_elem(&mut self, id: MimdId, flat: usize, v: f64) -> Result<(), Cm2Error> {
        self.run_superstep(|m| m.host_write_step(id, flat, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use f90y_peac::isa::{Mem, Operand, VReg};

    fn inc_routine() -> Routine {
        Routine::new(
            "inc",
            2,
            0,
            vec![
                Instr::Fimmv {
                    value: 1.0,
                    dst: VReg(1),
                },
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                },
                Instr::Faddv {
                    a: Operand::V(VReg(0)),
                    b: Operand::V(VReg(1)),
                    dst: VReg(2),
                },
                Instr::Fstrv {
                    src: VReg(2),
                    dst: Mem::arg(1),
                    overlapped: false,
                },
            ],
        )
        .expect("valid routine")
    }

    fn drive(m: &mut MimdMachine) {
        let a = m.alloc_from(&[16], (0..16).map(|i| i as f64).collect());
        let b = m.alloc_with_bounds(&[16], &[1]);
        m.dispatch(&inc_routine(), &[a, b], &[]).unwrap();
        let s = m.cshift(a, 0, 1).unwrap();
        m.reduce(s, ReduceOp::Sum).unwrap();
        m.host_read_elem(a, 3).unwrap();
    }

    #[test]
    fn traced_run_pairs_every_send_with_one_recv() {
        let mut m = MimdMachine::new(MimdConfig::new(4));
        m.enable_trace();
        drive(&mut m);
        let messages = m.stats().messages;
        let trace = m.take_trace().unwrap();
        let paired = trace.verify_flow_pairing().unwrap();
        assert_eq!(paired as u64, messages, "one flow edge per message");
        assert_eq!(trace.sends(), trace.recvs());
        let has = |label: &str| {
            trace
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::Phase { label: l, .. } if l == label))
        };
        assert!(has("dispatch.inc"));
        assert!(has("halo"));
        assert!(has("reduce"));
        assert!(has("host.read"));
    }

    #[test]
    fn traced_run_is_deterministic() {
        let run = || {
            let mut m = MimdMachine::new(MimdConfig::new(4));
            m.enable_trace();
            drive(&mut m);
            m.take_trace().unwrap().digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn host_threads_leave_trace_and_finals_bit_identical() {
        let run = |threads: usize| {
            let mut m = MimdMachine::new(MimdConfig::new(4).with_host_threads(threads));
            m.enable_trace();
            drive(&mut m);
            let mut ids: Vec<usize> = m.arrays.keys().copied().collect();
            ids.sort_unstable();
            let finals: Vec<Vec<u64>> = ids
                .iter()
                .map(|id| m.arrays[id].gather().iter().map(|x| x.to_bits()).collect())
                .collect();
            (m.take_trace().unwrap().digest(), finals, m.stats().clone())
        };
        let baseline = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), baseline, "host_threads={threads}");
        }
    }

    #[test]
    fn faulty_run_traces_recovery_and_still_pairs_flows() {
        let plan = FaultPlan::seeded(7)
            .drop_per_mille(200)
            .retries(16)
            .kill(2, 1)
            .restarts(1);
        let mut m = MimdMachine::new(MimdConfig::new(4).with_faults(plan));
        m.enable_trace();
        drive(&mut m);
        let trace = m.take_trace().unwrap();
        trace.verify_flow_pairing().unwrap();
        let kind_of = |want: &str| {
            trace
                .events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::Fault { kind, .. } if kind == want))
                .count()
        };
        assert_eq!(kind_of("kill"), 1, "the planned kill is in the trace");
        assert!(
            trace
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::Checkpoint { .. })),
            "kill plans checkpoint every superstep"
        );
        assert!(
            trace
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::Restore { .. })),
            "the kill forces a restore"
        );
    }
}
