//! Configuration of the simulated CM/5 MIMD partition.

use crate::fault::FaultPlan;

/// Machine constants of a CM/5 partition running the MIMD engine.
///
/// The compute and network constants come from the CM/5 capability
/// manifest ([`f90y_hal::CM5`]: 33 MHz SPARC, 16 MHz vector units, four
/// VUs per node, ~20 MB/s fat-tree bandwidth per node) — the same data
/// the analytic replay estimator ([`f90y_hal::replay()`]) prices events
/// with. The two model the *same machine* from opposite ends — the
/// estimator replays a SIMD trace, this engine actually executes
/// multi-node — and the differential tests lean on the constants
/// agreeing because both read one manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct MimdConfig {
    /// Number of processing nodes (any power of two ≥ 1; scaled-down
    /// partitions keep tests fast).
    pub nodes: usize,
    /// Node SPARC clock (33 MHz).
    pub sparc_clock_hz: f64,
    /// Vector-unit clock (16 MHz).
    pub vu_clock_hz: f64,
    /// Vector units per node (4).
    pub vus_per_node: usize,
    /// Fat-tree per-node bandwidth in bytes/second (~20 MB/s).
    pub network_bytes_per_sec: f64,
    /// Software send/receive overhead per message batch touching a
    /// node, in seconds.
    pub net_call_seconds: f64,
    /// Control-processor dispatch overhead per block launch, in SPARC
    /// cycles.
    pub cp_dispatch_cycles: u64,
    /// Per-argument broadcast cost in control-processor cycles.
    pub cp_per_arg_cycles: u64,
    /// When `Some`, the machine keeps a log of every message it sends
    /// (for tests and message-model debugging); the capacity bounds the
    /// log so pathological runs cannot eat memory.
    pub message_log_capacity: Option<usize>,
    /// When `Some`, the run injects the plan's deterministic faults:
    /// dropped/duplicated/delayed messages, node kills and stalls. The
    /// network delivers reliably (retry + dedup) and killed nodes are
    /// restored from barrier checkpoints, so in-budget plans leave
    /// final values bit-identical to a fault-free run.
    pub fault_plan: Option<FaultPlan>,
    /// Host worker threads executing the per-node compute phase of each
    /// superstep (1 = fully sequential, today's behavior). Purely a
    /// host-side throughput knob: node shards are partitioned over the
    /// workers, results merge at the barrier in node-index order, and
    /// messages are sequenced canonically by `(src, dst)` — so finals,
    /// telemetry and trace digests are bit-identical at any value.
    pub host_threads: usize,
}

impl MimdConfig {
    /// A partition of `nodes` nodes with the standard CM/5 constants.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is a power of two (the fat tree and the
    /// combine trees assume it).
    pub fn new(nodes: usize) -> Self {
        assert!(
            nodes.is_power_of_two(),
            "MIMD node count must be a power of two, got {nodes}"
        );
        let costs = f90y_hal::CM5
            .mimd
            .expect("CM/5 manifest has a MIMD cost block");
        MimdConfig {
            nodes,
            sparc_clock_hz: costs.sparc_clock_hz,
            vu_clock_hz: costs.vu_clock_hz,
            vus_per_node: costs.vus_per_node,
            network_bytes_per_sec: costs.network_bytes_per_sec,
            net_call_seconds: costs.net_call_seconds,
            cp_dispatch_cycles: costs.cp_dispatch_cycles,
            cp_per_arg_cycles: costs.cp_per_arg_cycles,
            message_log_capacity: None,
            fault_plan: None,
            host_threads: 1,
        }
    }

    /// Same partition, with the message log enabled (unbounded is
    /// spelled `usize::MAX`).
    pub fn with_message_log(mut self, capacity: usize) -> Self {
        self.message_log_capacity = Some(capacity);
        self
    }

    /// Same partition, with the given fault plan injected.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Same partition, computing each superstep on `host_threads` host
    /// workers. Results are identical at any value; only wall-clock
    /// changes.
    ///
    /// # Panics
    ///
    /// Panics when `host_threads` is zero (the session layer rejects
    /// this with a typed error before it can reach here).
    pub fn with_host_threads(mut self, host_threads: usize) -> Self {
        assert!(host_threads >= 1, "host_threads must be at least 1");
        self.host_threads = host_threads;
        self
    }

    /// Peak GFLOPS (chained multiply-add on every VU).
    pub fn peak_gflops(&self) -> f64 {
        self.nodes as f64 * self.vus_per_node as f64 * 2.0 * self.vu_clock_hz / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_constants() {
        let c = MimdConfig::new(64);
        assert_eq!(c.nodes, 64);
        assert_eq!(c.vus_per_node, 4);
        // 64 nodes × 128 MFLOPS.
        assert!((c.peak_gflops() - 8.192).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        MimdConfig::new(48);
    }

    #[test]
    fn manifest_backed_constants_keep_their_pre_hal_values() {
        // The config must read the same numbers it hard-coded before
        // the HAL refactor (the full cost-table golden lives in
        // f90y-hal).
        let c = MimdConfig::new(64);
        assert_eq!(c.sparc_clock_hz.to_bits(), 33.0e6_f64.to_bits());
        assert_eq!(c.vu_clock_hz.to_bits(), 16.0e6_f64.to_bits());
        assert_eq!(c.vus_per_node, 4);
        assert_eq!(c.network_bytes_per_sec.to_bits(), 20.0e6_f64.to_bits());
        assert_eq!(c.net_call_seconds.to_bits(), 25.0e-6_f64.to_bits());
        assert_eq!(c.cp_dispatch_cycles, 400);
        assert_eq!(c.cp_per_arg_cycles, 10);
    }

    #[test]
    fn host_threads_defaults_to_sequential() {
        assert_eq!(MimdConfig::new(4).host_threads, 1);
        assert_eq!(MimdConfig::new(4).with_host_threads(8).host_threads, 8);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_host_threads() {
        MimdConfig::new(4).with_host_threads(0);
    }
}
