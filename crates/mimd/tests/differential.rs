//! Differential tests: the identical compiled program executed on the
//! SIMD CM/2 simulator and on the MIMD engine must produce
//! bit-identical final arrays and scalars — the retargeting guarantee
//! the `Machine` trait exists to make testable.

use f90y_backend::fe::{HostExecutor, HostRun};
use f90y_backend::CompiledProgram;
use f90y_cm2::{Cm2, Cm2Config};
use f90y_mimd::{MimdConfig, MimdMachine, MimdStats};

/// Compile a source program, naming the failing stage.
fn compile(src: &str) -> CompiledProgram {
    let unit = f90y_frontend::parse(src).expect("frontend parse");
    let nir = f90y_lowering::lower(&unit).expect("lowering");
    let optimized = f90y_transform::optimize(&nir).expect("transform");
    f90y_backend::compile(&optimized).expect("backend split")
}

fn run_simd(compiled: &CompiledProgram) -> HostRun {
    let mut cm = Cm2::new(Cm2Config::slicewise(64));
    HostExecutor::new(&mut cm).run(compiled).expect("SIMD run")
}

fn run_mimd(compiled: &CompiledProgram, nodes: usize) -> (HostRun, MimdStats) {
    f90y_mimd::run(compiled, &MimdConfig::new(nodes)).expect("MIMD run")
}

/// Assert one variable's final array is bit-identical on both targets
/// at every tested node count.
fn assert_identical(src: &str, arrays: &[&str], scalars: &[&str]) {
    let compiled = compile(src);
    let simd = run_simd(&compiled);
    for nodes in [1, 4, 16, 64] {
        let (mimd, stats) = run_mimd(&compiled, nodes);
        for &a in arrays {
            assert_eq!(
                mimd.final_array(a).unwrap(),
                simd.final_array(a).unwrap(),
                "array '{a}' diverged at {nodes} nodes"
            );
        }
        for &s in scalars {
            assert_eq!(
                mimd.final_scalar(s).unwrap(),
                simd.final_scalar(s).unwrap(),
                "scalar '{s}' diverged at {nodes} nodes"
            );
        }
        stats.verify().expect("stats invariants");
    }
}

#[test]
fn elementwise_arithmetic() {
    assert_identical(
        "REAL a(33,17), b(33,17)\n\
         FORALL (i=1:33, j=1:17) a(i,j) = MOD(i*j, 13) - 6\n\
         b = 2.0*a*a - a/4.0 + 1.5\n\
         a = MAX(a, b) - MIN(a, 0.5*b)\n",
        &["a", "b"],
        &[],
    );
}

#[test]
fn shifted_stencil_time_loop() {
    // The SWE-style pattern: halo exchanges feeding an elementwise
    // update inside a serial time loop.
    assert_identical(
        "REAL v(48,48), t(48,48), u(48,48)\n\
         FORALL (i=1:48, j=1:48) v(i,j) = MOD(i+2*j, 9)\n\
         DO step = 1, 4\n\
           t = CSHIFT(v, DIM=1, SHIFT=1)\n\
           u = CSHIFT(v, DIM=2, SHIFT=-1)\n\
           v = 0.25*(v + t + u) + 0.125*t*u\n\
         END DO\n",
        &["v", "t", "u"],
        &[],
    );
}

#[test]
fn eoshift_boundaries_cross_shards() {
    assert_identical(
        "REAL a(40), b(40), c(40)\n\
         FORALL (i=1:40) a(i) = i\n\
         b = EOSHIFT(a, DIM=1, SHIFT=3, BOUNDARY=-1.0)\n\
         c = EOSHIFT(a, DIM=1, SHIFT=-7, BOUNDARY=2.5)\n",
        &["a", "b", "c"],
        &[],
    );
}

#[test]
fn reductions_feed_back_into_arrays() {
    // A reduction whose scalar result re-enters array compute: any
    // associativity drift in the combine tree would surface here as
    // diverging arrays, not just a slightly-off scalar.
    assert_identical(
        "REAL a(35), s\n\
         FORALL (i=1:35) a(i) = MOD(i*7, 11) - 5\n\
         s = SUM(a)\n\
         a = a*s + MAXVAL(a) - MINVAL(a)\n\
         s = SUM(a)\n",
        &["a"],
        &["s"],
    );
}

#[test]
fn serial_host_loops_touch_remote_elements() {
    // Host-driven element reads and writes must route to the owning
    // shard at any node count.
    assert_identical(
        "REAL a(20), s\n\
         FORALL (i=1:20) a(i) = 2*i\n\
         s = 0.0\n\
         DO i = 1, 20\n\
           s = s + a(i)\n\
           a(i) = s\n\
         END DO\n",
        &["a"],
        &["s"],
    );
}

#[test]
fn more_nodes_exchange_more_ghost_rows() {
    let compiled = compile(
        "REAL v(64,8), t(64,8)\n\
         FORALL (i=1:64, j=1:8) v(i,j) = i + j\n\
         t = CSHIFT(v, DIM=1, SHIFT=1)\n",
    );
    let (_, one) = run_mimd(&compiled, 1);
    let (_, many) = run_mimd(&compiled, 16);
    assert_eq!(
        one.halo_exchanges, 0,
        "a single node has no one to exchange ghost rows with"
    );
    assert_eq!(
        many.halo_exchanges, 1,
        "the outer-axis shift on 16 nodes is one halo exchange"
    );
    assert!(
        many.messages > one.messages,
        "more nodes, more traffic: {} vs {}",
        many.messages,
        one.messages
    );
    assert_eq!(one.comm_calls, many.comm_calls, "same host program");
}

#[test]
fn node_local_inner_shifts_send_nothing() {
    let compiled = compile(
        "REAL v(64,8), t(64,8)\n\
         FORALL (i=1:64, j=1:8) v(i,j) = i + j\n\
         t = CSHIFT(v, DIM=2, SHIFT=1)\n",
    );
    let (_, stats) = run_mimd(&compiled, 16);
    assert_eq!(
        stats.halo_exchanges, 0,
        "inner-axis shifts never cross a slab boundary"
    );
    assert!(stats.comm_calls > 0, "it is still a communication call");
}

#[test]
fn dispatch_rejects_mismatched_shapes() {
    use f90y_backend::Machine;
    let mut m = MimdMachine::new(MimdConfig::new(4));
    let a = m.alloc(&[8, 4]);
    let b = m.alloc(&[4, 8]); // same elements, different sharding
    let routine = f90y_peac::isa::Routine::new(
        "copy",
        2,
        0,
        vec![
            f90y_peac::isa::Instr::Flodv {
                src: f90y_peac::isa::Mem::arg(0),
                dst: f90y_peac::isa::VReg(0),
                overlapped: false,
            },
            f90y_peac::isa::Instr::Fstrv {
                src: f90y_peac::isa::VReg(0),
                dst: f90y_peac::isa::Mem::arg(1),
                overlapped: false,
            },
        ],
    )
    .expect("valid routine");
    let err = m.dispatch(&routine, &[a, b], &[]).expect_err("must reject");
    assert!(err.to_string().contains("shape"), "got: {err}");
}
