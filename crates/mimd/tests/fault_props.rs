//! Property tests of the fault-tolerance machinery: sequence-number
//! dedup must make delivery idempotent under arbitrary duplication and
//! reordering, and barrier checkpoints must round-trip arbitrary
//! sharded state exactly.

use proptest::prelude::*;

use f90y_backend::Machine;
use f90y_mimd::{FaultPlan, Inbox, Message, MessageKind, MimdConfig, MimdMachine};

/// A random small shape of rank 1–3.
fn arb_dims() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..9, 1..4)
}

/// Deterministic but irregular fill for a given element count.
fn fill(total: usize, salt: usize) -> Vec<f64> {
    (0..total)
        .map(|i| ((i * 37 + salt * 13 + 11) % 101) as f64 - 50.0)
        .collect()
}

fn msg(seq: u64) -> Message {
    Message {
        src: (seq % 7) as usize,
        dst: (seq % 5) as usize,
        bytes: 8 * (seq + 1),
        kind: MessageKind::Halo,
    }
}

proptest! {
    /// Duplicating and reordering any deliveries never changes the
    /// inbox's canonical final state: dedup makes delivery idempotent.
    #[test]
    fn inbox_dedup_is_idempotent(
        count in 1u64..24,
        // Indices into the message set, freely repeating: the perturbed
        // delivery schedule (duplicates + arbitrary order).
        schedule in proptest::collection::vec(0u64..24, 1..96),
    ) {
        // The reference: each message delivered exactly once, in order.
        let mut clean = Inbox::new();
        for seq in 0..count {
            prop_assert!(clean.accept(seq, msg(seq)));
        }

        // The perturbed schedule, completed so every message arrives at
        // least once (a retransmission finishes the delivery).
        let mut noisy = Inbox::new();
        for &pick in &schedule {
            let seq = pick % count;
            noisy.accept(seq, msg(seq));
        }
        for seq in 0..count {
            noisy.accept(seq, msg(seq));
        }

        prop_assert_eq!(clean.state(), noisy.state());
        // Exactly one copy of each message survived.
        prop_assert_eq!(noisy.accepted().len() as u64, count);
    }

    /// A barrier checkpoint restores every sharded array bit for bit,
    /// discards arrays allocated after the capture, and rewinds the
    /// allocation cursor so replayed allocations reuse the same ids.
    #[test]
    fn checkpoint_restore_round_trips_sharded_state(
        dims_a in arb_dims(),
        dims_b in arb_dims(),
        node_pow in 0u32..6,
        poke in 0usize..64,
    ) {
        let nodes = 1usize << node_pow;
        let data_a = fill(dims_a.iter().product(), 1);
        let data_b = fill(dims_b.iter().product(), 2);

        let mut m = MimdMachine::new(MimdConfig::new(nodes));
        let a = m.alloc_from(&dims_a, data_a.clone());
        let b = m.alloc_from(&dims_b, data_b.clone());
        let ckpt = m.checkpoint();

        // Perturb everything the checkpoint should undo: overwrite an
        // element, allocate a scratch array.
        let total_a: usize = dims_a.iter().product();
        m.host_write_elem(a, poke % total_a, 1234.5).unwrap();
        let scratch = m.alloc_with_bounds(&dims_b, &vec![1; dims_b.len()]);

        m.restore(&ckpt);
        prop_assert_eq!(m.read(a).unwrap(), data_a);
        prop_assert_eq!(m.read(b).unwrap(), data_b);
        // The scratch allocation vanished with the rollback…
        prop_assert!(m.read(scratch).is_err());
        // …and the cursor rewound: a replayed allocation reuses its id.
        let replayed = m.alloc_with_bounds(&dims_b, &vec![1; dims_b.len()]);
        prop_assert_eq!(replayed, scratch);
    }

    /// Fault-injected runs are deterministic: the same seed and program
    /// produce identical finals, stats and fault counters every time.
    #[test]
    fn fault_injection_is_deterministic(
        dims in arb_dims(),
        shift in -5i64..5,
        node_pow in 0u32..5,
        seed in 0u64..1000,
    ) {
        let nodes = 1usize << node_pow;
        let data = fill(dims.iter().product(), 3);

        let once = |_| {
            let plan = FaultPlan::seeded(seed)
                .drop_per_mille(100)
                .duplicate_per_mille(50)
                .delay_per_mille(50);
            let mut m = MimdMachine::new(MimdConfig::new(nodes).with_faults(plan));
            let a = m.alloc_from(&dims, data.clone());
            let s = m.cshift(a, 0, shift).unwrap();
            let v = m.reduce(s, f90y_cm2::ReduceOp::Sum).unwrap();
            (m.read(s).unwrap(), v, m.stats().clone())
        };
        prop_assert_eq!(once(0), once(1));
    }
}
