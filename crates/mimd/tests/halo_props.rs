//! Property tests of the MIMD halo-exchange machinery: for random
//! shapes, shifts and node counts, the distributed grid shifts must
//! reproduce the single-image reference semantics
//! (`f90y_cm2::runtime::shift_data`) bit for bit — and runs must be
//! deterministic.

use proptest::prelude::*;

use f90y_backend::Machine;
use f90y_cm2::runtime::shift_data;
use f90y_mimd::{MimdConfig, MimdMachine};

/// A random small shape of rank 1–3.
fn arb_dims() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..9, 1..4)
}

/// Deterministic but irregular fill for a given element count.
fn fill(total: usize) -> Vec<f64> {
    (0..total)
        .map(|i| ((i * 37 + 11) % 101) as f64 - 50.0)
        .collect()
}

proptest! {
    #[test]
    fn halo_cshift_matches_single_image(
        dims in arb_dims(),
        shift in -12i64..12,
        axis_pick in 0usize..3,
        node_pow in 0u32..7,
    ) {
        let axis = axis_pick % dims.len();
        let nodes = 1usize << node_pow;
        let total: usize = dims.iter().product();
        let data = fill(total);

        let mut m = MimdMachine::new(MimdConfig::new(nodes));
        let a = m.alloc_from(&dims, data.clone());
        let s = m.cshift(a, axis, shift).unwrap();
        let got = m.read(s).unwrap();

        let want = shift_data(&data, &dims, axis, shift, None);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn halo_eoshift_matches_single_image(
        dims in arb_dims(),
        shift in -12i64..12,
        axis_pick in 0usize..3,
        node_pow in 0u32..7,
        boundary in -4i32..5,
    ) {
        let axis = axis_pick % dims.len();
        let nodes = 1usize << node_pow;
        let boundary = boundary as f64 + 0.5;
        let total: usize = dims.iter().product();
        let data = fill(total);

        let mut m = MimdMachine::new(MimdConfig::new(nodes));
        let a = m.alloc_from(&dims, data.clone());
        let s = m.eoshift(a, axis, shift, boundary).unwrap();
        let got = m.read(s).unwrap();

        let want = shift_data(&data, &dims, axis, shift, Some(boundary));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reductions_match_single_image_folds(
        dims in arb_dims(),
        node_pow in 0u32..7,
    ) {
        use f90y_cm2::ReduceOp;
        let nodes = 1usize << node_pow;
        let total: usize = dims.iter().product();
        let data = fill(total);

        let mut m = MimdMachine::new(MimdConfig::new(nodes));
        let a = m.alloc_from(&dims, data.clone());
        // Canonical-order folds: bit-identical to the sequential ones.
        prop_assert_eq!(m.reduce(a, ReduceOp::Sum).unwrap(), data.iter().sum::<f64>());
        prop_assert_eq!(
            m.reduce(a, ReduceOp::Max).unwrap(),
            data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        );
        prop_assert_eq!(
            m.reduce(a, ReduceOp::Min).unwrap(),
            data.iter().copied().fold(f64::INFINITY, f64::min)
        );
        // The combine tree spans the machine: N−1 edges plus the scalar
        // read-back, three reductions' worth.
        prop_assert_eq!(m.stats().messages, 3 * nodes as u64);
        prop_assert_eq!(m.stats().reductions, 3);
    }

    #[test]
    fn runs_are_deterministic(
        dims in arb_dims(),
        shift in -5i64..5,
        node_pow in 0u32..5,
    ) {
        let nodes = 1usize << node_pow;
        let total: usize = dims.iter().product();
        let data = fill(total);

        let once = |_| {
            let mut m = MimdMachine::new(MimdConfig::new(nodes).with_message_log(1 << 12));
            let a = m.alloc_from(&dims, data.clone());
            let s = m.cshift(a, 0, shift).unwrap();
            let v = m.reduce(s, f90y_cm2::ReduceOp::Sum).unwrap();
            let log: Vec<_> = m.message_log().unwrap().to_vec();
            (m.read(s).unwrap(), v, m.stats().clone(), log)
        };
        prop_assert_eq!(once(0), once(1));
    }
}
