//! The executing PEAC simulator.
//!
//! A routine runs its virtual subgrid loop over real node memory: every
//! vector lane is computed, so translation validation can compare the
//! bytes a compiled program produces against the NIR reference
//! evaluator. Cycle accounting comes from [`crate::costs`] and is
//! deterministic.
//!
//! Arrays are allocated padded to a whole number of vectors; the last
//! iteration computes the pad lanes too (harmlessly — each array has its
//! own pad region, and IEEE arithmetic on garbage lanes cannot fault),
//! exactly like real vector hardware running a full final beat.
//!
//! Execution itself lives in [`crate::threaded`]: the body compiles
//! once into a [`CompiledBlock`] of pre-resolved op thunks and the
//! loop runs those — [`run_routine`] keeps the historical one-shot
//! API on top.

use crate::isa::{Routine, VLEN};
use crate::threaded::CompiledBlock;
use crate::PeacError;

/// A processing node's local memory: a flat `f64` heap.
#[derive(Debug, Clone, Default)]
pub struct NodeMemory {
    pub(crate) heap: Vec<f64>,
}

/// A base offset into a [`NodeMemory`] heap, as passed over the IFIFO to
/// a PEAC routine.
pub type Ptr = usize;

impl NodeMemory {
    /// An empty node memory.
    pub fn new() -> Self {
        NodeMemory { heap: Vec::new() }
    }

    /// Allocate a buffer initialised from `data`, padded to a whole
    /// number of vectors. Returns its base pointer.
    pub fn alloc(&mut self, data: &[f64]) -> Ptr {
        let base = self.heap.len();
        self.heap.extend_from_slice(data);
        let pad = (VLEN - data.len() % VLEN) % VLEN;
        self.heap.extend(std::iter::repeat_n(0.0, pad));
        base
    }

    /// Allocate an uninitialised (zeroed) buffer of `n` elements.
    pub fn alloc_zeroed(&mut self, n: usize) -> Ptr {
        let base = self.heap.len();
        let padded = n.div_ceil(VLEN) * VLEN;
        self.heap.extend(std::iter::repeat_n(0.0, padded));
        base
    }

    /// Read `n` elements starting at `base`.
    pub fn read(&self, base: Ptr, n: usize) -> Vec<f64> {
        self.heap[base..base + n].to_vec()
    }

    /// Overwrite `n` elements starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the region is out of bounds.
    pub fn write(&mut self, base: Ptr, data: &[f64]) {
        self.heap[base..base + data.len()].copy_from_slice(data);
    }

    /// Total words allocated.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Execution statistics for one routine dispatch on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Virtual subgrid loop iterations executed.
    pub iterations: u64,
    /// Node cycles consumed (deterministic, from the cost model).
    pub cycles: u64,
    /// Floating-point operations over the *valid* (unpadded) elements.
    pub flops: u64,
    /// Instructions executed (body length × iterations).
    pub instructions: u64,
}

impl ExecStats {
    /// Accumulate another dispatch's statistics.
    pub fn add(&mut self, other: ExecStats) {
        self.iterations += other.iterations;
        self.cycles += other.cycles;
        self.flops += other.flops;
        self.instructions += other.instructions;
    }
}

/// Execute a routine's virtual subgrid loop over `n_elems` elements.
///
/// `ptr_args` are base pointers (one per pointer argument), `scalar_args`
/// fill the scalar registers. All pointer streams advance one vector per
/// iteration.
///
/// Since the threaded-code rework this is a thin wrapper: it compiles
/// the routine to a [`CompiledBlock`] and runs it once. Callers that
/// dispatch the same routine to many nodes should compile once with
/// [`CompiledBlock::compile`] and share the block instead.
///
/// # Errors
///
/// Fails when arguments do not match the routine signature or a pointer
/// stream runs off the heap.
pub fn run_routine(
    routine: &Routine,
    mem: &mut NodeMemory,
    ptr_args: &[Ptr],
    scalar_args: &[f64],
    n_elems: usize,
) -> Result<ExecStats, PeacError> {
    CompiledBlock::compile(routine).run(mem, ptr_args, scalar_args, n_elems)
}

/// [`run_routine`] with the opt-in opcode profiler: on success the
/// run's per-opcode hit/cycle histogram is folded into `profile`, whose
/// cycle sum grows by exactly [`ExecStats::cycles`] (the per-iteration
/// loop overhead gets its own [`crate::profile::LOOP_BUCKET`] row).
///
/// # Errors
///
/// As [`run_routine`]; on error nothing is recorded.
pub fn run_routine_profiled(
    routine: &Routine,
    mem: &mut NodeMemory,
    ptr_args: &[Ptr],
    scalar_args: &[f64],
    n_elems: usize,
    profile: &mut crate::profile::OpcodeProfile,
) -> Result<ExecStats, PeacError> {
    let stats = run_routine(routine, mem, ptr_args, scalar_args, n_elems)?;
    profile.record_exec(routine.body(), stats.iterations);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{CmpOp, Instr, Mem, Operand, SReg, VReg};

    fn routine(nptr: usize, nsc: usize, body: Vec<Instr>) -> Routine {
        Routine::new("t", nptr, nsc, body).expect("valid test routine")
    }

    #[test]
    fn axpy_computes_and_counts() {
        // z = a*x + y over 10 elements (non-multiple of VLEN). The
        // output stream is a distinct pointer: post-increment streams
        // are single-direction, so in-place y would not validate.
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..10).map(|i| 100.0 + i as f64).collect();
        let r2 = routine(
            3,
            1,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                },
                Instr::Flodv {
                    src: Mem::arg(1),
                    dst: VReg(1),
                    overlapped: false,
                },
                Instr::Fmaddv {
                    a: Operand::S(SReg(0)),
                    b: Operand::V(VReg(0)),
                    c: Operand::V(VReg(1)),
                    dst: VReg(2),
                },
                Instr::Fstrv {
                    src: VReg(2),
                    dst: Mem::arg(2),
                    overlapped: false,
                },
            ],
        );
        let mut mem = NodeMemory::new();
        let px = mem.alloc(&x);
        let py = mem.alloc(&y);
        let pz = mem.alloc_zeroed(10);
        let stats = run_routine(&r2, &mut mem, &[px, py, pz], &[2.0], 10).unwrap();
        let z = mem.read(pz, 10);
        for i in 0..10 {
            assert_eq!(z[i], 2.0 * x[i] + y[i], "element {i}");
        }
        assert_eq!(stats.iterations, 3); // ceil(10/4)
        assert_eq!(stats.flops, 2 * 10); // fmadd: 2 flops/element, 10 valid
        assert!(stats.cycles > 0);
    }

    #[test]
    fn chained_memory_operand_loads_inline() {
        // out = in0 - in1 with in1 as a chained memory operand (Fig. 12
        // optimized form: `fsubv aV3 [aP4+0]1++ aV1`).
        let r = routine(
            3,
            0,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(3),
                    overlapped: false,
                },
                Instr::Fsubv {
                    a: Operand::V(VReg(3)),
                    b: Operand::M(Mem::arg(1)),
                    dst: VReg(1),
                },
                Instr::Fstrv {
                    src: VReg(1),
                    dst: Mem::arg(2),
                    overlapped: false,
                },
            ],
        );
        let mut mem = NodeMemory::new();
        let a = mem.alloc(&[10.0, 20.0, 30.0, 40.0]);
        let b = mem.alloc(&[1.0, 2.0, 3.0, 4.0]);
        let c = mem.alloc_zeroed(4);
        run_routine(&r, &mut mem, &[a, b, c], &[], 4).unwrap();
        assert_eq!(mem.read(c, 4), vec![9.0, 18.0, 27.0, 36.0]);
    }

    #[test]
    fn masked_select_simulates_conditional_assignment() {
        // The Fig. 10 pattern: B = (coord mod 2 == 0) ? A : 5*A.
        let r = routine(
            3,
            0,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                }, // coord
                Instr::Flodv {
                    src: Mem::arg(1),
                    dst: VReg(1),
                    overlapped: false,
                }, // A
                Instr::Fimmv {
                    value: 2.0,
                    dst: VReg(2),
                },
                Instr::Fdivv {
                    a: Operand::V(VReg(0)),
                    b: Operand::V(VReg(2)),
                    dst: VReg(3),
                },
                Instr::Ftruncv {
                    a: Operand::V(VReg(3)),
                    dst: VReg(3),
                },
                Instr::Fmulv {
                    a: Operand::V(VReg(3)),
                    b: Operand::V(VReg(2)),
                    dst: VReg(3),
                },
                Instr::Fsubv {
                    a: Operand::V(VReg(0)),
                    b: Operand::V(VReg(3)),
                    dst: VReg(3),
                },
                // mask = (coord mod 2) == 0
                Instr::Fimmv {
                    value: 0.0,
                    dst: VReg(4),
                },
                Instr::Fcmpv {
                    op: CmpOp::Eq,
                    a: Operand::V(VReg(3)),
                    b: Operand::V(VReg(4)),
                    dst: VReg(5),
                },
                Instr::Fimmv {
                    value: 5.0,
                    dst: VReg(6),
                },
                Instr::Fmulv {
                    a: Operand::V(VReg(6)),
                    b: Operand::V(VReg(1)),
                    dst: VReg(6),
                },
                Instr::Fselv {
                    mask: VReg(5),
                    a: Operand::V(VReg(1)),
                    b: Operand::V(VReg(6)),
                    dst: VReg(7),
                },
                Instr::Fstrv {
                    src: VReg(7),
                    dst: Mem::arg(2),
                    overlapped: false,
                },
            ],
        );
        let mut mem = NodeMemory::new();
        let coord = mem.alloc(&[1.0, 2.0, 3.0, 4.0]);
        let a = mem.alloc(&[10.0, 10.0, 10.0, 10.0]);
        let b = mem.alloc_zeroed(4);
        run_routine(&r, &mut mem, &[coord, a, b], &[], 4).unwrap();
        assert_eq!(mem.read(b, 4), vec![50.0, 10.0, 50.0, 10.0]);
    }

    #[test]
    fn spill_roundtrip_preserves_values() {
        let r = routine(
            2,
            0,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                },
                Instr::SpillStore {
                    src: VReg(0),
                    slot: 0,
                    overlapped: false,
                },
                Instr::Fimmv {
                    value: 0.0,
                    dst: VReg(0),
                },
                Instr::SpillLoad {
                    slot: 0,
                    dst: VReg(1),
                    overlapped: false,
                },
                Instr::Fstrv {
                    src: VReg(1),
                    dst: Mem::arg(1),
                    overlapped: false,
                },
            ],
        );
        let mut mem = NodeMemory::new();
        let a = mem.alloc(&[7.0, 8.0, 9.0, 10.0]);
        let b = mem.alloc_zeroed(4);
        run_routine(&r, &mut mem, &[a, b], &[], 4).unwrap();
        assert_eq!(mem.read(b, 4), vec![7.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn wrong_arity_faults() {
        let r = routine(
            1,
            0,
            vec![Instr::Flodv {
                src: Mem::arg(0),
                dst: VReg(0),
                overlapped: false,
            }],
        );
        let mut mem = NodeMemory::new();
        assert!(run_routine(&r, &mut mem, &[], &[], 4).is_err());
        assert!(run_routine(&r, &mut mem, &[0], &[1.0], 4).is_err());
    }

    #[test]
    fn zero_elements_runs_no_iterations() {
        let r = routine(
            1,
            0,
            vec![Instr::Flodv {
                src: Mem::arg(0),
                dst: VReg(0),
                overlapped: false,
            }],
        );
        let mut mem = NodeMemory::new();
        let a = mem.alloc(&[1.0; 4]);
        let stats = run_routine(&r, &mut mem, &[a], &[], 0).unwrap();
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.cycles, 0);
    }
}
